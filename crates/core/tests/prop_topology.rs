//! Property tests for the core definitions and the §4 equivalence
//! theorem (Fast-Top ≡ Full-Top) on random databases.

use proptest::prelude::*;
use ts_core::compute::{compute_catalog, ComputeOptions};
use ts_core::methods::{fast_top, full_top, QueryContext};
use ts_core::prune::{prune_catalog, PruneOptions};
use ts_core::topology::{pair_topologies, CanonMemo, TopOptions};
use ts_core::TopologyQuery;
use ts_graph::{canonical_code, enumerate_pair_paths, DataGraph, SchemaGraph};
use ts_storage::{row, ColumnDef, Database, Predicate, TableSchema, ValueType};

/// Random 3-set database (P/U/D with encodes, uni_encodes, uni_contains).
fn build_db(
    n: usize,
    enc: &[(usize, usize)],
    ue: &[(usize, usize)],
    uc: &[(usize, usize)],
) -> Database {
    let mut db = Database::new();
    let mk = |db: &mut Database, name: &str| {
        let t = db
            .create_table(TableSchema::new(
                name,
                vec![ColumnDef::new("ID", ValueType::Int)],
                Some(0),
            ))
            .unwrap();
        db.declare_entity_set(name, t).unwrap();
        t
    };
    let pt = mk(&mut db, "P");
    let ut = mk(&mut db, "U");
    let dt = mk(&mut db, "D");
    let rel = |db: &mut Database, name: &str, a: usize, b: usize| {
        let t = db
            .create_table(TableSchema::new(
                name,
                vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
                None,
            ))
            .unwrap();
        db.declare_rel_set(name, t, a, 0, b, 1).unwrap();
        t
    };
    let enc_t = rel(&mut db, "enc", 0, 2);
    let ue_t = rel(&mut db, "ue", 1, 0);
    let uc_t = rel(&mut db, "uc", 1, 2);
    for i in 0..n {
        db.table_mut(pt).insert(row![100 + i as i64]).unwrap();
        db.table_mut(ut).insert(row![200 + i as i64]).unwrap();
        db.table_mut(dt).insert(row![300 + i as i64]).unwrap();
    }
    for &(p, d) in enc {
        db.table_mut(enc_t).insert(row![100 + (p % n) as i64, 300 + (d % n) as i64]).unwrap();
    }
    for &(u, p) in ue {
        db.table_mut(ue_t).insert(row![200 + (u % n) as i64, 100 + (p % n) as i64]).unwrap();
    }
    for &(u, d) in uc {
        db.table_mut(uc_t).insert(row![200 + (u % n) as i64, 300 + (d % n) as i64]).unwrap();
    }
    db.analyze_all();
    db
}

fn edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(2 * n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Definition-2 invariants on every connected pair of a random db.
    #[test]
    fn pair_topologies_invariants(
        enc in edges(4),
        ue in edges(4),
        uc in edges(4),
        l in 1usize..=3,
    ) {
        let db = build_db(4, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, l);
        let mut memo = CanonMemo::new();
        for (a, b) in pp.sorted_pairs() {
            let (a, b) = (&a, &b);
            let t = pair_topologies(&g, &pp.paths(*a, *b), TopOptions::default(), &mut memo);
            prop_assert!(!t.unions.is_empty(), "connected pair has a topology");
            // Codes are distinct and sorted.
            for w in t.unions.windows(2) {
                prop_assert!(w[0].1 < w[1].1);
            }
            for (union, code) in &t.unions {
                // Canonical code is consistent.
                prop_assert_eq!(&canonical_code(union), code);
                // Union graphs are connected and contain both endpoints' types.
                prop_assert!(union.is_connected());
                prop_assert!(union.labels.contains(&g.node_type(*a)));
                prop_assert!(union.labels.contains(&g.node_type(*b)));
                // A union can never have more edges than the paths provide.
                let max_edges: usize = t.classes.iter().map(|c| c.len()).sum();
                prop_assert!(union.edge_count() <= max_edges);
            }
            // Single-class pairs: exactly one topology, a path graph.
            if t.classes.len() == 1 {
                prop_assert_eq!(t.unions.len(), 1);
                let (u, _) = &t.unions[0];
                prop_assert_eq!(u.edge_count(), u.node_count() - 1);
            }
        }
    }

    /// §4's correctness claim: Fast-Top over (LeftTops, ExcpTops, base
    /// data) equals Full-Top over AllTops — for every random database and
    /// every pruning threshold.
    #[test]
    fn fast_top_equals_full_top_on_random_databases(
        enc in edges(5),
        ue in edges(5),
        uc in edges(5),
        threshold in 0u64..4,
    ) {
        let db = build_db(5, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold, max_pruned: 64 });
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(0, Predicate::True, 2, Predicate::True, 3);
        let fast = fast_top::eval(&ctx, &q, ts_exec::Work::new());
        let full = full_top::eval(&ctx, &q, ts_exec::Work::new());
        prop_assert_eq!(fast.tid_set(), full.tid_set());
    }

    /// The catalog's AllTops rows are exactly the per-pair topologies.
    #[test]
    fn alltops_rows_cover_pairs(
        enc in edges(4),
        ue in edges(4),
        uc in edges(4),
    ) {
        let db = build_db(4, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let (cat, stats) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        let expected: usize = cat.pairs().map(|p| p.topos.len()).sum();
        prop_assert_eq!(cat.alltops.len(), expected);
        prop_assert_eq!(stats.pairs as usize, cat.pair_count());
        // Frequencies sum to row count.
        let freq_sum: u64 = cat.metas().iter().map(|m| m.freq).sum();
        prop_assert_eq!(freq_sum as usize, cat.alltops.len());
    }
}
