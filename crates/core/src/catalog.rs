//! The topology catalog: `AllTops`, `TopInfo`, `LeftTops`, `ExcpTops`.
//!
//! §3.2 of the paper: "Full-Top creates a AllTops table that stores for
//! every pair of entities in the database, the l-topologies by which they
//! are related" plus "an associated TopInfo table (that stores additional
//! information about topologies)". §4.2 prunes AllTops into `LeftTops`
//! and the exception table `ExcpTops` (Fig. 13).
//!
//! The catalog keeps two synchronized representations:
//!
//! * **metadata** — interned topologies ([`TopologyMeta`]: canonical
//!   code, structure graph, frequency, scores, pruned flag) and a
//!   CSR-shaped per-pair store (which topologies and which path classes
//!   each connected pair has — the information pruning needs). Pair
//!   entries live in two catalog-level buffers (`pair_topos`,
//!   `pair_sigs`) addressed through one offset table, mirroring
//!   `ts-graph`'s `PathArena`; a pair is read through a borrowing
//!   [`PairView`], and no per-pair heap allocation exists anywhere;
//! * **materialized relational tables** — real [`ts_storage::Table`]s
//!   with hash indexes, which the query methods execute against and
//!   whose byte sizes reproduce Table 1.
//!
//! Entity ids must be globally unique across entity sets (the paper:
//! "assuming that the IDs of different biological objects are not
//! overlapping"); [`Catalog::finalize`] enforces this.

use ts_graph::{CanonicalCode, LGraph, PathSig};
use ts_storage::cast;
use ts_storage::{fast_hash_u16s, ColumnDef, FastMap, Table, TableSchema, Value, ValueType};

use crate::query::RankScheme;

/// Identifier of a topology in the catalog.
pub type TopologyId = u32;

/// A normalized (unordered) pair of entity sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EsPair {
    /// Smaller entity-set id.
    pub from: u16,
    /// Larger entity-set id.
    pub to: u16,
}

impl EsPair {
    /// Normalize `(a, b)` so that `from <= to`.
    pub fn new(a: u16, b: u16) -> Self {
        if a <= b {
            EsPair { from: a, to: b }
        } else {
            EsPair { from: b, to: a }
        }
    }
}

/// Everything the catalog knows about one topology.
#[derive(Debug, Clone)]
pub struct TopologyMeta {
    /// Catalog id (also the TID stored in the relational tables).
    pub id: TopologyId,
    /// The entity-set pair this topology relates.
    pub espair: EsPair,
    /// Representative structure graph.
    pub graph: LGraph,
    /// Canonical code (identity).
    pub code: CanonicalCode,
    /// Interned id of `code` in the catalog's code table — the compact
    /// key dedup lookups use instead of cloning the code vector.
    pub code_id: u32,
    /// Frequency: number of entity pairs related by this topology
    /// (`freq(es1, es2, T)` in §4.2.1).
    pub freq: u64,
    /// If the topology is a single simple path between the pair's entity
    /// sets, its signature — only such topologies are pruning-eligible
    /// and online-checkable (§4.3's path sub-queries).
    pub path_sig: Option<PathSig>,
    /// True once the pruning module moved this topology out of LeftTops.
    pub pruned: bool,
    /// Scores per [`RankScheme`] (Freq, Rare, Domain).
    pub scores: [f64; 3],
}

/// Identity of one connected entity pair in the CSR pair store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairKey {
    /// Entity-set pair (normalized).
    pub espair: EsPair,
    /// Entity id of the `espair.from` side.
    pub e1: i64,
    /// Entity id of the `espair.to` side.
    pub e2: i64,
}

/// End offsets of one pair's slices in the shared CSR buffers. Entry
/// `i + 1` holds pair `i`'s exclusive ends; entry 0 is the all-zero
/// sentinel, so `offsets[i]..offsets[i + 1]` is pair `i`'s range in
/// both buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairOffsets {
    /// Exclusive end in the topology-id buffer.
    pub topos: u32,
    /// Exclusive end in the signature-id buffer.
    pub sigs: u32,
}

/// Borrowed view of one pair's catalog entry — the CSR replacement for
/// the old owning per-pair record (which carried two heap `Vec`s per
/// connected pair).
#[derive(Debug, Clone, Copy)]
pub struct PairView<'a> {
    /// Entity-set pair (normalized).
    pub espair: EsPair,
    /// Entity id of the `espair.from` side.
    pub e1: i64,
    /// Entity id of the `espair.to` side.
    pub e2: i64,
    /// Topologies relating the pair (`l-Top(e1, e2)`), sorted, deduped.
    pub topos: &'a [TopologyId],
    /// Interned signatures of the pair's path equivalence classes.
    pub sigs: &'a [u32],
}

impl PairView<'_> {
    /// The pair's key.
    pub fn key(&self) -> PairKey {
        PairKey { espair: self.espair, e1: self.e1, e2: self.e2 }
    }
}

/// The topology catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Path-length limit `l` the catalog was computed at.
    pub l: usize,
    metas: Vec<TopologyMeta>,
    code_index: FastMap<(EsPair, u32), TopologyId>,
    /// CSR pair store: keys sorted by (espair, e1, e2) after finalize,
    /// with both value streams in shared catalog-level buffers.
    pair_keys: Vec<PairKey>,
    pair_offsets: Vec<PairOffsets>,
    pair_topos: Vec<TopologyId>,
    pair_sigs: Vec<u32>,
    sigs: Vec<PathSig>,
    /// Signature dedup index keyed by the *precomputed* fast hash of the
    /// signature bytes: the offline build hashes each signature once in
    /// the worker, caches the hash alongside the interned id, and this
    /// index re-interns at merge time without re-walking any signature.
    /// Values are candidate-id lists (identity = full byte compare).
    sig_index: FastMap<u64, Vec<u32>>,
    codes: Vec<CanonicalCode>,
    code_ids: FastMap<CanonicalCode, u32>,
    /// Pairs whose Definition-2 product was truncated by guard rails.
    pub truncated_pairs: u64,
    /// AllTops(E1, E2, TID) — indexes on E1, E2, TID.
    pub alltops: Table,
    /// LeftTops(E1, E2, TID) — AllTops minus pruned topologies.
    pub lefttops: Table,
    /// ExcpTops(E1, E2, TID) — exception pairs for pruned topologies.
    pub excptops: Table,
    finalized: bool,
}

fn tops_schema(name: &str) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            ColumnDef::new("E1", ValueType::Int),
            ColumnDef::new("E2", ValueType::Int),
            ColumnDef::new("TID", ValueType::Int),
        ],
        None,
    )
}

impl Catalog {
    /// Empty catalog for path limit `l`.
    pub fn new(l: usize) -> Self {
        Catalog {
            l,
            metas: Vec::new(),
            code_index: FastMap::default(),
            pair_keys: Vec::new(),
            pair_offsets: vec![PairOffsets::default()],
            pair_topos: Vec::new(),
            pair_sigs: Vec::new(),
            sigs: Vec::new(),
            sig_index: FastMap::default(),
            codes: Vec::new(),
            code_ids: FastMap::default(),
            truncated_pairs: 0,
            alltops: Table::new(tops_schema("AllTops")),
            lefttops: Table::new(tops_schema("LeftTops")),
            excptops: Table::new(tops_schema("ExcpTops")),
            finalized: false,
        }
    }

    /// Intern a path signature, returning its id.
    pub fn intern_sig(&mut self, sig: PathSig) -> u32 {
        let hash = fast_hash_u16s(&sig.0);
        self.intern_sig_prehashed(sig, hash)
    }

    /// Intern a signature whose fast hash was already computed (and
    /// cached alongside its worker-local id) — the merge-time path: the
    /// catalog never re-hashes a signature the worker hashed.
    pub fn intern_sig_prehashed(&mut self, sig: PathSig, hash: u64) -> u32 {
        let ids = self.sig_index.entry(hash).or_default();
        for &id in ids.iter() {
            if self.sigs[id as usize] == sig {
                return id;
            }
        }
        let id = cast::to_u32(self.sigs.len());
        ids.push(id);
        self.sigs.push(sig);
        id
    }

    /// Signature by id.
    pub fn sig(&self, id: u32) -> &PathSig {
        &self.sigs[id as usize]
    }

    /// Id of an interned signature, if present.
    pub fn sig_id(&self, sig: &PathSig) -> Option<u32> {
        let ids = self.sig_index.get(&fast_hash_u16s(&sig.0))?;
        ids.iter().copied().find(|&id| self.sigs[id as usize] == *sig)
    }

    /// Number of interned signatures.
    pub fn sig_count(&self) -> usize {
        self.sigs.len()
    }

    /// Intern a canonical code, returning its id. Lookups borrow the
    /// code; it is cloned only the first time it is seen.
    pub fn intern_code(&mut self, code: &CanonicalCode) -> u32 {
        if let Some(&id) = self.code_ids.get(code) {
            return id;
        }
        let id = cast::to_u32(self.codes.len());
        self.code_ids.insert(code.clone(), id);
        self.codes.push(code.clone());
        id
    }

    /// Canonical code by interned id.
    pub fn code(&self, id: u32) -> &CanonicalCode {
        &self.codes[id as usize]
    }

    /// Id of an interned code, if present.
    pub fn code_id(&self, code: &CanonicalCode) -> Option<u32> {
        self.code_ids.get(code).copied()
    }

    /// Number of distinct canonical codes interned.
    pub fn code_count(&self) -> usize {
        self.codes.len()
    }

    /// Intern a topology (espair + canonical code), returning its id.
    pub fn intern_topology(
        &mut self,
        espair: EsPair,
        graph: LGraph,
        code: CanonicalCode,
        path_sig: Option<PathSig>,
    ) -> TopologyId {
        self.intern_topology_with(espair, graph, code, |_| path_sig)
    }

    /// Like [`Catalog::intern_topology`], but the path-signature
    /// detection runs only when the topology is genuinely new — dedup
    /// hits (the overwhelming majority: one per pair-topology incidence)
    /// cost one map probe and nothing else.
    pub fn intern_topology_with(
        &mut self,
        espair: EsPair,
        graph: LGraph,
        code: CanonicalCode,
        path_sig: impl FnOnce(&LGraph) -> Option<PathSig>,
    ) -> TopologyId {
        let code_id = self.intern_code(&code);
        if let Some(&id) = self.code_index.get(&(espair, code_id)) {
            return id;
        }
        let id = self.metas.len() as TopologyId;
        self.code_index.insert((espair, code_id), id);
        let path_sig = path_sig(&graph);
        self.metas.push(TopologyMeta {
            id,
            espair,
            graph,
            code,
            code_id,
            freq: 0,
            path_sig,
            pruned: false,
            scores: [0.0; 3],
        });
        id
    }

    /// Record a pair: append its key and copy both value slices into the
    /// shared CSR buffers (no per-pair allocation).
    pub fn add_pair(
        &mut self,
        espair: EsPair,
        e1: i64,
        e2: i64,
        topos: &[TopologyId],
        sigs: &[u32],
    ) {
        self.pair_keys.push(PairKey { espair, e1, e2 });
        self.pair_topos.extend_from_slice(topos);
        self.pair_sigs.extend_from_slice(sigs);
        self.pair_offsets.push(PairOffsets {
            // lint: allow(unwrap-in-lib): deliberate capacity guard — try_from turns
            // silent 32-bit truncation into a loud failure at append time
            topos: u32::try_from(self.pair_topos.len()).expect("CSR topo buffer exceeds u32"),
            // lint: allow(unwrap-in-lib): deliberate capacity guard, as above
            sigs: u32::try_from(self.pair_sigs.len()).expect("CSR sig buffer exceeds u32"),
        });
    }

    /// Pre-size the CSR pair store for a bulk append.
    pub fn reserve_pairs(&mut self, pairs: usize, topos: usize, sigs: usize) {
        self.pair_keys.reserve(pairs);
        self.pair_offsets.reserve(pairs);
        self.pair_topos.reserve(topos);
        self.pair_sigs.reserve(sigs);
    }

    /// Number of connected pairs recorded.
    pub fn pair_count(&self) -> usize {
        self.pair_keys.len()
    }

    /// One pair's entry, by position.
    pub fn pair(&self, i: usize) -> PairView<'_> {
        let k = self.pair_keys[i];
        let (o0, o1) = (self.pair_offsets[i], self.pair_offsets[i + 1]);
        PairView {
            espair: k.espair,
            e1: k.e1,
            e2: k.e2,
            topos: &self.pair_topos[o0.topos as usize..o1.topos as usize],
            sigs: &self.pair_sigs[o0.sigs as usize..o1.sigs as usize],
        }
    }

    /// Iterate all pairs (sorted by `(espair, e1, e2)` after finalize).
    pub fn pairs(&self) -> impl ExactSizeIterator<Item = PairView<'_>> {
        (0..self.pair_count()).map(|i| self.pair(i))
    }

    /// The offset table of the CSR pair store (`pair_count() + 1`
    /// entries, monotone, terminated by the buffer lengths) — exposed so
    /// the invariant tests can audit the layout directly.
    pub fn pair_offsets(&self) -> &[PairOffsets] {
        &self.pair_offsets
    }

    /// The shared topology-id buffer behind every pair's `topos` slice.
    pub fn pair_topo_buffer(&self) -> &[TopologyId] {
        &self.pair_topos
    }

    /// The shared signature-id buffer behind every pair's `sigs` slice.
    pub fn pair_sig_buffer(&self) -> &[u32] {
        &self.pair_sigs
    }

    /// Payload bytes of the CSR pair store (keys + offset table + both
    /// shared buffers). The old layout spent two heap allocations per
    /// pair on top of the same payload.
    pub fn pair_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pair_keys.len() * size_of::<PairKey>()
            + self.pair_offsets.len() * size_of::<PairOffsets>()
            + self.pair_topos.len() * size_of::<TopologyId>()
            + self.pair_sigs.len() * size_of::<u32>()
    }

    /// Approximate heap footprint of the whole catalog in bytes: CSR
    /// pair store, topology metadata (structure graphs, codes,
    /// signatures), interners, and the three materialized tables (rows
    /// plus index postings). This is the figure the offline-build bench
    /// records alongside build time.
    pub fn heap_size(&self) -> usize {
        use std::mem::size_of;
        let metas: usize = self
            .metas
            .iter()
            .map(|m| {
                size_of::<TopologyMeta>()
                    + m.graph.labels.len() * size_of::<u16>()
                    + m.graph.edges.len() * size_of::<(u8, u8, u16)>()
                    + m.code.0.len() * size_of::<u32>()
                    + m.path_sig.as_ref().map_or(0, |s| s.0.len() * size_of::<u16>())
            })
            .sum();
        let interners: usize =
            self.sigs.iter().map(|s| s.0.len() * size_of::<u16>()).sum::<usize>()
                + self.codes.iter().map(|c| c.0.len() * size_of::<u32>()).sum::<usize>();
        self.pair_bytes()
            + metas
            + interners
            + self.alltops.heap_size()
            + self.lefttops.heap_size()
            + self.excptops.heap_size()
    }

    /// Sort the CSR pair store by key. Builds run espair-by-espair with
    /// entities ascending, so the store is usually already sorted and
    /// the permutation rebuild is skipped.
    fn sort_pairs(&mut self) {
        if self.pair_keys.windows(2).all(|w| w[0] <= w[1]) {
            return;
        }
        let mut perm: Vec<u32> = (0..cast::to_u32(self.pair_keys.len())).collect();
        perm.sort_by_key(|&i| self.pair_keys[i as usize]);
        let mut keys = Vec::with_capacity(self.pair_keys.len());
        let mut offsets = Vec::with_capacity(self.pair_offsets.len());
        let mut topos = Vec::with_capacity(self.pair_topos.len());
        let mut sigs = Vec::with_capacity(self.pair_sigs.len());
        offsets.push(PairOffsets::default());
        for &i in &perm {
            let i = i as usize;
            let (o0, o1) = (self.pair_offsets[i], self.pair_offsets[i + 1]);
            keys.push(self.pair_keys[i]);
            topos.extend_from_slice(&self.pair_topos[o0.topos as usize..o1.topos as usize]);
            sigs.extend_from_slice(&self.pair_sigs[o0.sigs as usize..o1.sigs as usize]);
            offsets.push(PairOffsets {
                topos: cast::to_u32(topos.len()),
                sigs: cast::to_u32(sigs.len()),
            });
        }
        self.pair_keys = keys;
        self.pair_offsets = offsets;
        self.pair_topos = topos;
        self.pair_sigs = sigs;
    }

    /// Finish the build: sort pairs, compute frequencies, materialize the
    /// AllTops table with its indexes (LeftTops starts as a full copy;
    /// run [`crate::prune::prune_catalog`] to shrink it).
    pub fn finalize(&mut self) {
        assert!(!self.finalized, "finalize called twice");
        self.finalized = true;
        self.sort_pairs();

        // Every occurrence in the shared topo buffer is one (pair,
        // topology) incidence — exactly one future AllTops row.
        for &tid in &self.pair_topos {
            self.metas[tid as usize].freq += 1;
        }
        // Materialize AllTops straight into its column buffers: with the
        // reserve, the whole loop performs zero heap allocations (the
        // bench's allocation counter holds it to O(columns)).
        self.alltops.reserve(self.pair_topos.len());
        for (i, k) in self.pair_keys.iter().enumerate() {
            let (lo, hi) =
                (self.pair_offsets[i].topos as usize, self.pair_offsets[i + 1].topos as usize);
            for &tid in &self.pair_topos[lo..hi] {
                self.alltops
                    .insert_ints(&[k.e1, k.e2, tid as i64])
                    // lint: allow(unwrap-in-lib): alltops is created by this type
                    // with a fixed 3-Int-column schema; arity and types match
                    .expect("alltops schema is fixed");
            }
        }
        self.alltops.create_index_bulk(0);
        self.alltops.create_index_bulk(1);
        self.alltops.create_index_bulk(2);
        self.alltops.analyze();

        // LeftTops starts as a full copy (under its own name) — cloned
        // wholesale rather than re-inserted, re-indexed, and re-analyzed
        // row by row.
        self.lefttops = self.alltops.clone_renamed("LeftTops");
        self.excptops.create_index_bulk(0);
        self.excptops.analyze();
    }

    /// All topology metadata.
    pub fn metas(&self) -> &[TopologyMeta] {
        &self.metas
    }

    /// Mutable access for the pruning and scoring modules.
    pub(crate) fn metas_mut(&mut self) -> &mut [TopologyMeta] {
        &mut self.metas
    }

    /// Metadata of one topology.
    pub fn meta(&self, tid: TopologyId) -> &TopologyMeta {
        &self.metas[tid as usize]
    }

    /// Number of interned topologies.
    pub fn topology_count(&self) -> usize {
        self.metas.len()
    }

    /// Topology ids for an entity-set pair, ascending.
    pub fn topologies_for(&self, espair: EsPair) -> Vec<TopologyId> {
        self.metas.iter().filter(|m| m.espair == espair).map(|m| m.id).collect()
    }

    /// Frequency distribution for an entity-set pair, descending — the
    /// series plotted in Fig. 11.
    pub fn freq_distribution(&self, espair: EsPair) -> Vec<u64> {
        let mut f: Vec<u64> = self
            .metas
            .iter()
            .filter(|m| m.espair == espair && m.freq > 0)
            .map(|m| m.freq)
            .collect();
        f.sort_unstable_by(|a, b| b.cmp(a));
        f
    }

    /// Topologies of an entity-set pair ranked by a scheme, descending
    /// score (ties broken by id for determinism) — the TopInfo-by-score
    /// stream consumed by top-k plans.
    pub fn ranked(&self, scheme: RankScheme, espair: EsPair) -> Vec<(TopologyId, f64)> {
        let mut v: Vec<(TopologyId, f64)> = self
            .metas
            .iter()
            .filter(|m| m.espair == espair)
            .map(|m| (m.id, m.scores[scheme.index()]))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// True if `(e1, e2, tid)` is in the exception table.
    pub fn excp_contains(&self, e1: i64, e2: i64, tid: TopologyId) -> bool {
        self.excptops.index_probe(0, &Value::Int(e1)).iter().any(|&rid| {
            let r = self.excptops.row(rid);
            r.as_int(1) == e2 && r.as_int(2) == tid as i64
        })
    }

    /// Order-sensitive FNV-1a (64-bit) digest of the catalog's logical
    /// content: `l`, every topology's metadata (espair, canonical code,
    /// frequency, pruned flag, scores, path signature), the CSR pair
    /// store, the truncation counter, and all three materialized tables
    /// row by row. Identical builds produce identical digests, so the
    /// serving layer's fault-injection tests pin the digest before and
    /// after a panic storm to prove a shared snapshot is never mutated
    /// in place.
    pub fn fnv_digest(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn put(&mut self, x: u64) {
                const PRIME: u64 = 0x0000_0100_0000_01b3;
                for b in x.to_le_bytes() {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
                }
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.put(self.l as u64);
        h.put(self.metas.len() as u64);
        for m in &self.metas {
            h.put(u64::from(m.espair.from));
            h.put(u64::from(m.espair.to));
            h.put(m.code.0.len() as u64);
            for &c in &m.code.0 {
                h.put(u64::from(c));
            }
            h.put(m.freq);
            h.put(u64::from(m.pruned));
            for s in m.scores {
                h.put(s.to_bits());
            }
            match &m.path_sig {
                None => h.put(u64::MAX),
                Some(sig) => {
                    h.put(sig.0.len() as u64);
                    for &u in &sig.0 {
                        h.put(u64::from(u));
                    }
                }
            }
        }
        h.put(self.pair_keys.len() as u64);
        for k in &self.pair_keys {
            h.put(u64::from(k.espair.from));
            h.put(u64::from(k.espair.to));
            h.put(k.e1 as u64);
            h.put(k.e2 as u64);
        }
        for o in &self.pair_offsets {
            h.put(u64::from(o.topos));
            h.put(u64::from(o.sigs));
        }
        for &t in &self.pair_topos {
            h.put(u64::from(t));
        }
        for &s in &self.pair_sigs {
            h.put(u64::from(s));
        }
        h.put(self.truncated_pairs);
        for table in [&self.alltops, &self.lefttops, &self.excptops] {
            h.put(table.len() as u64);
            for r in table.rows() {
                for col in 0..3 {
                    h.put(r.as_int(col) as u64);
                }
            }
        }
        h.0
    }

    /// Per-espair byte sizes of the three tables (Table 1 of the paper).
    /// Row payload plus index-posting overhead, attributed to the espair
    /// that owns each row's TID.
    pub fn space_report(&self) -> Vec<(EsPair, SpaceRow)> {
        let mut acc: FastMap<EsPair, SpaceRow> = FastMap::default();
        let per_row = |t: &Table| {
            if t.is_empty() {
                0
            } else {
                t.heap_size() / t.len()
            }
        };
        #[derive(Clone, Copy)]
        enum Which {
            All,
            Left,
            Excp,
        }
        let parts: [(&Table, Which, usize); 3] = [
            (&self.alltops, Which::All, per_row(&self.alltops)),
            (&self.lefttops, Which::Left, per_row(&self.lefttops)),
            (&self.excptops, Which::Excp, per_row(&self.excptops)),
        ];
        for (table, which, bytes) in parts {
            for r in table.rows() {
                let tid = r.as_int(2) as usize;
                let espair = self.metas[tid].espair;
                let slot = acc.entry(espair).or_default();
                match which {
                    Which::All => slot.alltops_bytes += bytes,
                    Which::Left => slot.lefttops_bytes += bytes,
                    Which::Excp => slot.excptops_bytes += bytes,
                }
            }
        }
        let mut out: Vec<(EsPair, SpaceRow)> = acc.into_iter().collect();
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

/// One row of the Table-1 space report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceRow {
    /// Bytes attributable to this espair in AllTops.
    pub alltops_bytes: usize,
    /// Bytes in LeftTops.
    pub lefttops_bytes: usize,
    /// Bytes in ExcpTops.
    pub excptops_bytes: usize,
}

impl SpaceRow {
    /// LeftTops+ExcpTops as a fraction of AllTops (the paper's "Ratio").
    pub fn ratio(&self) -> f64 {
        if self.alltops_bytes == 0 {
            return 0.0;
        }
        (self.lefttops_bytes + self.excptops_bytes) as f64 / self.alltops_bytes as f64
    }
}
