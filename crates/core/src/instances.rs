//! Instance retrieval (§6.2.4): materialize the concrete entity
//! subgraphs behind a topology.
//!
//! "In addition, for each topology we report all instance-level results
//! that adhere to that topology" (§1). Given a topology id, this module
//! finds the entity pairs related by it (one AllTops index probe) and
//! reconstructs, per pair, a witness subgraph: concrete entities and
//! relationships whose union has exactly the topology's canonical code.

use ts_exec::Work;
use ts_graph::{canonical_code, InstanceGraphBuilder, LGraph};
use ts_storage::Value;

use crate::catalog::TopologyId;
use crate::methods::QueryContext;
use crate::topology::path_classes;

/// One concrete instance of a topology.
#[derive(Debug, Clone)]
pub struct TopologyInstance {
    /// Entity id on the espair-from side.
    pub e1: i64,
    /// Entity id on the espair-to side.
    pub e2: i64,
    /// The witness subgraph (labels are entity-set / relationship ids).
    pub graph: LGraph,
    /// Entity ids per graph node (parallel to `graph.labels`).
    pub entities: Vec<i64>,
}

/// Retrieve up to `limit` instances of a topology.
///
/// Cost profile matches the paper's observation: proportional to the
/// topology's frequency (one probe, then per-pair path recomputation).
pub fn retrieve_instances(
    ctx: &QueryContext<'_>,
    tid: TopologyId,
    limit: usize,
    work: &Work,
) -> Vec<TopologyInstance> {
    let meta = ctx.catalog.meta(tid);
    let espair = meta.espair;
    let target = &meta.code;
    let reach = ctx.schema.reach_table(espair.to, ctx.catalog.l);

    // Pairs related by this topology: AllTops probe on TID.
    work.tick(1);
    let row_ids = ctx.catalog.alltops.index_probe(2, &Value::Int(tid as i64));

    let mut out = Vec::new();
    for &rid in row_ids {
        if out.len() >= limit {
            break;
        }
        let row = ctx.catalog.alltops.row(rid);
        let (e1, e2) = (row.get(0).as_int(), row.get(1).as_int());
        let Some(a) = ctx.graph.node(espair.from, e1) else { continue };
        let Some(b) = ctx.graph.node(espair.to, e2) else { continue };

        // Recompute the pair's paths and find a representative choice
        // whose union matches the topology.
        let mut arena = ts_graph::PathArena::new();
        ts_graph::paths_from_into(ctx.graph, &reach, a, espair.to, ctx.catalog.l, &mut arena);
        let paths: Vec<ts_graph::PathRef<'_>> =
            arena.iter().filter(|p| p.endpoints().1 == b).collect();
        work.tick(paths.len() as u64);
        let classes = path_classes(ctx.graph, &paths);
        if classes.is_empty() {
            continue;
        }
        let reps: Vec<&[ts_graph::PathRef<'_>]> =
            classes.iter().map(|(_, ps)| ps.as_slice()).collect();
        let mut idx = vec![0usize; reps.len()];
        'product: loop {
            let mut builder = InstanceGraphBuilder::new();
            let mut entities: Vec<(u32, i64)> = Vec::new();
            for (c, &class_reps) in reps.iter().enumerate() {
                let p = class_reps[idx[c]];
                for i in 0..p.rels.len() {
                    let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                    builder.edge(u, ctx.graph.node_type(u), v, ctx.graph.node_type(v), p.rels[i]);
                    for n in [u, v] {
                        if !entities.iter().any(|&(k, _)| k == n) {
                            entities.push((n, ctx.graph.node_entity(n)));
                        }
                    }
                }
            }
            let lookup: Vec<(u32, i64)> = entities.clone();
            let union = builder.build();
            work.tick(1);
            if &canonical_code(&union) == target {
                // Map builder nodes back to entity ids.
                let mut ents = vec![0i64; union.node_count()];
                let mut b2 = InstanceGraphBuilder::new();
                for (c, &class_reps) in reps.iter().enumerate() {
                    let p = class_reps[idx[c]];
                    for i in 0..p.rels.len() {
                        let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                        b2.edge(u, ctx.graph.node_type(u), v, ctx.graph.node_type(v), p.rels[i]);
                    }
                }
                for &(key, ent) in &lookup {
                    if let Some(local) = b2.lookup(key) {
                        ents[local as usize] = ent;
                    }
                }
                out.push(TopologyInstance { e1, e2, graph: union, entities: ents });
                break 'product;
            }
            // Advance odometer.
            let mut c = 0;
            loop {
                if c == reps.len() {
                    break 'product;
                }
                idx[c] += 1;
                if idx[c] < reps[c].len() {
                    break;
                }
                idx[c] = 0;
                c += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EsPair;
    use crate::compute::{compute_catalog, ComputeOptions};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};

    fn setup() -> (ts_storage::Database, ts_graph::DataGraph, ts_graph::SchemaGraph, crate::Catalog)
    {
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        (db, g, schema, cat)
    }

    #[test]
    fn instances_match_frequency() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let pd = EsPair::new(PROTEIN, DNA);
        for &tid in &cat.topologies_for(pd) {
            let work = Work::new();
            let inst = retrieve_instances(&ctx, tid, 100, &work);
            assert_eq!(
                inst.len() as u64,
                cat.meta(tid).freq,
                "every related pair yields a witness for tid {tid}"
            );
            assert!(work.get() > 0);
        }
    }

    #[test]
    fn witness_graphs_have_target_code() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let pd = EsPair::new(PROTEIN, DNA);
        for &tid in &cat.topologies_for(pd) {
            let work = Work::new();
            for inst in retrieve_instances(&ctx, tid, 10, &work) {
                assert_eq!(canonical_code(&inst.graph), cat.meta(tid).code);
                assert_eq!(inst.entities.len(), inst.graph.node_count());
                // Entity ids must include the pair endpoints.
                assert!(inst.entities.contains(&inst.e1));
                assert!(inst.entities.contains(&inst.e2));
            }
        }
    }

    #[test]
    fn limit_respected() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let pd = EsPair::new(PROTEIN, DNA);
        let tid = cat.topologies_for(pd)[0];
        let work = Work::new();
        assert!(retrieve_instances(&ctx, tid, 0, &work).is_empty());
    }
}
