//! The Full-Top method (§3.2): query the precomputed AllTops table.
//!
//! The paper's SQL:
//!
//! ```sql
//! SELECT distinct AT.TID
//! FROM Protein P, DNA D, AllTops AT
//! WHERE P.desc.ct('enzyme') and D.type = 'mRNA'
//!   and P.ID = AT.E1 and D.ID = AT.E2
//! ```
//!
//! executed here as the plan the commercial systems chose (Fig. 14):
//! scan AllTops, hash-join with the selected E1-side entities, hash-join
//! with the selected E2-side entities, distinct on TID.

use std::time::Instant;

use ts_exec::{collect_all_budgeted, BoxedOp, Distinct, HashJoin, TableScan, Work};
use ts_storage::Predicate;

use crate::methods::common::{entity_table, orient};
use crate::methods::{EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;

/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(ctx: &QueryContext<'_>, q: &TopologyQuery, work: Work) -> EvalOutcome {
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in the outcome's millis field and never reaches catalog bytes
    let start = Instant::now();
    let tids = distinct_tids(ctx, q, &ctx.catalog.alltops, &work);
    EvalOutcome {
        method: Method::FullTop,
        topologies: tids.into_iter().map(|t| (t, 0.0)).collect(),
        work: work.get(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        detail: "DISTINCT(HASH(HASH(AllTops, σE1), σE2)).TID".into(),
        exhausted: work.exhausted(),
    }
}

/// The shared join pipeline over a topology-pairs table (AllTops for
/// Full-Top, LeftTops for Fast-Top): distinct TIDs of rows whose E1/E2
/// entities satisfy the oriented constraints.
///
/// Two physical plans, chosen by estimated cost as the commercial
/// optimizers of Fig. 14 would:
///
/// * **hash plan** — scan the tops table, hash-join both selected entity
///   sides (good when predicates are unselective);
/// * **index plan** — select the E1-side entities, probe the tops
///   table's E1 index per selected entity, residual-check the E2 side
///   ("the selective predicates enable Full-Top to scan only a small
///   part of the AllTops table", §6.2.2).
pub(crate) fn distinct_tids(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    tops_table: &ts_storage::Table,
    work: &Work,
) -> Vec<crate::catalog::TopologyId> {
    let o = orient(q);
    let (from_table, from_pk) = entity_table(ctx, o.espair.from);
    let (to_table, to_pk) = entity_table(ctx, o.espair.to);

    // Cost-based plan choice from catalog statistics.
    let rho_from = from_table.stats().map(|s| o.con_from.selectivity(s)).unwrap_or(1.0);
    let est_selected = rho_from * from_table.len() as f64;
    let rows = tops_table.len() as f64;
    let distinct_e1 =
        tops_table.stats().map(|s| s.distinct(0).max(1) as f64).unwrap_or(rows.max(1.0));
    let est_index_cost =
        from_table.len() as f64 + to_table.len() as f64 + est_selected * (1.0 + rows / distinct_e1);
    let est_hash_cost = rows + from_table.len() as f64 + to_table.len() as f64;

    let mut tids: Vec<crate::catalog::TopologyId> = if est_index_cost < est_hash_cost {
        // Index plan: σ(from) drives E1-index probes into the tops table.
        let a_ids = crate::methods::common::selected_ids(ctx, o.espair.from, o.con_from, work);
        let b_ids = crate::methods::common::selected_ids(ctx, o.espair.to, o.con_to, work);
        let mut out = ts_storage::FastSet::default();
        for &a in &a_ids {
            if work.interrupted() {
                break;
            }
            work.tick(1); // index probe
            for &rid in tops_table.index_probe(0, &ts_storage::Value::Int(a)) {
                work.tick(1);
                let row = tops_table.row(rid);
                if b_ids.contains(&row.get(1).as_int()) {
                    out.insert(row.get(2).as_int() as crate::catalog::TopologyId);
                }
            }
        }
        // Hash-set order must not leak into the result: sort the ids.
        let mut v: Vec<crate::catalog::TopologyId> = out.into_iter().collect();
        v.sort_unstable();
        v
    } else if ts_exec::engine() == ts_exec::Engine::Batch {
        // Hash plan, vectorized: the same operator shape, batch-at-a-time.
        use ts_exec::{
            batch_collect_all_budgeted, BatchDistinct, BatchHashJoin, BatchTableScan, BoxedBatchOp,
        };
        let tops_scan: BoxedBatchOp<'_> =
            Box::new(BatchTableScan::new(tops_table, Predicate::True, work.clone()));
        let from_scan: BoxedBatchOp<'_> =
            Box::new(BatchTableScan::new(from_table, o.con_from.clone(), work.clone()));
        let j1: BoxedBatchOp<'_> =
            Box::new(BatchHashJoin::new(tops_scan, 0, from_scan, from_pk, work.clone()));
        let to_scan: BoxedBatchOp<'_> =
            Box::new(BatchTableScan::new(to_table, o.con_to.clone(), work.clone()));
        let j2: BoxedBatchOp<'_> =
            Box::new(BatchHashJoin::new(j1, 1, to_scan, to_pk, work.clone()));
        let mut distinct = BatchDistinct::new(j2, vec![2], work.clone());
        batch_collect_all_budgeted(&mut distinct, work)
            .into_iter()
            .map(|r| r.get(2).as_int() as crate::catalog::TopologyId)
            .collect()
    } else {
        // Hash plan: Scan(tops) ⋈E1=pk σ(from) ⋈E2=pk σ(to), distinct TID.
        let tops_scan: BoxedOp<'_> =
            Box::new(TableScan::new(tops_table, Predicate::True, work.clone()));
        let from_scan: BoxedOp<'_> =
            Box::new(TableScan::new(from_table, o.con_from.clone(), work.clone()));
        let j1: BoxedOp<'_> =
            Box::new(HashJoin::new(tops_scan, 0, from_scan, from_pk, work.clone()));
        let to_scan: BoxedOp<'_> =
            Box::new(TableScan::new(to_table, o.con_to.clone(), work.clone()));
        let j2: BoxedOp<'_> = Box::new(HashJoin::new(j1, 1, to_scan, to_pk, work.clone()));
        let mut distinct = Distinct::new(j2, vec![2], work.clone());
        collect_all_budgeted(&mut distinct, work)
            .into_iter()
            .map(|r| r.get(2).as_int() as crate::catalog::TopologyId)
            .collect()
    };
    tids.sort_unstable();
    tids.dedup();
    tids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::query::TopologyQuery;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_graph::{DataGraph, SchemaGraph};
    use ts_storage::Database;

    fn setup() -> (Database, DataGraph, SchemaGraph, crate::Catalog) {
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        (db, g, schema, cat)
    }

    #[test]
    fn example_query_returns_t1_to_t4() {
        // §2.2: Q = {(Protein, desc.ct('enzyme')), (DNA, type='mRNA')}
        // selects proteins {32, 78, 44} and all three DNAs; the topology
        // result is {T1, T2, T3, T4}.
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "enzyme"),
            DNA,
            Predicate::eq(1, "mRNA"),
            3,
        );
        let out = eval(&ctx, &q, Work::new());
        assert_eq!(out.tid_set().len(), 4, "expected T1..T4: {:?}", out.topologies);
        assert!(out.work > 0);
    }

    #[test]
    fn selective_constraint_narrows_result() {
        // Only protein 34 ("vitamin D inducible protein") — its only pair
        // is (34, 215) wait: 34 encodes 215 and 34-u103... pairs (34,215)
        // via encodes and via u103; that pair's topologies are computed
        // from both paths.
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q =
            TopologyQuery::new(PROTEIN, Predicate::contains(1, "vitamin"), DNA, Predicate::True, 3);
        let out = eval(&ctx, &q, Work::new());
        assert!(!out.topologies.is_empty());
        assert!(out.tid_set().len() < 4);
    }

    #[test]
    fn empty_selection_yields_empty_result() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "nonexistent-keyword"),
            DNA,
            Predicate::True,
            3,
        );
        let out = eval(&ctx, &q, Work::new());
        assert!(out.topologies.is_empty());
    }

    #[test]
    fn query_orientation_is_symmetric() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q1 = TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "enzyme"),
            DNA,
            Predicate::eq(1, "mRNA"),
            3,
        );
        let q2 = TopologyQuery::new(
            DNA,
            Predicate::eq(1, "mRNA"),
            PROTEIN,
            Predicate::contains(1, "enzyme"),
            3,
        );
        assert_eq!(eval(&ctx, &q1, Work::new()).tid_set(), eval(&ctx, &q2, Work::new()).tid_set());
    }
}
