//! Full-Top-k-Opt and Fast-Top-k-Opt (§5.4): cost-based choice between
//! the sort-based top-k plan and the early-termination DGJ plan.
//!
//! The choice is exactly the paper's: estimate the cost of the regular
//! plan (scan + hash joins + sort + fetch-k) and the Theorem-1 expected
//! cost of the DGJ stack, run the cheaper. The estimates consume only
//! catalog statistics (cardinalities, predicate selectivities from
//! `ts-storage` stats, per-topology frequencies as group cardinalities).

use ts_optimizer::{et_stack_cost, DgjOpParams, DgjStackParams};

use crate::methods::common::{entity_table, orient};
use crate::methods::{et, topk, EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;

/// Which family the optimizer arbitrates for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full-Top-k vs Full-Top-k-ET.
    Full,
    /// Fast-Top-k vs Fast-Top-k-ET.
    Fast,
}

/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    variant: Variant,
    work: ts_exec::Work,
) -> EvalOutcome {
    let o = orient(q);
    let (from_table, _) = entity_table(ctx, o.espair.from);
    let (to_table, _) = entity_table(ctx, o.espair.to);

    let rho_from =
        from_table.stats().map(|s| o.con_from.selectivity(s)).unwrap_or(0.5).clamp(1e-6, 1.0);
    let rho_to = to_table.stats().map(|s| o.con_to.selectivity(s)).unwrap_or(0.5).clamp(1e-6, 1.0);

    let skip_pruned = variant == Variant::Fast;
    // Group cardinalities in score order: LeftTops rows per topology.
    let groups: Vec<f64> = ctx
        .catalog
        .ranked(q.scheme, o.espair)
        .into_iter()
        .filter(|&(tid, _)| !(skip_pruned && ctx.catalog.meta(tid).pruned))
        .map(|(tid, _)| ctx.catalog.meta(tid).freq as f64)
        .collect();
    let m = groups.len() as f64;
    let total_rows: f64 = groups.iter().sum();

    // ET cost: Theorem 1 over the two entity joins, plus streaming the
    // TopInfo rows. Probe costs are calibrated to the engine: each tuple
    // examined by an IDGJ level costs an index probe plus ~2 iterator
    // ticks (emit + downstream pull/filter).
    const TUPLE_OVERHEAD: f64 = 2.0;
    let stack = DgjStackParams {
        ops: vec![
            DgjOpParams { fanout: 1.0, rho: rho_from, probe_cost: 1.0 + TUPLE_OVERHEAD },
            DgjOpParams { fanout: 1.0, rho: rho_to, probe_cost: 1.0 + TUPLE_OVERHEAD },
        ],
        groups,
    };
    let et_cost = et_stack_cost(&stack, q.k) + m;

    // Regular plan cost: the better of the hash plan (scan tops table +
    // both entity selections) and the index-driven plan (selected E1
    // entities probe the tops table's E1 index) — mirroring the plan
    // choice inside `full_top::distinct_tids`.
    let tops_table = match variant {
        Variant::Full => &ctx.catalog.alltops,
        Variant::Fast => &ctx.catalog.lefttops,
    };
    let tops_rows = tops_table.len() as f64;
    let distinct_e1 =
        tops_table.stats().map(|s| s.distinct(0).max(1) as f64).unwrap_or(tops_rows.max(1.0));
    let scan_sides = from_table.len() as f64 + to_table.len() as f64;
    let hash_cost = tops_rows + scan_sides + total_rows * rho_from * rho_to;
    let index_cost =
        scan_sides + rho_from * from_table.len() as f64 * (1.0 + tops_rows / distinct_e1);
    let mut regular_cost = hash_cost.min(index_cost) + m;
    if variant == Variant::Fast {
        // Gated pruned checks: each pruned topology may walk the selected
        // from-side, but the first-witness early exit usually stops far
        // sooner (factor 0.25, calibrated against the engine).
        let pruned =
            ctx.catalog.metas().iter().filter(|mm| mm.pruned && mm.espair == o.espair).count()
                as f64;
        regular_cost += 0.25 * pruned * from_table.len() as f64 * rho_from;
    }

    let choose_et = et_cost < regular_cost;
    let mut out = if choose_et {
        match variant {
            Variant::Full => et::eval(ctx, q, et::Variant::Full, et::EtPlanKind::Idgj, work),
            Variant::Fast => et::eval(ctx, q, et::Variant::Fast, et::EtPlanKind::Idgj, work),
        }
    } else {
        match variant {
            Variant::Full => topk::eval(ctx, q, topk::Variant::Full, work),
            Variant::Fast => topk::eval(ctx, q, topk::Variant::Fast, work),
        }
    };
    out.detail = format!(
        "opt chose {} (ET est {:.1} vs regular est {:.1}); inner: {}",
        if choose_et { "ET" } else { "regular" },
        et_cost,
        regular_cost,
        out.detail
    );
    out.method = match variant {
        Variant::Full => Method::FullTopKOpt,
        Variant::Fast => Method::FastTopKOpt,
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::prune::{prune_catalog, PruneOptions};
    use crate::query::RankScheme;
    use crate::score::{score_catalog, DomainScorer};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_storage::Predicate;

    fn setup() -> (ts_storage::Database, ts_graph::DataGraph, ts_graph::SchemaGraph, crate::Catalog)
    {
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        score_catalog(&mut cat, &DomainScorer::default());
        (db, g, schema, cat)
    }

    #[test]
    fn opt_matches_both_candidate_plans() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        for scheme in RankScheme::all() {
            let q = TopologyQuery::new(
                PROTEIN,
                Predicate::contains(1, "enzyme"),
                DNA,
                Predicate::eq(1, "mRNA"),
                3,
            )
            .with_scheme(scheme);
            let o = eval(&ctx, &q, Variant::Fast, ts_exec::Work::new());
            let base = topk::eval(&ctx, &q, topk::Variant::Fast, ts_exec::Work::new());
            assert_eq!(o.tid_set(), base.tid_set(), "scheme={scheme}");
            assert!(o.detail.contains("opt chose"));
            assert_eq!(o.method, Method::FastTopKOpt);
        }
    }

    #[test]
    fn full_variant_reports_method() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3);
        let o = eval(&ctx, &q, Variant::Full, ts_exec::Work::new());
        assert_eq!(o.method, Method::FullTopKOpt);
    }
}
