//! Shared plumbing for the evaluation strategies.

use ts_exec::Work;
use ts_graph::PathSig;
use ts_storage::FastSet;
use ts_storage::{Predicate, Table, Value};

use crate::catalog::{EsPair, TopologyId};
use crate::methods::QueryContext;
use crate::query::TopologyQuery;

/// The query oriented to the catalog's normalized espair: constraints
/// for the `from` side and the `to` side of stored (E1, E2) pairs.
pub struct Oriented<'q> {
    /// Normalized entity-set pair.
    pub espair: EsPair,
    /// Constraint on E1 (the `espair.from` entity set).
    pub con_from: &'q Predicate,
    /// Constraint on E2 (the `espair.to` entity set).
    pub con_to: &'q Predicate,
}

/// Orient a query to catalog storage order.
pub fn orient<'q>(q: &'q TopologyQuery) -> Oriented<'q> {
    let espair = EsPair::new(q.es1, q.es2);
    if q.es1 <= q.es2 {
        Oriented { espair, con_from: &q.con1, con_to: &q.con2 }
    } else {
        Oriented { espair, con_from: &q.con2, con_to: &q.con1 }
    }
}

/// The backing table of an entity set plus its primary-key column.
pub fn entity_table<'a>(ctx: &QueryContext<'a>, es: u16) -> (&'a Table, usize) {
    let def = ctx.db.entity_set(es as usize);
    let table = ctx.db.table(def.table);
    // lint: allow(unwrap-in-lib): Database::add_entity_set rejects tables
    // without a primary key, so every entity-set table carries one
    let pk = table.schema().primary_key.expect("entity sets have primary keys");
    (table, pk)
}

/// Entity ids of `es` satisfying `con` (a metered sequential scan — the
/// σ of the paper's plans).
pub fn selected_ids(ctx: &QueryContext<'_>, es: u16, con: &Predicate, work: &Work) -> FastSet<i64> {
    let (table, pk) = entity_table(ctx, es);
    let mut out = FastSet::default();
    if ts_exec::engine() == ts_exec::Engine::Batch {
        use ts_exec::BatchOperator;
        let mut scan = ts_exec::BatchTableScan::new(table, con.clone(), work.clone());
        while let Some(b) = scan.next_batch() {
            for i in b.sel_iter() {
                out.insert(b.value(pk, i).as_int());
            }
        }
        return out;
    }
    for row in table.rows() {
        work.tick(1);
        if con.eval_ref(row) {
            out.insert(row.as_int(pk));
        }
    }
    out
}

/// Does entity `id` of set `es` satisfy `con`? (One pk probe.)
pub fn entity_satisfies(
    ctx: &QueryContext<'_>,
    es: u16,
    id: i64,
    con: &Predicate,
    work: &Work,
) -> bool {
    let (table, _pk) = entity_table(ctx, es);
    work.tick(1);
    match table.by_pk(&Value::Int(id)) {
        Some(row) => con.eval_ref(row),
        None => false,
    }
}

/// Shift every column reference in a predicate by `offset` — used when a
/// predicate written against a base table must run against join output
/// rows where that table's columns start at `offset`.
pub fn shift_predicate(p: &Predicate, offset: usize) -> Predicate {
    match p {
        Predicate::True => Predicate::True,
        Predicate::False => Predicate::False,
        Predicate::Eq(c, v) => Predicate::Eq(c + offset, v.clone()),
        Predicate::Contains(c, kw) => Predicate::Contains(c + offset, kw.clone()),
        Predicate::And(a, b) => Predicate::And(
            Box::new(shift_predicate(a, offset)),
            Box::new(shift_predicate(b, offset)),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(shift_predicate(a, offset)),
            Box::new(shift_predicate(b, offset)),
        ),
        Predicate::Not(a) => Predicate::Not(Box::new(shift_predicate(a, offset))),
    }
}

/// Decode a path signature into `(types, rels)` oriented so that
/// `types[0] == start_type`, if possible.
pub fn decode_sig(sig: &PathSig, start_type: u16) -> Option<(Vec<u16>, Vec<u16>)> {
    let v = &sig.0;
    debug_assert!(v.len() % 2 == 1, "signature interleaves types and rels");
    let types: Vec<u16> = v.iter().step_by(2).copied().collect();
    let rels: Vec<u16> = v.iter().skip(1).step_by(2).copied().collect();
    if types.first() == Some(&start_type) {
        return Some((types, rels));
    }
    if types.last() == Some(&start_type) {
        let mut t = types;
        let mut r = rels;
        t.reverse();
        r.reverse();
        return Some((t, r));
    }
    None
}

/// The online existence check for a pruned path topology (§4.3): is
/// there a pair `(a ∈ A, b ∈ B)` connected by an instance of the
/// topology's label walk that is **not** in the exception table?
///
/// This is the paper's lower sub-query of SQL1 — a join along the path's
/// relationship tables with `NOT EXISTS (SELECT 1 FROM ExcpTops …)` —
/// executed as a label-constrained DFS with first-witness early exit.
pub fn online_path_check(
    ctx: &QueryContext<'_>,
    tid: TopologyId,
    a_ids: &FastSet<i64>,
    b_ids: &FastSet<i64>,
    work: &Work,
) -> bool {
    let meta = ctx.catalog.meta(tid);
    // lint: allow(unwrap-in-lib): callers run the online check only for pruned
    // topologies, and pruning selects only path-shaped victims (path_sig is Some)
    let sig = meta.path_sig.as_ref().expect("online check requires a path topology");
    let Some((types, rels)) = decode_sig(sig, meta.espair.from) else {
        return false;
    };
    let g = ctx.graph;
    for &a in a_ids {
        let Some(start) = g.node(meta.espair.from, a) else { continue };
        // Label-constrained DFS: position i must have type types[i].
        let mut stack: Vec<(u32, usize, Vec<u32>)> = vec![(start, 0, vec![start])];
        while let Some((node, pos, path)) = stack.pop() {
            if pos == rels.len() {
                let b = g.node_entity(node);
                if b_ids.contains(&b) {
                    work.tick(1); // exception-table probe
                    if !ctx.catalog.excp_contains(a, b, tid) {
                        return true;
                    }
                }
                continue;
            }
            for &(rid, next) in g.neighbors(node) {
                work.tick(1);
                if rid != rels[pos] || g.node_type(next) != types[pos + 1] {
                    continue;
                }
                if path.contains(&next) {
                    continue; // simple paths only
                }
                let mut p2 = path.clone();
                p2.push(next);
                stack.push((next, pos + 1, p2));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_predicate_moves_columns() {
        let p = Predicate::eq(1, "mRNA").and(Predicate::contains(0, "enzyme"));
        let s = shift_predicate(&p, 4);
        match s {
            Predicate::And(a, b) => {
                assert_eq!(*a, Predicate::eq(5, "mRNA"));
                assert_eq!(*b, Predicate::contains(4, "enzyme"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_sig_orients_both_ways() {
        // Sig for P(0) -ue(1)- U(1) -uc(2)- D(2): [0,1,1,2,2].
        let sig = PathSig(vec![0, 1, 1, 2, 2]);
        let (t, r) = decode_sig(&sig, 0).unwrap();
        assert_eq!(t, vec![0, 1, 2]);
        assert_eq!(r, vec![1, 2]);
        let (t2, r2) = decode_sig(&sig, 2).unwrap();
        assert_eq!(t2, vec![2, 1, 0]);
        assert_eq!(r2, vec![2, 1]);
        assert!(decode_sig(&sig, 9).is_none());
    }
}
