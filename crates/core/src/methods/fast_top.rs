//! The Fast-Top method (§4.3): LeftTops join plus online checks for the
//! pruned topologies.
//!
//! The paper's SQL1: the top sub-query computes the unpruned topology
//! results as in Full-Top (but against the much smaller LeftTops table);
//! one lower sub-query per pruned topology checks whether some pair
//! satisfies the constraints, is related by the pruned topology's path,
//! and does not appear in the exception table.

use std::time::Instant;

use ts_exec::Work;

use crate::methods::common::{online_path_check, orient, selected_ids};
use crate::methods::{full_top, EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;

/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(ctx: &QueryContext<'_>, q: &TopologyQuery, work: Work) -> EvalOutcome {
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in the outcome's millis field and never reaches catalog bytes
    let start = Instant::now();
    let o = orient(q);

    // Top sub-query: unpruned topologies from LeftTops.
    let mut tids = full_top::distinct_tids(ctx, q, &ctx.catalog.lefttops, &work);

    // Lower sub-queries: one online path check per pruned topology of
    // this espair.
    let pruned: Vec<_> = ctx
        .catalog
        .metas()
        .iter()
        .filter(|m| m.pruned && m.espair == o.espair)
        .map(|m| m.id)
        .collect();
    let n_pruned = pruned.len();
    if !pruned.is_empty() {
        let a_ids = selected_ids(ctx, o.espair.from, o.con_from, &work);
        let b_ids = selected_ids(ctx, o.espair.to, o.con_to, &work);
        for tid in pruned {
            if work.interrupted() {
                break;
            }
            if online_path_check(ctx, tid, &a_ids, &b_ids, &work) {
                tids.push(tid);
            }
        }
    }
    tids.sort_unstable();
    tids.dedup();

    EvalOutcome {
        method: Method::FastTop,
        topologies: tids.into_iter().map(|t| (t, 0.0)).collect(),
        work: work.get(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        detail: format!("LeftTops join UNION {n_pruned} online path checks"),
        exhausted: work.exhausted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::methods::full_top;
    use crate::prune::{prune_catalog, PruneOptions};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_storage::Predicate;

    /// Fast-Top must produce exactly Full-Top's answer regardless of the
    /// pruning threshold — the central correctness property of §4.
    #[test]
    fn fast_top_equals_full_top_at_any_threshold() {
        let (db, g, schema) = figure3();
        let (cat0, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        let queries = [
            TopologyQuery::new(
                PROTEIN,
                Predicate::contains(1, "enzyme"),
                DNA,
                Predicate::eq(1, "mRNA"),
                3,
            ),
            TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3),
            TopologyQuery::new(PROTEIN, Predicate::contains(1, "vitamin"), DNA, Predicate::True, 3),
        ];
        for threshold in [0, 1, 2, u64::MAX] {
            let mut cat = cat0.clone();
            prune_catalog(&mut cat, PruneOptions { threshold, max_pruned: 64 });
            let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
            for q in &queries {
                let fast = eval(&ctx, q, Work::new());
                let full = full_top::eval(&ctx, q, Work::new());
                assert_eq!(fast.tid_set(), full.tid_set(), "threshold={threshold} query={q:?}");
            }
        }
    }

    #[test]
    fn exception_pair_not_claimed_by_pruned_check() {
        // Select ONLY protein 78 and DNA 215. Their topologies are T3/T4;
        // the pruned P-U-D topology must NOT be reported even though a
        // P-U-D path exists between them (exception table blocks it).
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "MMS2"), // only protein 78
            DNA,
            Predicate::contains(2, "MMS2"), // only DNA 215
            3,
        );
        let out = eval(&ctx, &q, Work::new());
        for &(tid, _) in &out.topologies {
            let meta = ctx.catalog.meta(tid);
            assert!(
                meta.path_sig.is_none() || meta.path_sig.as_ref().map(|s| s.len()) == Some(1),
                "P-U-D simple topology wrongly claimed for (78, 215)"
            );
        }
        // And the true complex topologies are found (they live in LeftTops).
        assert_eq!(out.tid_set().len(), 2); // T3, T4
    }

    #[test]
    fn detail_reports_pruned_check_count() {
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3);
        let out = eval(&ctx, &q, Work::new());
        assert!(out.detail.contains("online path checks"));
        assert!(out.detail.contains('2'), "two P-D path topologies pruned: {}", out.detail);
    }
}
