//! Full-Top-k-ET and Fast-Top-k-ET (§5.3): early-termination evaluation
//! with Distinct Group Join operator stacks.
//!
//! The plan is Fig. 15 of the paper: topologies stream out of TopInfo in
//! score order; a DGJ joins each topology's LeftTops rows; further DGJs
//! join the selected E1/E2 entities. The moment one row of a topology
//! survives all joins and predicates, the topology provably exists for
//! the query — the driver records it and skips the rest of its group;
//! after k distinct topologies, evaluation stops entirely.

use std::time::Instant;

use ts_exec::{
    collect_distinct_topk_budgeted, BoxedOp, Filter, Hdgj, Idgj, TableScan, ValuesScan, Work,
};
use ts_storage::{row, Predicate, Row, Table};

use crate::catalog::TopologyId;
use crate::methods::common::{entity_table, orient, shift_predicate};
use crate::methods::{topk, EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;

/// Which precomputed table backs the method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// AllTops — Full-Top-k-ET.
    Full,
    /// LeftTops + gated pruned checks — Fast-Top-k-ET.
    Fast,
}

/// Which DGJ implementation the stack uses (the paper's Fig. 15 (a) and
/// (b); the "best and worst plans" of Table 2's selective ET cells are
/// exactly this choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtPlanKind {
    /// Index nested-loops DGJs.
    Idgj,
    /// Hash DGJs (inner re-evaluated per group).
    Hdgj,
}

/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    variant: Variant,
    plan: EtPlanKind,
    work: Work,
) -> EvalOutcome {
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in the outcome's millis field and never reaches catalog bytes
    let start = Instant::now();
    let o = orient(q);

    let table = match variant {
        Variant::Full => &ctx.catalog.alltops,
        Variant::Fast => &ctx.catalog.lefttops,
    };
    let skip_pruned = variant == Variant::Fast;
    let mut results = run_et_plan(ctx, q, table, skip_pruned, plan, q.k, &work);

    let mut gated = 0usize;
    if variant == Variant::Fast {
        gated = topk::gate_pruned(ctx, q, &o, &mut results, &work);
    }

    EvalOutcome {
        method: match variant {
            Variant::Full => Method::FullTopKEt,
            Variant::Fast => Method::FastTopKEt,
        },
        topologies: results,
        work: work.get(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        detail: format!(
            "{} stack over {}; {gated} gated pruned checks",
            match plan {
                EtPlanKind::Idgj => "IDGJ",
                EtPlanKind::Hdgj => "HDGJ",
            },
            table.schema().name
        ),
        exhausted: work.exhausted(),
    }
}

/// Build and drive the DGJ stack, returning up to `k` `(tid, score)` in
/// score order.
pub fn run_et_plan(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    tops_table: &Table,
    skip_pruned: bool,
    plan: EtPlanKind,
    k: usize,
    work: &Work,
) -> Vec<(TopologyId, f64)> {
    let o = orient(q);
    let (from_table, from_pk) = entity_table(ctx, o.espair.from);
    let (to_table, to_pk) = entity_table(ctx, o.espair.to);

    // TopInfo in score order (the index scan at the bottom of Fig. 15).
    let ranked = ctx.catalog.ranked(q.scheme, o.espair);
    let mut score_of: ts_storage::FastMap<TopologyId, f64> = ts_storage::FastMap::default();
    let mut rows: Vec<Row> = Vec::with_capacity(ranked.len());
    for (tid, score) in ranked {
        if skip_pruned && ctx.catalog.meta(tid).pruned {
            continue; // pruned topologies have no LeftTops rows
        }
        score_of.insert(tid, score);
        rows.push(row![tid as i64]);
    }

    if ts_exec::engine() == ts_exec::Engine::Batch {
        // Vectorized stack: the same Fig. 15 plan shape, batch-at-a-time.
        use ts_exec::{
            batch_collect_distinct_topk_budgeted, BatchFilter, BatchHdgj, BatchIdgj,
            BatchTableScan, BatchValuesScan, BoxedBatchOp,
        };
        let scan: BoxedBatchOp<'_> = Box::new(BatchValuesScan::grouped(rows, 0, work.clone()));
        let expand: BoxedBatchOp<'_> =
            Box::new(BatchIdgj::new(scan, 0, tops_table, 2, 0, work.clone()));
        let mut top: BoxedBatchOp<'_> = match plan {
            EtPlanKind::Idgj => {
                let j1: BoxedBatchOp<'_> =
                    Box::new(BatchIdgj::new(expand, 1, from_table, from_pk, 0, work.clone()));
                let f1: BoxedBatchOp<'_> =
                    Box::new(BatchFilter::new(j1, shift_predicate(o.con_from, 4), work.clone()));
                let j2: BoxedBatchOp<'_> =
                    Box::new(BatchIdgj::new(f1, 2, to_table, to_pk, 0, work.clone()));
                Box::new(BatchFilter::new(
                    j2,
                    shift_predicate(o.con_to, 4 + from_table.schema().arity()),
                    work.clone(),
                ))
            }
            EtPlanKind::Hdgj => {
                let from_scan: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(from_table, o.con_from.clone(), work.clone()));
                let j1: BoxedBatchOp<'_> =
                    Box::new(BatchHdgj::new(expand, 1, from_scan, from_pk, 0, work.clone()));
                let to_scan: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(to_table, o.con_to.clone(), work.clone()));
                Box::new(BatchHdgj::new(j1, 2, to_scan, to_pk, 0, work.clone()))
            }
        };
        return batch_collect_distinct_topk_budgeted(top.as_mut(), 0, k, work)
            .into_iter()
            .map(|r| {
                let tid = r.get(0).as_int() as TopologyId;
                (tid, score_of.get(&tid).copied().unwrap_or(0.0))
            })
            .collect();
    }

    let scan: BoxedOp<'_> = Box::new(ValuesScan::grouped(rows, 0, work.clone()));
    // Expand each topology into its (E1, E2, TID) rows. Output:
    // [TID, E1, E2, TID'].
    let expand: BoxedOp<'_> = Box::new(Idgj::new(scan, 0, tops_table, 2, 0, work.clone()));

    let top: BoxedOp<'_> = match plan {
        EtPlanKind::Idgj => {
            // ⋈ from-entities by pk, then filter; same for to-entities.
            let j1: BoxedOp<'_> =
                Box::new(Idgj::new(expand, 1, from_table, from_pk, 0, work.clone()));
            let f1: BoxedOp<'_> =
                Box::new(Filter::new(j1, shift_predicate(o.con_from, 4), work.clone()));
            let j2: BoxedOp<'_> = Box::new(Idgj::new(f1, 2, to_table, to_pk, 0, work.clone()));
            Box::new(Filter::new(
                j2,
                shift_predicate(o.con_to, 4 + from_table.schema().arity()),
                work.clone(),
            ))
        }
        EtPlanKind::Hdgj => {
            // HDGJ inners are σ-scans re-evaluated per group.
            let from_scan: BoxedOp<'_> =
                Box::new(TableScan::new(from_table, o.con_from.clone(), work.clone()));
            let j1: BoxedOp<'_> =
                Box::new(Hdgj::new(expand, 1, from_scan, from_pk, 0, work.clone()));
            let to_scan: BoxedOp<'_> =
                Box::new(TableScan::new(to_table, o.con_to.clone(), work.clone()));
            Box::new(Hdgj::new(j1, 2, to_scan, to_pk, 0, work.clone()))
        }
    };

    let mut top = top;
    let winners = collect_distinct_topk_budgeted(top.as_mut(), 0, k, work);
    winners
        .into_iter()
        .map(|r| {
            let tid = r.get(0).as_int() as TopologyId;
            (tid, score_of.get(&tid).copied().unwrap_or(0.0))
        })
        .collect()
}

/// Suppress unused-import warning for Predicate used in doc examples.
#[allow(unused)]
fn _pred_anchor(p: Predicate) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::methods::topk;
    use crate::prune::{prune_catalog, PruneOptions};
    use crate::query::RankScheme;
    use crate::score::{score_catalog, DomainScorer};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};

    fn setup(
        threshold: u64,
    ) -> (ts_storage::Database, ts_graph::DataGraph, ts_graph::SchemaGraph, crate::Catalog) {
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold, max_pruned: 64 });
        score_catalog(&mut cat, &DomainScorer::default());
        (db, g, schema, cat)
    }

    fn query() -> TopologyQuery {
        TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "enzyme"),
            DNA,
            Predicate::eq(1, "mRNA"),
            3,
        )
    }

    #[test]
    fn et_matches_topk_all_variants_schemes_and_ks() {
        for threshold in [0u64, u64::MAX] {
            let (db, g, schema, cat) = setup(threshold);
            let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
            for scheme in RankScheme::all() {
                for k in [1, 2, 10] {
                    let q = query().with_k(k).with_scheme(scheme);
                    let base_full = topk::eval(&ctx, &q, topk::Variant::Full, Work::new());
                    let base_fast = topk::eval(&ctx, &q, topk::Variant::Fast, Work::new());
                    for plan in [EtPlanKind::Idgj, EtPlanKind::Hdgj] {
                        let et_full = eval(&ctx, &q, Variant::Full, plan, Work::new());
                        let et_fast = eval(&ctx, &q, Variant::Fast, plan, Work::new());
                        assert_eq!(
                            et_full.tid_set(),
                            base_full.tid_set(),
                            "full threshold={threshold} scheme={scheme} k={k} plan={plan:?}"
                        );
                        assert_eq!(
                            et_fast.tid_set(),
                            base_fast.tid_set(),
                            "fast threshold={threshold} scheme={scheme} k={k} plan={plan:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn et_scores_are_descending() {
        let (db, g, schema, cat) = setup(u64::MAX);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = query().with_scheme(RankScheme::Domain);
        let out = eval(&ctx, &q, Variant::Full, EtPlanKind::Idgj, Work::new());
        for w in out.topologies.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn small_k_stops_early() {
        let (db, g, schema, cat) = setup(u64::MAX);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q_all = query().with_k(100);
        let q_one = query().with_k(1);
        let w_all = eval(&ctx, &q_all, Variant::Full, EtPlanKind::Idgj, Work::new()).work;
        let w_one = eval(&ctx, &q_one, Variant::Full, EtPlanKind::Idgj, Work::new()).work;
        assert!(w_one <= w_all, "k=1 must not do more work: {w_one} vs {w_all}");
        assert_eq!(
            eval(&ctx, &q_one, Variant::Full, EtPlanKind::Idgj, Work::new()).topologies.len(),
            1
        );
    }
}
