//! The nine query evaluation strategies of the paper's experiments
//! (§6.1): `SQL`, `Full-Top`, `Fast-Top`, `Full-Top-k`, `Fast-Top-k`,
//! `Full-Top-k-ET`, `Fast-Top-k-ET`, `Full-Top-k-Opt`, `Fast-Top-k-Opt`.
//!
//! All strategies answer the same question — the (top-k) l-topology
//! result of a 2-query — on the same substrate, so their outcomes are
//! directly comparable. [`EvalOutcome`] carries the result set plus two
//! cost figures: wall-clock milliseconds and the machine-independent
//! [`ts_exec::Work`] counter.

pub mod common;
pub mod et;
pub mod fast_top;
pub mod full_top;
pub mod opt;
pub mod sql_method;
pub mod topk;

use ts_exec::{Exhausted, Work};
use ts_graph::{DataGraph, SchemaGraph};
use ts_storage::faults::{self, sites, FireAction};
use ts_storage::Database;

use crate::catalog::{Catalog, TopologyId};
use crate::query::TopologyQuery;

/// Everything a method needs to run.
pub struct QueryContext<'a> {
    /// Base data.
    pub db: &'a Database,
    /// Data graph over the base data (for online path checks and the SQL
    /// method's on-the-fly topology computation).
    pub graph: &'a DataGraph,
    /// Schema graph.
    pub schema: &'a SchemaGraph,
    /// Precomputed topology catalog.
    pub catalog: &'a Catalog,
}

/// A query rejected before evaluation.
///
/// Historically a malformed query panicked deep inside a method
/// (`Database::entity_set` indexes by `es`) or silently returned an
/// empty result; the serving layer needs a typed rejection instead, so
/// [`Method::try_eval`] validates the query against the context first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An entity-set id not present in the database schema.
    UnknownEntity {
        /// The offending id (es1 or es2 of the query).
        es: u16,
        /// Number of entity sets the database declares.
        entity_sets: usize,
    },
    /// The query's path-length limit does not match the catalog's.
    LMismatch {
        /// `l` of the query.
        query_l: usize,
        /// `l` the catalog was computed at.
        catalog_l: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownEntity { es, entity_sets } => {
                write!(f, "unknown entity set {es} (database declares {entity_sets})")
            }
            QueryError::LMismatch { query_l, catalog_l } => {
                write!(f, "query l = {query_l} but the catalog was computed at l = {catalog_l}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Validate a query against a context: both entity-set ids must exist
/// and the path-length limit must match the catalog's. Every method
/// behaves identically on an invalid query — it never runs.
pub fn validate_query(ctx: &QueryContext<'_>, q: &TopologyQuery) -> Result<(), QueryError> {
    let entity_sets = ctx.db.entity_sets().len();
    for es in [q.es1, q.es2] {
        if usize::from(es) >= entity_sets {
            return Err(QueryError::UnknownEntity { es, entity_sets });
        }
    }
    if q.l != ctx.catalog.l {
        return Err(QueryError::LMismatch { query_l: q.l, catalog_l: ctx.catalog.l });
    }
    Ok(())
}

/// The strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// §3.1: one query per candidate schema topology, no precomputation.
    Sql,
    /// §3.2: single join against the full AllTops table.
    FullTop,
    /// §4.3: LeftTops join plus online checks for pruned topologies.
    FastTop,
    /// §5.1 over AllTops: full evaluation, sort by score, fetch k.
    FullTopK,
    /// §5.1 over LeftTops with score-gated pruned checks.
    FastTopK,
    /// §5.3 over AllTops with a DGJ operator stack.
    FullTopKEt,
    /// §5.3 over LeftTops with a DGJ stack plus score-gated pruned checks.
    FastTopKEt,
    /// §5.4: cost-based choice between Full-Top-k and Full-Top-k-ET.
    FullTopKOpt,
    /// §5.4: cost-based choice between Fast-Top-k and Fast-Top-k-ET.
    FastTopKOpt,
}

impl Method {
    /// All nine methods in the paper's Table 2 row order.
    pub fn all() -> [Method; 9] {
        [
            Method::Sql,
            Method::FullTop,
            Method::FastTop,
            Method::FullTopK,
            Method::FastTopK,
            Method::FullTopKEt,
            Method::FastTopKEt,
            Method::FullTopKOpt,
            Method::FastTopKOpt,
        ]
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Sql => "SQL",
            Method::FullTop => "Full-Top",
            Method::FastTop => "Fast-Top",
            Method::FullTopK => "Full-Top-k",
            Method::FastTopK => "Fast-Top-k",
            Method::FullTopKEt => "Full-Top-k-ET",
            Method::FastTopKEt => "Fast-Top-k-ET",
            Method::FullTopKOpt => "Full-Top-k-Opt",
            Method::FastTopKOpt => "Fast-Top-k-Opt",
        }
    }

    /// True for the methods that produce ranked top-k output.
    pub fn is_topk(self) -> bool {
        !matches!(self, Method::Sql | Method::FullTop | Method::FastTop)
    }

    /// Evaluate a query with this strategy (unbudgeted, unvalidated —
    /// the historical entry point; a malformed query may panic).
    pub fn eval(self, ctx: &QueryContext<'_>, q: &TopologyQuery) -> EvalOutcome {
        self.eval_with(ctx, q, Work::new())
    }

    /// Validate, then evaluate. The serving entry point: a malformed
    /// query is a typed [`QueryError`], never a panic.
    pub fn try_eval(
        self,
        ctx: &QueryContext<'_>,
        q: &TopologyQuery,
    ) -> Result<EvalOutcome, QueryError> {
        self.try_eval_with(ctx, q, Work::new())
    }

    /// Validate, then evaluate under a caller-provided (possibly
    /// budgeted) work meter.
    pub fn try_eval_with(
        self,
        ctx: &QueryContext<'_>,
        q: &TopologyQuery,
        work: Work,
    ) -> Result<EvalOutcome, QueryError> {
        validate_query(ctx, q)?;
        Ok(self.eval_with(ctx, q, work))
    }

    /// Evaluate under a caller-provided work meter. With a budgeted
    /// [`Work`] the plan stops cooperatively at the first exhausted
    /// limit and the outcome carries the partial result plus
    /// [`EvalOutcome::exhausted`].
    pub fn eval_with(self, ctx: &QueryContext<'_>, q: &TopologyQuery, work: Work) -> EvalOutcome {
        if let FireAction::Starve = faults::fire(sites::CORE_METHOD_EVAL) {
            work.starve();
        }
        match self {
            Method::Sql => sql_method::eval(ctx, q, work),
            Method::FullTop => full_top::eval(ctx, q, work),
            Method::FastTop => fast_top::eval(ctx, q, work),
            Method::FullTopK => topk::eval(ctx, q, topk::Variant::Full, work),
            Method::FastTopK => topk::eval(ctx, q, topk::Variant::Fast, work),
            Method::FullTopKEt => et::eval(ctx, q, et::Variant::Full, et::EtPlanKind::Idgj, work),
            Method::FastTopKEt => et::eval(ctx, q, et::Variant::Fast, et::EtPlanKind::Idgj, work),
            Method::FullTopKOpt => opt::eval(ctx, q, opt::Variant::Full, work),
            Method::FastTopKOpt => opt::eval(ctx, q, opt::Variant::Fast, work),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The result of evaluating a query with one strategy.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Which method ran.
    pub method: Method,
    /// Result topologies. Ranked methods: `(tid, score)` descending by
    /// score, at most k. Unranked methods: every result topology with its
    /// score slot 0.
    pub topologies: Vec<(TopologyId, f64)>,
    /// Machine-independent work units (tuples touched + index probes).
    pub work: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Free-form explain text (plan shape, optimizer choice, ...).
    pub detail: String,
    /// `Some` when a budgeted run stopped early: the limit that tripped.
    /// `topologies` then holds the partial result accumulated so far.
    pub exhausted: Option<Exhausted>,
}

impl EvalOutcome {
    /// The topology ids only.
    pub fn tids(&self) -> Vec<TopologyId> {
        self.topologies.iter().map(|&(t, _)| t).collect()
    }

    /// The topology ids as a sorted set (for unordered comparisons).
    pub fn tid_set(&self) -> Vec<TopologyId> {
        let mut v = self.tids();
        v.sort_unstable();
        v.dedup();
        v
    }
}
