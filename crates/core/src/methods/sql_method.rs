//! The SQL baseline (§3.1): enumerate candidate schema topologies and
//! issue one existence query per candidate.
//!
//! Two parts:
//!
//! * [`enumerate_schema_topologies`] — "every combination (and possible
//!   intermixing) of the … schema paths" connecting the two entity sets:
//!   choose a set of distinct schema walks, enumerate every way of gluing
//!   same-typed intermediate slots across walks (≤ 1 slot per walk per
//!   glued node, because instance paths are simple), and deduplicate the
//!   resulting labeled graphs canonically. At Biozon scale this explodes
//!   into the paper's 88 453 figure, so enumeration is capped and the
//!   cap is reported, never silent.
//! * [`eval`] — the baseline method. Like the paper's restriction "to
//!   topologies that have at least some corresponding entities (using
//!   some priori knowledge)" (~200 instead of 88 453), the per-candidate
//!   queries run over the catalog's observed topologies; each candidate
//!   is checked independently against the base data (fresh path
//!   enumeration per candidate — that is the point of the baseline).

use std::time::Instant;

use ts_exec::Work;
use ts_graph::{canonical_code, CanonicalCode, LGraph, SchemaGraph};
use ts_storage::FastSet;

use crate::catalog::EsPair;
use crate::methods::common::{orient, selected_ids};
use crate::methods::{EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;
use crate::topology::pair_topologies;

/// Result of candidate enumeration.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// Distinct candidate topologies (up to the cap).
    pub graphs: Vec<LGraph>,
    /// Distinct candidates counted (== `graphs.len()` unless capped).
    pub total: usize,
    /// True if the cap stopped enumeration early.
    pub capped: bool,
}

/// Enumerate all possible schema-level topologies between two entity
/// sets: subsets of ≤ `max_classes` schema walks with every gluing of
/// same-typed intermediates, canonically deduplicated, capped at `cap`.
pub fn enumerate_schema_topologies(
    schema: &SchemaGraph,
    espair: EsPair,
    l: usize,
    max_classes: usize,
    cap: usize,
) -> EnumResult {
    let mut walks = schema.walks(espair.from, espair.to, l);
    // Distinct walks only (classes are distinct path shapes).
    walks.sort_by(|a, b| (&a.types, &a.rels).cmp(&(&b.types, &b.rels)));
    walks.dedup_by(|a, b| a.types == b.types && a.rels == b.rels);

    let mut seen: FastSet<CanonicalCode> = FastSet::default();
    let mut out = EnumResult { graphs: Vec::new(), total: 0, capped: false };

    // Choose subsets of walks of size 1..=max_classes.
    let n = walks.len();
    let mut subset: Vec<usize> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn choose(
        walks: &[ts_graph::schema_graph::SchemaWalk],
        espair: EsPair,
        start: usize,
        max_classes: usize,
        subset: &mut Vec<usize>,
        seen: &mut FastSet<CanonicalCode>,
        out: &mut EnumResult,
        cap: usize,
    ) {
        if !subset.is_empty() {
            glue_all(walks, espair, subset, seen, out, cap);
            if out.capped {
                return;
            }
        }
        if subset.len() == max_classes {
            return;
        }
        for i in start..walks.len() {
            subset.push(i);
            choose(walks, espair, i + 1, max_classes, subset, seen, out, cap);
            subset.pop();
            if out.capped {
                return;
            }
        }
    }
    choose(
        &walks,
        espair,
        0,
        max_classes.max(1).min(n.max(1)),
        &mut subset,
        &mut seen,
        &mut out,
        cap,
    );
    out
}

/// Enumerate every gluing of the chosen walks' intermediate slots.
fn glue_all(
    walks: &[ts_graph::schema_graph::SchemaWalk],
    espair: EsPair,
    subset: &[usize],
    seen: &mut FastSet<CanonicalCode>,
    out: &mut EnumResult,
    cap: usize,
) {
    // Slots: (walk position in subset, index within walk, type).
    let mut slots: Vec<(usize, usize, u16)> = Vec::new();
    for (si, &wi) in subset.iter().enumerate() {
        let w = &walks[wi];
        for pos in 1..w.types.len() - 1 {
            slots.push((si, pos, w.types[pos]));
        }
    }
    // Blocks: groups of slots glued into one node.
    let mut assignment: Vec<usize> = vec![usize::MAX; slots.len()];
    let mut blocks: Vec<(u16, Vec<usize>)> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        slots: &[(usize, usize, u16)],
        i: usize,
        assignment: &mut Vec<usize>,
        blocks: &mut Vec<(u16, Vec<usize>)>,
        walks: &[ts_graph::schema_graph::SchemaWalk],
        espair: EsPair,
        subset: &[usize],
        seen: &mut FastSet<CanonicalCode>,
        out: &mut EnumResult,
        cap: usize,
    ) {
        if out.capped {
            return;
        }
        if i == slots.len() {
            let g = materialize(slots, assignment, blocks.len(), walks, espair, subset);
            let code = canonical_code(&g);
            if seen.insert(code) {
                out.total += 1;
                if out.graphs.len() < cap {
                    out.graphs.push(g);
                } else {
                    out.capped = true;
                }
            }
            return;
        }
        let (si, _, ty) = slots[i];
        // Join an existing compatible block (same type, no slot from the
        // same walk — one walk cannot pass through the same entity twice).
        for b in 0..blocks.len() {
            if blocks[b].0 != ty {
                continue;
            }
            if blocks[b].1.iter().any(|&s| slots[s].0 == si) {
                continue;
            }
            blocks[b].1.push(i);
            assignment[i] = b;
            rec(slots, i + 1, assignment, blocks, walks, espair, subset, seen, out, cap);
            blocks[b].1.pop();
        }
        // Or start a new block.
        blocks.push((ty, vec![i]));
        assignment[i] = blocks.len() - 1;
        rec(slots, i + 1, assignment, blocks, walks, espair, subset, seen, out, cap);
        blocks.pop();
        assignment[i] = usize::MAX;
    }
    rec(&slots, 0, &mut assignment, &mut blocks, walks, espair, subset, seen, out, cap);
}

/// Build the labeled graph of one gluing.
fn materialize(
    slots: &[(usize, usize, u16)],
    assignment: &[usize],
    n_blocks: usize,
    walks: &[ts_graph::schema_graph::SchemaWalk],
    espair: EsPair,
    subset: &[usize],
) -> LGraph {
    let mut g = LGraph::new();
    let a = g.add_node(espair.from);
    let b = g.add_node(espair.to);
    let mut block_nodes: Vec<Option<u8>> = vec![None; n_blocks];
    let mut node_of =
        |g: &mut LGraph, si: usize, pos: usize, w: &ts_graph::schema_graph::SchemaWalk| -> u8 {
            if pos == 0 {
                return a;
            }
            if pos == w.types.len() - 1 {
                return b;
            }
            let slot =
                // lint: allow(unwrap-in-lib): the slot was inserted by the loop above
            slots.iter().position(|&(s, p, _)| s == si && p == pos).expect("slot exists");
            let blk = assignment[slot];
            if let Some(n) = block_nodes[blk] {
                n
            } else {
                let n = g.add_node(slots[slot].2);
                block_nodes[blk] = Some(n);
                n
            }
        };
    for (si, &wi) in subset.iter().enumerate() {
        let w = &walks[wi];
        for e in 0..w.rels.len() {
            let u = node_of(&mut g, si, e, w);
            let v = node_of(&mut g, si, e + 1, w);
            g.add_edge(u, v, w.rels[e]);
        }
    }
    g.normalize();
    g
}

/// The SQL baseline evaluation.
/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(ctx: &QueryContext<'_>, q: &TopologyQuery, work: Work) -> EvalOutcome {
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in the outcome's millis field and never reaches catalog bytes
    let start = Instant::now();
    let o = orient(q);

    // "Priori knowledge": the observed topologies of this espair.
    let candidates = ctx.catalog.topologies_for(o.espair);
    let n_candidates = candidates.len();

    let a_ids = selected_ids(ctx, o.espair.from, o.con_from, &work);
    let b_ids = selected_ids(ctx, o.espair.to, o.con_to, &work);

    let reach = ctx.schema.reach_table(o.espair.to, q.l);
    let mut results = Vec::new();
    for tid in candidates {
        if work.interrupted() {
            break;
        }
        let target = &ctx.catalog.meta(tid).code;
        // One independent "SQL query" per candidate: re-enumerate paths
        // from every selected source, recompute each pair's topologies,
        // stop at the first witness. No work is shared across candidates
        // — that is precisely the inefficiency §3.1 describes.
        'candidate: for &a in &a_ids {
            let Some(start_node) = ctx.graph.node(o.espair.from, a) else { continue };
            let paths = ts_graph::paths_from(ctx.graph, &reach, start_node, o.espair.to, q.l);
            work.tick(paths.len() as u64 + 1);
            // Group by destination.
            let mut by_dest: ts_storage::FastMap<u32, Vec<ts_graph::Path>> =
                ts_storage::FastMap::default();
            for p in paths {
                let (_, bnode) = p.endpoints();
                if b_ids.contains(&ctx.graph.node_entity(bnode)) {
                    by_dest.entry(bnode).or_default().push(p);
                }
            }
            // Deterministic group order: sort by destination node id.
            let mut groups: Vec<(u32, Vec<ts_graph::Path>)> = by_dest.into_iter().collect();
            groups.sort_unstable_by_key(|&(b, _)| b);
            for (_bnode, ps) in groups {
                let refs: Vec<ts_graph::PathRef<'_>> =
                    ps.iter().map(ts_graph::Path::as_ref).collect();
                // A fresh memo per group: the SQL baseline deliberately
                // shares no work across its per-topology queries (§3.1).
                let t = pair_topologies(
                    ctx.graph,
                    &refs,
                    Default::default(),
                    &mut crate::topology::CanonMemo::new(),
                );
                work.tick(t.unions.len() as u64);
                if t.unions.iter().any(|(_, code)| code == target) {
                    results.push((tid, 0.0));
                    break 'candidate;
                }
            }
        }
    }
    results.sort_by_key(|&(t, _)| t);

    EvalOutcome {
        method: Method::Sql,
        topologies: results,
        work: work.get(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        detail: format!("{n_candidates} independent per-topology queries"),
        exhausted: work.exhausted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::methods::full_top;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_storage::Predicate;

    #[test]
    fn sql_matches_full_top() {
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        for q in [
            TopologyQuery::new(
                PROTEIN,
                Predicate::contains(1, "enzyme"),
                DNA,
                Predicate::eq(1, "mRNA"),
                3,
            ),
            TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3),
        ] {
            let sql = eval(&ctx, &q, Work::new());
            let full = full_top::eval(&ctx, &q, Work::new());
            assert_eq!(sql.tid_set(), full.tid_set());
        }
    }

    #[test]
    fn sql_issues_one_query_per_candidate() {
        // The strict work separation from Full-Top is a scale effect,
        // asserted at database scale in the integration tests and the
        // Table-2 bench; at fixture scale we assert the structural
        // properties: one independent query per candidate topology.
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3);
        let sql = eval(&ctx, &q, Work::new());
        let n = cat.topologies_for(EsPair::new(PROTEIN, DNA)).len();
        assert!(sql.detail.contains(&format!("{n} independent")), "{}", sql.detail);
        assert!(sql.work > 0);
    }

    #[test]
    fn enumeration_counts_grow_with_l_and_classes() {
        let (db, _g, schema) = figure3();
        let _ = db;
        let pd = EsPair::new(PROTEIN, DNA);
        let e1 = enumerate_schema_topologies(&schema, pd, 2, 1, 10_000);
        let e2 = enumerate_schema_topologies(&schema, pd, 3, 1, 10_000);
        let e3 = enumerate_schema_topologies(&schema, pd, 3, 2, 10_000);
        assert!(e2.total >= e1.total);
        assert!(e3.total > e2.total, "intermixing adds candidates");
        assert!(!e1.capped);
        // Single classes at l=2: P-D and P-U-D.
        assert_eq!(e1.total, 2);
    }

    #[test]
    fn enumeration_cap_is_reported() {
        let (_db, _g, schema) = figure3();
        let pd = EsPair::new(PROTEIN, DNA);
        let e = enumerate_schema_topologies(&schema, pd, 3, 3, 2);
        assert!(e.capped);
        assert_eq!(e.graphs.len(), 2);
        assert!(e.total >= 2);
    }

    #[test]
    fn gluings_distinguish_shared_intermediates() {
        // Two copies of P-U-D glued on U is a distinct candidate from the
        // unglued pair: candidate set must contain both a 3-node and a
        // 4-node union of two P-U-D-ish walks.
        let (_db, _g, schema) = figure3();
        let pd = EsPair::new(PROTEIN, DNA);
        let e = enumerate_schema_topologies(&schema, pd, 3, 2, 100_000);
        let node_counts: std::collections::HashSet<usize> =
            e.graphs.iter().map(|g| g.node_count()).collect();
        assert!(node_counts.contains(&4), "glued intermixings expected");
        assert!(node_counts.contains(&5) || node_counts.contains(&3));
    }
}
