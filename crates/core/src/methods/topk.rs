//! Full-Top-k and Fast-Top-k (§5.1): full evaluation, order by score,
//! fetch first k — plus, for the Fast variant, the score-gated pruned
//! sub-queries of SQL4/SQL5.

use std::time::Instant;

use ts_exec::Work;
use ts_storage::FastSet;

use crate::catalog::TopologyId;
use crate::methods::common::{online_path_check, orient, selected_ids, Oriented};
use crate::methods::{full_top, EvalOutcome, Method, QueryContext};
use crate::query::TopologyQuery;

/// Which precomputed table backs the method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// AllTops (no pruning) — Full-Top-k.
    Full,
    /// LeftTops + exception checks — Fast-Top-k.
    Fast,
}

/// Evaluate with this strategy (also reachable via [`crate::methods::Method::eval`]).
pub fn eval(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    variant: Variant,
    work: Work,
) -> EvalOutcome {
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in the outcome's millis field and never reaches catalog bytes
    let start = Instant::now();
    let o = orient(q);

    let table = match variant {
        Variant::Full => &ctx.catalog.alltops,
        Variant::Fast => &ctx.catalog.lefttops,
    };
    // SQL4: evaluate the (un)pruned part fully, then order by score and
    // fetch the first k.
    let tids = full_top::distinct_tids(ctx, q, table, &work);
    let mut results: Vec<(TopologyId, f64)> =
        tids.into_iter().map(|t| (t, ctx.catalog.meta(t).scores[q.scheme.index()])).collect();
    sort_desc(&mut results);
    results.truncate(q.k);

    let mut gated = 0usize;
    if variant == Variant::Fast {
        gated = gate_pruned(ctx, q, &o, &mut results, &work);
    }

    EvalOutcome {
        method: match variant {
            Variant::Full => Method::FullTopK,
            Variant::Fast => Method::FastTopK,
        },
        topologies: results,
        work: work.get(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        detail: match variant {
            Variant::Full => "full eval + sort + fetch-k over AllTops".into(),
            Variant::Fast => {
                format!("full eval + sort + fetch-k over LeftTops; {gated} gated pruned checks")
            }
        },
        exhausted: work.exhausted(),
    }
}

/// Sort `(tid, score)` by score descending, id ascending.
pub(crate) fn sort_desc(v: &mut [(TopologyId, f64)]) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

/// SQL5's gating: a pruned topology needs an online check only if it
/// could still enter the top-k — fewer than k results so far, or a score
/// at or above the current k-th (ties must be checked so that the final
/// deterministic (score desc, id asc) order matches the non-pruned
/// methods). Returns the number of checks actually run.
pub(crate) fn gate_pruned(
    ctx: &QueryContext<'_>,
    q: &TopologyQuery,
    o: &Oriented<'_>,
    results: &mut Vec<(TopologyId, f64)>,
    work: &Work,
) -> usize {
    let kth_score = if results.len() >= q.k {
        results.last().map(|&(_, s)| s).unwrap_or(f64::NEG_INFINITY)
    } else {
        f64::NEG_INFINITY
    };
    let candidates: Vec<(TopologyId, f64)> = ctx
        .catalog
        .metas()
        .iter()
        .filter(|m| m.pruned && m.espair == o.espair)
        .map(|m| (m.id, m.scores[q.scheme.index()]))
        .filter(|&(_, s)| s >= kth_score)
        .collect();
    if candidates.is_empty() {
        return 0;
    }
    let a_ids: FastSet<i64> = selected_ids(ctx, o.espair.from, o.con_from, work);
    let b_ids: FastSet<i64> = selected_ids(ctx, o.espair.to, o.con_to, work);
    let mut checks = 0;
    for (tid, score) in candidates {
        if work.interrupted() {
            break;
        }
        checks += 1;
        if online_path_check(ctx, tid, &a_ids, &b_ids, work) {
            results.push((tid, score));
        }
    }
    sort_desc(results);
    results.truncate(q.k);
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::prune::{prune_catalog, PruneOptions};
    use crate::query::RankScheme;
    use crate::score::{score_catalog, DomainScorer};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_storage::Predicate;

    fn setup(
        threshold: u64,
    ) -> (ts_storage::Database, ts_graph::DataGraph, ts_graph::SchemaGraph, crate::Catalog) {
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        prune_catalog(&mut cat, PruneOptions { threshold, max_pruned: 64 });
        score_catalog(&mut cat, &DomainScorer::default());
        (db, g, schema, cat)
    }

    fn query() -> TopologyQuery {
        TopologyQuery::new(
            PROTEIN,
            Predicate::contains(1, "enzyme"),
            DNA,
            Predicate::eq(1, "mRNA"),
            3,
        )
    }

    #[test]
    fn full_and_fast_agree_for_every_scheme_and_k() {
        let (db, g, schema, cat) = setup(0);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        for scheme in RankScheme::all() {
            for k in [1, 2, 4, 10] {
                let q = query().with_k(k).with_scheme(scheme);
                let full = eval(&ctx, &q, Variant::Full, Work::new());
                let fast = eval(&ctx, &q, Variant::Fast, Work::new());
                assert_eq!(
                    full.tid_set(),
                    fast.tid_set(),
                    "scheme={scheme} k={k}: {:?} vs {:?}",
                    full.topologies,
                    fast.topologies
                );
            }
        }
    }

    #[test]
    fn k_truncates_ranked_output() {
        let (db, g, schema, cat) = setup(u64::MAX);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = query().with_k(2);
        let out = eval(&ctx, &q, Variant::Full, Work::new());
        assert_eq!(out.topologies.len(), 2);
        // Scores non-increasing.
        assert!(out.topologies[0].1 >= out.topologies[1].1);
    }

    #[test]
    fn gating_skips_checks_when_topk_is_saturated() {
        // With k = 1 and the Domain scheme, the complex topologies (in
        // LeftTops) outscore the pruned simple ones, so zero checks run.
        let (db, g, schema, cat) = setup(0);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = query().with_k(1).with_scheme(RankScheme::Domain);
        let out = eval(&ctx, &q, Variant::Fast, Work::new());
        assert!(out.detail.contains("0 gated"), "detail: {}", out.detail);
    }

    #[test]
    fn pruned_topology_surfaces_when_score_demands_it() {
        // Freq scheme with everything pruned at threshold 0: the pruned
        // path topologies tie on score and must be recovered by checks.
        let (db, g, schema, cat) = setup(0);
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3)
            .with_k(10)
            .with_scheme(RankScheme::Freq);
        let out = eval(&ctx, &q, Variant::Fast, Work::new());
        assert_eq!(out.tid_set().len(), 5, "all five P-D topologies expected");
    }
}
