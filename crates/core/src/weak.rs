//! Weak relationships and domain-knowledge pruning (§6.2.3, Appendix B).
//!
//! As the path limit grows (l ≥ 4), paths like `P-D-P-U-D` connect
//! entities that are "most likely unrelated": they dilute meaningful
//! topologies (Fig. 17 shows one interesting topology splitting into
//! four) and are intrinsically expensive (hundreds of millions of
//! instances). The paper's proposed solution is "to use domain knowledge
//! to prune such weak topologies"; Appendix B (Table 4) lists the path
//! patterns in Biozon that give rise to them.
//!
//! [`WeakPolicy`] is that domain knowledge as a value: a set of banned
//! path signatures. The offline computation consults it and drops banned
//! paths before topology formation, so weak relationships never enter
//! the catalog.

use ts_graph::{DataGraph, PathRef, PathSig};
use ts_storage::FastSet;

/// Build the reversal-normalized signature of a label walk
/// (`types.len() == rels.len() + 1`).
pub fn sig_from_labels(types: &[u16], rels: &[u16]) -> PathSig {
    assert_eq!(types.len(), rels.len() + 1, "walk shape mismatch");
    let mut fwd = Vec::with_capacity(types.len() + rels.len());
    for i in 0..rels.len() {
        fwd.push(types[i]);
        fwd.push(rels[i]);
    }
    // lint: allow(unwrap-in-lib): the shape assert above forces
    // types.len() == rels.len() + 1 >= 1
    fwd.push(*types.last().expect("non-empty walk"));
    PathSig::from_interleaved(fwd)
}

/// A set of path patterns considered weak relationships.
#[derive(Debug, Clone, Default)]
pub struct WeakPolicy {
    banned: FastSet<PathSig>,
}

impl WeakPolicy {
    /// Empty policy (bans nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ban a signature directly.
    pub fn ban(&mut self, sig: PathSig) -> &mut Self {
        self.banned.insert(sig);
        self
    }

    /// Ban a label walk given as type/relationship id sequences.
    pub fn ban_walk(&mut self, types: &[u16], rels: &[u16]) -> &mut Self {
        self.ban(sig_from_labels(types, rels))
    }

    /// Number of banned patterns.
    pub fn len(&self) -> usize {
        self.banned.len()
    }

    /// True when nothing is banned.
    pub fn is_empty(&self) -> bool {
        self.banned.is_empty()
    }

    /// True if the signature is banned.
    pub fn is_banned(&self, sig: &PathSig) -> bool {
        self.banned.contains(sig)
    }

    /// True if a concrete path survives the policy.
    pub fn allows(&self, g: &DataGraph, path: PathRef<'_>) -> bool {
        !self.is_banned(&path.sig(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN, UNIGENE};
    use ts_graph::paths::enumerate_pair_paths;

    #[test]
    fn sig_from_labels_matches_path_sig() {
        // P-U-D via uni_encodes(1), uni_contains(2).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 2);
        let some_pud = pp.all_paths().find(|p| p.len() == 2).expect("a P-U-D path exists");
        let sig = sig_from_labels(&[PROTEIN, UNIGENE, DNA], &[1, 2]);
        assert_eq!(some_pud.sig(&g), sig);
    }

    #[test]
    fn reversed_walk_same_signature() {
        let a = sig_from_labels(&[0, 1, 2], &[5, 6]);
        let b = sig_from_labels(&[2, 1, 0], &[6, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn policy_bans_and_allows() {
        let (_db, g, schema) = figure3();
        let mut policy = WeakPolicy::new();
        policy.ban_walk(&[PROTEIN, UNIGENE, DNA], &[1, 2]);
        assert_eq!(policy.len(), 1);
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let mut banned = 0;
        let mut allowed = 0;
        for p in pp.all_paths() {
            if policy.allows(&g, p) {
                allowed += 1;
            } else {
                banned += 1;
            }
        }
        assert!(banned > 0, "the P-U-D paths must be banned");
        assert!(allowed > 0, "other shapes must survive");
    }

    #[test]
    #[should_panic(expected = "walk shape mismatch")]
    fn malformed_walk_panics() {
        sig_from_labels(&[0, 1], &[0, 1]);
    }
}
