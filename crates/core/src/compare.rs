//! Topology comparison primitives across queries (§8 future work:
//! "primitives for comparing topologies across multiple queries").
//!
//! Results from different queries — or from catalogs built over
//! different databases or path limits — are compared by **canonical
//! code**, the database-independent identity of a topology. The primitive
//! is a three-way diff: topologies only in the left result, only in the
//! right, and common (with both frequencies, so enrichment questions
//! like "which relationship structures appear for TFs but not for
//! enzymes?" fall out directly).

use ts_graph::CanonicalCode;
use ts_storage::FastMap;

use crate::catalog::{Catalog, TopologyId};

/// One side of a comparison: topology ids resolved to codes + metadata.
#[derive(Debug, Clone)]
pub struct ResultView<'a> {
    catalog: &'a Catalog,
    tids: Vec<TopologyId>,
}

impl<'a> ResultView<'a> {
    /// Wrap a result set (e.g. [`crate::EvalOutcome::tids`]).
    pub fn new(catalog: &'a Catalog, tids: Vec<TopologyId>) -> Self {
        ResultView { catalog, tids }
    }

    fn codes(&self) -> FastMap<&CanonicalCode, TopologyId> {
        self.tids.iter().map(|&t| (&self.catalog.meta(t).code, t)).collect()
    }
}

/// A topology present on both sides of a diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonTopology {
    /// Id in the left catalog.
    pub left: TopologyId,
    /// Id in the right catalog.
    pub right: TopologyId,
    /// Frequency in the left catalog.
    pub left_freq: u64,
    /// Frequency in the right catalog.
    pub right_freq: u64,
}

/// Three-way diff of two topology result sets.
#[derive(Debug, Clone, Default)]
pub struct TopologyDiff {
    /// Topologies only in the left result (left-catalog ids).
    pub only_left: Vec<TopologyId>,
    /// Topologies only in the right result (right-catalog ids).
    pub only_right: Vec<TopologyId>,
    /// Topologies in both, with frequencies from each side.
    pub common: Vec<CommonTopology>,
}

impl TopologyDiff {
    /// Jaccard similarity of the two result sets.
    pub fn jaccard(&self) -> f64 {
        let union = self.only_left.len() + self.only_right.len() + self.common.len();
        if union == 0 {
            return 1.0;
        }
        self.common.len() as f64 / union as f64
    }
}

/// Compare two result sets by canonical code. The sides may come from
/// the same catalog (two queries) or different catalogs (two databases,
/// two path limits, with/without a weak policy, …).
pub fn diff(left: &ResultView<'_>, right: &ResultView<'_>) -> TopologyDiff {
    let lc = left.codes();
    let rc = right.codes();
    let mut out = TopologyDiff::default();
    for (code, &ltid) in &lc {
        match rc.get(code) {
            Some(&rtid) => out.common.push(CommonTopology {
                left: ltid,
                right: rtid,
                left_freq: left.catalog.meta(ltid).freq,
                right_freq: right.catalog.meta(rtid).freq,
            }),
            None => out.only_left.push(ltid),
        }
    }
    for (code, &rtid) in &rc {
        if !lc.contains_key(code) {
            out.only_right.push(rtid);
        }
    }
    out.only_left.sort_unstable();
    out.only_right.sort_unstable();
    out.common.sort_by_key(|c| c.left);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::methods::{full_top, QueryContext};
    use crate::query::TopologyQuery;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_storage::Predicate;

    fn setup() -> (ts_storage::Database, ts_graph::DataGraph, ts_graph::SchemaGraph, Catalog) {
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        (db, g, schema, cat)
    }

    #[test]
    fn identical_queries_diff_empty() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3);
        let r1 = full_top::eval(&ctx, &q, ts_exec::Work::new());
        let r2 = full_top::eval(&ctx, &q, ts_exec::Work::new());
        let d = diff(&ResultView::new(&cat, r1.tids()), &ResultView::new(&cat, r2.tids()));
        assert!(d.only_left.is_empty());
        assert!(d.only_right.is_empty());
        assert_eq!(d.common.len(), r1.tids().len());
        assert!((d.jaccard() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrower_query_is_subset() {
        let (db, g, schema, cat) = setup();
        let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat };
        let broad = full_top::eval(
            &ctx,
            &TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3),
            ts_exec::Work::new(),
        );
        let narrow = full_top::eval(
            &ctx,
            &TopologyQuery::new(PROTEIN, Predicate::contains(1, "MMS2"), DNA, Predicate::True, 3),
            ts_exec::Work::new(),
        );
        let d = diff(&ResultView::new(&cat, broad.tids()), &ResultView::new(&cat, narrow.tids()));
        assert!(d.only_right.is_empty(), "narrow cannot have extra topologies");
        assert!(!d.only_left.is_empty());
        assert!(d.jaccard() < 1.0);
    }

    #[test]
    fn cross_catalog_comparison_by_code() {
        // Compare the same query against a catalog built at l = 2: the
        // l = 3-only topologies must land in only_left.
        let (db, g, schema, cat3) = setup();
        let (cat2, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(2));
        let ctx3 = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat3 };
        let ctx2 = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &cat2 };
        let q = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 3);
        let q2 = TopologyQuery::new(PROTEIN, Predicate::True, DNA, Predicate::True, 2);
        let r3 = full_top::eval(&ctx3, &q, ts_exec::Work::new());
        let r2 = full_top::eval(&ctx2, &q2, ts_exec::Work::new());
        let d = diff(&ResultView::new(&cat3, r3.tids()), &ResultView::new(&cat2, r2.tids()));
        assert!(!d.only_left.is_empty(), "length-3 topologies exist only at l=3");
        assert!(d.only_right.is_empty(), "every l=2 topology also arises at l=3 here");
        for c in &d.common {
            assert_eq!(cat3.meta(c.left).code, cat2.meta(c.right).code);
        }
    }

    #[test]
    fn empty_sides() {
        let (_db, _g, _schema, cat) = setup();
        let d = diff(&ResultView::new(&cat, vec![]), &ResultView::new(&cat, vec![]));
        assert_eq!(d.jaccard(), 1.0);
        assert!(d.common.is_empty());
    }
}
