//! Topology scoring: the `Freq`, `Rare` and `Domain` ranking schemes
//! (§6.1 of the paper).
//!
//! The paper's third scheme "relied on a domain expert (one of the
//! co-authors) to rank the interesting topologies based on biological
//! significance". We cannot ship a biologist, so [`DomainScorer`] is a
//! deterministic pseudo-expert built from the properties the paper says
//! the expert valued: topologies combining several distinct relationship
//! classes are interesting (Fig. 16's two-proteins-one-DNA-plus-
//! interaction motif), cycles (mutual regulation) are interesting,
//! interaction edges are interesting, and very common shapes are not.
//! Only the induced *order* matters for the experiments; the substitution
//! is recorded in DESIGN.md.

use ts_storage::FastSet;

use crate::catalog::{Catalog, TopologyMeta};

/// Configuration of the pseudo-expert.
#[derive(Debug, Clone)]
pub struct DomainScorer {
    /// Relationship-set ids whose presence the expert rewards (e.g. the
    /// interaction relationships in the Biozon schema).
    pub interesting_rels: Vec<u16>,
    /// Weight per interesting edge.
    pub w_interesting_edge: f64,
    /// Weight per distinct relationship label.
    pub w_distinct_rel: f64,
    /// Weight when the topology contains a cycle.
    pub w_cycle: f64,
    /// Penalty multiplier on `log10(freq)` (common shapes bore experts).
    pub w_common_penalty: f64,
}

impl Default for DomainScorer {
    fn default() -> Self {
        DomainScorer {
            interesting_rels: Vec::new(),
            w_interesting_edge: 4.0,
            w_distinct_rel: 1.5,
            w_cycle: 3.0,
            w_common_penalty: 1.0,
        }
    }
}

impl DomainScorer {
    /// Score one topology.
    pub fn score(&self, meta: &TopologyMeta) -> f64 {
        let g = &meta.graph;
        let interesting =
            g.edges.iter().filter(|&&(_, _, l)| self.interesting_rels.contains(&l)).count() as f64;
        let distinct_rels = g.edges.iter().map(|&(_, _, l)| l).collect::<FastSet<_>>().len() as f64;
        let has_cycle = g.edge_count() >= g.node_count() && g.node_count() > 0;
        let common = (meta.freq.max(1) as f64).log10();
        let mut s = self.w_interesting_edge * interesting
            + self.w_distinct_rel * distinct_rels
            + if has_cycle { self.w_cycle } else { 0.0 }
            - self.w_common_penalty * common;
        // Stable, tiny jitter from the canonical code digest so that ties
        // break deterministically but not trivially by id.
        let digest = meta.code.digest();
        let jitter = u32::from_str_radix(&digest[..6], 16).unwrap_or(0) as f64 / 16_777_216.0;
        s += jitter * 1e-3;
        s
    }
}

/// Fill in all three score columns of every topology.
///
/// * `Freq` — the frequency itself (common first).
/// * `Rare` — `1 / freq` (rare first).
/// * `Domain` — the pseudo-expert.
pub fn score_catalog(catalog: &mut Catalog, domain: &DomainScorer) {
    let domain_scores: Vec<f64> = catalog.metas().iter().map(|m| domain.score(m)).collect();
    for (m, d) in catalog.metas_mut().iter_mut().zip(domain_scores) {
        m.scores[0] = m.freq as f64;
        m.scores[1] = 1.0 / m.freq.max(1) as f64;
        m.scores[2] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EsPair;
    use crate::compute::{compute_catalog, ComputeOptions};
    use crate::query::RankScheme;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};

    fn scored_catalog() -> Catalog {
        let (db, g, schema) = figure3();
        let (mut cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        score_catalog(&mut cat, &DomainScorer::default());
        cat
    }

    #[test]
    fn freq_and_rare_are_inverse_orders() {
        let cat = scored_catalog();
        let pd = EsPair::new(PROTEIN, DNA);
        let by_freq = cat.ranked(RankScheme::Freq, pd);
        let by_rare = cat.ranked(RankScheme::Rare, pd);
        assert_eq!(by_freq.len(), by_rare.len());
        // With all frequencies equal (fixture), both orders are by id;
        // check the score relationship instead.
        for (tid, s) in &by_freq {
            let meta = cat.meta(*tid);
            assert_eq!(*s, meta.freq as f64);
            let rare = by_rare.iter().find(|(t, _)| t == tid).expect("present").1;
            assert!((rare - 1.0 / meta.freq as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn domain_prefers_complex_topologies() {
        let cat = scored_catalog();
        let pd = EsPair::new(PROTEIN, DNA);
        // T3/T4 (two path classes, 4-5 nodes, cycle-ish) must outscore
        // T1 (single edge) under the pseudo-expert.
        let metas: Vec<&TopologyMeta> = cat.metas().iter().filter(|m| m.espair == pd).collect();
        let simple = metas.iter().find(|m| m.graph.node_count() == 2).expect("T1 exists");
        let complex = metas.iter().find(|m| m.graph.node_count() >= 4).expect("T3/T4 exist");
        assert!(
            complex.scores[2] > simple.scores[2],
            "expert must prefer complex: {} vs {}",
            complex.scores[2],
            simple.scores[2]
        );
    }

    #[test]
    fn scores_are_deterministic() {
        let c1 = scored_catalog();
        let c2 = scored_catalog();
        for (a, b) in c1.metas().iter().zip(c2.metas().iter()) {
            assert_eq!(a.scores, b.scores);
        }
    }

    #[test]
    fn interesting_rels_boost() {
        let cat = scored_catalog();
        let meta = &cat.metas()[0];
        let plain = DomainScorer::default().score(meta);
        let boosted = DomainScorer {
            interesting_rels: meta.graph.edges.iter().map(|&(_, _, l)| l).collect(),
            ..DomainScorer::default()
        }
        .score(meta);
        assert!(boosted > plain);
    }
}
