//! An immutable, self-contained serving snapshot: the base data, both
//! graphs, and the finished catalog bundled into one owned value.
//!
//! The serving layer (`ts-server`) shares one [`Snapshot`] across all
//! worker threads behind an `Arc` and publishes rebuilds by swapping the
//! `Arc` — in-flight queries keep the snapshot they started on alive,
//! new admissions see the new epoch, and nothing is ever mutated in
//! place ([`Snapshot::digest`] lets tests prove exactly that).

use ts_graph::{DataGraph, SchemaGraph};
use ts_storage::Database;

use crate::catalog::Catalog;
use crate::methods::QueryContext;

/// One immutable generation of serving state.
#[derive(Debug)]
pub struct Snapshot {
    /// Base data.
    pub db: Database,
    /// Data graph over the base data.
    pub graph: DataGraph,
    /// Schema graph.
    pub schema: SchemaGraph,
    /// Finished (finalized, optionally pruned and scored) catalog.
    pub catalog: Catalog,
    /// Publication epoch: 0 for the initial snapshot, incremented by the
    /// serving layer on every swap.
    pub epoch: u64,
}

impl Snapshot {
    /// Bundle serving state at epoch 0.
    pub fn new(db: Database, graph: DataGraph, schema: SchemaGraph, catalog: Catalog) -> Self {
        Snapshot { db, graph, schema, catalog, epoch: 0 }
    }

    /// Borrow the snapshot as the [`QueryContext`] the nine methods run
    /// against.
    pub fn ctx(&self) -> QueryContext<'_> {
        QueryContext {
            db: &self.db,
            graph: &self.graph,
            schema: &self.schema,
            catalog: &self.catalog,
        }
    }

    /// The catalog's content digest (see [`Catalog::fnv_digest`]).
    pub fn digest(&self) -> u64 {
        self.catalog.fnv_digest()
    }
}
