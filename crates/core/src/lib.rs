//! # ts-core
//!
//! The paper's primary contribution: **data topologies** and the family
//! of algorithms that compute them.
//!
//! A *topology* (Definition 2) summarizes, at the schema level, the
//! complete set of ways a pair of entities is related at the instance
//! level: group the simple paths `PS(a,b,l)` into isomorphism classes
//! (Definition 1), union one representative per class, and take the
//! isomorphism class of the union. The *l-topology result* of a 2-query
//! (Definition 3) is the set of topologies over all pairs of entities
//! satisfying the query's constraints.
//!
//! This crate provides:
//!
//! * [`topology`] — Definitions 1–2: path equivalence classes and
//!   `l-Top(a,b)` with canonical-code deduplication;
//! * [`compute`] — the offline Topology Computation module (§4.1) that
//!   builds the `AllTops` catalog from the base data (optionally in
//!   parallel);
//! * [`catalog`] — the `AllTops` / `TopInfo` / `LeftTops` / `ExcpTops`
//!   tables (§3.2, §4.2) materialized as real relational tables plus the
//!   per-topology metadata;
//! * [`prune`] — the Topology Pruning module (§4.2): frequency-threshold
//!   pruning of path-shaped topologies with the exception table;
//! * [`score`] — the `Freq` / `Rare` / `Domain` ranking schemes (§6.1);
//! * [`methods`] — all nine evaluation strategies of §6: `SQL`,
//!   `Full-Top`, `Fast-Top`, `Full-Top-k`, `Fast-Top-k`,
//!   `Full-Top-k-ET`, `Fast-Top-k-ET`, `Full-Top-k-Opt`,
//!   `Fast-Top-k-Opt`;
//! * [`weak`] — Appendix B's weak-relationship patterns and the
//!   domain-knowledge pruning policy of §6.2.3;
//! * [`instances`] — instance retrieval for a chosen topology (§6.2.4).

#![forbid(unsafe_code)]

pub mod catalog;
pub mod compare;
pub mod compute;
pub mod instances;
pub mod methods;
pub mod prune;
pub mod query;
pub mod score;
pub mod snapshot;
pub mod topology;
pub mod weak;

pub use catalog::{Catalog, EsPair, PairKey, PairOffsets, PairView, TopologyId, TopologyMeta};
pub use compare::{diff, ResultView, TopologyDiff};
pub use compute::{
    compute_catalog, compute_catalog_with_hasher, panic_detail, try_compute_catalog,
    try_compute_catalog_with_hasher, ComputeError, ComputeOptions, ComputeStats,
};
pub use methods::{validate_query, EvalOutcome, Method, QueryContext, QueryError};
pub use prune::{prune_catalog, PruneOptions, PruneReport};
pub use query::{RankScheme, TopologyQuery};
pub use score::{score_catalog, DomainScorer};
pub use snapshot::Snapshot;
pub use topology::{
    pair_topologies, pair_topologies_into, CanonMemo, CanonMemoH, PairTopologies, PairTops,
    SigInterner, TopOptions, TopScratch,
};
pub use ts_exec::{Budget, Exhausted, Work};
pub use weak::WeakPolicy;
