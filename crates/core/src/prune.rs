//! The Topology Pruning module (§4.2).
//!
//! The frequency distribution of topologies is approximately Zipfian
//! (Fig. 11): a handful of very frequent, structurally simple topologies
//! account for most AllTops rows. Pruning removes them from the
//! precomputed table — their existence is cheap to check online — and
//! records in `ExcpTops` the pairs that *look* related by the simple
//! topology (they have a matching path) but are actually related by a
//! more complex one, so the online check will not claim them (Fig. 13:
//! (78, 215) matches T2's path but its topologies are T3/T4, hence the
//! exception row; (44, 742) truly has T2 and is *not* stored).
//!
//! Eligibility: only **path-shaped** topologies are pruned. The paper
//! observes the frequent ones "are no more complicated than a path" and
//! its online check (§4.3) is a path join; complex topologies always
//! stay in LeftTops. A pair with a matching path is in exception for T
//! exactly when its topology set does not contain T — which for a
//! single-path topology happens iff the pair has ≥ 2 path classes.

use crate::catalog::{Catalog, TopologyId};

/// Pruning configuration.
#[derive(Debug, Clone, Copy)]
pub struct PruneOptions {
    /// Prune path-shaped topologies with frequency strictly above this.
    pub threshold: u64,
    /// Upper bound on how many topologies may be pruned (the paper prunes
    /// 19 of 805 at l ≤ 3; a bound keeps the online-check count small).
    pub max_pruned: usize,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions { threshold: 1000, max_pruned: 64 }
    }
}

/// What pruning did.
#[derive(Debug, Clone, Default)]
pub struct PruneReport {
    /// Pruned topology ids (most frequent first).
    pub pruned: Vec<TopologyId>,
    /// Rows in AllTops (unchanged by pruning).
    pub alltops_rows: usize,
    /// Rows left in LeftTops.
    pub lefttops_rows: usize,
    /// Rows written to ExcpTops.
    pub excptops_rows: usize,
}

/// Prune the catalog in place, rebuilding `LeftTops` and `ExcpTops`.
///
/// Idempotent in effect: re-running with the same options rebuilds the
/// same tables from the unchanged `AllTops` ground truth.
pub fn prune_catalog(catalog: &mut Catalog, opts: PruneOptions) -> PruneReport {
    // Select pruning victims: path-shaped, above threshold, most frequent
    // first.
    let mut victims: Vec<(u64, TopologyId)> = catalog
        .metas()
        .iter()
        .filter(|m| m.path_sig.is_some() && m.freq > opts.threshold)
        .map(|m| (m.freq, m.id))
        .collect();
    victims.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    victims.truncate(opts.max_pruned);
    let pruned_ids: Vec<TopologyId> = victims.iter().map(|&(_, id)| id).collect();

    // Flag metas (clearing stale flags from a previous run).
    for m in catalog.metas_mut() {
        m.pruned = pruned_ids.contains(&m.id);
    }

    // Rebuild LeftTops = AllTops minus pruned TIDs: surviving rows are
    // copied column-buffer to column-buffer through the all-Int fast
    // lane, no owned row in between.
    let mut lefttops = ts_storage::Table::new(catalog.lefttops.schema().clone());
    for r in catalog.alltops.rows() {
        let tid = r.as_int(2) as TopologyId;
        if !pruned_ids.contains(&tid) {
            lefttops
                .insert_ints(&[r.as_int(0), r.as_int(1), tid as i64])
                // lint: allow(unwrap-in-lib): rows are copied from alltops, which
                // shares the same fixed 3-Int-column schema
                .expect("copy of valid row");
        }
    }
    lefttops.create_index_bulk(0);
    lefttops.create_index_bulk(1);
    lefttops.create_index_bulk(2);
    lefttops.analyze();

    // Rebuild ExcpTops: pairs with a pruned topology's path but a
    // different topology set.
    let mut excptops = ts_storage::Table::new(catalog.excptops.schema().clone());
    let mut excp_rows = 0usize;
    {
        // (sig id, tid) pairs for pruned topologies.
        let pruned_sigs: Vec<(u32, TopologyId)> = pruned_ids
            .iter()
            .map(|&tid| {
                // lint: allow(unwrap-in-lib): the victim filter above requires
                // path_sig.is_some()
                let sig = catalog.meta(tid).path_sig.clone().expect("victims are path-shaped");
                // lint: allow(unwrap-in-lib): every path-shaped topology's signature
                // was interned when the catalog was built
                let sig_id = catalog.sig_id(&sig).expect("pruned topology's signature is interned");
                (sig_id, tid)
            })
            .collect();

        for p in catalog.pairs() {
            for &(sig_id, tid) in &pruned_sigs {
                if catalog.meta(tid).espair != p.espair {
                    continue;
                }
                if p.sigs.contains(&sig_id) && !p.topos.contains(&tid) {
                    excptops
                        .insert_ints(&[p.e1, p.e2, tid as i64])
                        // lint: allow(unwrap-in-lib): excptops is rebuilt here with
                        // the same fixed 3-Int-column schema
                        .expect("excptops schema is fixed");
                    excp_rows += 1;
                }
            }
        }
    }
    excptops.create_index_bulk(0);
    excptops.analyze();

    let report = PruneReport {
        pruned: pruned_ids,
        alltops_rows: catalog.alltops.len(),
        lefttops_rows: lefttops.len(),
        excptops_rows: excp_rows,
    };
    catalog.lefttops = lefttops;
    catalog.excptops = excptops;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EsPair;
    use crate::compute::{compute_catalog, ComputeOptions};
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};

    fn catalog() -> Catalog {
        let (db, g, schema) = figure3();
        let (cat, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
        cat
    }

    #[test]
    fn threshold_zero_prunes_all_path_topologies() {
        let mut cat = catalog();
        let report = prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        // T1 (P-D) and T2 (P-U-D) are the only path-shaped P-D topologies;
        // other espairs contribute their own path topologies.
        assert!(!report.pruned.is_empty());
        for &tid in &report.pruned {
            assert!(cat.meta(tid).path_sig.is_some());
            assert!(cat.meta(tid).pruned);
        }
        assert_eq!(report.alltops_rows, report.lefttops_rows + pruned_row_count(&cat));
    }

    fn pruned_row_count(cat: &Catalog) -> usize {
        cat.alltops.rows().filter(|r| cat.meta(r.as_int(2) as TopologyId).pruned).count()
    }

    #[test]
    fn exception_semantics_match_figure13() {
        // Prune everything path-shaped. Pair (78,215) has a P-U-D path
        // but topologies {T3,T4}: it must appear in ExcpTops for the
        // pruned P-U-D topology. Pair (44,742) has the P-U-D topology
        // itself: it must NOT appear.
        let mut cat = catalog();
        prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        let pd = EsPair::new(PROTEIN, DNA);
        let t2 = cat
            .metas()
            .iter()
            .find(|m| m.espair == pd && m.pruned && m.path_sig.as_ref().map(|s| s.len()) == Some(2))
            .expect("P-U-D topology pruned")
            .id;
        assert!(cat.excp_contains(78, 215, t2));
        assert!(!cat.excp_contains(44, 742, t2));
        // And T1 (direct encodes): (32,214) truly has T1, no exception.
        let t1 = cat
            .metas()
            .iter()
            .find(|m| m.espair == pd && m.pruned && m.path_sig.as_ref().map(|s| s.len()) == Some(1))
            .expect("P-D topology pruned")
            .id;
        assert!(!cat.excp_contains(32, 214, t1));
    }

    #[test]
    fn high_threshold_prunes_nothing() {
        let mut cat = catalog();
        let report = prune_catalog(&mut cat, PruneOptions { threshold: 1_000_000, max_pruned: 64 });
        assert!(report.pruned.is_empty());
        assert_eq!(report.lefttops_rows, report.alltops_rows);
        assert_eq!(report.excptops_rows, 0);
    }

    #[test]
    fn max_pruned_caps_victims() {
        let mut cat = catalog();
        let report = prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 1 });
        assert_eq!(report.pruned.len(), 1);
    }

    #[test]
    fn repruning_is_stable() {
        let mut cat = catalog();
        let r1 = prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        let r2 = prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 64 });
        assert_eq!(r1.pruned, r2.pruned);
        assert_eq!(r1.lefttops_rows, r2.lefttops_rows);
        assert_eq!(r1.excptops_rows, r2.excptops_rows);
        // And loosening the threshold restores everything.
        let r3 = prune_catalog(&mut cat, PruneOptions { threshold: u64::MAX, max_pruned: 64 });
        assert_eq!(r3.lefttops_rows, r3.alltops_rows);
        assert!(cat.metas().iter().all(|m| !m.pruned));
    }

    #[test]
    fn complex_topologies_never_pruned() {
        let mut cat = catalog();
        prune_catalog(&mut cat, PruneOptions { threshold: 0, max_pruned: 1000 });
        for m in cat.metas() {
            if m.path_sig.is_none() {
                assert!(!m.pruned, "complex topology {} must stay in LeftTops", m.id);
            }
        }
    }
}
