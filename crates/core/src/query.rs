//! Queries and ranking schemes.

use ts_storage::Predicate;

/// The three topology ranking schemes of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankScheme {
    /// Higher score to more frequent topologies (emphasizes common ones).
    Freq,
    /// Higher score to rarer topologies.
    Rare,
    /// A domain expert's biological-significance ranking (here: the
    /// deterministic pseudo-expert of [`crate::score::DomainScorer`]).
    Domain,
}

impl RankScheme {
    /// Index into [`crate::catalog::TopologyMeta::scores`].
    pub fn index(self) -> usize {
        match self {
            RankScheme::Freq => 0,
            RankScheme::Rare => 1,
            RankScheme::Domain => 2,
        }
    }

    /// All schemes, in score-column order: `all()[i].index() == i`, so
    /// iterating the array walks `TopologyMeta::scores` front to back.
    /// (An earlier revision returned `Freq, Domain, Rare` while claiming
    /// "the paper's column order"; the intended order — pinned by a test
    /// — is the `index()` order `Freq, Rare, Domain`.)
    pub fn all() -> [RankScheme; 3] {
        [RankScheme::Freq, RankScheme::Rare, RankScheme::Domain]
    }
}

impl std::fmt::Display for RankScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RankScheme::Freq => "Freq",
            RankScheme::Rare => "Rare",
            RankScheme::Domain => "Domain",
        };
        write!(f, "{s}")
    }
}

/// A 2-query (§2.2): two entity sets with constraints, a path limit, and
/// top-k parameters for the ranked methods.
///
/// Example 2.1 of the paper:
/// `{ (Protein, desc.ct('enzyme')), (DNA, type='mRNA') }`.
#[derive(Debug, Clone)]
pub struct TopologyQuery {
    /// First entity set.
    pub es1: u16,
    /// Constraint on the first entity set.
    pub con1: Predicate,
    /// Second entity set.
    pub es2: u16,
    /// Constraint on the second entity set.
    pub con2: Predicate,
    /// Path-length limit `l` (must match the catalog's).
    pub l: usize,
    /// Number of results for top-k methods.
    pub k: usize,
    /// Ranking scheme for top-k methods.
    pub scheme: RankScheme,
}

impl TopologyQuery {
    /// Build a query with top-10 / Freq defaults (the paper's experiments
    /// produce "only the top-10 results").
    pub fn new(es1: u16, con1: Predicate, es2: u16, con2: Predicate, l: usize) -> Self {
        TopologyQuery { es1, con1, es2, con2, l, k: 10, scheme: RankScheme::Freq }
    }

    /// Set k.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the ranking scheme.
    pub fn with_scheme(mut self, scheme: RankScheme) -> Self {
        self.scheme = scheme;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_indices_are_distinct() {
        let idx: Vec<usize> = RankScheme::all().iter().map(|s| s.index()).collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn all_is_in_score_column_order() {
        // Pins the intended order: Freq, Rare, Domain — the same order
        // as the `TopologyMeta::scores` slots `index()` addresses.
        assert_eq!(RankScheme::all(), [RankScheme::Freq, RankScheme::Rare, RankScheme::Domain]);
        for (i, s) in RankScheme::all().into_iter().enumerate() {
            assert_eq!(s.index(), i, "{s} out of column order");
        }
    }

    #[test]
    fn builder_defaults() {
        let q = TopologyQuery::new(0, Predicate::True, 2, Predicate::True, 3);
        assert_eq!(q.k, 10);
        assert_eq!(q.scheme, RankScheme::Freq);
        let q = q.with_k(5).with_scheme(RankScheme::Rare);
        assert_eq!(q.k, 5);
        assert_eq!(q.scheme, RankScheme::Rare);
        assert_eq!(format!("{}", q.scheme), "Rare");
    }
}
