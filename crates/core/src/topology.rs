//! Definitions 1 and 2: path equivalence classes and `l-Top(a,b)`.
//!
//! Given the path set `PS(a,b,l)` of a pair:
//!
//! 1. group paths into **equivalence classes** by their label signature
//!    (for paths, labeled-graph isomorphism is exactly signature
//!    equality up to reversal — [`ts_graph::PathSig`]);
//! 2. for every choice of one **representative per class**, union the
//!    representatives into an instance graph (shared intermediate
//!    entities become shared nodes — this is what distinguishes T3 from
//!    T4 in Fig. 5) and take its canonical code;
//! 3. the set of distinct codes is `l-Top(a,b)`.
//!
//! The representative product can explode for pairs connected by weak
//! relationships (§6.2.3 reports up to 5000 paths per class and >1 day of
//! precompute at l=4). [`TopOptions`] bounds both the representatives
//! considered per class and the total product; truncation is *counted and
//! reported*, never silent.
//!
//! Canonicalization is the expensive step — a nauty-style backtracking
//! search per union graph — and across a database most unions are
//! structurally identical (every pair connected by a single P-U-D path
//! builds the same labeled graph). [`CanonMemo`] caches codes keyed by
//! the built union graph, so the backtracking search runs once per
//! distinct structure instead of once per pair.
//!
//! Two forms of the Definition-2 computation exist:
//!
//! * [`pair_topologies`] — the self-contained per-call form (owned
//!   [`PathSig`] classes), used by the online SQL method and tests;
//! * [`pair_topologies_into`] — the offline worker-loop form: classes
//!   come back as ids interned in a [`SigInterner`] (each signature is
//!   hashed once, with the hash cached alongside the id), every grouping
//!   decision is made by **sorting signature bytes**, never by map
//!   iteration order, and all intermediate state lives in a reusable
//!   [`TopScratch`] + [`PairTops`] pair, so a warm worker computes a
//!   pair without allocating anything it doesn't keep.

// lint: allow(std-hash-in-hot-path): hasher-generic base type — every
// instantiation below is HashMap<_, _, S> with S supplied by the caller
use std::collections::HashMap;
use std::hash::BuildHasher;

use ts_graph::{
    canonical_code, CanonicalCode, DataGraph, InstanceGraphBuilder, LGraph, PathRef, PathSig,
};
use ts_storage::cast;
use ts_storage::{fast_hash_u16s, FastBuildHasher, FastMap};

/// Guard rails for the Definition-2 representative product.
#[derive(Debug, Clone, Copy)]
pub struct TopOptions {
    /// Maximum representatives considered per equivalence class.
    pub max_reps_per_class: usize,
    /// Maximum number of representative combinations unioned per pair.
    pub max_product: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { max_reps_per_class: 32, max_product: 4096 }
    }
}

/// Memo table for [`ts_graph::canonical_code`] over Definition-2 union
/// graphs, generic over the map hasher (the determinism guard rebuilds
/// the catalog under randomly-seeded SipHash; production uses the
/// [`CanonMemo`] alias on the fast hasher).
///
/// Keyed by the built [`LGraph`] itself (labels + normalized edge list).
/// Union graphs are constructed by relabeling data-graph entities to
/// local indices in path-visit order, so two pairs whose chosen
/// representatives have the same label sequences and the same sharing
/// pattern — i.e. the same topology, the overwhelmingly common case —
/// produce byte-identical graphs and share one backtracking run.
/// Structurally distinct builds of isomorphic graphs each run the search
/// once and converge to equal codes, so memoization never changes
/// results, only skips repeated work.
///
/// Single-path unions are memoized by signature instead, through one of
/// two disjoint stores: [`CanonMemoH::code_of_path`] keys by the owned
/// signature (the per-call API), [`CanonMemoH::code_of_path_id`] keys by
/// a [`SigInterner`] id — a plain vector index, no hashing at all. A
/// given memo must stick to one of the two (worker memos use ids, shared
/// online memos use signatures); mixing them would only split hit
/// counts, never change codes.
#[derive(Debug, Clone, Default)]
pub struct CanonMemoH<S> {
    /// Union-graph memo keyed by the graph's hash (hash-keyed-candidates
    /// pattern: each probe hashes the graph exactly once; identity is a
    /// full struct compare within the bucket, so a collision costs a
    /// compare, never correctness).
    map: HashMap<u64, Vec<(LGraph, CanonicalCode)>, S>,
    /// The hasher used for the graph keys above.
    build: S,
    /// Single-path unions keyed by the path's signature. The canonical
    /// code is orientation-invariant, so the signature (itself reversal-
    /// normalized) determines it exactly — this catches the reversed-
    /// orientation builds the byte-wise graph key cannot.
    path_codes: HashMap<PathSig, CanonicalCode, S>,
    /// Single-path unions keyed by interned signature id (dense).
    path_codes_by_id: Vec<Option<CanonicalCode>>,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the backtracking search.
    pub misses: u64,
}

/// [`CanonMemoH`] on the fast hasher — the production memo.
pub type CanonMemo = CanonMemoH<FastBuildHasher>;

impl<S: BuildHasher + Default> CanonMemoH<S> {
    /// Empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical code of `union`, computed at most once per distinct
    /// (byte-wise) graph.
    pub fn code_of(&mut self, union: &LGraph) -> CanonicalCode {
        self.code_of_ref(union).clone()
    }

    /// Borrowing form of [`CanonMemoH::code_of`]: hot callers compare
    /// the code against what they already kept and clone only the
    /// keepers. The union graph is hashed exactly once per probe.
    pub fn code_of_ref(&mut self, union: &LGraph) -> &CanonicalCode {
        let h = self.build.hash_one(union);
        let bucket = self.map.entry(h).or_default();
        if let Some(i) = bucket.iter().position(|(g, _)| g == union) {
            self.hits += 1;
            return &bucket[i].1;
        }
        self.misses += 1;
        let code = canonical_code(union);
        bucket.push((union.clone(), code));
        // lint: allow(unwrap-in-lib): pushed on the previous line; last() is Some
        &bucket.last().expect("just pushed").1
    }

    /// Canonical code of a single-path union with signature `sig`.
    pub fn code_of_path(&mut self, sig: &PathSig, union: &LGraph) -> CanonicalCode {
        if let Some(code) = self.path_codes.get(sig) {
            self.hits += 1;
            return code.clone();
        }
        self.misses += 1;
        let code = canonical_code(union);
        self.path_codes.insert(sig.clone(), code.clone());
        code
    }

    /// Canonical code of a single-path union whose signature was
    /// interned as `sig_id` — a vector probe, no hashing. Only valid
    /// with ids from one consistent [`SigInterner`] per memo.
    pub fn code_of_path_id(&mut self, sig_id: u32, union: &LGraph) -> CanonicalCode {
        let i = sig_id as usize;
        if i >= self.path_codes_by_id.len() {
            self.path_codes_by_id.resize(i + 1, None);
        }
        if let Some(code) = &self.path_codes_by_id[i] {
            self.hits += 1;
            return code.clone();
        }
        self.misses += 1;
        let code = canonical_code(union);
        self.path_codes_by_id[i] = Some(code.clone());
        code
    }

    /// Number of distinct structures memoized.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum::<usize>()
            + self.path_codes.len()
            + self.path_codes_by_id.iter().filter(|c| c.is_some()).count()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hash-consing interner for path signatures with the hash cached
/// alongside the interned value.
///
/// Each *probe* hashes the signature bytes exactly once (counted in
/// [`SigInterner::hashes`] — the build-level budget the bench records as
/// `sig_hash_once`), and the hash of every interned signature is kept in
/// the table, so downstream interners (the catalog's, at merge time)
/// re-intern worker signatures **without ever re-hashing them**.
/// Identity is decided by full byte comparison; the hash only buckets,
/// so a collision costs a compare, never correctness.
#[derive(Debug, Clone, Default)]
pub struct SigInterner {
    by_hash: FastMap<u64, Vec<u32>>,
    sigs: Vec<(PathSig, u64)>,
    /// Full-signature hash computations performed by this interner.
    pub hashes: u64,
}

impl SigInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a normalized signature byte sequence, returning its id.
    /// The sequence is copied into an owned [`PathSig`] only on first
    /// sight.
    pub fn intern_seq(&mut self, seq: &[u16]) -> u32 {
        self.hashes += 1;
        let h = fast_hash_u16s(seq);
        let ids = self.by_hash.entry(h).or_default();
        for &id in ids.iter() {
            if self.sigs[id as usize].0 .0 == seq {
                return id;
            }
        }
        let id = cast::to_u32(self.sigs.len());
        ids.push(id);
        self.sigs.push((PathSig(seq.to_vec()), h));
        id
    }

    /// Signature by id.
    pub fn sig(&self, id: u32) -> &PathSig {
        &self.sigs[id as usize].0
    }

    /// Cached hash of an interned signature.
    pub fn hash_of(&self, id: u32) -> u64 {
        self.sigs[id as usize].1
    }

    /// Number of distinct signatures interned.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Consume the interner into its `(signature, cached hash)` table,
    /// indexed by id — what the merge phase hands to the catalog.
    pub fn into_table(self) -> Vec<(PathSig, u64)> {
        self.sigs
    }
}

/// The topologies of one entity pair.
#[derive(Debug, Clone)]
pub struct PairTopologies {
    /// Distinct union graphs with their canonical codes, sorted by code.
    pub unions: Vec<(LGraph, CanonicalCode)>,
    /// The pair's path equivalence classes (sorted signatures).
    pub classes: Vec<PathSig>,
    /// True if any guard rail truncated the product.
    pub truncated: bool,
}

impl PairTopologies {
    /// Number of path equivalence classes (`s` in Definition 2).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// The worker-loop form of [`PairTopologies`]: classes as interned
/// signature ids. One instance per worker, reused for every pair — the
/// worker drains `unions` into its flat result arena after each pair,
/// keeping the capacity.
#[derive(Debug, Clone, Default)]
pub struct PairTops {
    /// Distinct union graphs with their canonical codes, sorted by code.
    pub unions: Vec<(LGraph, CanonicalCode)>,
    /// Interned ids of the pair's path equivalence classes, in sorted
    /// signature order.
    pub class_ids: Vec<u32>,
    /// True if any guard rail truncated the product.
    pub truncated: bool,
}

/// Reusable buffers for grouping a pair's paths into classes and running
/// the representative product. All grouping is **sort-based** over
/// signature bytes: class order, representative order, and union
/// emission order are structural properties of the input, with no map
/// iteration anywhere — swapping hashers cannot reorder anything.
#[derive(Debug, Clone, Default)]
pub struct TopScratch {
    /// Flat arena of the pair's normalized signature sequences.
    sig_bytes: Vec<u16>,
    /// End offsets into `sig_bytes`, one per path (entry 0 = 0).
    sig_off: Vec<u32>,
    /// Path indices sorted by signature bytes (ties by index).
    order: Vec<u32>,
    /// Class boundaries: `(start, end)` ranges into `order`.
    class_ranges: Vec<(u32, u32)>,
    /// Odometer state of the representative product.
    idx: Vec<usize>,
    /// Reusable union-graph builder.
    builder: InstanceGraphBuilder,
}

impl TopScratch {
    /// Fresh scratch (buffers grow to steady state within a few pairs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Signature byte slice of path `i`.
    fn sig_of(&self, i: u32) -> &[u16] {
        &self.sig_bytes[self.sig_off[i as usize] as usize..self.sig_off[i as usize + 1] as usize]
    }
}

/// Group `paths` into equivalence classes by signature: fill the scratch
/// arena with each path's normalized signature bytes, sort path indices
/// by those bytes, and record class ranges. Classes come out in
/// ascending signature order, paths within a class in input order.
fn group_classes(g: &DataGraph, paths: &[PathRef<'_>], s: &mut TopScratch) {
    s.sig_bytes.clear();
    s.sig_off.clear();
    s.sig_off.push(0);
    for p in paths {
        p.sig_extend(g, &mut s.sig_bytes);
        s.sig_off.push(cast::to_u32(s.sig_bytes.len()));
    }
    let TopScratch { sig_bytes, sig_off, order, class_ranges, .. } = s;
    let sig_of =
        |i: u32| &sig_bytes[sig_off[i as usize] as usize..sig_off[i as usize + 1] as usize];
    order.clear();
    order.extend(0..cast::to_u32(paths.len()));
    order.sort_unstable_by(|&a, &b| sig_of(a).cmp(sig_of(b)).then(a.cmp(&b)));
    class_ranges.clear();
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && sig_of(order[j]) == sig_of(order[i]) {
            j += 1;
        }
        class_ranges.push((cast::to_u32(i), cast::to_u32(j)));
        i = j;
    }
}

/// Add one path's edges to a union builder.
fn add_path_edges(g: &DataGraph, p: PathRef<'_>, b: &mut InstanceGraphBuilder) {
    for i in 0..p.rels.len() {
        let (u, v) = (p.nodes[i], p.nodes[i + 1]);
        b.edge(u, g.node_type(u), v, g.node_type(v), p.rels[i]);
    }
}

/// Build the union graph of one path into the reusable builder `b`
/// (cleared first); the kept graph is cloned out so `b`'s buffers stay
/// warm for the next pair.
fn single_path_union(g: &DataGraph, p: PathRef<'_>, b: &mut InstanceGraphBuilder) -> LGraph {
    b.clear();
    add_path_edges(g, p, b);
    b.finish_ref().clone()
}

/// Run the capped representative product over the classes recorded in
/// `s` (by [`group_classes`]), appending this pair's distinct unions —
/// sorted by canonical code — to `out`. Returns the truncation flag.
///
/// Dedup is a linear scan of the pair's distinct-so-far slice (first
/// odometer occurrence kept, as before): pairs have a handful of
/// distinct codes, and it keeps determinism structural where the old
/// code went through a per-pair hash map.
fn product_unions<S: BuildHasher + Default>(
    g: &DataGraph,
    paths: &[PathRef<'_>],
    opts: TopOptions,
    memo: &mut CanonMemoH<S>,
    s: &mut TopScratch,
    out: &mut Vec<(LGraph, CanonicalCode)>,
) -> bool {
    if s.class_ranges.is_empty() {
        return false;
    }
    let base = out.len();
    let mut truncated = false;
    for &(lo, hi) in &s.class_ranges {
        if (hi - lo) as usize > opts.max_reps_per_class {
            truncated = true;
        }
    }
    s.idx.clear();
    s.idx.resize(s.class_ranges.len(), 0);
    let mut produced = 0usize;
    'outer: loop {
        if produced >= opts.max_product {
            truncated = true;
            break;
        }
        produced += 1;

        s.builder.clear();
        for (c, &(lo, _)) in s.class_ranges.iter().enumerate() {
            let p = paths[s.order[lo as usize + s.idx[c]] as usize];
            add_path_edges(g, p, &mut s.builder);
        }
        let union = s.builder.finish_ref();
        let code = memo.code_of_ref(union);
        if !out[base..].iter().any(|(_, c)| c == code) {
            out.push((union.clone(), code.clone()));
        }

        // Advance the odometer.
        let mut c = 0;
        loop {
            if c == s.class_ranges.len() {
                break 'outer;
            }
            s.idx[c] += 1;
            let (lo, hi) = s.class_ranges[c];
            let reps = ((hi - lo) as usize).min(opts.max_reps_per_class);
            if s.idx[c] < reps {
                break;
            }
            s.idx[c] = 0;
            c += 1;
        }
    }
    out[base..].sort_by(|a, b| a.1.cmp(&b.1));
    truncated
}

/// Group paths into equivalence classes by signature (Definition 1).
///
/// Returns classes sorted by signature (paths within a class in input
/// order) — the order is produced by sorting signature bytes, so it is
/// deterministic by construction.
pub fn path_classes<'p>(g: &DataGraph, paths: &[PathRef<'p>]) -> Vec<(PathSig, Vec<PathRef<'p>>)> {
    let mut s = TopScratch::new();
    group_classes(g, paths, &mut s);
    s.class_ranges
        .iter()
        .map(|&(lo, hi)| {
            let sig = PathSig(s.sig_of(s.order[lo as usize]).to_vec());
            let ps = s.order[lo as usize..hi as usize].iter().map(|&i| paths[i as usize]).collect();
            (sig, ps)
        })
        .collect()
}

/// Compute `l-Top(a,b)` from the pair's path set (Definition 2),
/// canonicalizing through `memo` — the self-contained per-call form.
pub fn pair_topologies<S: BuildHasher + Default>(
    g: &DataGraph,
    paths: &[PathRef<'_>],
    opts: TopOptions,
    memo: &mut CanonMemoH<S>,
) -> PairTopologies {
    // Fast path for the dominant case: a pair connected by exactly one
    // instance path has exactly one class and one union — the path
    // itself. Skips the grouping sort, the odometer, and the dedup scan.
    if let [p] = paths {
        let sig = p.sig(g);
        let mut b = InstanceGraphBuilder::new();
        add_path_edges(g, *p, &mut b);
        let union = b.build(); // consuming: the builder is per-call here
        let code = memo.code_of_path(&sig, &union);
        return PairTopologies {
            unions: vec![(union, code)],
            classes: vec![sig],
            truncated: false,
        };
    }

    let mut s = TopScratch::new();
    group_classes(g, paths, &mut s);
    let classes: Vec<PathSig> = s
        .class_ranges
        .iter()
        .map(|&(lo, _)| PathSig(s.sig_of(s.order[lo as usize]).to_vec()))
        .collect();
    let mut unions = Vec::new();
    let truncated = product_unions(g, paths, opts, memo, &mut s, &mut unions);
    PairTopologies { unions, classes, truncated }
}

/// The worker-loop form of [`pair_topologies`]: signatures are interned
/// (hashed once each, hash cached), classes come back as ids, and all
/// intermediate state lives in caller-owned reusable buffers. A warm
/// worker allocates only what it keeps: the pair's distinct union graphs
/// and their codes.
pub fn pair_topologies_into<S: BuildHasher + Default>(
    g: &DataGraph,
    paths: &[PathRef<'_>],
    opts: TopOptions,
    memo: &mut CanonMemoH<S>,
    sigs: &mut SigInterner,
    scratch: &mut TopScratch,
    out: &mut PairTops,
) {
    out.unions.clear();
    out.class_ids.clear();
    out.truncated = false;
    if paths.is_empty() {
        return;
    }
    if let [p] = paths {
        p.sig_into(g, &mut scratch.sig_bytes);
        let id = sigs.intern_seq(&scratch.sig_bytes);
        let union = single_path_union(g, *p, &mut scratch.builder);
        let code = memo.code_of_path_id(id, &union);
        out.unions.push((union, code));
        out.class_ids.push(id);
        return;
    }
    group_classes(g, paths, scratch);
    for &(lo, _) in &scratch.class_ranges {
        out.class_ids.push(sigs.intern_seq(scratch.sig_of(scratch.order[lo as usize])));
    }
    out.truncated = product_unions(g, paths, opts, memo, scratch, &mut out.unions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_graph::paths::enumerate_pair_paths;

    fn tops_of(
        g: &DataGraph,
        pp: &ts_graph::PairPaths,
        a: u32,
        b: u32,
        opts: TopOptions,
    ) -> PairTopologies {
        pair_topologies(g, &pp.paths(a, b), opts, &mut CanonMemo::new())
    }

    #[test]
    fn l_top_78_215_is_t3_and_t4() {
        // Paper §2.2: 3-Top(78,215) = { T3, T4 } — two topologies, because
        // the two representatives of the P-U-D class interact differently
        // with the P-U-P-D path (u103 shared vs u150 distinct).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = tops_of(&g, &pp, p78, d215, TopOptions::default());
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.unions.len(), 2, "expected T3 and T4");
        assert!(!t.truncated);
        // T3 has 4 nodes (shared unigene), T4 has 5.
        let mut node_counts: Vec<usize> = t.unions.iter().map(|(g, _)| g.node_count()).collect();
        node_counts.sort_unstable();
        assert_eq!(node_counts, vec![4, 5]);
    }

    #[test]
    fn l_top_44_742_is_t2_only() {
        // Both paths are isomorphic (one class), so the topology is the
        // single P-U-D path shape T2 — not the double-path T5.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p44 = g.node(PROTEIN, 44).unwrap();
        let d742 = g.node(DNA, 742).unwrap();
        let t = tops_of(&g, &pp, p44, d742, TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 3); // P-U-D path
    }

    #[test]
    fn l_top_32_214_is_t1() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p32 = g.node(PROTEIN, 32).unwrap();
        let d214 = g.node(DNA, 214).unwrap();
        let t = tops_of(&g, &pp, p32, d214, TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 2); // P -encodes- D
        assert_eq!(t.unions[0].0.edge_count(), 1);
    }

    #[test]
    fn empty_paths_empty_topologies() {
        let (_db, g, _schema) = figure3();
        let t = pair_topologies(&g, &[], TopOptions::default(), &mut CanonMemo::new());
        assert!(t.unions.is_empty());
        assert_eq!(t.class_count(), 0);
        assert!(!t.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = tops_of(&g, &pp, p78, d215, TopOptions { max_reps_per_class: 1, max_product: 1 });
        assert!(t.truncated);
        assert!(t.unions.len() <= 1);
    }

    #[test]
    fn classes_sorted_and_deterministic() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t1 = tops_of(&g, &pp, p78, d215, TopOptions::default());
        let t2 = tops_of(&g, &pp, p78, d215, TopOptions::default());
        assert_eq!(t1.classes, t2.classes);
        let codes1: Vec<_> = t1.unions.iter().map(|(_, c)| c.clone()).collect();
        let codes2: Vec<_> = t2.unions.iter().map(|(_, c)| c.clone()).collect();
        assert_eq!(codes1, codes2);
        let mut sorted = t1.classes.clone();
        sorted.sort();
        assert_eq!(sorted, t1.classes);
    }

    #[test]
    fn memo_hits_do_not_change_codes() {
        // Running every pair through one shared memo must give the same
        // codes as a fresh memo per pair (i.e. no memoization at all).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let mut shared = CanonMemo::new();
        for (a, b) in pp.sorted_pairs() {
            let with_shared =
                pair_topologies(&g, &pp.paths(a, b), TopOptions::default(), &mut shared);
            let fresh = tops_of(&g, &pp, a, b, TopOptions::default());
            let c1: Vec<_> = with_shared.unions.iter().map(|(_, c)| c.clone()).collect();
            let c2: Vec<_> = fresh.unions.iter().map(|(_, c)| c.clone()).collect();
            assert_eq!(c1, c2);
        }
        assert!(shared.hits > 0, "figure-3 pairs share topology structures");
        assert_eq!(shared.len() as u64, shared.misses);
    }

    #[test]
    fn worker_form_matches_per_call_form() {
        // pair_topologies_into (interned sigs, reusable scratch, by-id
        // memo) must agree with pair_topologies on every figure-3 pair,
        // while reusing one PairTops and one TopScratch throughout.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let mut memo = CanonMemo::new();
        let mut sigs = SigInterner::new();
        let mut scratch = TopScratch::new();
        let mut out = PairTops::default();
        for (a, b) in pp.sorted_pairs() {
            let paths = pp.paths(a, b);
            pair_topologies_into(
                &g,
                &paths,
                TopOptions::default(),
                &mut memo,
                &mut sigs,
                &mut scratch,
                &mut out,
            );
            let reference = tops_of(&g, &pp, a, b, TopOptions::default());
            assert_eq!(out.truncated, reference.truncated);
            assert_eq!(out.unions, reference.unions, "pair ({a},{b})");
            let class_sigs: Vec<PathSig> =
                out.class_ids.iter().map(|&id| sigs.sig(id).clone()).collect();
            assert_eq!(class_sigs, reference.classes, "pair ({a},{b})");
        }
        assert!(!sigs.is_empty());
        // Hash budget: one signature hash per (pair, class) probe, never
        // per path and never per map operation downstream.
        let class_instances: u64 = pp
            .sorted_pairs()
            .iter()
            .map(|&(a, b)| path_classes(&g, &pp.paths(a, b)).len() as u64)
            .sum();
        assert_eq!(sigs.hashes, class_instances);
    }

    #[test]
    fn sig_interner_dedups_and_caches_hashes() {
        let mut i = SigInterner::new();
        let a = i.intern_seq(&[0, 1, 2, 1, 0]);
        let b = i.intern_seq(&[3, 7, 4]);
        let a2 = i.intern_seq(&[0, 1, 2, 1, 0]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.hashes, 3, "every probe hashes exactly once");
        assert_eq!(i.sig(a).0, vec![0, 1, 2, 1, 0]);
        assert_eq!(i.hash_of(a), ts_storage::fast_hash_u16s(&[0, 1, 2, 1, 0]));
        let table = i.into_table();
        assert_eq!(table.len(), 2);
        assert_eq!(table[b as usize].0 .0, vec![3, 7, 4]);
    }
}
