//! Definitions 1 and 2: path equivalence classes and `l-Top(a,b)`.
//!
//! Given the path set `PS(a,b,l)` of a pair:
//!
//! 1. group paths into **equivalence classes** by their label signature
//!    (for paths, labeled-graph isomorphism is exactly signature
//!    equality up to reversal — [`ts_graph::PathSig`]);
//! 2. for every choice of one **representative per class**, union the
//!    representatives into an instance graph (shared intermediate
//!    entities become shared nodes — this is what distinguishes T3 from
//!    T4 in Fig. 5) and take its canonical code;
//! 3. the set of distinct codes is `l-Top(a,b)`.
//!
//! The representative product can explode for pairs connected by weak
//! relationships (§6.2.3 reports up to 5000 paths per class and >1 day of
//! precompute at l=4). [`TopOptions`] bounds both the representatives
//! considered per class and the total product; truncation is *counted and
//! reported*, never silent.

use std::collections::HashMap;

use ts_graph::{
    canonical_code, CanonicalCode, DataGraph, InstanceGraphBuilder, LGraph, Path, PathSig,
};

/// Guard rails for the Definition-2 representative product.
#[derive(Debug, Clone, Copy)]
pub struct TopOptions {
    /// Maximum representatives considered per equivalence class.
    pub max_reps_per_class: usize,
    /// Maximum number of representative combinations unioned per pair.
    pub max_product: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { max_reps_per_class: 32, max_product: 4096 }
    }
}

/// The topologies of one entity pair.
#[derive(Debug, Clone)]
pub struct PairTopologies {
    /// Distinct union graphs with their canonical codes, sorted by code.
    pub unions: Vec<(LGraph, CanonicalCode)>,
    /// The pair's path equivalence classes (sorted signatures).
    pub classes: Vec<PathSig>,
    /// True if any guard rail truncated the product.
    pub truncated: bool,
}

impl PairTopologies {
    /// Number of path equivalence classes (`s` in Definition 2).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// Group paths into equivalence classes by signature (Definition 1).
///
/// Returns classes sorted by signature for determinism.
pub fn path_classes<'p>(g: &DataGraph, paths: &'p [Path]) -> Vec<(PathSig, Vec<&'p Path>)> {
    let mut by_sig: HashMap<PathSig, Vec<&'p Path>> = HashMap::new();
    for p in paths {
        by_sig.entry(p.sig(g)).or_default().push(p);
    }
    let mut classes: Vec<(PathSig, Vec<&'p Path>)> = by_sig.into_iter().collect();
    classes.sort_by(|a, b| a.0.cmp(&b.0));
    classes
}

/// Compute `l-Top(a,b)` from the pair's path set (Definition 2).
pub fn pair_topologies(g: &DataGraph, paths: &[Path], opts: TopOptions) -> PairTopologies {
    let classes = path_classes(g, paths);
    let sigs: Vec<PathSig> = classes.iter().map(|(s, _)| s.clone()).collect();
    let mut truncated = false;

    // Representatives per class, capped.
    let reps: Vec<&[&Path]> = classes
        .iter()
        .map(|(_, ps)| {
            if ps.len() > opts.max_reps_per_class {
                truncated = true;
                &ps[..opts.max_reps_per_class]
            } else {
                ps.as_slice()
            }
        })
        .collect();

    let mut seen: HashMap<CanonicalCode, LGraph> = HashMap::new();
    if !reps.is_empty() {
        // Odometer over the Cartesian product of representatives.
        let mut idx = vec![0usize; reps.len()];
        let mut produced = 0usize;
        'outer: loop {
            if produced >= opts.max_product {
                truncated = true;
                break;
            }
            produced += 1;

            let mut b = InstanceGraphBuilder::new();
            for (c, &class_reps) in reps.iter().enumerate() {
                let p = class_reps[idx[c]];
                for i in 0..p.rels.len() {
                    let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                    b.edge(u, g.node_type(u), v, g.node_type(v), p.rels[i]);
                }
            }
            let union = b.build();
            let code = canonical_code(&union);
            seen.entry(code).or_insert(union);

            // Advance the odometer.
            let mut c = 0;
            loop {
                if c == reps.len() {
                    break 'outer;
                }
                idx[c] += 1;
                if idx[c] < reps[c].len() {
                    break;
                }
                idx[c] = 0;
                c += 1;
            }
        }
    }

    let mut unions: Vec<(LGraph, CanonicalCode)> =
        seen.into_iter().map(|(code, g)| (g, code)).collect();
    unions.sort_by(|a, b| a.1.cmp(&b.1));
    PairTopologies { unions, classes: sigs, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_graph::paths::enumerate_pair_paths;

    #[test]
    fn l_top_78_215_is_t3_and_t4() {
        // Paper §2.2: 3-Top(78,215) = { T3, T4 } — two topologies, because
        // the two representatives of the P-U-D class interact differently
        // with the P-U-P-D path (u103 shared vs u150 distinct).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = pair_topologies(&g, &pp.map[&(p78, d215)], TopOptions::default());
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.unions.len(), 2, "expected T3 and T4");
        assert!(!t.truncated);
        // T3 has 4 nodes (shared unigene), T4 has 5.
        let mut node_counts: Vec<usize> = t.unions.iter().map(|(g, _)| g.node_count()).collect();
        node_counts.sort_unstable();
        assert_eq!(node_counts, vec![4, 5]);
    }

    #[test]
    fn l_top_44_742_is_t2_only() {
        // Both paths are isomorphic (one class), so the topology is the
        // single P-U-D path shape T2 — not the double-path T5.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p44 = g.node(PROTEIN, 44).unwrap();
        let d742 = g.node(DNA, 742).unwrap();
        let t = pair_topologies(&g, &pp.map[&(p44, d742)], TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 3); // P-U-D path
    }

    #[test]
    fn l_top_32_214_is_t1() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p32 = g.node(PROTEIN, 32).unwrap();
        let d214 = g.node(DNA, 214).unwrap();
        let t = pair_topologies(&g, &pp.map[&(p32, d214)], TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 2); // P -encodes- D
        assert_eq!(t.unions[0].0.edge_count(), 1);
    }

    #[test]
    fn empty_paths_empty_topologies() {
        let (_db, g, _schema) = figure3();
        let t = pair_topologies(&g, &[], TopOptions::default());
        assert!(t.unions.is_empty());
        assert_eq!(t.class_count(), 0);
        assert!(!t.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = pair_topologies(
            &g,
            &pp.map[&(p78, d215)],
            TopOptions { max_reps_per_class: 1, max_product: 1 },
        );
        assert!(t.truncated);
        assert!(t.unions.len() <= 1);
    }

    #[test]
    fn classes_sorted_and_deterministic() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t1 = pair_topologies(&g, &pp.map[&(p78, d215)], TopOptions::default());
        let t2 = pair_topologies(&g, &pp.map[&(p78, d215)], TopOptions::default());
        assert_eq!(t1.classes, t2.classes);
        let codes1: Vec<_> = t1.unions.iter().map(|(_, c)| c.clone()).collect();
        let codes2: Vec<_> = t2.unions.iter().map(|(_, c)| c.clone()).collect();
        assert_eq!(codes1, codes2);
        let mut sorted = t1.classes.clone();
        sorted.sort();
        assert_eq!(sorted, t1.classes);
    }
}
