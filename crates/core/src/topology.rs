//! Definitions 1 and 2: path equivalence classes and `l-Top(a,b)`.
//!
//! Given the path set `PS(a,b,l)` of a pair:
//!
//! 1. group paths into **equivalence classes** by their label signature
//!    (for paths, labeled-graph isomorphism is exactly signature
//!    equality up to reversal — [`ts_graph::PathSig`]);
//! 2. for every choice of one **representative per class**, union the
//!    representatives into an instance graph (shared intermediate
//!    entities become shared nodes — this is what distinguishes T3 from
//!    T4 in Fig. 5) and take its canonical code;
//! 3. the set of distinct codes is `l-Top(a,b)`.
//!
//! The representative product can explode for pairs connected by weak
//! relationships (§6.2.3 reports up to 5000 paths per class and >1 day of
//! precompute at l=4). [`TopOptions`] bounds both the representatives
//! considered per class and the total product; truncation is *counted and
//! reported*, never silent.
//!
//! Canonicalization is the expensive step — a nauty-style backtracking
//! search per union graph — and across a database most unions are
//! structurally identical (every pair connected by a single P-U-D path
//! builds the same labeled graph). [`CanonMemo`] caches codes keyed by
//! the built union graph, so the backtracking search runs once per
//! distinct structure instead of once per pair.

use std::collections::HashMap;

use ts_graph::{
    canonical_code, CanonicalCode, DataGraph, InstanceGraphBuilder, LGraph, PathRef, PathSig,
};

/// Guard rails for the Definition-2 representative product.
#[derive(Debug, Clone, Copy)]
pub struct TopOptions {
    /// Maximum representatives considered per equivalence class.
    pub max_reps_per_class: usize,
    /// Maximum number of representative combinations unioned per pair.
    pub max_product: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { max_reps_per_class: 32, max_product: 4096 }
    }
}

/// Memo table for [`ts_graph::canonical_code`] over Definition-2 union
/// graphs.
///
/// Keyed by the built [`LGraph`] itself (labels + normalized edge list).
/// Union graphs are constructed by relabeling data-graph entities to
/// local indices in path-visit order, so two pairs whose chosen
/// representatives have the same label sequences and the same sharing
/// pattern — i.e. the same topology, the overwhelmingly common case —
/// produce byte-identical graphs and share one backtracking run.
/// Structurally distinct builds of isomorphic graphs each run the search
/// once and converge to equal codes, so memoization never changes
/// results, only skips repeated work.
#[derive(Debug, Clone, Default)]
pub struct CanonMemo {
    map: HashMap<LGraph, CanonicalCode>,
    /// Single-path unions keyed by the path's signature. The canonical
    /// code is orientation-invariant, so the signature (itself reversal-
    /// normalized) determines it exactly — this catches the reversed-
    /// orientation builds the byte-wise graph key cannot.
    path_codes: HashMap<PathSig, CanonicalCode>,
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that ran the backtracking search.
    pub misses: u64,
}

impl CanonMemo {
    /// Empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical code of `union`, computed at most once per distinct
    /// (byte-wise) graph.
    pub fn code_of(&mut self, union: &LGraph) -> CanonicalCode {
        if let Some(code) = self.map.get(union) {
            self.hits += 1;
            return code.clone();
        }
        self.misses += 1;
        let code = canonical_code(union);
        self.map.insert(union.clone(), code.clone());
        code
    }

    /// Canonical code of a single-path union with signature `sig`.
    pub fn code_of_path(&mut self, sig: &PathSig, union: &LGraph) -> CanonicalCode {
        if let Some(code) = self.path_codes.get(sig) {
            self.hits += 1;
            return code.clone();
        }
        self.misses += 1;
        let code = canonical_code(union);
        self.path_codes.insert(sig.clone(), code.clone());
        code
    }

    /// Number of distinct structures memoized.
    pub fn len(&self) -> usize {
        self.map.len() + self.path_codes.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.path_codes.is_empty()
    }
}

/// The topologies of one entity pair.
#[derive(Debug, Clone)]
pub struct PairTopologies {
    /// Distinct union graphs with their canonical codes, sorted by code.
    pub unions: Vec<(LGraph, CanonicalCode)>,
    /// The pair's path equivalence classes (sorted signatures).
    pub classes: Vec<PathSig>,
    /// True if any guard rail truncated the product.
    pub truncated: bool,
}

impl PairTopologies {
    /// Number of path equivalence classes (`s` in Definition 2).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// Group paths into equivalence classes by signature (Definition 1).
///
/// Returns classes sorted by signature for determinism.
pub fn path_classes<'p>(g: &DataGraph, paths: &[PathRef<'p>]) -> Vec<(PathSig, Vec<PathRef<'p>>)> {
    let mut by_sig: HashMap<PathSig, Vec<PathRef<'p>>> = HashMap::new();
    for &p in paths {
        by_sig.entry(p.sig(g)).or_default().push(p);
    }
    let mut classes: Vec<(PathSig, Vec<PathRef<'p>>)> = by_sig.into_iter().collect();
    classes.sort_by(|a, b| a.0.cmp(&b.0));
    classes
}

/// Compute `l-Top(a,b)` from the pair's path set (Definition 2),
/// canonicalizing through `memo`.
pub fn pair_topologies(
    g: &DataGraph,
    paths: &[PathRef<'_>],
    opts: TopOptions,
    memo: &mut CanonMemo,
) -> PairTopologies {
    // Fast path for the dominant case: a pair connected by exactly one
    // instance path has exactly one class and one union — the path
    // itself. Skips the class map, the odometer, and the dedup map.
    if let [p] = paths {
        let sig = p.sig(g);
        let mut b = InstanceGraphBuilder::new();
        for i in 0..p.rels.len() {
            let (u, v) = (p.nodes[i], p.nodes[i + 1]);
            b.edge(u, g.node_type(u), v, g.node_type(v), p.rels[i]);
        }
        let union = b.build();
        let code = memo.code_of_path(&sig, &union);
        return PairTopologies {
            unions: vec![(union, code)],
            classes: vec![sig],
            truncated: false,
        };
    }

    let classes = path_classes(g, paths);
    let sigs: Vec<PathSig> = classes.iter().map(|(s, _)| s.clone()).collect();
    let mut truncated = false;

    // Representatives per class, capped.
    let reps: Vec<&[PathRef<'_>]> = classes
        .iter()
        .map(|(_, ps)| {
            if ps.len() > opts.max_reps_per_class {
                truncated = true;
                &ps[..opts.max_reps_per_class]
            } else {
                ps.as_slice()
            }
        })
        .collect();

    let mut seen: HashMap<CanonicalCode, LGraph> = HashMap::new();
    if !reps.is_empty() {
        // Odometer over the Cartesian product of representatives.
        let mut idx = vec![0usize; reps.len()];
        let mut produced = 0usize;
        'outer: loop {
            if produced >= opts.max_product {
                truncated = true;
                break;
            }
            produced += 1;

            let mut b = InstanceGraphBuilder::new();
            for (c, &class_reps) in reps.iter().enumerate() {
                let p = class_reps[idx[c]];
                for i in 0..p.rels.len() {
                    let (u, v) = (p.nodes[i], p.nodes[i + 1]);
                    b.edge(u, g.node_type(u), v, g.node_type(v), p.rels[i]);
                }
            }
            let union = b.build();
            let code = memo.code_of(&union);
            seen.entry(code).or_insert(union);

            // Advance the odometer.
            let mut c = 0;
            loop {
                if c == reps.len() {
                    break 'outer;
                }
                idx[c] += 1;
                if idx[c] < reps[c].len() {
                    break;
                }
                idx[c] = 0;
                c += 1;
            }
        }
    }

    let mut unions: Vec<(LGraph, CanonicalCode)> =
        seen.into_iter().map(|(code, g)| (g, code)).collect();
    unions.sort_by(|a, b| a.1.cmp(&b.1));
    PairTopologies { unions, classes: sigs, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN};
    use ts_graph::paths::enumerate_pair_paths;

    fn tops_of(
        g: &DataGraph,
        pp: &ts_graph::PairPaths,
        a: u32,
        b: u32,
        opts: TopOptions,
    ) -> PairTopologies {
        pair_topologies(g, &pp.paths(a, b), opts, &mut CanonMemo::new())
    }

    #[test]
    fn l_top_78_215_is_t3_and_t4() {
        // Paper §2.2: 3-Top(78,215) = { T3, T4 } — two topologies, because
        // the two representatives of the P-U-D class interact differently
        // with the P-U-P-D path (u103 shared vs u150 distinct).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = tops_of(&g, &pp, p78, d215, TopOptions::default());
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.unions.len(), 2, "expected T3 and T4");
        assert!(!t.truncated);
        // T3 has 4 nodes (shared unigene), T4 has 5.
        let mut node_counts: Vec<usize> = t.unions.iter().map(|(g, _)| g.node_count()).collect();
        node_counts.sort_unstable();
        assert_eq!(node_counts, vec![4, 5]);
    }

    #[test]
    fn l_top_44_742_is_t2_only() {
        // Both paths are isomorphic (one class), so the topology is the
        // single P-U-D path shape T2 — not the double-path T5.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p44 = g.node(PROTEIN, 44).unwrap();
        let d742 = g.node(DNA, 742).unwrap();
        let t = tops_of(&g, &pp, p44, d742, TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 3); // P-U-D path
    }

    #[test]
    fn l_top_32_214_is_t1() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p32 = g.node(PROTEIN, 32).unwrap();
        let d214 = g.node(DNA, 214).unwrap();
        let t = tops_of(&g, &pp, p32, d214, TopOptions::default());
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.unions.len(), 1);
        assert_eq!(t.unions[0].0.node_count(), 2); // P -encodes- D
        assert_eq!(t.unions[0].0.edge_count(), 1);
    }

    #[test]
    fn empty_paths_empty_topologies() {
        let (_db, g, _schema) = figure3();
        let t = pair_topologies(&g, &[], TopOptions::default(), &mut CanonMemo::new());
        assert!(t.unions.is_empty());
        assert_eq!(t.class_count(), 0);
        assert!(!t.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t = tops_of(&g, &pp, p78, d215, TopOptions { max_reps_per_class: 1, max_product: 1 });
        assert!(t.truncated);
        assert!(t.unions.len() <= 1);
    }

    #[test]
    fn classes_sorted_and_deterministic() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let p78 = g.node(PROTEIN, 78).unwrap();
        let d215 = g.node(DNA, 215).unwrap();
        let t1 = tops_of(&g, &pp, p78, d215, TopOptions::default());
        let t2 = tops_of(&g, &pp, p78, d215, TopOptions::default());
        assert_eq!(t1.classes, t2.classes);
        let codes1: Vec<_> = t1.unions.iter().map(|(_, c)| c.clone()).collect();
        let codes2: Vec<_> = t2.unions.iter().map(|(_, c)| c.clone()).collect();
        assert_eq!(codes1, codes2);
        let mut sorted = t1.classes.clone();
        sorted.sort();
        assert_eq!(sorted, t1.classes);
    }

    #[test]
    fn memo_hits_do_not_change_codes() {
        // Running every pair through one shared memo must give the same
        // codes as a fresh memo per pair (i.e. no memoization at all).
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
        let mut shared = CanonMemo::new();
        for (a, b) in pp.sorted_pairs() {
            let with_shared =
                pair_topologies(&g, &pp.paths(a, b), TopOptions::default(), &mut shared);
            let fresh = tops_of(&g, &pp, a, b, TopOptions::default());
            let c1: Vec<_> = with_shared.unions.iter().map(|(_, c)| c.clone()).collect();
            let c2: Vec<_> = fresh.unions.iter().map(|(_, c)| c.clone()).collect();
            assert_eq!(c1, c2);
        }
        assert!(shared.hits > 0, "figure-3 pairs share topology structures");
        assert_eq!(shared.len() as u64, shared.misses);
    }
}
