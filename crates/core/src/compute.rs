//! The Topology Computation module (§4.1): the offline build of the
//! topology catalog from the base data.
//!
//! The paper enumerates all schema paths of length ≤ l between each pair
//! of entity sets, runs one SQL query per schema path, merges the results
//! per entity pair, and computes each pair's l-topology. Our equivalent
//! fuses the per-schema-path queries into one reachability-pruned DFS per
//! source entity (see `ts-graph::paths`), then applies Definition 2 per
//! pair and interns the resulting canonical codes.
//!
//! The per-source work is embarrassingly parallel; with
//! [`ComputeOptions::parallel`] the sources of each entity-set pair are
//! sharded across threads (crossbeam scoped threads), and the shards'
//! results are merged and interned in deterministic order so parallel
//! and serial builds produce identical catalogs.

use std::time::Instant;

use ts_graph::{CanonicalCode, DataGraph, LGraph, Path, PathSig, SchemaGraph};
use ts_storage::Database;

use crate::catalog::{Catalog, EsPair, PairRecord};
use crate::topology::{pair_topologies, TopOptions};
use crate::weak::WeakPolicy;

/// Options for the offline computation.
#[derive(Debug, Clone, Default)]
pub struct ComputeOptions {
    /// Path-length limit `l`.
    pub l: usize,
    /// Guard rails for the Definition-2 product.
    pub top_opts: TopOptions,
    /// Entity-set pairs to compute; `None` = every unordered pair of
    /// distinct entity sets connected by at least one schema walk.
    pub es_pairs: Option<Vec<EsPair>>,
    /// Domain-knowledge weak-relationship pruning (§6.2.3): banned path
    /// signatures are dropped before topology formation.
    pub weak_policy: Option<WeakPolicy>,
    /// Shard source entities across threads.
    pub parallel: bool,
}

impl ComputeOptions {
    /// Defaults at a given `l`.
    pub fn with_l(l: usize) -> Self {
        ComputeOptions { l, ..Default::default() }
    }
}

/// Statistics of one offline build.
#[derive(Debug, Clone, Default)]
pub struct ComputeStats {
    /// Connected entity pairs found.
    pub pairs: u64,
    /// Instance paths enumerated (after weak-policy filtering).
    pub paths: u64,
    /// Instance paths dropped by the weak policy.
    pub weak_paths_dropped: u64,
    /// Pairs whose representative product hit a guard rail.
    pub truncated_pairs: u64,
    /// Distinct topologies interned.
    pub topologies: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// Result of computing one pair, before interning.
struct LocalPair {
    e1: i64,
    e2: i64,
    unions: Vec<(LGraph, CanonicalCode)>,
    sigs: Vec<PathSig>,
    truncated: bool,
    path_count: u64,
}

/// Compute the full catalog.
pub fn compute_catalog(
    db: &Database,
    g: &DataGraph,
    schema: &SchemaGraph,
    opts: &ComputeOptions,
) -> (Catalog, ComputeStats) {
    assert!(opts.l >= 1, "path limit l must be >= 1");
    let start = Instant::now();
    let mut catalog = Catalog::new(opts.l);
    let mut stats = ComputeStats::default();

    let es_pairs = opts.es_pairs.clone().unwrap_or_else(|| default_es_pairs(db, schema, opts.l));

    for espair in es_pairs {
        let locals = compute_espair(g, schema, espair, opts, &mut stats);
        intern_locals(&mut catalog, espair, locals, &mut stats);
    }

    catalog.finalize();
    catalog.truncated_pairs = stats.truncated_pairs;
    stats.topologies = catalog.topology_count();
    stats.millis = start.elapsed().as_secs_f64() * 1e3;
    (catalog, stats)
}

/// Every unordered pair of distinct entity sets with a connecting schema
/// walk of length ≤ l.
pub fn default_es_pairs(db: &Database, schema: &SchemaGraph, l: usize) -> Vec<EsPair> {
    let n = db.entity_sets().len() as u16;
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if schema.walk_count(a, b, l) > 0 {
                out.push(EsPair::new(a, b));
            }
        }
    }
    out
}

fn compute_espair(
    g: &DataGraph,
    schema: &SchemaGraph,
    espair: EsPair,
    opts: &ComputeOptions,
    stats: &mut ComputeStats,
) -> Vec<LocalPair> {
    let sources: Vec<u32> = g.nodes_of_type(espair.from).to_vec();
    if sources.is_empty() {
        return Vec::new();
    }
    if !opts.parallel || sources.len() < 64 {
        let (locals, dropped) = run_shard(g, schema, espair, &sources, opts);
        stats.weak_paths_dropped += dropped;
        return locals;
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let chunk = sources.len().div_ceil(threads);
    let mut results: Vec<(Vec<LocalPair>, u64)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .map(|shard| s.spawn(move || run_shard(g, schema, espair, shard, opts)))
            .collect();
        for h in handles {
            results.push(h.join().expect("shard thread panicked"));
        }
    });
    let mut locals = Vec::new();
    for (mut l, dropped) in results {
        stats.weak_paths_dropped += dropped;
        locals.append(&mut l);
    }
    locals
}

/// Enumerate and compute the pairs reachable from `sources`.
fn run_shard(
    g: &DataGraph,
    schema: &SchemaGraph,
    espair: EsPair,
    sources: &[u32],
    opts: &ComputeOptions,
) -> (Vec<LocalPair>, u64) {
    use std::collections::HashMap;
    let reach = schema.reach_table(espair.to, opts.l);
    let mut dropped = 0u64;
    let mut out = Vec::new();
    for &a in sources {
        // Group this source's paths by destination.
        let mut by_dest: HashMap<u32, Vec<Path>> = HashMap::new();
        for p in ts_graph::paths_from(g, &reach, a, espair.to, opts.l) {
            let (_, b) = p.endpoints();
            if espair.from == espair.to && a > b {
                continue; // same-type pairs discovered from both ends
            }
            if let Some(policy) = &opts.weak_policy {
                if !policy.allows(g, &p) {
                    dropped += 1;
                    continue;
                }
            }
            by_dest.entry(b).or_default().push(p);
        }
        let mut dests: Vec<u32> = by_dest.keys().copied().collect();
        dests.sort_unstable();
        for b in dests {
            let paths = &by_dest[&b];
            let t = pair_topologies(g, paths, opts.top_opts);
            out.push(LocalPair {
                e1: g.node_entity(a),
                e2: g.node_entity(b),
                unions: t.unions,
                sigs: t.classes,
                truncated: t.truncated,
                path_count: paths.len() as u64,
            });
        }
    }
    (out, dropped)
}

/// Intern shard results deterministically.
fn intern_locals(
    catalog: &mut Catalog,
    espair: EsPair,
    mut locals: Vec<LocalPair>,
    stats: &mut ComputeStats,
) {
    locals.sort_by_key(|p| (p.e1, p.e2));
    for lp in locals {
        stats.pairs += 1;
        stats.paths += lp.path_count;
        if lp.truncated {
            stats.truncated_pairs += 1;
        }
        let sigs: Vec<u32> = lp.sigs.into_iter().map(|s| catalog.intern_sig(s)).collect();
        let mut topos = Vec::with_capacity(lp.unions.len());
        for (graph, code) in lp.unions {
            let path_sig = path_sig_of_graph(&graph, espair);
            topos.push(catalog.intern_topology(espair, graph, code, path_sig));
        }
        topos.sort_unstable();
        topos.dedup();
        catalog.add_pair(PairRecord { espair, e1: lp.e1, e2: lp.e2, topos, sigs });
    }
}

/// If `graph` is a single simple path whose two endpoints carry the
/// espair's entity-set labels, return the path's signature. Such
/// topologies are eligible for pruning with an online path check.
pub fn path_sig_of_graph(graph: &LGraph, espair: EsPair) -> Option<PathSig> {
    let n = graph.node_count();
    if n < 2 || graph.edge_count() != n - 1 {
        return None;
    }
    let mut ends = Vec::new();
    for v in 0..n as u8 {
        match graph.degree(v) {
            1 => ends.push(v),
            2 => {}
            _ => return None,
        }
    }
    if ends.len() != 2 {
        return None;
    }
    let mut end_labels = [graph.labels[ends[0] as usize], graph.labels[ends[1] as usize]];
    end_labels.sort_unstable();
    if end_labels != [espair.from.min(espair.to), espair.from.max(espair.to)] {
        return None;
    }
    // Walk the path from one end.
    let mut types = vec![graph.labels[ends[0] as usize]];
    let mut rels = Vec::new();
    let mut prev: Option<u8> = None;
    let mut cur = ends[0];
    while types.len() < n {
        let (rel, next) = graph.neighbors(cur).into_iter().find(|&(_, w)| Some(w) != prev)?;
        rels.push(rel);
        types.push(graph.labels[next as usize]);
        prev = Some(cur);
        cur = next;
    }
    Some(crate::weak::sig_from_labels(&types, &rels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN, UNIGENE};

    fn build(parallel: bool) -> (Catalog, ComputeStats) {
        let (db, g, schema) = figure3();
        let opts = ComputeOptions { l: 3, parallel, ..ComputeOptions::with_l(3) };
        compute_catalog(&db, &g, &schema, &opts)
    }

    #[test]
    fn figure3_catalog_has_paper_topologies() {
        let (cat, stats) = build(false);
        // Catalog-wide P-D topologies: T1..T4 of Fig. 5 plus the triangle
        // of pair (34, 215), which has both a direct encodes edge and a
        // P-U-D path. (The paper's query result is {T1..T4} because its
        // 'enzyme' predicate excludes protein 34 — asserted in the
        // full_top tests.)
        let pd = EsPair::new(PROTEIN, DNA);
        let tops = cat.topologies_for(pd);
        assert_eq!(tops.len(), 5, "expected T1..T4 + (34,215)'s triangle, got {tops:?}");
        assert!(stats.pairs >= 4);
        assert_eq!(stats.topologies, cat.topology_count());
        // Each P-D topology is carried by exactly one pair here.
        let freqs = cat.freq_distribution(pd);
        assert_eq!(freqs, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (c1, _) = build(false);
        let (c2, _) = build(true);
        assert_eq!(c1.topology_count(), c2.topology_count());
        assert_eq!(c1.pairs.len(), c2.pairs.len());
        for (a, b) in c1.pairs.iter().zip(c2.pairs.iter()) {
            assert_eq!((a.espair, a.e1, a.e2), (b.espair, b.e1, b.e2));
            assert_eq!(a.topos, b.topos);
        }
        for (m1, m2) in c1.metas().iter().zip(c2.metas().iter()) {
            assert_eq!(m1.code, m2.code);
            assert_eq!(m1.freq, m2.freq);
        }
    }

    #[test]
    fn default_es_pairs_cover_connected_sets() {
        let (db, _g, schema) = figure3();
        let pairs = default_es_pairs(&db, &schema, 3);
        assert_eq!(pairs.len(), 3); // P-U, P-D, U-D
        assert!(pairs.contains(&EsPair::new(PROTEIN, DNA)));
    }

    #[test]
    fn alltops_rows_match_pair_topologies() {
        let (cat, _) = build(false);
        let expected: usize = cat.pairs.iter().map(|p| p.topos.len()).sum();
        assert_eq!(cat.alltops.len(), expected);
        assert_eq!(cat.lefttops.len(), expected); // nothing pruned yet
        assert_eq!(cat.excptops.len(), 0);
    }

    #[test]
    fn weak_policy_drops_paths_and_changes_catalog() {
        let (db, g, schema) = figure3();
        let mut policy = WeakPolicy::new();
        // Ban P-U-P-D (the length-3 class through a second protein).
        policy.ban_walk(&[PROTEIN, UNIGENE, PROTEIN, DNA], &[1, 1, 0]);
        let opts = ComputeOptions { weak_policy: Some(policy), ..ComputeOptions::with_l(3) };
        let (cat, stats) = compute_catalog(&db, &g, &schema, &opts);
        assert!(stats.weak_paths_dropped > 0);
        // Without the P-U-P-D path, pair (78,215) has a single class and
        // its topology collapses to T2; T3/T4 disappear. The (34,215)
        // triangle is unaffected.
        let pd = EsPair::new(PROTEIN, DNA);
        assert_eq!(cat.topologies_for(pd).len(), 3); // T1, T2, triangle
    }

    #[test]
    fn path_sig_of_graph_detects_paths() {
        let (cat, _) = build(false);
        let pd = EsPair::new(PROTEIN, DNA);
        let mut path_shaped = 0;
        for &tid in &cat.topologies_for(pd) {
            if cat.meta(tid).path_sig.is_some() {
                path_shaped += 1;
            }
        }
        // T1 (P-D) and T2 (P-U-D) are paths; T3, T4 are not.
        assert_eq!(path_shaped, 2);
    }

    #[test]
    fn stats_millis_positive() {
        let (_, stats) = build(false);
        assert!(stats.millis > 0.0);
    }
}
