//! The Topology Computation module (§4.1): the offline build of the
//! topology catalog from the base data.
//!
//! The paper enumerates all schema paths of length ≤ l between each pair
//! of entity sets, runs one SQL query per schema path, merges the results
//! per entity pair, and computes each pair's l-topology. Our equivalent
//! fuses the per-schema-path queries into one reachability-pruned DFS per
//! source entity (see `ts-graph::paths`), then applies Definition 2 per
//! pair and interns the resulting canonical codes.
//!
//! This is the system's hot path — online queries are only fast because
//! this finished — so it is built allocation-lean:
//!
//! * each worker enumerates into a reusable [`PathArena`] (no `Vec` pair
//!   per instance path) and groups paths by destination with one sorted
//!   scratch vector (no per-source hash map);
//! * canonical codes are memoized per worker ([`CanonMemo`]), so the
//!   backtracking search runs once per distinct union structure instead
//!   of once per pair — the hit rate is reported in [`ComputeStats`];
//! * with [`ComputeOptions::parallel`], workers pull chunks of source
//!   entities off an atomic counter (work stealing — no static shard can
//!   straggle) under `std::thread::scope`, and results are merged and
//!   interned in deterministic order so parallel and serial builds
//!   produce identical catalogs.

use std::hash::BuildHasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ts_graph::{CanonicalCode, DataGraph, LGraph, PathArena, PathSig, SchemaGraph};
use ts_storage::cast;
use ts_storage::faults::{self, sites};
use ts_storage::{Database, FastBuildHasher};

use crate::catalog::{Catalog, EsPair, TopologyId};
use crate::topology::{
    pair_topologies_into, CanonMemoH, PairTops, SigInterner, TopOptions, TopScratch,
};
use crate::weak::WeakPolicy;

/// Options for the offline computation.
#[derive(Debug, Clone)]
pub struct ComputeOptions {
    /// Path-length limit `l`.
    pub l: usize,
    /// Guard rails for the Definition-2 product.
    pub top_opts: TopOptions,
    /// Entity-set pairs to compute; `None` = every unordered pair of
    /// distinct entity sets connected by at least one schema walk.
    pub es_pairs: Option<Vec<EsPair>>,
    /// Domain-knowledge weak-relationship pruning (§6.2.3): banned path
    /// signatures are dropped before topology formation.
    pub weak_policy: Option<WeakPolicy>,
    /// Pull source entities off a shared work queue across threads.
    pub parallel: bool,
    /// Minimum sources per entity-set pair before threads are spawned;
    /// below it the serial path is cheaper. Tests lower it to force the
    /// parallel machinery onto tiny fixtures.
    pub min_parallel_sources: usize,
    /// Worker-thread cap for the parallel build; `0` means "one per
    /// available core". The determinism tests sweep this to prove the
    /// merge erases the schedule.
    pub max_threads: usize,
}

impl Default for ComputeOptions {
    fn default() -> Self {
        ComputeOptions {
            l: 0,
            top_opts: TopOptions::default(),
            es_pairs: None,
            weak_policy: None,
            parallel: false,
            min_parallel_sources: 64,
            max_threads: 0,
        }
    }
}

impl ComputeOptions {
    /// Defaults at a given `l`.
    pub fn with_l(l: usize) -> Self {
        ComputeOptions { l, ..Default::default() }
    }
}

/// Statistics of one offline build.
#[derive(Debug, Clone, Default)]
pub struct ComputeStats {
    /// Connected entity pairs found.
    pub pairs: u64,
    /// Instance paths enumerated (after weak-policy filtering).
    pub paths: u64,
    /// Instance paths dropped by the weak policy.
    pub weak_paths_dropped: u64,
    /// Pairs whose representative product hit a guard rail.
    pub truncated_pairs: u64,
    /// Distinct topologies interned.
    pub topologies: usize,
    /// Canonicalizer memo hits (union graphs answered without running
    /// the backtracking search).
    pub canon_hits: u64,
    /// Canonicalizer memo misses (backtracking searches actually run).
    pub canon_misses: u64,
    /// Full path-signature hash computations performed during the build
    /// (the bench records this as `sig_hash_once`). Exactly one per
    /// (pair, class) interner probe: grouping is sort-based, single-path
    /// memoization is id-indexed, and the catalog re-interns worker
    /// signatures from their cached hashes — none of those hash a
    /// signature again.
    pub sig_hashes: u64,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

impl ComputeStats {
    /// Fraction of canonicalizations answered from the memo.
    pub fn canon_hit_rate(&self) -> f64 {
        let total = self.canon_hits + self.canon_misses;
        if total == 0 {
            return 0.0;
        }
        self.canon_hits as f64 / total as f64
    }
}

/// Result of computing one pair: ranges into the worker's flat result
/// arenas (the old form owned two heap `Vec`s per pair).
#[derive(Debug, Clone, Copy)]
struct LocalPair {
    e1: i64,
    e2: i64,
    path_count: u64,
    truncated: bool,
    /// Range in the worker's union arena.
    unions: (u32, u32),
    /// Range in the worker's class-id arena.
    classes: (u32, u32),
}

/// Everything one worker hands to the deterministic merge.
struct WorkerOut {
    locals: Vec<LocalPair>,
    /// Flat arena of all pairs' distinct unions, addressed by
    /// `LocalPair::unions` ranges.
    unions: Vec<(LGraph, CanonicalCode)>,
    /// Flat arena of all pairs' class ids (worker-local).
    class_ids: Vec<u32>,
    /// Worker-local signature table: id → (signature, cached fast hash).
    sig_table: Vec<(PathSig, u64)>,
    dropped: u64,
    canon_hits: u64,
    canon_misses: u64,
    sig_hashes: u64,
}

/// A failed offline build.
#[derive(Debug)]
pub enum ComputeError {
    /// A build worker panicked. All surviving workers were joined first,
    /// so no thread is left running; the partial build is discarded
    /// rather than interned into a half-empty catalog.
    WorkerPanicked {
        /// The panic payload, rendered to text when it was a string.
        detail: String,
    },
}

impl std::fmt::Display for ComputeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeError::WorkerPanicked { detail } => {
                write!(f, "catalog build worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for ComputeError {}

/// Render a panic payload for [`ComputeError::WorkerPanicked`] (and for
/// the serving layer's per-query panic isolation).
pub fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compute the full catalog.
///
/// A panicking build worker propagates the panic (historically it
/// aborted via a bare `join().expect`). Callers that must survive a
/// poisoned build — the serving layer rebuilding a snapshot under
/// fault injection — use [`try_compute_catalog`] instead.
pub fn compute_catalog(
    db: &Database,
    g: &DataGraph,
    schema: &SchemaGraph,
    opts: &ComputeOptions,
) -> (Catalog, ComputeStats) {
    compute_catalog_with_hasher::<FastBuildHasher>(db, g, schema, opts)
}

/// [`compute_catalog`] with worker panics caught and returned as a typed
/// [`ComputeError`] — every worker is joined before the error is
/// reported, so the process keeps running with no leaked threads.
pub fn try_compute_catalog(
    db: &Database,
    g: &DataGraph,
    schema: &SchemaGraph,
    opts: &ComputeOptions,
) -> Result<(Catalog, ComputeStats), ComputeError> {
    try_compute_catalog_with_hasher::<FastBuildHasher>(db, g, schema, opts)
}

/// [`compute_catalog`], generic over the hasher of the worker-side memo
/// maps. Production always builds with the fast hasher (the public
/// function above); the determinism guard in
/// `tests/hasher_equivalence.rs` rebuilds with `std`'s randomly-seeded
/// SipHash and asserts the catalogs are byte-identical — proof that no
/// output depends on map iteration order. (The catalog-side interner
/// maps are not parameterized: they are lookup-only and never iterated.)
pub fn compute_catalog_with_hasher<S: BuildHasher + Default>(
    db: &Database,
    g: &DataGraph,
    schema: &SchemaGraph,
    opts: &ComputeOptions,
) -> (Catalog, ComputeStats) {
    // lint: allow(unwrap-in-lib): re-raises a worker panic that the try_
    // path caught — the historical contract of this infallible entry point
    try_compute_catalog_with_hasher::<S>(db, g, schema, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_compute_catalog`], generic over the worker-memo hasher like
/// [`compute_catalog_with_hasher`].
pub fn try_compute_catalog_with_hasher<S: BuildHasher + Default>(
    db: &Database,
    g: &DataGraph,
    schema: &SchemaGraph,
    opts: &ComputeOptions,
) -> Result<(Catalog, ComputeStats), ComputeError> {
    assert!(opts.l >= 1, "path limit l must be >= 1");
    // lint: allow(nondeterministic-source): wall-clock timing statistic only;
    // it lands in ComputeStats::millis and never reaches catalog bytes
    let start = Instant::now();
    let mut catalog = Catalog::new(opts.l);
    let mut stats = ComputeStats::default();

    let default_pairs;
    let es_pairs: &[EsPair] = match &opts.es_pairs {
        Some(pairs) => pairs,
        None => {
            default_pairs = default_es_pairs(db, schema, opts.l);
            &default_pairs
        }
    };

    for &espair in es_pairs {
        let outs = compute_espair::<S>(g, schema, espair, opts)?;
        intern_locals(&mut catalog, espair, outs, &mut stats);
    }

    catalog.finalize();
    catalog.truncated_pairs = stats.truncated_pairs;
    stats.topologies = catalog.topology_count();
    stats.millis = start.elapsed().as_secs_f64() * 1e3;
    Ok((catalog, stats))
}

/// Every unordered pair of distinct entity sets with a connecting schema
/// walk of length ≤ l.
pub fn default_es_pairs(db: &Database, schema: &SchemaGraph, l: usize) -> Vec<EsPair> {
    let n = cast::to_u16(db.entity_sets().len());
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if schema.walk_count(a, b, l) > 0 {
                out.push(EsPair::new(a, b));
            }
        }
    }
    out
}

/// Per-thread state of the offline build: reusable enumeration buffers,
/// the canonicalizer memo, the signature interner, and one
/// `PairTopologies`-shaped scratch ([`PairTops`]) reused for every pair.
/// One per worker; nothing is shared, so the hot loop takes no locks and
/// a warm worker allocates only the unions it keeps.
struct Worker<'a, S: BuildHasher + Default> {
    g: &'a DataGraph,
    reach: &'a [Vec<bool>],
    espair: EsPair,
    opts: &'a ComputeOptions,
    /// Shared path store, cleared per source.
    arena: PathArena,
    /// `(destination, arena index)` scratch, sorted to group by pair.
    keyed: Vec<(u32, u32)>,
    memo: CanonMemoH<S>,
    /// Worker-local signature interner: each signature hashed once, the
    /// hash cached alongside the id for the merge phase.
    sigs: SigInterner,
    /// Grouping/odometer/builder buffers, reused across pairs.
    scratch: TopScratch,
    /// The per-pair result scratch, drained into the flat arenas below.
    tops: PairTops,
    unions: Vec<(LGraph, CanonicalCode)>,
    class_ids: Vec<u32>,
    locals: Vec<LocalPair>,
    dropped: u64,
}

impl<'a, S: BuildHasher + Default> Worker<'a, S> {
    fn new(
        g: &'a DataGraph,
        reach: &'a [Vec<bool>],
        espair: EsPair,
        opts: &'a ComputeOptions,
    ) -> Self {
        Worker {
            g,
            reach,
            espair,
            opts,
            arena: PathArena::new(),
            keyed: Vec::new(),
            memo: CanonMemoH::new(),
            sigs: SigInterner::new(),
            scratch: TopScratch::new(),
            tops: PairTops::default(),
            unions: Vec::new(),
            class_ids: Vec::new(),
            locals: Vec::new(),
            dropped: 0,
        }
    }

    /// Enumerate and compute every pair reachable from source `a`.
    fn run_source(&mut self, a: u32) {
        self.arena.clear();
        self.keyed.clear();
        ts_graph::paths_from_into(
            self.g,
            self.reach,
            a,
            self.espair.to,
            self.opts.l,
            &mut self.arena,
        );
        for idx in 0..self.arena.len() {
            let p = self.arena.get(idx);
            let (_, b) = p.endpoints();
            if self.espair.from == self.espair.to && a > b {
                continue; // same-type pairs discovered from both ends
            }
            if let Some(policy) = &self.opts.weak_policy {
                if !policy.allows(self.g, p) {
                    self.dropped += 1;
                    continue;
                }
            }
            self.keyed.push((b, cast::to_u32(idx)));
        }
        // Group by destination: one sort of the scratch vector replaces
        // the seed's per-source hash map (and its key re-hash per group).
        self.keyed.sort_unstable();
        // One reusable ref buffer for every destination group of this
        // source (the old per-group `collect` allocated once per pair).
        let mut refs: Vec<ts_graph::PathRef<'_>> = Vec::new();
        let mut i = 0;
        while i < self.keyed.len() {
            let b = self.keyed[i].0;
            let mut j = i;
            while j < self.keyed.len() && self.keyed[j].0 == b {
                j += 1;
            }
            refs.clear();
            refs.extend(self.keyed[i..j].iter().map(|&(_, idx)| self.arena.get(idx as usize)));
            pair_topologies_into(
                self.g,
                &refs,
                self.opts.top_opts,
                &mut self.memo,
                &mut self.sigs,
                &mut self.scratch,
                &mut self.tops,
            );
            // Drain the pair scratch into the flat result arenas; the
            // scratch keeps its capacity for the next pair.
            let u0 = cast::to_u32(self.unions.len());
            self.unions.append(&mut self.tops.unions);
            let c0 = cast::to_u32(self.class_ids.len());
            self.class_ids.extend_from_slice(&self.tops.class_ids);
            self.locals.push(LocalPair {
                e1: self.g.node_entity(a),
                e2: self.g.node_entity(b),
                path_count: (j - i) as u64,
                truncated: self.tops.truncated,
                unions: (u0, cast::to_u32(self.unions.len())),
                classes: (c0, cast::to_u32(self.class_ids.len())),
            });
            i = j;
        }
    }

    fn finish(self) -> WorkerOut {
        WorkerOut {
            locals: self.locals,
            unions: self.unions,
            class_ids: self.class_ids,
            dropped: self.dropped,
            canon_hits: self.memo.hits,
            canon_misses: self.memo.misses,
            sig_hashes: self.sigs.hashes,
            sig_table: self.sigs.into_table(),
        }
    }
}

fn compute_espair<S: BuildHasher + Default>(
    g: &DataGraph,
    schema: &SchemaGraph,
    espair: EsPair,
    opts: &ComputeOptions,
) -> Result<Vec<WorkerOut>, ComputeError> {
    let sources: &[u32] = g.nodes_of_type(espair.from);
    if sources.is_empty() {
        return Ok(Vec::new());
    }
    let reach = schema.reach_table(espair.to, opts.l);

    let mut results: Vec<WorkerOut> = Vec::new();
    if !opts.parallel || sources.len() < opts.min_parallel_sources {
        // lint: allow(catch-unwind-audit): confines a (possibly injected)
        // per-source panic so the serial build reports the same typed
        // ComputeError as the parallel path's joined workers
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut w = Worker::<S>::new(g, &reach, espair, opts);
            for &a in sources {
                let _ = faults::fire(sites::CORE_COMPUTE_WORKER);
                w.run_source(a);
            }
            w.finish()
        }));
        match caught {
            Ok(out) => results.push(out),
            Err(payload) => {
                return Err(ComputeError::WorkerPanicked { detail: panic_detail(payload) })
            }
        }
    } else {
        // Auto mode caps at 16 to avoid over-spawning on large boxes;
        // an explicit max_threads is honored as given.
        let threads = match opts.max_threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16),
            n => n,
        }
        .min(sources.len());
        // Chunked work stealing: workers pull the next chunk of sources
        // off an atomic cursor, so a straggler chunk (one hub entity with
        // a huge path neighbourhood) never idles the other threads the
        // way the seed's static equal shards did. Chunks are small enough
        // to balance, large enough to keep cursor traffic negligible.
        let chunk = (sources.len() / (threads * 8)).clamp(1, 256);
        let cursor = AtomicUsize::new(0);
        // Join EVERY handle before inspecting any result: an early return
        // from inside `thread::scope` would re-raise the first panic at
        // the scope boundary and abort the caller — exactly the failure
        // mode this function exists to remove.
        let joined: Vec<std::thread::Result<WorkerOut>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let reach = &reach;
                    s.spawn(move || {
                        let mut w = Worker::<S>::new(g, reach, espair, opts);
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= sources.len() {
                                break;
                            }
                            for &a in &sources[start..(start + chunk).min(sources.len())] {
                                let _ = faults::fire(sites::CORE_COMPUTE_WORKER);
                                w.run_source(a);
                            }
                        }
                        w.finish()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        for j in joined {
            match j {
                Ok(out) => results.push(out),
                Err(payload) => {
                    return Err(ComputeError::WorkerPanicked { detail: panic_detail(payload) })
                }
            }
        }
    }
    Ok(results)
}

/// Intern worker results deterministically: pairs are sorted by entity
/// ids before touching the catalog, so the interning order — and with it
/// every id in the catalog — is independent of how many workers ran and
/// which chunks they pulled. Worker-local signature ids are resolved to
/// catalog ids lazily, in merge order, through each worker's cached
/// hashes — the catalog interner never re-hashes a signature.
fn intern_locals(
    catalog: &mut Catalog,
    espair: EsPair,
    mut outs: Vec<WorkerOut>,
    stats: &mut ComputeStats,
) {
    let (mut n_pairs, mut n_topos, mut n_sigs) = (0usize, 0usize, 0usize);
    for o in &outs {
        stats.weak_paths_dropped += o.dropped;
        stats.canon_hits += o.canon_hits;
        stats.canon_misses += o.canon_misses;
        stats.sig_hashes += o.sig_hashes;
        n_pairs += o.locals.len();
        n_topos += o.unions.len();
        n_sigs += o.class_ids.len();
    }
    catalog.reserve_pairs(n_pairs, n_topos, n_sigs);
    // Merge order: (e1, e2), regardless of which worker computed a pair.
    let mut order: Vec<(i64, i64, u32, u32)> = Vec::with_capacity(n_pairs);
    for (w, o) in outs.iter().enumerate() {
        for (l, lp) in o.locals.iter().enumerate() {
            order.push((lp.e1, lp.e2, cast::to_u32(w), cast::to_u32(l)));
        }
    }
    order.sort_unstable();
    // Per-worker map: local signature id → catalog id (u32::MAX =
    // unresolved). First use interns through the worker's cached hash.
    let mut sig_maps: Vec<Vec<u32>> =
        outs.iter().map(|o| vec![u32::MAX; o.sig_table.len()]).collect();
    // Two scratch vectors reused across every pair of the espair; the
    // CSR store copies out of them, so nothing per-pair survives.
    let mut topos: Vec<TopologyId> = Vec::new();
    let mut sigs: Vec<u32> = Vec::new();
    for (e1, e2, w, l) in order {
        let out = &mut outs[w as usize];
        let lp = out.locals[l as usize];
        stats.pairs += 1;
        stats.paths += lp.path_count;
        if lp.truncated {
            stats.truncated_pairs += 1;
        }
        sigs.clear();
        for idx in lp.classes.0..lp.classes.1 {
            let lid = out.class_ids[idx as usize] as usize;
            let mapped = sig_maps[w as usize][lid];
            let gid = if mapped == u32::MAX {
                let (sig, hash) =
                    std::mem::replace(&mut out.sig_table[lid], (PathSig(Vec::new()), 0));
                let gid = catalog.intern_sig_prehashed(sig, hash);
                sig_maps[w as usize][lid] = gid;
                gid
            } else {
                mapped
            };
            sigs.push(gid);
        }
        topos.clear();
        for idx in lp.unions.0..lp.unions.1 {
            let (graph, code) = std::mem::replace(
                &mut out.unions[idx as usize],
                (LGraph::new(), CanonicalCode::default()),
            );
            // The path-shape detection (allocating walk of the structure
            // graph) runs only for genuinely new topologies — once per
            // distinct topology instead of once per pair incidence.
            topos.push(
                catalog
                    .intern_topology_with(espair, graph, code, |gr| path_sig_of_graph(gr, espair)),
            );
        }
        topos.sort_unstable();
        topos.dedup();
        catalog.add_pair(espair, e1, e2, &topos, &sigs);
    }
}

/// If `graph` is a single simple path whose two endpoints carry the
/// espair's entity-set labels, return the path's signature. Such
/// topologies are eligible for pruning with an online path check.
pub fn path_sig_of_graph(graph: &ts_graph::LGraph, espair: EsPair) -> Option<ts_graph::PathSig> {
    let n = graph.node_count();
    if n < 2 || graph.edge_count() != n - 1 {
        return None;
    }
    let mut ends = Vec::new();
    for v in 0..cast::to_u8(n) {
        match graph.degree(v) {
            1 => ends.push(v),
            2 => {}
            _ => return None,
        }
    }
    if ends.len() != 2 {
        return None;
    }
    let mut end_labels = [graph.labels[ends[0] as usize], graph.labels[ends[1] as usize]];
    end_labels.sort_unstable();
    if end_labels != [espair.from.min(espair.to), espair.from.max(espair.to)] {
        return None;
    }
    // Walk the path from one end.
    let mut types = vec![graph.labels[ends[0] as usize]];
    let mut rels = Vec::new();
    let mut prev: Option<u8> = None;
    let mut cur = ends[0];
    while types.len() < n {
        let (rel, next) = graph.neighbors(cur).into_iter().find(|&(_, w)| Some(w) != prev)?;
        rels.push(rel);
        types.push(graph.labels[next as usize]);
        prev = Some(cur);
        cur = next;
    }
    Some(crate::weak::sig_from_labels(&types, &rels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::fixtures::{figure3, DNA, PROTEIN, UNIGENE};

    fn build(parallel: bool) -> (Catalog, ComputeStats) {
        let (db, g, schema) = figure3();
        // min_parallel_sources = 1 forces real threads even on the tiny
        // figure-3 fixture, so the work-stealing path is exercised.
        let opts =
            ComputeOptions { parallel, min_parallel_sources: 1, ..ComputeOptions::with_l(3) };
        compute_catalog(&db, &g, &schema, &opts)
    }

    #[test]
    fn figure3_catalog_has_paper_topologies() {
        let (cat, stats) = build(false);
        // Catalog-wide P-D topologies: T1..T4 of Fig. 5 plus the triangle
        // of pair (34, 215), which has both a direct encodes edge and a
        // P-U-D path. (The paper's query result is {T1..T4} because its
        // 'enzyme' predicate excludes protein 34 — asserted in the
        // full_top tests.)
        let pd = EsPair::new(PROTEIN, DNA);
        let tops = cat.topologies_for(pd);
        assert_eq!(tops.len(), 5, "expected T1..T4 + (34,215)'s triangle, got {tops:?}");
        assert!(stats.pairs >= 4);
        assert_eq!(stats.topologies, cat.topology_count());
        // Each P-D topology is carried by exactly one pair here.
        let freqs = cat.freq_distribution(pd);
        assert_eq!(freqs, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (c1, s1) = build(false);
        let (c2, s2) = build(true);
        assert_eq!(c1.topology_count(), c2.topology_count());
        assert_eq!(c1.sig_count(), c2.sig_count());
        assert_eq!(c1.pair_count(), c2.pair_count());
        for (a, b) in c1.pairs().zip(c2.pairs()) {
            assert_eq!((a.espair, a.e1, a.e2), (b.espair, b.e1, b.e2));
            assert_eq!(a.topos, b.topos);
            assert_eq!(a.sigs, b.sigs);
        }
        for (m1, m2) in c1.metas().iter().zip(c2.metas().iter()) {
            assert_eq!(m1.code, m2.code);
            assert_eq!(m1.code_id, m2.code_id);
            assert_eq!(m1.freq, m2.freq);
            assert_eq!(m1.espair, m2.espair);
            assert_eq!(m1.path_sig, m2.path_sig);
        }
        // The materialized tables must agree row for row as well.
        assert_eq!(c1.alltops.len(), c2.alltops.len());
        for (r1, r2) in c1.alltops.rows().zip(c2.alltops.rows()) {
            assert_eq!(r1, r2);
        }
        // Aggregate work is identical even though memo locality differs.
        assert_eq!((s1.pairs, s1.paths), (s2.pairs, s2.paths));
    }

    #[test]
    fn default_es_pairs_cover_connected_sets() {
        let (db, _g, schema) = figure3();
        let pairs = default_es_pairs(&db, &schema, 3);
        assert_eq!(pairs.len(), 3); // P-U, P-D, U-D
        assert!(pairs.contains(&EsPair::new(PROTEIN, DNA)));
    }

    #[test]
    fn alltops_rows_match_pair_topologies() {
        let (cat, _) = build(false);
        let expected: usize = cat.pairs().map(|p| p.topos.len()).sum();
        assert_eq!(cat.alltops.len(), expected);
        assert_eq!(cat.pair_topo_buffer().len(), expected);
        assert_eq!(cat.lefttops.len(), expected); // nothing pruned yet
        assert_eq!(cat.excptops.len(), 0);
    }

    #[test]
    fn weak_policy_drops_paths_and_changes_catalog() {
        let (db, g, schema) = figure3();
        let mut policy = WeakPolicy::new();
        // Ban P-U-P-D (the length-3 class through a second protein).
        policy.ban_walk(&[PROTEIN, UNIGENE, PROTEIN, DNA], &[1, 1, 0]);
        let opts = ComputeOptions { weak_policy: Some(policy), ..ComputeOptions::with_l(3) };
        let (cat, stats) = compute_catalog(&db, &g, &schema, &opts);
        assert!(stats.weak_paths_dropped > 0);
        // Without the P-U-P-D path, pair (78,215) has a single class and
        // its topology collapses to T2; T3/T4 disappear. The (34,215)
        // triangle is unaffected.
        let pd = EsPair::new(PROTEIN, DNA);
        assert_eq!(cat.topologies_for(pd).len(), 3); // T1, T2, triangle
    }

    #[test]
    fn path_sig_of_graph_detects_paths() {
        let (cat, _) = build(false);
        let pd = EsPair::new(PROTEIN, DNA);
        let mut path_shaped = 0;
        for &tid in &cat.topologies_for(pd) {
            if cat.meta(tid).path_sig.is_some() {
                path_shaped += 1;
            }
        }
        // T1 (P-D) and T2 (P-U-D) are paths; T3, T4 are not.
        assert_eq!(path_shaped, 2);
    }

    #[test]
    fn canon_memo_hit_rate_reported() {
        let (_, stats) = build(false);
        assert!(stats.canon_misses > 0, "at least one real canonicalization runs");
        assert!(stats.canon_hits > 0, "figure-3 repeats topology structures across pairs");
        let rate = stats.canon_hit_rate();
        assert!(rate > 0.0 && rate < 1.0, "hit rate {rate} out of range");
        assert_eq!(ComputeStats::default().canon_hit_rate(), 0.0);
    }

    #[test]
    fn stats_millis_positive() {
        let (_, stats) = build(false);
        assert!(stats.millis > 0.0);
    }
}
