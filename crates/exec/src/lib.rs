//! # ts-exec
//!
//! A Volcano-style iterator execution engine (Graefe & McKenna's
//! `getNext` interface, which the paper cites in §5.3) extended with the
//! paper's **Distinct Group Join (DGJ)** operator family.
//!
//! DGJ operators have the two properties of §5.3:
//!
//! * **(a)** they understand groups of tuples, preserve the order of
//!   groups from input to output, and
//! * **(b)** they can efficiently skip from one group to the next via
//!   [`Operator::advance_to_next_group`] — the hook that makes
//!   early-termination top-k topology evaluation possible.
//!
//! Two implementations are provided, exactly as in the paper: [`Idgj`]
//! (index nested-loops) and [`Hdgj`] (hash join executed a group at a
//! time, re-evaluating the inner per group). Regular operators
//! (scans, filters, hash join, index NLJ, sort, distinct, limit, union)
//! complete the engine so that every strategy of the evaluation runs on
//! the same substrate.
//!
//! All operators share a [`Work`] counter that meters tuples processed
//! and index probes — a machine-independent cost figure reported next to
//! wall-clock time in the benchmark harnesses. A [`Work`] built with
//! [`Work::with_budget`] additionally enforces a per-query [`Budget`]
//! (deadline, step/row quotas, cancellation token): operators poll it at
//! their batch boundaries and surface exhaustion as end-of-stream, which
//! the serving layer (`ts-server`) turns into graceful degradation.

#![forbid(unsafe_code)]

pub mod batch;
pub mod dgj;
pub mod driver;
pub mod join;
pub mod op;
pub mod scan;
pub mod simple;
pub mod sort;

pub use batch::{
    batch_rows, engine, set_batch_rows, set_engine, Batch, BatchOperator, BoxedBatchOp, Col,
    Engine, DEFAULT_BATCH_ROWS,
};
pub use dgj::{BatchHdgj, BatchIdgj, Hdgj, Idgj};
pub use driver::{
    batch_collect_all, batch_collect_all_budgeted, batch_collect_distinct_groups,
    batch_collect_distinct_topk, batch_collect_distinct_topk_budgeted, collect_all,
    collect_all_budgeted, collect_distinct_groups, collect_distinct_topk,
    collect_distinct_topk_budgeted,
};
pub use join::{BatchHashJoin, BatchIndexNlJoin, HashJoin, IndexNlJoin};
pub use op::{BoxedOp, Budget, Exhausted, Operator, Work};
pub use scan::{
    BatchIndexLookupScan, BatchTableScan, BatchValuesScan, IndexLookupScan, TableScan, ValuesScan,
};
pub use simple::{
    BatchDistinct, BatchFilter, BatchLimit, BatchProject, BatchUnionAll, Distinct, Filter, Limit,
    Project, UnionAll,
};
pub use sort::{BatchSort, Dir, Sort};
