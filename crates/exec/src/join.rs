//! Regular (non-DGJ) join operators: hash join and index nested loops.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{FastMap, Row, Table, Value};

use crate::batch::{Batch, BatchOperator, BoxedBatchOp};
use crate::op::{BoxedOp, Operator, Work};

/// Classic hash join: materializes and hashes the build side once, then
/// streams the probe side. Output is `probe_row ++ build_row`.
///
/// As §5.2 of the paper notes, a regular hash join does **not** preserve
/// the order of groups cheaply exploitable for skipping — it reports
/// `grouped() == false`, which is exactly why the ET plans need DGJ
/// operators instead.
pub struct HashJoin<'a> {
    probe: BoxedOp<'a>,
    build: BoxedOp<'a>,
    probe_col: usize,
    build_col: usize,
    table: Option<FastMap<Value, Vec<Row>>>,
    /// Matches pending for the current probe row.
    pending: Vec<Row>,
    work: Work,
}

impl<'a> HashJoin<'a> {
    /// Join `probe` and `build` on `probe_col = build_col`.
    pub fn new(
        probe: BoxedOp<'a>,
        probe_col: usize,
        build: BoxedOp<'a>,
        build_col: usize,
        work: Work,
    ) -> Self {
        HashJoin { probe, build, probe_col, build_col, table: None, pending: Vec::new(), work }
    }

    fn build_table(&mut self) {
        if self.table.is_some() {
            return;
        }
        if let FireAction::Starve = faults::fire(sites::EXEC_JOIN_BUILD) {
            self.work.starve();
        }
        let mut map: FastMap<Value, Vec<Row>> = FastMap::default();
        while let Some(r) = self.build.next() {
            self.work.tick(1);
            map.entry(r.get(self.build_col).clone()).or_default().push(r);
        }
        self.table = Some(map);
    }
}

impl Operator for HashJoin<'_> {
    fn next(&mut self) -> Option<Row> {
        self.build_table();
        loop {
            if self.work.interrupted() {
                return None;
            }
            if let Some(r) = self.pending.pop() {
                return Some(r);
            }
            let probe_row = self.probe.next()?;
            self.work.tick(1);
            // lint: allow(panic-on-worker-path): build_table() at the top of
            // next() guarantees the table is Some before any probe
            let table = self.table.as_ref().expect("built");
            if let Some(matches) = table.get(probe_row.get(self.probe_col)) {
                // Preserve build order: fill pending reversed, pop from end.
                // lint: allow(unmetered-loop): bounded by one build key's
                // match list; the tick above charges each probe pull
                for m in matches.iter().rev() {
                    self.pending.push(probe_row.concat(m));
                }
            }
        }
    }

    fn rewind(&mut self) {
        self.probe.rewind();
        self.pending.clear();
        // Keep the built hash table: the build side is immutable input.
    }
}

/// Vectorized hash join: hashes the build side once (pulled as
/// batches), then probes one batch at a time, assembling output
/// column-wise — no intermediate `Row` per output tuple. Output is
/// `probe_row ++ build_row`, matches in build order, like the tuple
/// engine. Reports `grouped() == false` for the same §5.2 reason.
pub struct BatchHashJoin<'a> {
    probe: BoxedBatchOp<'a>,
    build: BoxedBatchOp<'a>,
    probe_col: usize,
    build_col: usize,
    table: Option<FastMap<Value, Vec<Row>>>,
    work: Work,
}

impl<'a> BatchHashJoin<'a> {
    /// Join `probe` and `build` on `probe_col = build_col`.
    pub fn new(
        probe: BoxedBatchOp<'a>,
        probe_col: usize,
        build: BoxedBatchOp<'a>,
        build_col: usize,
        work: Work,
    ) -> Self {
        BatchHashJoin { probe, probe_col, build, build_col, table: None, work }
    }

    fn build_table(&mut self) {
        if self.table.is_some() {
            return;
        }
        if let FireAction::Starve = faults::fire(sites::EXEC_JOIN_BUILD) {
            self.work.starve();
        }
        let mut map: FastMap<Value, Vec<Row>> = FastMap::default();
        while let Some(b) = self.build.next_batch() {
            self.work.tick(b.selected() as u64);
            for i in b.sel_iter() {
                map.entry(b.value(self.build_col, i)).or_default().push(b.materialize_row(i));
            }
        }
        self.table = Some(map);
    }
}

impl<'a> BatchOperator<'a> for BatchHashJoin<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        self.build_table();
        loop {
            if self.work.interrupted() {
                return None;
            }
            let pb = self.probe.next_batch()?;
            self.work.tick(pb.selected() as u64);
            // lint: allow(panic-on-worker-path): build_table() at the top of
            // next_batch() guarantees the table is Some before any probe
            let table = self.table.as_ref().expect("built");
            // Column-wise output builders, sized lazily at first match.
            let mut out: Vec<Vec<Value>> = Vec::new();
            let mut emitted = 0usize;
            // lint: allow(unmetered-loop): bounded by one probe batch; the
            // tick above charges its selected rows
            for i in pb.sel_iter() {
                let Some(matches) = table.get(&pb.value(self.probe_col, i)) else { continue };
                // lint: allow(unmetered-loop): bounded by one build key's
                // match list
                for m in matches {
                    if out.is_empty() {
                        out = vec![Vec::new(); pb.arity() + m.arity()];
                    }
                    // lint: allow(unmetered-loop): bounded by output arity
                    for (c, builder) in out.iter_mut().enumerate().take(pb.arity()) {
                        builder.push(pb.value(c, i));
                    }
                    // lint: allow(unmetered-loop): bounded by output arity
                    for (c, v) in m.values().enumerate() {
                        out[pb.arity() + c].push(v.clone());
                    }
                    emitted += 1;
                }
            }
            if emitted > 0 {
                return Some(Batch::from_val_cols(out));
            }
        }
    }

    fn rewind(&mut self) {
        self.probe.rewind();
        // Keep the built hash table: the build side is immutable input.
    }
}

/// Index nested-loops join against a base table: for each outer row,
/// probe the table's hash index on `inner_col` with the outer row's
/// `outer_col` value. Output is `outer_row ++ inner_row`, in outer order.
pub struct IndexNlJoin<'a> {
    outer: BoxedOp<'a>,
    inner: &'a Table,
    outer_col: usize,
    inner_col: usize,
    pending: Vec<Row>,
    work: Work,
}

impl<'a> IndexNlJoin<'a> {
    /// Join `outer` with `inner` on `outer_col = inner.inner_col`.
    ///
    /// `inner_col` may be the primary-key column or any column with a
    /// secondary index.
    pub fn new(
        outer: BoxedOp<'a>,
        outer_col: usize,
        inner: &'a Table,
        inner_col: usize,
        work: Work,
    ) -> Self {
        IndexNlJoin { outer, inner, outer_col, inner_col, pending: Vec::new(), work }
    }

    /// Probe the inner index and queue `outer ++ inner` tuples (reversed:
    /// [`Operator::next`] pops from the end). Each output tuple is built
    /// in a single allocation from the borrowed inner row — the inner
    /// side is never materialized on its own.
    fn push_matches(&mut self, outer_row: &Row) {
        self.work.tick(1); // one index probe
        let inner: &'a Table = self.inner;
        let key = outer_row.get(self.outer_col);
        if inner.schema().primary_key == Some(self.inner_col) {
            if let Some(r) = inner.by_pk(key) {
                self.pending.push(outer_row.concat_ref(r));
            }
        } else {
            for &rid in inner.index_probe(self.inner_col, key).iter().rev() {
                self.pending.push(outer_row.concat_ref(inner.row(rid)));
            }
        }
    }
}

impl Operator for IndexNlJoin<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            if let Some(r) = self.pending.pop() {
                return Some(r);
            }
            let outer_row = self.outer.next()?;
            self.work.tick(1);
            self.push_matches(&outer_row);
        }
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.pending.clear();
    }
}

/// Vectorized index nested-loops join against a base table. One index
/// probe per outer row, output assembled column-wise in outer order.
pub struct BatchIndexNlJoin<'a> {
    outer: BoxedBatchOp<'a>,
    inner: &'a Table,
    outer_col: usize,
    inner_col: usize,
    work: Work,
}

impl<'a> BatchIndexNlJoin<'a> {
    /// Join `outer` with `inner` on `outer_col = inner.inner_col`.
    pub fn new(
        outer: BoxedBatchOp<'a>,
        outer_col: usize,
        inner: &'a Table,
        inner_col: usize,
        work: Work,
    ) -> Self {
        BatchIndexNlJoin { outer, inner, outer_col, inner_col, work }
    }
}

impl<'a> BatchOperator<'a> for BatchIndexNlJoin<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let ob = self.outer.next_batch()?;
            self.work.tick(ob.selected() as u64);
            let out =
                probe_inner_columnwise(&ob, self.inner, self.outer_col, self.inner_col, &self.work);
            if let Some(b) = out {
                return Some(b);
            }
        }
    }

    fn rewind(&mut self) {
        self.outer.rewind();
    }
}

/// Probe `inner`'s index (pk or secondary) with each selected row of
/// `ob`, assembling `outer ++ inner` output columns. One work tick per
/// probe. Returns `None` when no outer row matched.
pub(crate) fn probe_inner_columnwise(
    ob: &Batch<'_>,
    inner: &Table,
    outer_col: usize,
    inner_col: usize,
    work: &Work,
) -> Option<Batch<'static>> {
    let arity = ob.arity() + inner.schema().columns.len();
    let mut out: Vec<Vec<Value>> = Vec::new();
    let is_pk = inner.schema().primary_key == Some(inner_col);
    let push = |out: &mut Vec<Vec<Value>>, i: usize, r: ts_storage::RowRef<'_>| {
        if out.is_empty() {
            *out = vec![Vec::new(); arity];
        }
        for (c, builder) in out.iter_mut().enumerate().take(ob.arity()) {
            builder.push(ob.value(c, i));
        }
        for c in 0..r.arity() {
            out[ob.arity() + c].push(r.get(c));
        }
    };
    for i in ob.sel_iter() {
        work.tick(1); // one index probe
        let key = ob.value(outer_col, i);
        if is_pk {
            if let Some(r) = inner.by_pk(&key) {
                push(&mut out, i, r);
            }
        } else {
            for &rid in inner.index_probe(inner_col, &key) {
                push(&mut out, i, inner.row(rid));
            }
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(Batch::from_val_cols(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::{row, ColumnDef, TableSchema, ValueType};

    fn values(rows: Vec<Row>) -> BoxedOp<'static> {
        Box::new(ValuesScan::new(rows, Work::new()))
    }

    fn inner_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "Inner",
            vec![ColumnDef::new("k", ValueType::Int), ColumnDef::new("v", ValueType::Str)],
            None,
        ));
        t.insert(row![1i64, "one"]).unwrap();
        t.insert(row![1i64, "uno"]).unwrap();
        t.insert(row![2i64, "two"]).unwrap();
        t.create_index(0);
        t
    }

    #[test]
    fn hash_join_matches_pairs() {
        let probe = values(vec![row![1i64, "L1"], row![2i64, "L2"], row![3i64, "L3"]]);
        let build = values(vec![row![1i64, "R1"], row![1i64, "R1b"], row![2i64, "R2"]]);
        let mut j = HashJoin::new(probe, 0, build, 0, Work::new());
        let got = collect_all(&mut j);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], row![1i64, "L1", 1i64, "R1"]);
        assert_eq!(got[1], row![1i64, "L1", 1i64, "R1b"]);
        assert_eq!(got[2], row![2i64, "L2", 2i64, "R2"]);
        j.rewind();
        assert_eq!(collect_all(&mut j).len(), 3);
    }

    #[test]
    fn hash_join_empty_sides() {
        let mut j = HashJoin::new(values(vec![]), 0, values(vec![row![1i64]]), 0, Work::new());
        assert!(collect_all(&mut j).is_empty());
        let mut j2 = HashJoin::new(values(vec![row![1i64]]), 0, values(vec![]), 0, Work::new());
        assert!(collect_all(&mut j2).is_empty());
    }

    #[test]
    fn index_nl_join_probes_secondary_index() {
        let t = inner_table();
        let outer = values(vec![row![2i64], row![1i64], row![9i64]]);
        let w = Work::new();
        let mut j = IndexNlJoin::new(outer, 0, &t, 0, w.clone());
        let got = collect_all(&mut j);
        assert_eq!(got.len(), 3);
        // Outer order preserved: key 2 first.
        assert_eq!(got[0], row![2i64, 2i64, "two"]);
        assert_eq!(got[1], row![1i64, 1i64, "one"]);
        assert_eq!(got[2], row![1i64, 1i64, "uno"]);
        assert!(w.get() >= 3); // at least one probe per outer row
    }

    #[test]
    fn index_nl_join_on_primary_key() {
        let mut t = Table::new(TableSchema::new(
            "PkT",
            vec![ColumnDef::new("id", ValueType::Int), ColumnDef::new("v", ValueType::Str)],
            Some(0),
        ));
        t.insert(row![7i64, "seven"]).unwrap();
        let outer = values(vec![row![7i64], row![8i64]]);
        let mut j = IndexNlJoin::new(outer, 0, &t, 0, Work::new());
        let got = collect_all(&mut j);
        assert_eq!(got, vec![row![7i64, 7i64, "seven"]]);
    }
}
