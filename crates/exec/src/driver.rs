//! Plan drivers: pull-loops that consume operator trees.
//!
//! [`collect_distinct_topk`] is the control loop of the paper's Fig. 15
//! plans: pull rows from a group-clustered plan; the first surviving row
//! of a group proves its topology exists, so the driver records it and
//! immediately skips the rest of the group; after `k` distinct groups it
//! stops pulling altogether. This is where the two DGJ properties pay
//! off.

use ts_storage::{Row, Value};

use crate::op::Operator;

/// Drain an operator completely.
pub fn collect_all(op: &mut dyn Operator) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

/// Distinct group values, in stream order, skipping each group after its
/// first row (requires a group-clustered operator).
pub fn collect_distinct_groups(op: &mut dyn Operator, group_col: usize) -> Vec<Value> {
    collect_distinct_topk(op, group_col, usize::MAX)
        .into_iter()
        .map(|r| r.get(group_col).clone())
        .collect()
}

/// First row of each of the first `k` distinct groups, in stream order.
pub fn collect_distinct_topk(op: &mut dyn Operator, group_col: usize, k: usize) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    if k == 0 {
        return out;
    }
    while let Some(row) = op.next() {
        let is_new =
            out.last().map(|prev: &Row| prev.get(group_col) != row.get(group_col)).unwrap_or(true);
        if is_new {
            out.push(row);
            if out.len() == k {
                break;
            }
            if op.grouped() {
                op.advance_to_next_group();
            }
        }
        // Rows of an already-recorded group (possible when the operator
        // cannot skip) are simply ignored.
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Work;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    #[test]
    fn topk_with_grouped_scan_skips() {
        let rows = vec![
            row![1i64, 10i64],
            row![1i64, 11i64],
            row![2i64, 20i64],
            row![3i64, 30i64],
            row![3i64, 31i64],
        ];
        let w = Work::new();
        let mut op = ValuesScan::grouped(rows, 0, w.clone());
        let top = collect_distinct_topk(&mut op, 0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get(1).as_int(), 10);
        assert_eq!(top[1].get(1).as_int(), 20);
        // Row (3,30) was never pulled: k reached first.
        assert!(w.get() <= 4);
    }

    #[test]
    fn distinct_groups_covers_all() {
        let rows = vec![row![5i64], row![5i64], row![7i64], row![9i64]];
        let mut op = ValuesScan::grouped(rows, 0, Work::new());
        let gs = collect_distinct_groups(&mut op, 0);
        assert_eq!(gs, vec![Value::Int(5), Value::Int(7), Value::Int(9)]);
    }

    #[test]
    fn topk_zero_returns_nothing() {
        let mut op = ValuesScan::grouped(vec![row![1i64]], 0, Work::new());
        assert!(collect_distinct_topk(&mut op, 0, 0).is_empty());
    }

    #[test]
    fn ungrouped_operator_still_correct_just_slower() {
        // A non-grouped stream with interleaving would be wrong for DGJ,
        // but a clustered stream behind a non-grouped operator is handled
        // by ignoring repeat rows.
        let rows = vec![row![1i64], row![1i64], row![2i64]];
        let mut op = ValuesScan::new(rows, Work::new());
        let top = collect_distinct_topk(&mut op, 0, 5);
        assert_eq!(top.len(), 2);
    }
}
