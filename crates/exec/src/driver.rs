//! Plan drivers: pull-loops that consume operator trees.
//!
//! [`collect_distinct_topk`] is the control loop of the paper's Fig. 15
//! plans: pull rows from a group-clustered plan; the first surviving row
//! of a group proves its topology exists, so the driver records it and
//! immediately skips the rest of the group; after `k` distinct groups it
//! stops pulling altogether. This is where the two DGJ properties pay
//! off.
//!
//! The `_budgeted` variants are the serving layer's entry points: they
//! poll the shared [`Work`] between pulls (deadline / step / row quotas,
//! cancellation, injected starvation) and stop cleanly mid-stream,
//! leaving the partial result in place. With an unbudgeted meter they
//! behave exactly like their plain counterparts.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{Row, Value};

use crate::batch::BatchOperator;
use crate::op::{Operator, Work};

/// Drain an operator completely.
pub fn collect_all(op: &mut dyn Operator) -> Vec<Row> {
    let mut out = Vec::new();
    // lint: allow(unmetered-loop): unbudgeted drain for tests and offline
    // build paths; serving goes through collect_all_budgeted, which polls
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

/// Drain an operator, stopping early when `work` is interrupted.
pub fn collect_all_budgeted(op: &mut dyn Operator, work: &Work) -> Vec<Row> {
    let mut out = Vec::new();
    loop {
        if let FireAction::Starve = faults::fire(sites::EXEC_DRIVER_LOOP) {
            work.starve();
        }
        if work.interrupted() {
            break;
        }
        let Some(r) = op.next() else { break };
        work.count_row();
        out.push(r);
    }
    out
}

/// Distinct group values, in stream order, skipping each group after its
/// first row (requires a group-clustered operator).
pub fn collect_distinct_groups(op: &mut dyn Operator, group_col: usize) -> Vec<Value> {
    collect_distinct_topk(op, group_col, usize::MAX)
        .into_iter()
        .map(|r| r.get(group_col).clone())
        .collect()
}

/// First row of each of the first `k` distinct groups, in stream order.
pub fn collect_distinct_topk(op: &mut dyn Operator, group_col: usize, k: usize) -> Vec<Row> {
    distinct_topk(op, group_col, k, None)
}

/// Budget-aware [`collect_distinct_topk`]: stops at the first interrupt,
/// returning the distinct groups accumulated so far (the "partial top-k"
/// a degraded response carries). Each *recorded group* counts one row
/// against the budget's row quota.
pub fn collect_distinct_topk_budgeted(
    op: &mut dyn Operator,
    group_col: usize,
    k: usize,
    work: &Work,
) -> Vec<Row> {
    distinct_topk(op, group_col, k, Some(work))
}

fn distinct_topk(
    op: &mut dyn Operator,
    group_col: usize,
    k: usize,
    work: Option<&Work>,
) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    if k == 0 {
        return out;
    }
    loop {
        if let Some(w) = work {
            if let FireAction::Starve = faults::fire(sites::EXEC_DRIVER_LOOP) {
                w.starve();
            }
            if w.interrupted() {
                break;
            }
        }
        let Some(row) = op.next() else { break };
        let is_new =
            out.last().map(|prev: &Row| prev.get(group_col) != row.get(group_col)).unwrap_or(true);
        if is_new {
            if let Some(w) = work {
                w.count_row();
                // An exceeded row quota drops this group: the rows kept
                // are exactly the rows paid for.
                if w.interrupted() {
                    break;
                }
            }
            out.push(row);
            if out.len() == k {
                break;
            }
            if op.grouped() {
                op.advance_to_next_group();
            }
        }
        // Rows of an already-recorded group (possible when the operator
        // cannot skip) are simply ignored.
    }
    out
}

/// Drain a batch operator completely, materializing selected rows.
pub fn batch_collect_all<'a>(op: &mut dyn BatchOperator<'a>) -> Vec<Row> {
    let mut out = Vec::new();
    // lint: allow(unmetered-loop): unbudgeted drain for tests and offline
    // build paths; serving goes through batch_collect_all_budgeted
    while let Some(b) = op.next_batch() {
        out.extend(b.sel_iter().map(|i| b.materialize_row(i)));
    }
    out
}

/// Drain a batch operator, stopping early when `work` is interrupted —
/// including *mid-batch*: an exceeded row quota keeps exactly the rows
/// paid for and drops the rest of the batch in hand.
pub fn batch_collect_all_budgeted<'a>(op: &mut dyn BatchOperator<'a>, work: &Work) -> Vec<Row> {
    let mut out = Vec::new();
    'outer: loop {
        if let FireAction::Starve = faults::fire(sites::EXEC_DRIVER_LOOP) {
            work.starve();
        }
        if work.interrupted() {
            break;
        }
        let Some(b) = op.next_batch() else { break };
        for i in b.sel_iter() {
            work.count_row();
            out.push(b.materialize_row(i));
            if work.interrupted() {
                break 'outer;
            }
        }
    }
    out
}

/// Batch twin of [`collect_distinct_groups`].
pub fn batch_collect_distinct_groups<'a>(
    op: &mut dyn BatchOperator<'a>,
    group_col: usize,
) -> Vec<Value> {
    batch_collect_distinct_topk(op, group_col, usize::MAX)
        .into_iter()
        .map(|r| r.get(group_col).clone())
        .collect()
}

/// Batch twin of [`collect_distinct_topk`].
pub fn batch_collect_distinct_topk<'a>(
    op: &mut dyn BatchOperator<'a>,
    group_col: usize,
    k: usize,
) -> Vec<Row> {
    batch_distinct_topk(op, group_col, k, None)
}

/// Batch twin of [`collect_distinct_topk_budgeted`].
pub fn batch_collect_distinct_topk_budgeted<'a>(
    op: &mut dyn BatchOperator<'a>,
    group_col: usize,
    k: usize,
    work: &Work,
) -> Vec<Row> {
    batch_distinct_topk(op, group_col, k, Some(work))
}

fn batch_distinct_topk<'a>(
    op: &mut dyn BatchOperator<'a>,
    group_col: usize,
    k: usize,
    work: Option<&Work>,
) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    if k == 0 {
        return out;
    }
    'outer: loop {
        if let Some(w) = work {
            if let FireAction::Starve = faults::fire(sites::EXEC_DRIVER_LOOP) {
                w.starve();
            }
            if w.interrupted() {
                break;
            }
        }
        let Some(b) = op.next_batch() else { break };
        for i in b.sel_iter() {
            let group = b.value(group_col, i);
            let is_new = out.last().map(|prev: &Row| *prev.get(group_col) != group).unwrap_or(true);
            if is_new {
                if let Some(w) = work {
                    w.count_row();
                    // An exceeded row quota drops this group: the rows
                    // kept are exactly the rows paid for.
                    if w.interrupted() {
                        break 'outer;
                    }
                }
                out.push(b.materialize_row(i));
                if out.len() == k {
                    break 'outer;
                }
                if op.grouped() {
                    // Grouped batch streams never span groups within a
                    // batch: the rest of this batch is the recorded
                    // group, so skip both it and the operator's tail.
                    op.advance_to_next_group();
                    continue 'outer;
                }
            }
            // Rows of an already-recorded group (possible when the
            // operator cannot skip) are simply ignored.
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Budget, Exhausted, Work};
    use crate::scan::ValuesScan;
    use ts_storage::row;

    #[test]
    fn topk_with_grouped_scan_skips() {
        let rows = vec![
            row![1i64, 10i64],
            row![1i64, 11i64],
            row![2i64, 20i64],
            row![3i64, 30i64],
            row![3i64, 31i64],
        ];
        let w = Work::new();
        let mut op = ValuesScan::grouped(rows, 0, w.clone());
        let top = collect_distinct_topk(&mut op, 0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get(1).as_int(), 10);
        assert_eq!(top[1].get(1).as_int(), 20);
        // Row (3,30) was never pulled: k reached first.
        assert!(w.get() <= 4);
    }

    #[test]
    fn distinct_groups_covers_all() {
        let rows = vec![row![5i64], row![5i64], row![7i64], row![9i64]];
        let mut op = ValuesScan::grouped(rows, 0, Work::new());
        let gs = collect_distinct_groups(&mut op, 0);
        assert_eq!(gs, vec![Value::Int(5), Value::Int(7), Value::Int(9)]);
    }

    #[test]
    fn topk_zero_returns_nothing() {
        let mut op = ValuesScan::grouped(vec![row![1i64]], 0, Work::new());
        assert!(collect_distinct_topk(&mut op, 0, 0).is_empty());
    }

    #[test]
    fn ungrouped_operator_still_correct_just_slower() {
        // A non-grouped stream with interleaving would be wrong for DGJ,
        // but a clustered stream behind a non-grouped operator is handled
        // by ignoring repeat rows.
        let rows = vec![row![1i64], row![1i64], row![2i64]];
        let mut op = ValuesScan::new(rows, Work::new());
        let top = collect_distinct_topk(&mut op, 0, 5);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn budgeted_topk_matches_plain_when_unbudgeted() {
        let rows = vec![row![1i64], row![2i64], row![2i64], row![3i64]];
        let w = Work::new();
        let mut op = ValuesScan::grouped(rows.clone(), 0, w.clone());
        let budgeted = collect_distinct_topk_budgeted(&mut op, 0, 10, &w);
        let mut op2 = ValuesScan::grouped(rows, 0, Work::new());
        let plain = collect_distinct_topk(&mut op2, 0, 10);
        assert_eq!(budgeted, plain);
    }

    #[test]
    fn row_quota_truncates_distinct_groups() {
        let rows = vec![row![1i64], row![2i64], row![3i64], row![4i64]];
        let w = Work::with_budget(Budget { row_quota: Some(2), ..Budget::default() });
        let mut op = ValuesScan::grouped(rows, 0, w.clone());
        let top = collect_distinct_topk_budgeted(&mut op, 0, 10, &w);
        assert_eq!(top.len(), 2);
        assert_eq!(w.exhausted(), Some(Exhausted::Rows));
    }

    #[test]
    fn step_quota_stops_collect_all_with_partial_output() {
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64]).collect();
        let w = Work::with_budget(Budget { step_quota: Some(10), ..Budget::default() });
        let mut op = ValuesScan::new(rows, w.clone());
        let got = collect_all_budgeted(&mut op, &w);
        assert!(got.len() < 100, "must stop early");
        assert!(!got.is_empty(), "quota of 10 admits some rows");
        assert_eq!(w.exhausted(), Some(Exhausted::Steps));
    }

    #[test]
    fn starved_work_yields_empty_from_the_start() {
        let w = Work::with_budget(Budget::default());
        w.starve();
        let mut op = ValuesScan::new(vec![row![1i64]], w.clone());
        assert!(collect_all_budgeted(&mut op, &w).is_empty());
        assert_eq!(w.exhausted(), Some(Exhausted::Starved));
    }

    #[test]
    fn batch_topk_with_grouped_scan_skips() {
        let rows = vec![
            row![1i64, 10i64],
            row![1i64, 11i64],
            row![2i64, 20i64],
            row![3i64, 30i64],
            row![3i64, 31i64],
        ];
        let w = Work::new();
        let mut op = crate::scan::BatchValuesScan::grouped(rows, 0, w.clone());
        let top = batch_collect_distinct_topk(&mut op, 0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].get(1).as_int(), 10);
        assert_eq!(top[1].get(1).as_int(), 20);
        // Rows of group 3 were never pulled: k reached first.
        assert!(w.get() <= 4);
    }

    #[test]
    fn batch_row_quota_truncates_distinct_groups() {
        let rows = vec![row![1i64], row![2i64], row![3i64], row![4i64]];
        let w = Work::with_budget(Budget { row_quota: Some(2), ..Budget::default() });
        let mut op = crate::scan::BatchValuesScan::grouped(rows, 0, w.clone());
        let top = batch_collect_distinct_topk_budgeted(&mut op, 0, 10, &w);
        assert_eq!(top.len(), 2);
        assert_eq!(w.exhausted(), Some(Exhausted::Rows));
    }

    #[test]
    fn batch_step_quota_stops_collect_all_with_partial_output() {
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64]).collect();
        crate::batch::set_batch_rows(8);
        let w = Work::with_budget(Budget { step_quota: Some(10), ..Budget::default() });
        let mut op = crate::scan::BatchValuesScan::new(rows, w.clone());
        let got = batch_collect_all_budgeted(&mut op, &w);
        crate::batch::set_batch_rows(0);
        assert!(got.len() < 100, "must stop early");
        assert!(!got.is_empty(), "quota of 10 admits some rows");
        assert_eq!(w.exhausted(), Some(Exhausted::Steps));
    }

    #[test]
    fn batch_row_quota_interrupts_mid_batch() {
        // One 100-row batch, quota of 7 rows: the driver must stop
        // inside the batch, keeping exactly the rows paid for.
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64]).collect();
        let w = Work::with_budget(Budget { row_quota: Some(7), ..Budget::default() });
        let mut op = crate::scan::BatchValuesScan::new(rows, w.clone());
        let got = batch_collect_all_budgeted(&mut op, &w);
        assert_eq!(got.len(), 8, "quota + the row that tripped it, like the tuple driver");
        assert_eq!(w.exhausted(), Some(Exhausted::Rows));
    }
}
