//! The operator interface and the shared work meter / query budget.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ts_storage::Row;

/// A boxed operator with the lifetime of the data it scans.
pub type BoxedOp<'a> = Box<dyn Operator + 'a>;

/// Why a budgeted plan stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step (work-unit) quota ran out.
    Steps,
    /// The result-row quota ran out (enforced by the budgeted drivers).
    Rows,
    /// The cancellation token was raised (server shutdown, client gone).
    Cancelled,
    /// Budget starvation was injected by a fault schedule.
    Starved,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Exhausted::Deadline => "deadline",
            Exhausted::Steps => "steps",
            Exhausted::Rows => "rows",
            Exhausted::Cancelled => "cancelled",
            Exhausted::Starved => "starved",
        };
        write!(f, "{s}")
    }
}

/// Resource limits for one query, threaded through [`Work`].
///
/// All limits are optional; a default budget is equivalent to no budget.
/// The cancellation token is the only cross-thread member: the serving
/// layer raises it from outside while the query thread polls it.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum work units ([`Work::tick`] total).
    pub step_quota: Option<u64>,
    /// Maximum result rows counted via [`Work::count_row`].
    pub row_quota: Option<u64>,
    /// Cooperative cancellation token.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// How many ticks may pass between deadline / cancellation polls. Quota
/// checks are exact (every tick); clock reads and atomic loads are
/// amortized over this window.
pub(crate) const POLL_EVERY: u64 = 1024;

#[derive(Debug)]
struct WorkInner {
    /// Work units so far (one unit ≈ one tuple touched or index probe).
    ticks: Cell<u64>,
    /// Result rows counted by the budgeted drivers.
    rows: Cell<u64>,
    /// Tick count at which the next deadline/cancel poll is due.
    next_poll: Cell<u64>,
    /// First budget violation, latched.
    exhausted: Cell<Option<Exhausted>>,
    /// `None` = pure meter (the historical behavior, bit-for-bit).
    budget: Option<Budget>,
}

/// Machine-independent work meter shared by all operators of a plan,
/// doubling as the cooperative budget checkpoint.
///
/// One unit ≈ one tuple touched or one index probe. The paper reports
/// wall-clock seconds on its DB2 testbed; we report both wall-clock and
/// this counter so the *shape* of Table 2 is reproducible independently
/// of the host machine.
///
/// A budgeted `Work` ([`Work::with_budget`]) additionally latches the
/// first violated limit: operators poll [`Work::interrupted`] at their
/// batch boundaries and surface exhaustion as end-of-stream, so a whole
/// operator stack winds down from one flag. The caller distinguishes "a
/// real end" from "ran out of budget" via [`Work::exhausted`]. An
/// unbudgeted `Work` never interrupts and adds no per-tick checks beyond
/// one `Option` discriminant test.
#[derive(Debug, Clone)]
pub struct Work(Rc<WorkInner>);

impl Default for Work {
    fn default() -> Self {
        Self::new()
    }
}

impl Work {
    /// Fresh unbudgeted counter at zero.
    pub fn new() -> Self {
        Work(Rc::new(WorkInner {
            ticks: Cell::new(0),
            rows: Cell::new(0),
            next_poll: Cell::new(0),
            exhausted: Cell::new(None),
            budget: None,
        }))
    }

    /// Fresh counter enforcing `budget`.
    ///
    /// The first tick polls the deadline and cancellation token, so an
    /// already-expired deadline interrupts before any real work.
    pub fn with_budget(budget: Budget) -> Self {
        Work(Rc::new(WorkInner {
            ticks: Cell::new(0),
            rows: Cell::new(0),
            next_poll: Cell::new(0),
            exhausted: Cell::new(None),
            budget: Some(budget),
        }))
    }

    /// Add `n` units, checking the budget if there is one.
    pub fn tick(&self, n: u64) {
        let inner = &*self.0;
        let t = inner.ticks.get() + n;
        inner.ticks.set(t);
        let Some(budget) = &inner.budget else {
            return;
        };
        if inner.exhausted.get().is_some() {
            return;
        }
        if let Some(q) = budget.step_quota {
            if t > q {
                inner.exhausted.set(Some(Exhausted::Steps));
                return;
            }
        }
        if t >= inner.next_poll.get() {
            inner.next_poll.set(t + POLL_EVERY);
            if let Some(token) = &budget.cancel {
                if token.load(Ordering::Relaxed) {
                    inner.exhausted.set(Some(Exhausted::Cancelled));
                    return;
                }
            }
            if let Some(deadline) = budget.deadline {
                if Instant::now() >= deadline {
                    inner.exhausted.set(Some(Exhausted::Deadline));
                }
            }
        }
    }

    /// Current work-unit total.
    pub fn get(&self) -> u64 {
        self.0.ticks.get()
    }

    /// Count one emitted result row against the row quota. Used by the
    /// budgeted drivers, not by operators.
    pub fn count_row(&self) {
        let inner = &*self.0;
        let r = inner.rows.get() + 1;
        inner.rows.set(r);
        if let Some(budget) = &inner.budget {
            if inner.exhausted.get().is_none() {
                if let Some(q) = budget.row_quota {
                    if r > q {
                        inner.exhausted.set(Some(Exhausted::Rows));
                    }
                }
            }
        }
    }

    /// True once any budget limit has been violated. A pure meter
    /// ([`Work::new`]) always answers `false`.
    pub fn interrupted(&self) -> bool {
        self.0.exhausted.get().is_some()
    }

    /// The first violated limit, if any.
    pub fn exhausted(&self) -> Option<Exhausted> {
        self.0.exhausted.get()
    }

    /// Latch [`Exhausted::Starved`] — the hook fault injection uses to
    /// simulate budget exhaustion without waiting out a real deadline.
    /// A no-op on an unbudgeted meter (plain catalog-equivalence runs
    /// cannot be starved into divergence).
    pub fn starve(&self) {
        let inner = &*self.0;
        if inner.budget.is_some() && inner.exhausted.get().is_none() {
            inner.exhausted.set(Some(Exhausted::Starved));
        }
    }
}

/// Volcano iterator interface with the DGJ extension.
pub trait Operator {
    /// Produce the next output row, or `None` when exhausted.
    ///
    /// Budgeted plans also return `None` once the shared [`Work`] is
    /// interrupted; the driver tells the cases apart through
    /// [`Work::exhausted`].
    fn next(&mut self) -> Option<Row>;

    /// Reset to the beginning (used by group-at-a-time inner rescans).
    fn rewind(&mut self);

    /// True if this operator maintains group semantics: its output is
    /// clustered by a group column whose order is preserved from input
    /// to output (property (a) of DGJ operators).
    fn grouped(&self) -> bool {
        false
    }

    /// Skip the remainder of the current group (property (b)).
    ///
    /// For non-grouped operators this is a contract violation and panics:
    /// the optimizer must only place group-skips above group-preserving
    /// operators.
    fn advance_to_next_group(&mut self) {
        // lint: allow(panic-on-worker-path): contract violation — the
        // optimizer only places group-skips above group-preserving
        // operators; the per-query unwind boundary confines the abort
        panic!("advance_to_next_group called on a non-grouped operator");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Empty;
    impl Operator for Empty {
        fn next(&mut self) -> Option<Row> {
            None
        }
        fn rewind(&mut self) {}
    }

    #[test]
    fn work_accumulates() {
        let w = Work::new();
        let w2 = w.clone();
        w.tick(3);
        w2.tick(4);
        assert_eq!(w.get(), 7);
    }

    #[test]
    #[should_panic(expected = "non-grouped operator")]
    fn default_advance_panics() {
        Empty.advance_to_next_group();
    }

    #[test]
    fn unbudgeted_work_never_interrupts() {
        let w = Work::new();
        w.tick(u64::MAX / 2);
        w.count_row();
        w.starve();
        assert!(!w.interrupted());
        assert_eq!(w.exhausted(), None);
    }

    #[test]
    fn step_quota_latches_steps() {
        let w = Work::with_budget(Budget { step_quota: Some(10), ..Budget::default() });
        w.tick(10);
        assert!(!w.interrupted(), "quota is inclusive");
        w.tick(1);
        assert_eq!(w.exhausted(), Some(Exhausted::Steps));
        // Latched: later ticks don't change the reason.
        w.tick(100);
        assert_eq!(w.exhausted(), Some(Exhausted::Steps));
    }

    #[test]
    fn expired_deadline_interrupts_on_first_tick() {
        let w = Work::with_budget(Budget {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..Budget::default()
        });
        assert!(!w.interrupted(), "no poll before the first tick");
        w.tick(1);
        assert_eq!(w.exhausted(), Some(Exhausted::Deadline));
    }

    #[test]
    fn cancellation_token_is_polled() {
        let token = Arc::new(AtomicBool::new(false));
        let w = Work::with_budget(Budget { cancel: Some(token.clone()), ..Budget::default() });
        w.tick(1);
        assert!(!w.interrupted());
        token.store(true, Ordering::Relaxed);
        // The next poll window boundary notices the token.
        w.tick(POLL_EVERY + 1);
        assert_eq!(w.exhausted(), Some(Exhausted::Cancelled));
    }

    #[test]
    fn row_quota_counts_driver_rows() {
        let w = Work::with_budget(Budget { row_quota: Some(2), ..Budget::default() });
        w.count_row();
        w.count_row();
        assert!(!w.interrupted());
        w.count_row();
        assert_eq!(w.exhausted(), Some(Exhausted::Rows));
    }

    #[test]
    fn starve_latches_on_budgeted_work() {
        let w = Work::with_budget(Budget::default());
        w.starve();
        assert_eq!(w.exhausted(), Some(Exhausted::Starved));
    }
}
