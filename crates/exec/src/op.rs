//! The operator interface and the shared work meter.

use std::cell::Cell;
use std::rc::Rc;

use ts_storage::Row;

/// A boxed operator with the lifetime of the data it scans.
pub type BoxedOp<'a> = Box<dyn Operator + 'a>;

/// Machine-independent work meter shared by all operators of a plan.
///
/// One unit ≈ one tuple touched or one index probe. The paper reports
/// wall-clock seconds on its DB2 testbed; we report both wall-clock and
/// this counter so the *shape* of Table 2 is reproducible independently
/// of the host machine.
#[derive(Debug, Clone, Default)]
pub struct Work(Rc<Cell<u64>>);

impl Work {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` units.
    pub fn tick(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Volcano iterator interface with the DGJ extension.
pub trait Operator {
    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self) -> Option<Row>;

    /// Reset to the beginning (used by group-at-a-time inner rescans).
    fn rewind(&mut self);

    /// True if this operator maintains group semantics: its output is
    /// clustered by a group column whose order is preserved from input
    /// to output (property (a) of DGJ operators).
    fn grouped(&self) -> bool {
        false
    }

    /// Skip the remainder of the current group (property (b)).
    ///
    /// For non-grouped operators this is a contract violation and panics:
    /// the optimizer must only place group-skips above group-preserving
    /// operators.
    fn advance_to_next_group(&mut self) {
        panic!("advance_to_next_group called on a non-grouped operator");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Empty;
    impl Operator for Empty {
        fn next(&mut self) -> Option<Row> {
            None
        }
        fn rewind(&mut self) {}
    }

    #[test]
    fn work_accumulates() {
        let w = Work::new();
        let w2 = w.clone();
        w.tick(3);
        w2.tick(4);
        assert_eq!(w.get(), 7);
    }

    #[test]
    #[should_panic(expected = "non-grouped operator")]
    fn default_advance_panics() {
        Empty.advance_to_next_group();
    }
}
