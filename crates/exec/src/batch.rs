//! Column-batch execution: the vectorized twin of the Volcano engine.
//!
//! Instead of pulling one [`Row`] per `next()` call, batch operators
//! exchange a [`Batch`] of up to [`DEFAULT_BATCH_ROWS`] rows: a bundle
//! of column vectors — borrowed straight from the [`ColumnStore`] when
//! the column is a null-free Int or Str column — plus a *selection
//! vector* naming the rows still alive after filtering. Predicates on
//! null-free Int columns run as tight loops over raw `i64` buffers; Str
//! and nullable columns fall back to a row-at-a-time evaluation that
//! mirrors [`Predicate::eval_ref`] cell for cell.
//!
//! Budget semantics are preserved by construction: every operator calls
//! [`crate::Work::tick`] with the number of rows a batch touched, and
//! the default batch size equals the meter's poll window (`POLL_EVERY`),
//! so deadline and cancellation polls, step/row quotas, and fault
//! injection sites fire with the same granularity as the tuple engine.
//!
//! Two stream invariants, relied on by the drivers and DGJ operators:
//!
//! * operators never emit a batch with an empty selection;
//! * a *grouped* batch stream never emits a batch spanning more than one
//!   group (a large group may span several consecutive batches).
//!
//! The tuple engine remains in place, both as the reference
//! implementation the differential tests compare against and as the
//! fallback selected via [`set_engine`].

use std::cell::Cell;

use ts_storage::{ColumnStore, Predicate, Row, Value};

/// Default rows per batch. Deliberately equal to the work meter's poll
/// window so one batch boundary corresponds to one deadline/cancel poll.
pub const DEFAULT_BATCH_ROWS: usize = crate::op::POLL_EVERY as usize;

/// Which execution engine the query methods build plans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Column batches with selection vectors (the default).
    Batch,
    /// The historical tuple-at-a-time Volcano path, kept as the
    /// reference for differential testing.
    Tuple,
}

thread_local! {
    static ENGINE: Cell<Engine> = const { Cell::new(Engine::Batch) };
    /// 0 means "use [`DEFAULT_BATCH_ROWS`]".
    static BATCH_ROWS: Cell<usize> = const { Cell::new(0) };
}

/// The engine selected for the current thread.
pub fn engine() -> Engine {
    ENGINE.with(|e| e.get())
}

/// Select the engine for the current thread (worker threads start at the
/// default, [`Engine::Batch`]). Test-oriented: the differential suite
/// runs the same workload under both settings.
pub fn set_engine(e: Engine) {
    ENGINE.with(|c| c.set(e));
}

/// Rows per batch for the current thread.
pub fn batch_rows() -> usize {
    let n = BATCH_ROWS.with(|c| c.get());
    if n == 0 {
        DEFAULT_BATCH_ROWS
    } else {
        n
    }
}

/// Override the batch size for the current thread; `0` restores
/// [`DEFAULT_BATCH_ROWS`]. Used by the conformance tests to probe
/// adversarial sizes (1, 1023, 1025, `table_len ± 1`, ...).
pub fn set_batch_rows(rows: usize) {
    BATCH_ROWS.with(|c| c.set(rows));
}

/// One column of a batch.
///
/// Borrowed variants alias the storage layer directly (zero copies,
/// zero `Arc` bumps); owned variants carry operator-produced values
/// (join outputs, materialized row streams, nullable columns).
#[derive(Debug, Clone)]
pub enum Col<'a> {
    /// Borrowed slice of a null-free Int column.
    Int(&'a [i64]),
    /// Owned null-free Int data (derived batches whose column proved to
    /// be all-Int — keeps the raw-buffer fast paths open downstream).
    IntOwned(Vec<i64>),
    /// Borrowed pool ids of a null-free Str column.
    Str {
        /// Pool ids, one per row of the batch.
        ids: &'a [u32],
        /// The store owning the string pool behind `ids`.
        store: &'a ColumnStore,
    },
    /// Owned values: nullable columns and general derived data.
    Vals(Vec<Value>),
}

impl Col<'_> {
    /// Rows in this column.
    pub fn len(&self) -> usize {
        match self {
            Col::Int(s) => s.len(),
            Col::IntOwned(v) => v.len(),
            Col::Str { ids, .. } => ids.len(),
            Col::Vals(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw `i64` buffer when this column is Int-represented (and
    /// therefore null-free by construction) — the vectorized fast lane.
    pub fn int_slice(&self) -> Option<&[i64]> {
        match self {
            Col::Int(s) => Some(s),
            Col::IntOwned(v) => Some(v),
            _ => None,
        }
    }

    /// Materialize the value at `i` (clones / bumps only for Str).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Col::Int(s) => Value::Int(s[i]),
            Col::IntOwned(v) => Value::Int(v[i]),
            Col::Str { ids, store } => Value::Str(store.pool_str(ids[i]).clone()),
            Col::Vals(v) => v[i].clone(),
        }
    }

    /// Integer at `i`, if the cell is an Int.
    pub fn try_int(&self, i: usize) -> Option<i64> {
        match self {
            Col::Int(s) => Some(s[i]),
            Col::IntOwned(v) => Some(v[i]),
            Col::Vals(v) => match &v[i] {
                Value::Int(k) => Some(*k),
                _ => None,
            },
            Col::Str { .. } => None,
        }
    }

    /// Borrowed string at `i`, if the cell is a Str.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Col::Str { ids, store } => Some(store.pool_str(ids[i])),
            Col::Vals(v) => match &v[i] {
                Value::Str(s) => Some(s),
                _ => None,
            },
            _ => None,
        }
    }

    /// Allocation-free equality of the cell at `i` with `v` — identical
    /// semantics to `RowRef::value_eq` (Int/Str columns here are
    /// null-free by construction, so a `Null` literal never matches).
    pub fn value_eq(&self, i: usize, v: &Value) -> bool {
        match (self, v) {
            (Col::Int(s), Value::Int(k)) => s[i] == *k,
            (Col::IntOwned(s), Value::Int(k)) => s[i] == *k,
            (Col::Str { ids, store }, Value::Str(k)) => **store.pool_str(ids[i]) == **k,
            (Col::Vals(vs), v) => &vs[i] == v,
            _ => false,
        }
    }
}

/// A batch of rows in columnar form plus a selection vector.
///
/// `sel == None` means every row `0..raw_len` is selected; `Some(sel)`
/// names the surviving row indices, kept **sorted, unique and
/// in-bounds** (the conformance proptests hold operators to this).
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    raw_len: usize,
    cols: Vec<Col<'a>>,
    sel: Option<Vec<u32>>,
}

impl<'a> Batch<'a> {
    /// Batch from columns (all of length `raw_len`), fully selected.
    pub fn new(cols: Vec<Col<'a>>, raw_len: usize) -> Self {
        debug_assert!(cols.iter().all(|c| c.len() == raw_len));
        Batch { raw_len, cols, sel: None }
    }

    /// Borrow the rows `[start, end)` of a column store: null-free Int
    /// and Str columns come out as borrowed slices, anything else is
    /// materialized as owned values.
    pub fn from_store(store: &'a ColumnStore, start: usize, end: usize) -> Self {
        let cols = (0..store.arity())
            .map(|c| {
                if let Some(vals) = store.ints(c) {
                    Col::Int(&vals[start..end])
                } else if let Some(ids) = store.str_ids(c) {
                    Col::Str { ids: &ids[start..end], store }
                } else {
                    Col::Vals(
                        (start..end).map(|r| store.value(c, ts_storage::cast::to_u32(r))).collect(),
                    )
                }
            })
            .collect();
        Batch { raw_len: end - start, cols, sel: None }
    }

    /// Columnarize a slice of materialized rows. Columns that turn out
    /// all-Int are stored as raw `i64` buffers so the sort/distinct
    /// fast paths stay open on derived data.
    pub fn from_rows(rows: &[Row]) -> Batch<'static> {
        let arity = rows.first().map_or(0, Row::arity);
        let cols = (0..arity)
            .map(|c| {
                let vals: Vec<Value> = rows.iter().map(|r| r.get(c).clone()).collect();
                pack_vals(vals)
            })
            .collect();
        Batch { raw_len: rows.len(), cols, sel: None }
    }

    /// Batch from column-major value builders (the join-output path:
    /// operators push values column-wise and avoid intermediate `Row`
    /// allocations). All-Int columns are packed into raw buffers.
    pub fn from_val_cols(cols: Vec<Vec<Value>>) -> Batch<'static> {
        let raw_len = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == raw_len));
        Batch { raw_len, cols: cols.into_iter().map(pack_vals).collect(), sel: None }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Rows in the underlying chunk, before selection.
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Rows surviving the selection vector.
    pub fn selected(&self) -> usize {
        match &self.sel {
            None => self.raw_len,
            Some(s) => s.len(),
        }
    }

    /// The selection vector, if any (`None` = all rows selected).
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Replace the selection vector (must be sorted, unique, in-bounds).
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(sel.last().is_none_or(|&i| (i as usize) < self.raw_len));
        self.sel = Some(sel);
    }

    /// Iterate the selected row indices in order.
    pub fn sel_iter(&self) -> SelIter<'_> {
        match &self.sel {
            None => SelIter::All(0..self.raw_len),
            Some(s) => SelIter::Picked(s.iter()),
        }
    }

    /// The first selected row index.
    pub fn first(&self) -> Option<usize> {
        self.sel_iter().next()
    }

    /// The last selected row index.
    pub fn last(&self) -> Option<usize> {
        match &self.sel {
            None => self.raw_len.checked_sub(1),
            Some(s) => s.last().map(|&i| i as usize),
        }
    }

    /// Column accessor.
    pub fn col(&self, c: usize) -> &Col<'a> {
        &self.cols[c]
    }

    /// Consume the batch into its columns.
    pub fn into_cols(self) -> Vec<Col<'a>> {
        self.cols
    }

    /// Value of cell `(col, row)` (row is a raw index, normally obtained
    /// from [`Batch::sel_iter`]).
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.cols[col].value(row)
    }

    /// Integer cell accessor.
    pub fn try_int(&self, col: usize, row: usize) -> Option<i64> {
        self.cols[col].try_int(row)
    }

    /// Materialize one row (the operator-output boundary, as in
    /// `RowRef::to_row`).
    pub fn materialize_row(&self, row: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c.value(row)).collect())
    }

    /// Materialize every selected row in order.
    pub fn materialize(&self) -> Vec<Row> {
        self.sel_iter().map(|i| self.materialize_row(i)).collect()
    }

    /// True when the selection vector is well-formed: sorted strictly
    /// ascending (hence unique) and in-bounds. The conformance suite
    /// asserts this on every batch an operator emits.
    pub fn sel_invariants_hold(&self) -> bool {
        match &self.sel {
            None => true,
            Some(s) => {
                s.windows(2).all(|w| w[0] < w[1])
                    && s.last().is_none_or(|&i| (i as usize) < self.raw_len)
            }
        }
    }

    /// Refine the selection vector to the rows satisfying `pred`.
    ///
    /// Conjunctions decompose into successive refinements; an `Eq` on an
    /// Int-represented column runs as a tight loop over the raw `i64`
    /// buffer; everything else (Str, nullable, `Or`/`Not` trees) drops
    /// to the row-at-a-time [`eval_at`] fallback.
    pub fn filter(&mut self, pred: &Predicate) {
        match pred {
            Predicate::True => {}
            Predicate::And(a, b) => {
                self.filter(a);
                self.filter(b);
            }
            Predicate::Eq(c, Value::Int(k)) if self.cols[*c].int_slice().is_some() => {
                // lint: allow(panic-on-worker-path): the match guard on the
                // line above already checked int_slice().is_some()
                let buf = self.cols[*c].int_slice().expect("checked int-represented");
                let k = *k;
                let keep: Vec<u32> = self
                    .sel_iter()
                    .filter(|&i| buf[i] == k)
                    .map(ts_storage::cast::to_u32)
                    .collect();
                self.sel = Some(keep);
            }
            _ => {
                let keep: Vec<u32> = self
                    .sel_iter()
                    .filter(|&i| eval_at(pred, self, i))
                    .map(ts_storage::cast::to_u32)
                    .collect();
                self.sel = Some(keep);
            }
        }
    }
}

/// Pack a value vector: all-Int columns become raw `i64` buffers.
fn pack_vals(vals: Vec<Value>) -> Col<'static> {
    if vals.iter().all(|v| matches!(v, Value::Int(_))) {
        Col::IntOwned(
            vals.iter()
                .map(|v| match v {
                    Value::Int(k) => *k,
                    // lint: allow(panic-on-worker-path): the all() guard on
                    // the enclosing if checked every value is Int
                    _ => unreachable!("checked all-Int"),
                })
                .collect(),
        )
    } else {
        Col::Vals(vals)
    }
}

/// Evaluate `pred` against row `i` of `batch` — the row-at-a-time
/// fallback, semantically identical to [`Predicate::eval_ref`].
pub fn eval_at(pred: &Predicate, batch: &Batch<'_>, i: usize) -> bool {
    match pred {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::Eq(c, v) => batch.col(*c).value_eq(i, v),
        Predicate::Contains(c, kw) => match batch.col(*c).str_at(i) {
            Some(s) => s.split_whitespace().any(|tok| tok == kw),
            None => false,
        },
        Predicate::And(a, b) => eval_at(a, batch, i) && eval_at(b, batch, i),
        Predicate::Or(a, b) => eval_at(a, batch, i) || eval_at(b, batch, i),
        Predicate::Not(a) => !eval_at(a, batch, i),
    }
}

/// Iterator over the selected raw row indices of a [`Batch`].
pub enum SelIter<'s> {
    /// Dense batch: every index in range.
    All(std::ops::Range<usize>),
    /// Selection vector indices.
    Picked(std::slice::Iter<'s, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(r) => r.next(),
            SelIter::Picked(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelIter::All(r) => r.size_hint(),
            SelIter::Picked(it) => it.size_hint(),
        }
    }
}

/// The batch-at-a-time operator interface: the Volcano contract lifted
/// to batches, including the DGJ group-skip extension.
///
/// Contracts (checked by the conformance tests):
///
/// * an emitted batch always has at least one selected row;
/// * a grouped operator's batches each contain rows of exactly one
///   group, and group order is preserved (property (a));
/// * selection vectors are sorted, unique and in-bounds.
pub trait BatchOperator<'a> {
    /// Produce the next non-empty batch, or `None` when exhausted (or
    /// when the shared [`crate::Work`] meter is interrupted).
    fn next_batch(&mut self) -> Option<Batch<'a>>;

    /// Reset to the beginning.
    fn rewind(&mut self);

    /// True if this operator maintains group semantics (property (a)).
    fn grouped(&self) -> bool {
        false
    }

    /// Skip the remainder of the current group (property (b)). Panics on
    /// non-grouped operators, mirroring the tuple engine's contract.
    fn advance_to_next_group(&mut self) {
        // lint: allow(panic-on-worker-path): contract violation — drivers
        // call this only after grouped() returned true, so reaching it is a
        // planner bug; the per-query unwind boundary confines the abort
        panic!("advance_to_next_group called on a non-grouped operator");
    }
}

/// A boxed batch operator with the lifetime of the data it scans.
pub type BoxedBatchOp<'a> = Box<dyn BatchOperator<'a> + 'a>;

#[cfg(test)]
mod tests {
    use super::*;
    use ts_storage::row;

    #[test]
    fn engine_default_is_batch_and_flips() {
        assert_eq!(engine(), Engine::Batch);
        set_engine(Engine::Tuple);
        assert_eq!(engine(), Engine::Tuple);
        set_engine(Engine::Batch);
    }

    #[test]
    fn batch_rows_override_restores_default() {
        assert_eq!(batch_rows(), DEFAULT_BATCH_ROWS);
        set_batch_rows(3);
        assert_eq!(batch_rows(), 3);
        set_batch_rows(0);
        assert_eq!(batch_rows(), DEFAULT_BATCH_ROWS);
    }

    #[test]
    fn from_rows_packs_int_columns() {
        let b = Batch::from_rows(&[row![1i64, "a"], row![2i64, "b"]]);
        assert!(matches!(b.col(0), Col::IntOwned(_)));
        assert!(matches!(b.col(1), Col::Vals(_)));
        assert_eq!(b.materialize(), vec![row![1i64, "a"], row![2i64, "b"]]);
    }

    #[test]
    fn filter_refines_selection_and_keeps_invariants() {
        let rows: Vec<Row> = (0..10).map(|i| row![i as i64, (i % 2) as i64]).collect();
        let mut b = Batch::from_rows(&rows);
        b.filter(&Predicate::eq(1, 1i64));
        assert!(b.sel_invariants_hold());
        assert_eq!(b.selected(), 5);
        b.filter(&Predicate::eq(0, 3i64));
        assert!(b.sel_invariants_hold());
        assert_eq!(b.materialize(), vec![row![3i64, 1i64]]);
    }

    #[test]
    fn eval_at_matches_tuple_eval_on_null_and_str() {
        let rows = vec![
            Row::new(vec![Value::Null, Value::str("alpha beta")]),
            Row::new(vec![Value::Int(1), Value::str("beta")]),
        ];
        let b = Batch::from_rows(&rows);
        let contains = Predicate::contains(1, "beta");
        let eq_null = Predicate::Eq(0, Value::Null);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(eval_at(&contains, &b, i), contains.eval(r));
            assert_eq!(eval_at(&eq_null, &b, i), eq_null.eval(r));
        }
    }
}
