//! Scan operators: sequential table scan, index lookups, materialized rows.

use ts_storage::cast;
use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{Predicate, Row, Table, Value};

use crate::batch::{batch_rows, Batch, BatchOperator};
use crate::op::{Operator, Work};

/// Sequential scan over a table with an optional residual predicate.
pub struct TableScan<'a> {
    table: &'a Table,
    pred: Predicate,
    pos: usize,
    work: Work,
}

impl<'a> TableScan<'a> {
    /// Scan `table`, emitting rows satisfying `pred`.
    pub fn new(table: &'a Table, pred: Predicate, work: Work) -> Self {
        TableScan { table, pred, pos: 0, work }
    }
}

impl Operator for TableScan<'_> {
    fn next(&mut self) -> Option<Row> {
        if let FireAction::Starve = faults::fire(sites::EXEC_SCAN) {
            self.work.starve();
        }
        while self.pos < self.table.len() {
            // Budget checkpoint: a scan with a selective predicate can
            // touch many rows per emitted tuple, so poll inside the loop
            // rather than only at entry.
            if self.work.interrupted() {
                return None;
            }
            let row = self.table.row(cast::to_u32(self.pos));
            self.pos += 1;
            self.work.tick(1);
            // The predicate runs on the borrowed columnar view; only a
            // surviving row is materialized as an output tuple.
            if self.pred.eval_ref(row) {
                return Some(row.to_row());
            }
        }
        None
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// Vectorized sequential scan: emits [`Batch`]es of column slices
/// borrowed from the table's store, with `pred` folded into each
/// batch's selection vector. The predicate runs directly on raw `i64`
/// buffers for null-free Int columns; each chunk is charged to the
/// work meter in one `tick(chunk_len)` call, so step quotas and
/// deadline polls fire with tuple-engine granularity (the chunk size
/// defaults to the meter's poll window).
pub struct BatchTableScan<'a> {
    table: &'a Table,
    pred: Predicate,
    pos: usize,
    work: Work,
}

impl<'a> BatchTableScan<'a> {
    /// Scan `table`, emitting batches of rows satisfying `pred`.
    pub fn new(table: &'a Table, pred: Predicate, work: Work) -> Self {
        BatchTableScan { table, pred, pos: 0, work }
    }
}

impl<'a> BatchOperator<'a> for BatchTableScan<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        if let FireAction::Starve = faults::fire(sites::EXEC_SCAN) {
            self.work.starve();
        }
        while self.pos < self.table.len() {
            if self.work.interrupted() {
                return None;
            }
            let end = (self.pos + batch_rows()).min(self.table.len());
            let mut b = Batch::from_store(self.table.store(), self.pos, end);
            self.work.tick((end - self.pos) as u64);
            self.pos = end;
            b.filter(&self.pred);
            if b.selected() > 0 {
                return Some(b);
            }
        }
        None
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// Index lookup: emit the rows of `table` whose indexed column equals a
/// fixed key (one probe, then posting-list iteration).
pub struct IndexLookupScan<'a> {
    table: &'a Table,
    col: usize,
    key: Value,
    posting_pos: usize,
    probed: bool,
    postings: Vec<u32>,
    work: Work,
}

impl<'a> IndexLookupScan<'a> {
    /// Probe the secondary index on `col` for `key`.
    pub fn new(table: &'a Table, col: usize, key: Value, work: Work) -> Self {
        IndexLookupScan {
            table,
            col,
            key,
            posting_pos: 0,
            probed: false,
            postings: Vec::new(),
            work,
        }
    }
}

impl Operator for IndexLookupScan<'_> {
    fn next(&mut self) -> Option<Row> {
        if self.work.interrupted() {
            return None;
        }
        if !self.probed {
            self.probed = true;
            self.work.tick(1); // the probe itself
            self.postings = self.table.index_probe(self.col, &self.key).to_vec();
        }
        if self.posting_pos < self.postings.len() {
            let id = self.postings[self.posting_pos];
            self.posting_pos += 1;
            self.work.tick(1);
            Some(self.table.row(id).to_row())
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        self.posting_pos = 0;
    }
}

/// Vectorized index lookup: one probe, then posting-list rows emitted
/// in batches.
pub struct BatchIndexLookupScan<'a> {
    table: &'a Table,
    col: usize,
    key: Value,
    posting_pos: usize,
    probed: bool,
    postings: Vec<u32>,
    work: Work,
}

impl<'a> BatchIndexLookupScan<'a> {
    /// Probe the secondary index on `col` for `key`.
    pub fn new(table: &'a Table, col: usize, key: Value, work: Work) -> Self {
        BatchIndexLookupScan {
            table,
            col,
            key,
            posting_pos: 0,
            probed: false,
            postings: Vec::new(),
            work,
        }
    }
}

impl<'a> BatchOperator<'a> for BatchIndexLookupScan<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        if self.work.interrupted() {
            return None;
        }
        if !self.probed {
            self.probed = true;
            self.work.tick(1); // the probe itself
            self.postings = self.table.index_probe(self.col, &self.key).to_vec();
        }
        if self.posting_pos >= self.postings.len() {
            return None;
        }
        let end = (self.posting_pos + batch_rows()).min(self.postings.len());
        let rows: Vec<Row> = self.postings[self.posting_pos..end]
            .iter()
            .map(|&id| self.table.row(id).to_row())
            .collect();
        self.work.tick((end - self.posting_pos) as u64);
        self.posting_pos = end;
        Some(Batch::from_rows(&rows))
    }

    fn rewind(&mut self) {
        self.posting_pos = 0;
    }
}

/// Scan over pre-materialized rows (e.g. TopInfo sorted by score).
///
/// `grouped` marks the stream as clustered by a group column so DGJ
/// operators can be stacked on top; [`ValuesScan::advance_to_next_group`]
/// then skips to the next distinct value of that column.
pub struct ValuesScan {
    rows: Vec<Row>,
    pos: usize,
    group_col: Option<usize>,
    work: Work,
}

impl ValuesScan {
    /// Ungrouped stream of rows.
    pub fn new(rows: Vec<Row>, work: Work) -> Self {
        ValuesScan { rows, pos: 0, group_col: None, work }
    }

    /// Stream clustered by `group_col` (rows must already be clustered).
    pub fn grouped(rows: Vec<Row>, group_col: usize, work: Work) -> Self {
        ValuesScan { rows, pos: 0, group_col: Some(group_col), work }
    }
}

impl Operator for ValuesScan {
    fn next(&mut self) -> Option<Row> {
        if self.work.interrupted() {
            return None;
        }
        if self.pos < self.rows.len() {
            let r = self.rows[self.pos].clone();
            self.pos += 1;
            self.work.tick(1);
            Some(r)
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }

    fn grouped(&self) -> bool {
        self.group_col.is_some()
    }

    fn advance_to_next_group(&mut self) {
        let Some(col) = self.group_col else {
            // lint: allow(panic-on-worker-path): contract violation — drivers
            // only group-skip operators whose grouped() returned true; the
            // per-query unwind boundary confines the abort
            panic!("advance_to_next_group called on a non-grouped operator");
        };
        if self.pos == 0 || self.pos > self.rows.len() {
            return;
        }
        // Current group is the one of the last-emitted row.
        let current = self.rows[self.pos - 1].get(col).clone();
        while self.pos < self.rows.len() && *self.rows[self.pos].get(col) == current {
            self.pos += 1;
            self.work.tick(1);
        }
    }
}

/// Vectorized scan over pre-materialized rows.
///
/// When grouped, batches are clipped at group boundaries: every emitted
/// batch holds rows of exactly one group (a large group spans several
/// consecutive batches), which is the invariant the batch DGJ operators
/// and top-k driver rely on for skipping.
pub struct BatchValuesScan {
    rows: Vec<Row>,
    pos: usize,
    group_col: Option<usize>,
    work: Work,
}

impl BatchValuesScan {
    /// Ungrouped stream of rows.
    pub fn new(rows: Vec<Row>, work: Work) -> Self {
        BatchValuesScan { rows, pos: 0, group_col: None, work }
    }

    /// Stream clustered by `group_col` (rows must already be clustered).
    pub fn grouped(rows: Vec<Row>, group_col: usize, work: Work) -> Self {
        BatchValuesScan { rows, pos: 0, group_col: Some(group_col), work }
    }
}

impl<'a> BatchOperator<'a> for BatchValuesScan {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        if self.work.interrupted() {
            return None;
        }
        if self.pos >= self.rows.len() {
            return None;
        }
        let mut end = (self.pos + batch_rows()).min(self.rows.len());
        if let Some(col) = self.group_col {
            // Clip at the group boundary: batches never span groups.
            let group = self.rows[self.pos].get(col);
            let mut e = self.pos + 1;
            // lint: allow(unmetered-loop): bounded by one batch; the tick
            // below charges end - pos rows
            while e < end && self.rows[e].get(col) == group {
                e += 1;
            }
            end = e;
        }
        let b = Batch::from_rows(&self.rows[self.pos..end]);
        self.work.tick((end - self.pos) as u64);
        self.pos = end;
        Some(b)
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }

    fn grouped(&self) -> bool {
        self.group_col.is_some()
    }

    fn advance_to_next_group(&mut self) {
        let Some(col) = self.group_col else {
            // lint: allow(panic-on-worker-path): contract violation — drivers
            // only group-skip operators whose grouped() returned true; the
            // per-query unwind boundary confines the abort
            panic!("advance_to_next_group called on a non-grouped operator");
        };
        if self.pos == 0 || self.pos > self.rows.len() {
            return;
        }
        // Current group is the one of the last-emitted row.
        let current = self.rows[self.pos - 1].get(col).clone();
        while self.pos < self.rows.len() && *self.rows[self.pos].get(col) == current {
            self.pos += 1;
            self.work.tick(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_storage::{row, ColumnDef, TableSchema, ValueType};

    fn table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "T",
            vec![ColumnDef::new("id", ValueType::Int), ColumnDef::new("s", ValueType::Str)],
            Some(0),
        ));
        t.insert(row![1i64, "a"]).unwrap();
        t.insert(row![2i64, "b"]).unwrap();
        t.insert(row![3i64, "a"]).unwrap();
        t.create_index(1);
        t
    }

    #[test]
    fn table_scan_filters_and_meters() {
        let t = table();
        let w = Work::new();
        let mut op = TableScan::new(&t, Predicate::eq(1, "a"), w.clone());
        let got = crate::driver::collect_all(&mut op);
        assert_eq!(got.len(), 2);
        assert_eq!(w.get(), 3); // three rows touched
        op.rewind();
        assert_eq!(crate::driver::collect_all(&mut op).len(), 2);
    }

    #[test]
    fn index_lookup_scan() {
        let t = table();
        let w = Work::new();
        let mut op = IndexLookupScan::new(&t, 1, Value::str("a"), w.clone());
        let got = crate::driver::collect_all(&mut op);
        assert_eq!(got.len(), 2);
        op.rewind();
        assert_eq!(crate::driver::collect_all(&mut op).len(), 2);
    }

    #[test]
    fn values_scan_group_skip() {
        let rows = vec![
            row![10i64, 1i64],
            row![10i64, 2i64],
            row![10i64, 3i64],
            row![20i64, 4i64],
            row![20i64, 5i64],
        ];
        let mut op = ValuesScan::grouped(rows, 0, Work::new());
        assert!(op.grouped());
        let first = op.next().unwrap();
        assert_eq!(first.get(1).as_int(), 1);
        op.advance_to_next_group();
        let next = op.next().unwrap();
        assert_eq!(next.get(0).as_int(), 20);
        assert_eq!(next.get(1).as_int(), 4);
    }

    #[test]
    fn values_scan_advance_before_next_is_noop() {
        let rows = vec![row![10i64], row![20i64]];
        let mut op = ValuesScan::grouped(rows, 0, Work::new());
        op.advance_to_next_group();
        assert_eq!(op.next().unwrap().get(0).as_int(), 10);
    }

    #[test]
    fn batch_table_scan_matches_tuple_scan_and_meter() {
        let t = table();
        let w = Work::new();
        let mut op = BatchTableScan::new(&t, Predicate::eq(1, "a"), w.clone());
        let got = crate::driver::batch_collect_all(&mut op);
        assert_eq!(got.len(), 2);
        assert_eq!(w.get(), 3); // three rows touched, same as the tuple scan
        op.rewind();
        assert_eq!(crate::driver::batch_collect_all(&mut op).len(), 2);
    }

    #[test]
    fn batch_index_lookup_scan_matches_tuple() {
        let t = table();
        let mut op = BatchIndexLookupScan::new(&t, 1, Value::str("a"), Work::new());
        let got = crate::driver::batch_collect_all(&mut op);
        let mut tup = IndexLookupScan::new(&t, 1, Value::str("a"), Work::new());
        assert_eq!(got, crate::driver::collect_all(&mut tup));
        op.rewind();
        assert_eq!(crate::driver::batch_collect_all(&mut op).len(), 2);
    }

    #[test]
    fn batch_values_scan_clips_batches_at_group_boundaries() {
        let rows = vec![
            row![10i64, 1i64],
            row![10i64, 2i64],
            row![20i64, 3i64],
            row![20i64, 4i64],
            row![30i64, 5i64],
        ];
        let mut op = BatchValuesScan::grouped(rows, 0, Work::new());
        assert!(BatchOperator::grouped(&op));
        let mut groups = Vec::new();
        while let Some(b) = op.next_batch() {
            let g: Vec<i64> = b.sel_iter().map(|i| b.try_int(0, i).unwrap()).collect();
            assert!(g.windows(2).all(|w| w[0] == w[1]), "batch spans groups: {g:?}");
            groups.push(g[0]);
        }
        assert_eq!(groups, vec![10, 20, 30]);
    }

    #[test]
    fn batch_values_scan_group_skip() {
        let rows = vec![row![10i64, 1i64], row![10i64, 2i64], row![10i64, 3i64], row![20i64, 4i64]];
        let mut op = BatchValuesScan::grouped(rows, 0, Work::new());
        let first = op.next_batch().unwrap();
        assert_eq!(first.try_int(0, first.first().unwrap()), Some(10));
        op.advance_to_next_group();
        let next = op.next_batch().unwrap();
        assert_eq!(next.try_int(0, next.first().unwrap()), Some(20));
    }
}
