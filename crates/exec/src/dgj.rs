//! The Distinct Group Join operator family (§5.3 of the paper).
//!
//! DGJ operators satisfy two properties:
//!
//! * **(a)** they understand groups of tuples, and preserve the order of
//!   groups from the input to the output (here: the input stream is
//!   clustered by a *group column* — topology id in score order — and
//!   output tuples stay clustered the same way);
//! * **(b)** they allow efficiently skipping from one group to the next
//!   via `advance_to_next_group`, "which is in addition to the usual
//!   getNext method supported by regular operators".
//!
//! [`Idgj`] is the (index) nested-loops implementation: order
//! preservation is free (any NLJ preserves outer order) and group skip
//! just discontinues the current loop and delegates the skip to its
//! input. [`Hdgj`] is the hash implementation: it joins one group at a
//! time, re-evaluating (re-scanning) the inner relation for each group —
//! the overhead the paper's cost-based optimizer weighs against the
//! early-termination benefit.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{FastMap, Row, Table, Value};

use crate::op::{BoxedOp, Operator, Work};

/// Index nested-loops DGJ.
///
/// For each outer tuple, probes `inner`'s index on `inner_col` with the
/// outer tuple's `outer_col` value and emits `outer ++ inner` rows.
/// The outer stream must be clustered by `group_col`.
pub struct Idgj<'a> {
    outer: BoxedOp<'a>,
    inner: &'a Table,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    pending: Vec<Row>,
    /// Lookahead used when the input cannot skip groups itself.
    lookahead: Option<Row>,
    /// Group value of the last outer row consumed.
    current_group: Option<Value>,
    work: Work,
}

impl<'a> Idgj<'a> {
    /// Build an IDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedOp<'a>,
        outer_col: usize,
        inner: &'a Table,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        Idgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            pending: Vec::new(),
            lookahead: None,
            current_group: None,
            work,
        }
    }

    /// Probe the inner index and queue `outer ++ inner` tuples (reversed:
    /// [`Operator::next`] pops from the end). Output tuples are built in
    /// one allocation from the borrowed inner rows.
    fn push_matches(&mut self, outer_row: &Row) {
        self.work.tick(1);
        let inner: &'a Table = self.inner;
        let key = outer_row.get(self.outer_col);
        if inner.schema().primary_key == Some(self.inner_col) {
            if let Some(r) = inner.by_pk(key) {
                self.pending.push(outer_row.concat_ref(r));
            }
        } else {
            for &rid in inner.index_probe(self.inner_col, key).iter().rev() {
                self.pending.push(outer_row.concat_ref(inner.row(rid)));
            }
        }
    }

    fn next_outer(&mut self) -> Option<Row> {
        if let Some(r) = self.lookahead.take() {
            return Some(r);
        }
        self.outer.next()
    }
}

impl Operator for Idgj<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            if let Some(r) = self.pending.pop() {
                return Some(r);
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return None;
            }
            let outer_row = self.next_outer()?;
            self.work.tick(1);
            self.current_group = Some(outer_row.get(self.group_col).clone());
            self.push_matches(&outer_row);
        }
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.pending.clear();
        self.lookahead = None;
        self.current_group = None;
    }

    fn grouped(&self) -> bool {
        true
    }

    /// Discontinue the current loop and skip the input to its next group
    /// (the paper: "IDGJ preserves property (b) by simply discontinuing
    /// the current loop and invoking advanceToNextGroup on its input").
    fn advance_to_next_group(&mut self) {
        self.pending.clear();
        let Some(current) = self.current_group.clone() else {
            return; // nothing consumed yet: already at a group boundary
        };
        if self.outer.grouped() {
            self.outer.advance_to_next_group();
        } else {
            // Fallback: drain until the group column changes, buffering
            // the first row of the next group.
            loop {
                match self.outer.next() {
                    None => break,
                    Some(r) => {
                        self.work.tick(1);
                        if *r.get(self.group_col) != current {
                            self.lookahead = Some(r);
                            break;
                        }
                    }
                }
            }
        }
        self.current_group = None;
    }
}

/// Hash DGJ: joins one group at a time.
///
/// For each group of outer tuples it hashes the group, then re-evaluates
/// the inner operator from scratch (`rewind` + full scan), probing the
/// group hash. Matches are emitted in outer order, keeping property (a).
pub struct Hdgj<'a> {
    outer: BoxedOp<'a>,
    inner: BoxedOp<'a>,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    queue: std::collections::VecDeque<Row>,
    lookahead: Option<Row>,
    exhausted: bool,
    work: Work,
}

impl<'a> Hdgj<'a> {
    /// Build an HDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedOp<'a>,
        outer_col: usize,
        inner: BoxedOp<'a>,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        Hdgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            queue: std::collections::VecDeque::new(),
            lookahead: None,
            exhausted: false,
            work,
        }
    }

    /// Materialize the next group of outer rows and join it.
    fn fill_group(&mut self) {
        while self.queue.is_empty() && !self.exhausted {
            if self.work.interrupted() {
                return;
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return;
            }
            // Gather one group of outer rows.
            let first = match self.lookahead.take().or_else(|| self.outer.next()) {
                Some(r) => r,
                None => {
                    self.exhausted = true;
                    return;
                }
            };
            self.work.tick(1);
            let group = first.get(self.group_col).clone();
            let mut group_rows = vec![first];
            loop {
                match self.outer.next() {
                    None => break,
                    Some(r) => {
                        self.work.tick(1);
                        if *r.get(self.group_col) == group {
                            group_rows.push(r);
                        } else {
                            self.lookahead = Some(r);
                            break;
                        }
                    }
                }
            }
            // Hash the group on the join key.
            let mut hash: FastMap<Value, Vec<usize>> = FastMap::default();
            for (i, r) in group_rows.iter().enumerate() {
                hash.entry(r.get(self.outer_col).clone()).or_default().push(i);
            }
            // Re-evaluate the inner relation for this group.
            self.inner.rewind();
            let mut matches: Vec<(usize, Row)> = Vec::new();
            while let Some(inner_row) = self.inner.next() {
                self.work.tick(1);
                if let Some(idxs) = hash.get(inner_row.get(self.inner_col)) {
                    for &i in idxs {
                        matches.push((i, group_rows[i].concat(&inner_row)));
                    }
                }
            }
            // Emit in outer order within the group.
            matches.sort_by_key(|&(i, _)| i);
            self.queue.extend(matches.into_iter().map(|(_, r)| r));
            // If the group had no matches, loop to the next group.
        }
    }
}

impl Operator for Hdgj<'_> {
    fn next(&mut self) -> Option<Row> {
        self.fill_group();
        self.queue.pop_front()
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.inner.rewind();
        self.queue.clear();
        self.lookahead = None;
        self.exhausted = false;
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        // The current group is fully materialized in the queue; skipping
        // is dropping the rest of it. (The inner re-scan for this group
        // has already been paid — part of HDGJ's cost profile, §5.4.)
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{collect_all, collect_distinct_topk};
    use crate::scan::ValuesScan;
    use ts_storage::{row, ColumnDef, TableSchema, ValueType};

    /// Outer stream: (group, key) clustered by group in score order.
    fn outer_rows() -> Vec<Row> {
        vec![
            row![100i64, 1i64],
            row![100i64, 2i64],
            row![100i64, 3i64],
            row![200i64, 2i64],
            row![200i64, 9i64],
            row![300i64, 3i64],
        ]
    }

    fn inner_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "Inner",
            vec![ColumnDef::new("k", ValueType::Int), ColumnDef::new("v", ValueType::Str)],
            None,
        ));
        t.insert(row![2i64, "two"]).unwrap();
        t.insert(row![3i64, "three"]).unwrap();
        t.insert(row![3i64, "tres"]).unwrap();
        t.create_index(0);
        t
    }

    fn grouped_outer() -> BoxedOp<'static> {
        Box::new(ValuesScan::grouped(outer_rows(), 0, Work::new()))
    }

    #[test]
    fn idgj_joins_in_group_order() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let got = collect_all(&mut j);
        // Group 100: keys 1 (no match), 2 -> two, 3 -> three, tres.
        // Group 200: 2 -> two, 9 none. Group 300: 3 -> three, tres.
        assert_eq!(got.len(), 6);
        let groups: Vec<i64> = got.iter().map(|r| r.get(0).as_int()).collect();
        assert_eq!(groups, vec![100, 100, 100, 200, 300, 300]);
    }

    #[test]
    fn idgj_group_skip_delegates() {
        let t = inner_table();
        let w = Work::new();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, w.clone());
        let first = j.next().unwrap();
        assert_eq!(first.get(0).as_int(), 100);
        j.advance_to_next_group();
        let next = j.next().unwrap();
        assert_eq!(next.get(0).as_int(), 200);
        j.advance_to_next_group();
        let last = j.next().unwrap();
        assert_eq!(last.get(0).as_int(), 300);
    }

    #[test]
    fn idgj_fallback_drain_when_input_ungrouped() {
        let t = inner_table();
        // Plain ValuesScan: not grouped -> IDGJ drains manually.
        let outer: BoxedOp<'static> = Box::new(ValuesScan::new(outer_rows(), Work::new()));
        let mut j = Idgj::new(outer, 1, &t, 0, 0, Work::new());
        j.next().unwrap();
        j.advance_to_next_group();
        assert_eq!(j.next().unwrap().get(0).as_int(), 200);
    }

    #[test]
    fn idgj_advance_before_any_next_is_noop() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        j.advance_to_next_group();
        assert_eq!(j.next().unwrap().get(0).as_int(), 100);
    }

    #[test]
    fn hdgj_matches_idgj_output() {
        let t = inner_table();
        let mut i = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, Work::new());
        assert_eq!(collect_all(&mut i), collect_all(&mut h));
    }

    #[test]
    fn hdgj_rescans_inner_per_group() {
        let t = inner_table();
        let w = Work::new();
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, w.clone());
        let _ = collect_all(&mut h);
        // 3 groups × 3 inner rows = 9 inner touches at minimum.
        assert!(w.get() >= 9 + 6, "work = {}", w.get());
    }

    #[test]
    fn hdgj_group_skip() {
        let t = inner_table();
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, Work::new());
        let first = h.next().unwrap();
        assert_eq!(first.get(0).as_int(), 100);
        h.advance_to_next_group();
        assert_eq!(h.next().unwrap().get(0).as_int(), 200);
    }

    #[test]
    fn distinct_topk_over_idgj() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let top2 = collect_distinct_topk(&mut j, 0, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].get(0).as_int(), 100);
        assert_eq!(top2[1].get(0).as_int(), 200);
    }

    /// Minimal rewindable scan over a table for HDGJ inners in tests.
    struct TableScanHelper<'a> {
        t: &'a Table,
        pos: usize,
    }
    impl<'a> TableScanHelper<'a> {
        fn new(t: &'a Table) -> Self {
            TableScanHelper { t, pos: 0 }
        }
    }
    impl Operator for TableScanHelper<'_> {
        fn next(&mut self) -> Option<Row> {
            if self.pos < self.t.len() {
                let r = self.t.row(self.pos as u32).to_row();
                self.pos += 1;
                Some(r)
            } else {
                None
            }
        }
        fn rewind(&mut self) {
            self.pos = 0;
        }
    }
}
