//! The Distinct Group Join operator family (§5.3 of the paper).
//!
//! DGJ operators satisfy two properties:
//!
//! * **(a)** they understand groups of tuples, and preserve the order of
//!   groups from the input to the output (here: the input stream is
//!   clustered by a *group column* — topology id in score order — and
//!   output tuples stay clustered the same way);
//! * **(b)** they allow efficiently skipping from one group to the next
//!   via `advance_to_next_group`, "which is in addition to the usual
//!   getNext method supported by regular operators".
//!
//! [`Idgj`] is the (index) nested-loops implementation: order
//! preservation is free (any NLJ preserves outer order) and group skip
//! just discontinues the current loop and delegates the skip to its
//! input. [`Hdgj`] is the hash implementation: it joins one group at a
//! time, re-evaluating (re-scanning) the inner relation for each group —
//! the overhead the paper's cost-based optimizer weighs against the
//! early-termination benefit.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{FastMap, Row, Table, Value};

use crate::batch::{Batch, BatchOperator, BoxedBatchOp};
use crate::join::probe_inner_columnwise;
use crate::op::{BoxedOp, Operator, Work};

/// Index nested-loops DGJ.
///
/// For each outer tuple, probes `inner`'s index on `inner_col` with the
/// outer tuple's `outer_col` value and emits `outer ++ inner` rows.
/// The outer stream must be clustered by `group_col`.
pub struct Idgj<'a> {
    outer: BoxedOp<'a>,
    inner: &'a Table,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    pending: Vec<Row>,
    /// Lookahead used when the input cannot skip groups itself.
    lookahead: Option<Row>,
    /// Group value of the last outer row consumed.
    current_group: Option<Value>,
    work: Work,
}

impl<'a> Idgj<'a> {
    /// Build an IDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedOp<'a>,
        outer_col: usize,
        inner: &'a Table,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        Idgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            pending: Vec::new(),
            lookahead: None,
            current_group: None,
            work,
        }
    }

    /// Probe the inner index and queue `outer ++ inner` tuples (reversed:
    /// [`Operator::next`] pops from the end). Output tuples are built in
    /// one allocation from the borrowed inner rows.
    fn push_matches(&mut self, outer_row: &Row) {
        self.work.tick(1);
        let inner: &'a Table = self.inner;
        let key = outer_row.get(self.outer_col);
        if inner.schema().primary_key == Some(self.inner_col) {
            if let Some(r) = inner.by_pk(key) {
                self.pending.push(outer_row.concat_ref(r));
            }
        } else {
            for &rid in inner.index_probe(self.inner_col, key).iter().rev() {
                self.pending.push(outer_row.concat_ref(inner.row(rid)));
            }
        }
    }

    fn next_outer(&mut self) -> Option<Row> {
        if let Some(r) = self.lookahead.take() {
            return Some(r);
        }
        self.outer.next()
    }
}

impl Operator for Idgj<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            if let Some(r) = self.pending.pop() {
                return Some(r);
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return None;
            }
            let outer_row = self.next_outer()?;
            self.work.tick(1);
            self.current_group = Some(outer_row.get(self.group_col).clone());
            self.push_matches(&outer_row);
        }
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.pending.clear();
        self.lookahead = None;
        self.current_group = None;
    }

    fn grouped(&self) -> bool {
        true
    }

    /// Discontinue the current loop and skip the input to its next group
    /// (the paper: "IDGJ preserves property (b) by simply discontinuing
    /// the current loop and invoking advanceToNextGroup on its input").
    fn advance_to_next_group(&mut self) {
        self.pending.clear();
        let Some(current) = self.current_group.clone() else {
            return; // nothing consumed yet: already at a group boundary
        };
        if self.outer.grouped() {
            self.outer.advance_to_next_group();
        } else {
            // Fallback: drain until the group column changes, buffering
            // the first row of the next group.
            loop {
                match self.outer.next() {
                    None => break,
                    Some(r) => {
                        self.work.tick(1);
                        if *r.get(self.group_col) != current {
                            self.lookahead = Some(r);
                            break;
                        }
                    }
                }
            }
        }
        self.current_group = None;
    }
}

/// Vectorized index nested-loops DGJ.
///
/// Consumes the group-clustered outer stream one batch at a time and
/// probes `inner`'s index per outer row, emitting one output batch per
/// consumed outer batch. Both stream invariants hold: outer batches of
/// a grouped input carry exactly one group, so output batches do too
/// (property (a)); with an ungrouped outer, each pulled batch is split
/// at its first group boundary and the remainder parked as lookahead.
pub struct BatchIdgj<'a> {
    outer: BoxedBatchOp<'a>,
    inner: &'a Table,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    /// Parked outer batches, in stream order: unprobed chunk remainders
    /// of the current group, split remainders, and the first batch of
    /// the next group buffered by the advance fallback. Invariant: any
    /// front batch still in `current_group` is an unprobed remainder;
    /// batches behind it start later groups.
    pending: std::collections::VecDeque<Batch<'a>>,
    current_group: Option<Value>,
    /// Outer rows probed per pull within the current group; starts at
    /// [`PROBE_CHUNK0`] and doubles, so an early-terminating consumer
    /// that skips after the first witness abandons most of the group's
    /// probes while full drains amortize to whole batches.
    chunk: usize,
    work: Work,
}

/// First probe chunk of each [`BatchIdgj`] group (see `chunk` above).
const PROBE_CHUNK0: usize = 4;

impl<'a> BatchIdgj<'a> {
    /// Build a batch IDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedBatchOp<'a>,
        outer_col: usize,
        inner: &'a Table,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        BatchIdgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            pending: std::collections::VecDeque::new(),
            current_group: None,
            chunk: PROBE_CHUNK0,
            work,
        }
    }

    /// Pull the next single-group outer batch, splitting a multi-group
    /// batch (possible only with an ungrouped outer) at its first
    /// boundary and parking the remainder.
    fn next_outer(&mut self) -> Option<Batch<'a>> {
        let mut b = self.pending.pop_front().or_else(|| self.outer.next_batch())?;
        // lint: allow(panic-on-worker-path): operators never emit an empty
        // batch (next_batch returns None instead), and next_outer never
        // parks an empty remainder
        let group = b.value(self.group_col, b.first().expect("non-empty batch"));
        let split: Vec<u32> = b
            .sel_iter()
            .skip_while(|&i| b.value(self.group_col, i) == group)
            .map(ts_storage::cast::to_u32)
            .collect();
        if !split.is_empty() {
            let keep: Vec<u32> = b
                .sel_iter()
                .take(b.selected() - split.len())
                .map(ts_storage::cast::to_u32)
                .collect();
            let mut rest = b.clone();
            rest.set_sel(split);
            self.pending.push_front(rest);
            b.set_sel(keep);
        }
        Some(b)
    }
}

impl<'a> BatchOperator<'a> for BatchIdgj<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return None;
            }
            let mut ob = self.next_outer()?;
            // lint: allow(panic-on-worker-path): operators never emit an empty
            // batch (next_batch returns None instead), and next_outer never
            // parks an empty remainder
            let group = ob.value(self.group_col, ob.first().expect("non-empty batch"));
            if self.current_group.as_ref() != Some(&group) {
                self.chunk = PROBE_CHUNK0;
            }
            self.current_group = Some(group);
            // Probe at most `chunk` outer rows this pull; park the rest
            // of the group so a group skip can abandon it unprobed.
            if ob.selected() > self.chunk {
                let keep: Vec<u32> =
                    ob.sel_iter().take(self.chunk).map(ts_storage::cast::to_u32).collect();
                let rest: Vec<u32> =
                    ob.sel_iter().skip(self.chunk).map(ts_storage::cast::to_u32).collect();
                let mut r = ob.clone();
                r.set_sel(rest);
                self.pending.push_front(r);
                ob.set_sel(keep);
            }
            self.chunk = (self.chunk * 2).min(crate::batch::batch_rows());
            self.work.tick(ob.selected() as u64);
            let out =
                probe_inner_columnwise(&ob, self.inner, self.outer_col, self.inner_col, &self.work);
            if let Some(b) = out {
                return Some(b);
            }
        }
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.pending.clear();
        self.current_group = None;
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        let Some(current) = self.current_group.clone() else {
            return; // nothing consumed yet: already at a group boundary
        };
        // Drop unprobed chunk remainders of the skipped group — this is
        // the early-termination saving: those rows are never probed.
        while let Some(front) = self.pending.front() {
            // lint: allow(panic-on-worker-path): operators never emit an empty
            // batch (next_batch returns None instead), and next_outer never
            // parks an empty remainder
            let g = front.value(self.group_col, front.first().expect("non-empty batch"));
            if g != current {
                break;
            }
            self.pending.pop_front();
        }
        // A parked batch now starts a later group (deque invariant).
        if self.pending.is_empty() {
            if self.outer.grouped() {
                self.outer.advance_to_next_group();
            } else {
                // Fallback: drain batches until the group changes,
                // parking the first batch of the next group.
                while let Some(b) = self.next_outer() {
                    self.work.tick(b.selected() as u64);
                    // lint: allow(panic-on-worker-path): operators never emit an empty
                    // batch (next_batch returns None instead), and next_outer never
                    // parks an empty remainder
                    let g = b.value(self.group_col, b.first().expect("non-empty batch"));
                    if g != current {
                        self.pending.push_front(b);
                        break;
                    }
                }
            }
        }
        self.current_group = None;
    }
}

/// Hash DGJ: joins one group at a time.
///
/// For each group of outer tuples it hashes the group, then re-evaluates
/// the inner operator from scratch (`rewind` + full scan), probing the
/// group hash. Matches are emitted in outer order, keeping property (a).
pub struct Hdgj<'a> {
    outer: BoxedOp<'a>,
    inner: BoxedOp<'a>,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    queue: std::collections::VecDeque<Row>,
    lookahead: Option<Row>,
    exhausted: bool,
    work: Work,
}

impl<'a> Hdgj<'a> {
    /// Build an HDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedOp<'a>,
        outer_col: usize,
        inner: BoxedOp<'a>,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        Hdgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            queue: std::collections::VecDeque::new(),
            lookahead: None,
            exhausted: false,
            work,
        }
    }

    /// Materialize the next group of outer rows and join it.
    fn fill_group(&mut self) {
        while self.queue.is_empty() && !self.exhausted {
            if self.work.interrupted() {
                return;
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return;
            }
            // Gather one group of outer rows.
            let first = match self.lookahead.take().or_else(|| self.outer.next()) {
                Some(r) => r,
                None => {
                    self.exhausted = true;
                    return;
                }
            };
            self.work.tick(1);
            let group = first.get(self.group_col).clone();
            let mut group_rows = vec![first];
            loop {
                match self.outer.next() {
                    None => break,
                    Some(r) => {
                        self.work.tick(1);
                        if *r.get(self.group_col) == group {
                            group_rows.push(r);
                        } else {
                            self.lookahead = Some(r);
                            break;
                        }
                    }
                }
            }
            // Hash the group on the join key.
            let mut hash: FastMap<Value, Vec<usize>> = FastMap::default();
            for (i, r) in group_rows.iter().enumerate() {
                hash.entry(r.get(self.outer_col).clone()).or_default().push(i);
            }
            // Re-evaluate the inner relation for this group.
            self.inner.rewind();
            let mut matches: Vec<(usize, Row)> = Vec::new();
            while let Some(inner_row) = self.inner.next() {
                self.work.tick(1);
                if let Some(idxs) = hash.get(inner_row.get(self.inner_col)) {
                    for &i in idxs {
                        matches.push((i, group_rows[i].concat(&inner_row)));
                    }
                }
            }
            // Emit in outer order within the group.
            matches.sort_by_key(|&(i, _)| i);
            self.queue.extend(matches.into_iter().map(|(_, r)| r));
            // If the group had no matches, loop to the next group.
        }
    }
}

impl Operator for Hdgj<'_> {
    fn next(&mut self) -> Option<Row> {
        self.fill_group();
        self.queue.pop_front()
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.inner.rewind();
        self.queue.clear();
        self.lookahead = None;
        self.exhausted = false;
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        // The current group is fully materialized in the queue; skipping
        // is dropping the rest of it. (The inner re-scan for this group
        // has already been paid — part of HDGJ's cost profile, §5.4.)
        self.queue.clear();
    }
}

/// Vectorized hash DGJ: joins one group at a time, like the tuple
/// [`Hdgj`] — gathers one group of outer rows (possibly several
/// batches), hashes it on the join key, re-evaluates the inner operator
/// from scratch (`rewind` + full batch scan), and emits the group's
/// matches as a single output batch in outer order.
pub struct BatchHdgj<'a> {
    outer: BoxedBatchOp<'a>,
    inner: BoxedBatchOp<'a>,
    outer_col: usize,
    inner_col: usize,
    group_col: usize,
    /// The current group's joined output, if not yet emitted.
    queued: Option<Batch<'a>>,
    /// Parked outer batch starting the next group (stream order).
    pending: std::collections::VecDeque<Batch<'a>>,
    exhausted: bool,
    work: Work,
}

impl<'a> BatchHdgj<'a> {
    /// Build a batch HDGJ over a group-clustered outer stream.
    pub fn new(
        outer: BoxedBatchOp<'a>,
        outer_col: usize,
        inner: BoxedBatchOp<'a>,
        inner_col: usize,
        group_col: usize,
        work: Work,
    ) -> Self {
        BatchHdgj {
            outer,
            inner,
            outer_col,
            inner_col,
            group_col,
            queued: None,
            pending: std::collections::VecDeque::new(),
            exhausted: false,
            work,
        }
    }

    /// Pull the next single-group outer batch (splitting multi-group
    /// batches from an ungrouped outer, as in [`BatchIdgj`]).
    fn next_outer(&mut self) -> Option<Batch<'a>> {
        let mut b = self.pending.pop_front().or_else(|| self.outer.next_batch())?;
        // lint: allow(panic-on-worker-path): operators never emit an empty
        // batch (next_batch returns None instead), and next_outer never
        // parks an empty remainder
        let group = b.value(self.group_col, b.first().expect("non-empty batch"));
        let split: Vec<u32> = b
            .sel_iter()
            .skip_while(|&i| b.value(self.group_col, i) == group)
            .map(ts_storage::cast::to_u32)
            .collect();
        if !split.is_empty() {
            let keep: Vec<u32> = b
                .sel_iter()
                .take(b.selected() - split.len())
                .map(ts_storage::cast::to_u32)
                .collect();
            let mut rest = b.clone();
            rest.set_sel(split);
            self.pending.push_front(rest);
            b.set_sel(keep);
        }
        Some(b)
    }

    /// Materialize the next group of outer rows and join it.
    fn fill_group(&mut self) {
        while self.queued.is_none() && !self.exhausted {
            if self.work.interrupted() {
                return;
            }
            if let FireAction::Starve = faults::fire(sites::EXEC_DGJ_PROBE) {
                self.work.starve();
                return;
            }
            // Gather one group of outer rows (may span several batches).
            let Some(first) = self.next_outer() else {
                self.exhausted = true;
                return;
            };
            self.work.tick(first.selected() as u64);
            // lint: allow(panic-on-worker-path): operators never emit an empty
            // batch (next_batch returns None instead), and next_outer never
            // parks an empty remainder
            let group = first.value(self.group_col, first.first().expect("non-empty batch"));
            let mut group_rows: Vec<Row> = first.materialize();
            while self.pending.is_empty() {
                let Some(b) = self.next_outer() else { break };
                // lint: allow(panic-on-worker-path): operators never emit an empty
                // batch (next_batch returns None instead), and next_outer never
                // parks an empty remainder
                let g = b.value(self.group_col, b.first().expect("non-empty batch"));
                self.work.tick(b.selected() as u64);
                if g == group {
                    group_rows.extend(b.materialize());
                } else {
                    self.pending.push_front(b);
                    break;
                }
            }
            // Hash the group on the join key.
            let mut hash: FastMap<Value, Vec<usize>> = FastMap::default();
            for (i, r) in group_rows.iter().enumerate() {
                hash.entry(r.get(self.outer_col).clone()).or_default().push(i);
            }
            // Re-evaluate the inner relation for this group.
            self.inner.rewind();
            let mut matches: Vec<(usize, Row)> = Vec::new();
            while let Some(ib) = self.inner.next_batch() {
                self.work.tick(ib.selected() as u64);
                for ri in ib.sel_iter() {
                    if let Some(idxs) = hash.get(&ib.value(self.inner_col, ri)) {
                        for &i in idxs {
                            matches.push((i, group_rows[i].concat(&ib.materialize_row(ri))));
                        }
                    }
                }
            }
            // Emit in outer order within the group.
            matches.sort_by_key(|&(i, _)| i);
            if !matches.is_empty() {
                let rows: Vec<Row> = matches.into_iter().map(|(_, r)| r).collect();
                self.queued = Some(Batch::from_rows(&rows));
            }
            // If the group had no matches, loop to the next group.
        }
    }
}

impl<'a> BatchOperator<'a> for BatchHdgj<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        self.fill_group();
        self.queued.take()
    }

    fn rewind(&mut self) {
        self.outer.rewind();
        self.inner.rewind();
        self.queued = None;
        self.pending.clear();
        self.exhausted = false;
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        // The current group is fully materialized in the queue; skipping
        // is dropping the rest of it. (The inner re-scan for this group
        // has already been paid — part of HDGJ's cost profile, §5.4.)
        self.queued = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{collect_all, collect_distinct_topk};
    use crate::scan::ValuesScan;
    use ts_storage::{row, ColumnDef, TableSchema, ValueType};

    /// Outer stream: (group, key) clustered by group in score order.
    fn outer_rows() -> Vec<Row> {
        vec![
            row![100i64, 1i64],
            row![100i64, 2i64],
            row![100i64, 3i64],
            row![200i64, 2i64],
            row![200i64, 9i64],
            row![300i64, 3i64],
        ]
    }

    fn inner_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "Inner",
            vec![ColumnDef::new("k", ValueType::Int), ColumnDef::new("v", ValueType::Str)],
            None,
        ));
        t.insert(row![2i64, "two"]).unwrap();
        t.insert(row![3i64, "three"]).unwrap();
        t.insert(row![3i64, "tres"]).unwrap();
        t.create_index(0);
        t
    }

    fn grouped_outer() -> BoxedOp<'static> {
        Box::new(ValuesScan::grouped(outer_rows(), 0, Work::new()))
    }

    #[test]
    fn idgj_joins_in_group_order() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let got = collect_all(&mut j);
        // Group 100: keys 1 (no match), 2 -> two, 3 -> three, tres.
        // Group 200: 2 -> two, 9 none. Group 300: 3 -> three, tres.
        assert_eq!(got.len(), 6);
        let groups: Vec<i64> = got.iter().map(|r| r.get(0).as_int()).collect();
        assert_eq!(groups, vec![100, 100, 100, 200, 300, 300]);
    }

    #[test]
    fn idgj_group_skip_delegates() {
        let t = inner_table();
        let w = Work::new();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, w.clone());
        let first = j.next().unwrap();
        assert_eq!(first.get(0).as_int(), 100);
        j.advance_to_next_group();
        let next = j.next().unwrap();
        assert_eq!(next.get(0).as_int(), 200);
        j.advance_to_next_group();
        let last = j.next().unwrap();
        assert_eq!(last.get(0).as_int(), 300);
    }

    #[test]
    fn idgj_fallback_drain_when_input_ungrouped() {
        let t = inner_table();
        // Plain ValuesScan: not grouped -> IDGJ drains manually.
        let outer: BoxedOp<'static> = Box::new(ValuesScan::new(outer_rows(), Work::new()));
        let mut j = Idgj::new(outer, 1, &t, 0, 0, Work::new());
        j.next().unwrap();
        j.advance_to_next_group();
        assert_eq!(j.next().unwrap().get(0).as_int(), 200);
    }

    #[test]
    fn idgj_advance_before_any_next_is_noop() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        j.advance_to_next_group();
        assert_eq!(j.next().unwrap().get(0).as_int(), 100);
    }

    #[test]
    fn hdgj_matches_idgj_output() {
        let t = inner_table();
        let mut i = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, Work::new());
        assert_eq!(collect_all(&mut i), collect_all(&mut h));
    }

    #[test]
    fn hdgj_rescans_inner_per_group() {
        let t = inner_table();
        let w = Work::new();
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, w.clone());
        let _ = collect_all(&mut h);
        // 3 groups × 3 inner rows = 9 inner touches at minimum.
        assert!(w.get() >= 9 + 6, "work = {}", w.get());
    }

    #[test]
    fn hdgj_group_skip() {
        let t = inner_table();
        let inner_scan: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut h = Hdgj::new(grouped_outer(), 1, inner_scan, 0, 0, Work::new());
        let first = h.next().unwrap();
        assert_eq!(first.get(0).as_int(), 100);
        h.advance_to_next_group();
        assert_eq!(h.next().unwrap().get(0).as_int(), 200);
    }

    #[test]
    fn distinct_topk_over_idgj() {
        let t = inner_table();
        let mut j = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let top2 = collect_distinct_topk(&mut j, 0, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].get(0).as_int(), 100);
        assert_eq!(top2[1].get(0).as_int(), 200);
    }

    fn batch_grouped_outer<'a>() -> BoxedBatchOp<'a> {
        Box::new(crate::scan::BatchValuesScan::grouped(outer_rows(), 0, Work::new()))
    }

    #[test]
    fn batch_idgj_matches_tuple_idgj() {
        let t = inner_table();
        let mut tup = Idgj::new(grouped_outer(), 1, &t, 0, 0, Work::new());
        let mut bat = BatchIdgj::new(batch_grouped_outer(), 1, &t, 0, 0, Work::new());
        assert_eq!(crate::driver::batch_collect_all(&mut bat), collect_all(&mut tup));
    }

    #[test]
    fn batch_idgj_group_skip() {
        let t = inner_table();
        let mut j = BatchIdgj::new(batch_grouped_outer(), 1, &t, 0, 0, Work::new());
        let first = j.next_batch().unwrap();
        assert_eq!(first.try_int(0, first.first().unwrap()), Some(100));
        j.advance_to_next_group();
        let next = j.next_batch().unwrap();
        assert_eq!(next.try_int(0, next.first().unwrap()), Some(200));
    }

    #[test]
    fn batch_idgj_fallback_drain_when_input_ungrouped() {
        let t = inner_table();
        // Ungrouped outer: one multi-group batch, split internally.
        let outer: BoxedBatchOp<'_> =
            Box::new(crate::scan::BatchValuesScan::new(outer_rows(), Work::new()));
        let mut j = BatchIdgj::new(outer, 1, &t, 0, 0, Work::new());
        let b = j.next_batch().unwrap();
        assert_eq!(b.try_int(0, b.first().unwrap()), Some(100));
        j.advance_to_next_group();
        assert_eq!(j.next_batch().map(|b| b.try_int(0, b.first().unwrap())), Some(Some(200)));
    }

    #[test]
    fn batch_hdgj_matches_tuple_hdgj() {
        let t = inner_table();
        let inner_tup: BoxedOp<'_> = Box::new(TableScanHelper::new(&t));
        let mut tup = Hdgj::new(grouped_outer(), 1, inner_tup, 0, 0, Work::new());
        let inner_bat: crate::batch::BoxedBatchOp<'_> = Box::new(crate::scan::BatchTableScan::new(
            &t,
            ts_storage::Predicate::True,
            Work::new(),
        ));
        let mut bat = BatchHdgj::new(batch_grouped_outer(), 1, inner_bat, 0, 0, Work::new());
        assert_eq!(crate::driver::batch_collect_all(&mut bat), collect_all(&mut tup));
    }

    #[test]
    fn batch_hdgj_group_skip_and_rescan_cost() {
        let t = inner_table();
        let w = Work::new();
        let inner: crate::batch::BoxedBatchOp<'_> =
            Box::new(crate::scan::BatchTableScan::new(&t, ts_storage::Predicate::True, w.clone()));
        let mut h = BatchHdgj::new(batch_grouped_outer(), 1, inner, 0, 0, w.clone());
        let first = h.next_batch().unwrap();
        assert_eq!(first.try_int(0, first.first().unwrap()), Some(100));
        h.advance_to_next_group();
        let next = h.next_batch().unwrap();
        assert_eq!(next.try_int(0, next.first().unwrap()), Some(200));
        let _ = crate::driver::batch_collect_all(&mut h);
        // Inner re-scanned per group: at least 3 groups × 3 inner rows.
        assert!(w.get() >= 9, "work = {}", w.get());
    }

    #[test]
    fn batch_distinct_topk_over_idgj() {
        let t = inner_table();
        let mut j = BatchIdgj::new(batch_grouped_outer(), 1, &t, 0, 0, Work::new());
        let top2 = crate::driver::batch_collect_distinct_topk(&mut j, 0, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].get(0).as_int(), 100);
        assert_eq!(top2[1].get(0).as_int(), 200);
    }

    /// Minimal rewindable scan over a table for HDGJ inners in tests.
    struct TableScanHelper<'a> {
        t: &'a Table,
        pos: usize,
    }
    impl<'a> TableScanHelper<'a> {
        fn new(t: &'a Table) -> Self {
            TableScanHelper { t, pos: 0 }
        }
    }
    impl Operator for TableScanHelper<'_> {
        fn next(&mut self) -> Option<Row> {
            if self.pos < self.t.len() {
                let r = self.t.row(self.pos as u32).to_row();
                self.pos += 1;
                Some(r)
            } else {
                None
            }
        }
        fn rewind(&mut self) {
            self.pos = 0;
        }
    }
}
