//! Stateless / simple operators: filter, project, limit, distinct, union.

use ts_storage::{FastSet, Predicate, Row};

use crate::batch::{Batch, BatchOperator, BoxedBatchOp, Col};
use crate::op::{BoxedOp, Operator, Work};

/// Filter rows by a predicate. Preserves grouping of its input.
pub struct Filter<'a> {
    input: BoxedOp<'a>,
    pred: Predicate,
    work: Work,
}

impl<'a> Filter<'a> {
    /// Filter `input` by `pred`.
    pub fn new(input: BoxedOp<'a>, pred: Predicate, work: Work) -> Self {
        Filter { input, pred, work }
    }
}

impl Operator for Filter<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let row = self.input.next()?;
            self.work.tick(1);
            if self.pred.eval(&row) {
                return Some(row);
            }
        }
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }

    fn grouped(&self) -> bool {
        self.input.grouped()
    }

    fn advance_to_next_group(&mut self) {
        self.input.advance_to_next_group();
    }
}

/// Project rows onto a set of column indices. Grouping is preserved only
/// if the caller keeps the group column; the operator stays conservative
/// and reports its input's groupedness (callers project group-last).
pub struct Project<'a> {
    input: BoxedOp<'a>,
    cols: Vec<usize>,
}

impl<'a> Project<'a> {
    /// Keep `cols` (in order) of every input row.
    pub fn new(input: BoxedOp<'a>, cols: Vec<usize>) -> Self {
        Project { input, cols }
    }
}

impl Operator for Project<'_> {
    fn next(&mut self) -> Option<Row> {
        self.input.next().map(|r| r.project(&self.cols))
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }
}

/// Stop after `k` rows — the `FETCH FIRST k ROWS ONLY` clause.
pub struct Limit<'a> {
    input: BoxedOp<'a>,
    k: usize,
    produced: usize,
}

impl<'a> Limit<'a> {
    /// Emit at most `k` rows of `input`.
    pub fn new(input: BoxedOp<'a>, k: usize) -> Self {
        Limit { input, k, produced: 0 }
    }
}

impl Operator for Limit<'_> {
    fn next(&mut self) -> Option<Row> {
        if self.produced >= self.k {
            return None;
        }
        let r = self.input.next()?;
        self.produced += 1;
        Some(r)
    }

    fn rewind(&mut self) {
        self.produced = 0;
        self.input.rewind();
    }
}

/// Hash-based duplicate elimination on the projection `key_cols`
/// (emits the full row of the first occurrence).
pub struct Distinct<'a> {
    input: BoxedOp<'a>,
    key_cols: Vec<usize>,
    seen: FastSet<Row>,
    /// Reusable projection buffer: duplicate rows (the common case in
    /// the join output this operator caps) probe the seen-set through
    /// this scratch and allocate nothing; only a *new* key is cloned in.
    scratch: Row,
    work: Work,
}

impl<'a> Distinct<'a> {
    /// Distinct over `key_cols` of `input`.
    pub fn new(input: BoxedOp<'a>, key_cols: Vec<usize>, work: Work) -> Self {
        Distinct { input, key_cols, seen: FastSet::default(), scratch: Row::new(Vec::new()), work }
    }
}

impl Operator for Distinct<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let row = self.input.next()?;
            self.work.tick(1);
            row.project_into(&self.key_cols, &mut self.scratch);
            if self.seen.contains(&self.scratch) {
                continue;
            }
            self.seen.insert(self.scratch.clone());
            return Some(row);
        }
    }

    fn rewind(&mut self) {
        self.seen.clear();
        self.input.rewind();
    }
}

/// Vectorized filter: refines each input batch's selection vector in
/// place — no row materialization, Int predicates run on raw buffers.
pub struct BatchFilter<'a> {
    input: BoxedBatchOp<'a>,
    pred: Predicate,
    work: Work,
}

impl<'a> BatchFilter<'a> {
    /// Filter `input` by `pred`.
    pub fn new(input: BoxedBatchOp<'a>, pred: Predicate, work: Work) -> Self {
        BatchFilter { input, pred, work }
    }
}

impl<'a> BatchOperator<'a> for BatchFilter<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let mut b = self.input.next_batch()?;
            self.work.tick(b.selected() as u64);
            b.filter(&self.pred);
            if b.selected() > 0 {
                return Some(b);
            }
        }
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }

    fn grouped(&self) -> bool {
        self.input.grouped()
    }

    fn advance_to_next_group(&mut self) {
        self.input.advance_to_next_group();
    }
}

/// Vectorized projection: clones the kept columns (cheap slice copies
/// for borrowed columns), selection vector carried through unchanged.
pub struct BatchProject<'a> {
    input: BoxedBatchOp<'a>,
    cols: Vec<usize>,
}

impl<'a> BatchProject<'a> {
    /// Keep `cols` (in order) of every input batch.
    pub fn new(input: BoxedBatchOp<'a>, cols: Vec<usize>) -> Self {
        BatchProject { input, cols }
    }
}

impl<'a> BatchOperator<'a> for BatchProject<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        let b = self.input.next_batch()?;
        let raw_len = b.raw_len();
        let sel = b.sel().map(<[u32]>::to_vec);
        let cols: Vec<Col<'a>> = self.cols.iter().map(|&c| b.col(c).clone()).collect();
        let mut out = Batch::new(cols, raw_len);
        if let Some(sel) = sel {
            out.set_sel(sel);
        }
        Some(out)
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }
}

/// Vectorized limit: truncates the selection vector of the batch that
/// crosses the `k`-row boundary.
pub struct BatchLimit<'a> {
    input: BoxedBatchOp<'a>,
    k: usize,
    produced: usize,
}

impl<'a> BatchLimit<'a> {
    /// Emit at most `k` rows of `input`.
    pub fn new(input: BoxedBatchOp<'a>, k: usize) -> Self {
        BatchLimit { input, k, produced: 0 }
    }
}

impl<'a> BatchOperator<'a> for BatchLimit<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        if self.produced >= self.k {
            return None;
        }
        let mut b = self.input.next_batch()?;
        let remaining = self.k - self.produced;
        if b.selected() > remaining {
            let keep: Vec<u32> =
                b.sel_iter().take(remaining).map(ts_storage::cast::to_u32).collect();
            b.set_sel(keep);
        }
        self.produced += b.selected();
        Some(b)
    }

    fn rewind(&mut self) {
        self.produced = 0;
        self.input.rewind();
    }
}

/// Vectorized duplicate elimination on `key_cols`.
///
/// Single-column Int keys dedup through an integer hash set fed
/// straight from the raw column buffer — no per-row scratch key is
/// built (the allocation-count tests in `sort_allocs.rs` hold this
/// path to that). Multi-column or non-Int keys fall back to the tuple
/// engine's scratch-row probing.
pub struct BatchDistinct<'a> {
    input: BoxedBatchOp<'a>,
    key_cols: Vec<usize>,
    seen_int: FastSet<i64>,
    seen: FastSet<Row>,
    scratch: Row,
    work: Work,
}

impl<'a> BatchDistinct<'a> {
    /// Distinct over `key_cols` of `input`.
    pub fn new(input: BoxedBatchOp<'a>, key_cols: Vec<usize>, work: Work) -> Self {
        BatchDistinct {
            input,
            key_cols,
            seen_int: FastSet::default(),
            seen: FastSet::default(),
            scratch: Row::new(Vec::new()),
            work,
        }
    }

    /// True when row `i` carries a not-yet-seen key (recording it).
    fn is_new(&mut self, b: &Batch<'_>, i: usize) -> bool {
        if let [col] = self.key_cols[..] {
            // Single-key fast path: Int keys go through the integer set
            // (no Value, no scratch row); rare non-Int cells fall back.
            if let Some(k) = b.try_int(col, i) {
                return self.seen_int.insert(k);
            }
        }
        self.scratch.0.clear();
        for &c in &self.key_cols {
            self.scratch.0.push(b.value(c, i));
        }
        if self.seen.contains(&self.scratch) {
            return false;
        }
        self.seen.insert(self.scratch.clone());
        true
    }
}

impl<'a> BatchOperator<'a> for BatchDistinct<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let mut b = self.input.next_batch()?;
            self.work.tick(b.selected() as u64);
            let keep: Vec<u32> = b
                .sel_iter()
                .filter(|&i| self.is_new(&b, i))
                .map(ts_storage::cast::to_u32)
                .collect();
            if !keep.is_empty() {
                b.set_sel(keep);
                return Some(b);
            }
        }
    }

    fn rewind(&mut self) {
        self.seen_int.clear();
        self.seen.clear();
        self.input.rewind();
    }
}

/// Vectorized concatenation of several inputs.
pub struct BatchUnionAll<'a> {
    inputs: Vec<BoxedBatchOp<'a>>,
    current: usize,
}

impl<'a> BatchUnionAll<'a> {
    /// Concatenate `inputs` in order.
    pub fn new(inputs: Vec<BoxedBatchOp<'a>>) -> Self {
        BatchUnionAll { inputs, current: 0 }
    }
}

impl<'a> BatchOperator<'a> for BatchUnionAll<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        // lint: allow(unmetered-loop): bounded by inputs.len(); each
        // iteration pulls a child operator, which polls its own meter
        while self.current < self.inputs.len() {
            if let Some(b) = self.inputs[self.current].next_batch() {
                return Some(b);
            }
            self.current += 1;
        }
        None
    }

    fn rewind(&mut self) {
        self.current = 0;
        for i in &mut self.inputs {
            i.rewind();
        }
    }
}

/// Concatenation of several inputs (SQL UNION ALL; place a [`Distinct`]
/// on top for UNION).
pub struct UnionAll<'a> {
    inputs: Vec<BoxedOp<'a>>,
    current: usize,
}

impl<'a> UnionAll<'a> {
    /// Concatenate `inputs` in order.
    pub fn new(inputs: Vec<BoxedOp<'a>>) -> Self {
        UnionAll { inputs, current: 0 }
    }
}

impl Operator for UnionAll<'_> {
    fn next(&mut self) -> Option<Row> {
        // lint: allow(unmetered-loop): bounded by inputs.len(); each
        // iteration pulls a child operator, which polls its own meter
        while self.current < self.inputs.len() {
            if let Some(r) = self.inputs[self.current].next() {
                return Some(r);
            }
            self.current += 1;
        }
        None
    }

    fn rewind(&mut self) {
        self.current = 0;
        for i in &mut self.inputs {
            i.rewind();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    fn values(rows: Vec<Row>) -> BoxedOp<'static> {
        Box::new(ValuesScan::new(rows, Work::new()))
    }

    #[test]
    fn filter_project_limit_pipeline() {
        let rows = vec![row![1i64, "a"], row![2i64, "b"], row![3i64, "a"], row![4i64, "a"]];
        let f = Filter::new(values(rows), Predicate::eq(1, "a"), Work::new());
        let p = Project::new(Box::new(f), vec![0]);
        let mut l = Limit::new(Box::new(p), 2);
        let got = collect_all(&mut l);
        assert_eq!(got, vec![row![1i64], row![3i64]]);
        l.rewind();
        assert_eq!(collect_all(&mut l).len(), 2);
    }

    #[test]
    fn distinct_on_key_cols() {
        let rows = vec![row![1i64, "x"], row![1i64, "y"], row![2i64, "x"]];
        let mut d = Distinct::new(values(rows), vec![0], Work::new());
        let got = collect_all(&mut d);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get(1).as_str(), "x"); // first occurrence wins
        d.rewind();
        assert_eq!(collect_all(&mut d).len(), 2);
    }

    #[test]
    fn union_all_concatenates_and_rewinds() {
        let mut u = UnionAll::new(vec![
            values(vec![row![1i64]]),
            values(vec![]),
            values(vec![row![2i64], row![3i64]]),
        ]);
        assert_eq!(collect_all(&mut u).len(), 3);
        u.rewind();
        let got = collect_all(&mut u);
        assert_eq!(got[0], row![1i64]);
        assert_eq!(got[2], row![3i64]);
    }

    #[test]
    fn filter_propagates_group_skip() {
        let rows = vec![row![10i64, 1i64], row![10i64, 2i64], row![20i64, 3i64]];
        let scan = ValuesScan::grouped(rows, 0, Work::new());
        let mut f = Filter::new(Box::new(scan), Predicate::True, Work::new());
        assert!(f.grouped());
        f.next().unwrap();
        f.advance_to_next_group();
        assert_eq!(f.next().unwrap().get(0).as_int(), 20);
    }

    fn batch_values(rows: Vec<Row>) -> BoxedBatchOp<'static> {
        Box::new(crate::scan::BatchValuesScan::new(rows, Work::new()))
    }

    #[test]
    fn batch_filter_project_limit_pipeline_matches_tuple() {
        let rows = vec![row![1i64, "a"], row![2i64, "b"], row![3i64, "a"], row![4i64, "a"]];
        let f = BatchFilter::new(batch_values(rows), Predicate::eq(1, "a"), Work::new());
        let p = BatchProject::new(Box::new(f), vec![0]);
        let mut l = BatchLimit::new(Box::new(p), 2);
        let got = crate::driver::batch_collect_all(&mut l);
        assert_eq!(got, vec![row![1i64], row![3i64]]);
        l.rewind();
        assert_eq!(crate::driver::batch_collect_all(&mut l).len(), 2);
    }

    #[test]
    fn batch_distinct_matches_tuple_first_occurrence() {
        let rows = vec![row![1i64, "x"], row![1i64, "y"], row![2i64, "x"]];
        let mut d = BatchDistinct::new(batch_values(rows), vec![0], Work::new());
        let got = crate::driver::batch_collect_all(&mut d);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get(1).as_str(), "x"); // first occurrence wins
        d.rewind();
        assert_eq!(crate::driver::batch_collect_all(&mut d).len(), 2);
    }

    #[test]
    fn batch_distinct_multi_column_keys() {
        let rows = vec![row![1i64, "x"], row![1i64, "x"], row![1i64, "y"]];
        let mut d = BatchDistinct::new(batch_values(rows), vec![0, 1], Work::new());
        assert_eq!(crate::driver::batch_collect_all(&mut d).len(), 2);
    }

    #[test]
    fn batch_union_all_concatenates_and_rewinds() {
        let mut u = BatchUnionAll::new(vec![
            batch_values(vec![row![1i64]]),
            batch_values(vec![]),
            batch_values(vec![row![2i64], row![3i64]]),
        ]);
        assert_eq!(crate::driver::batch_collect_all(&mut u).len(), 3);
        u.rewind();
        let got = crate::driver::batch_collect_all(&mut u);
        assert_eq!(got[0], row![1i64]);
        assert_eq!(got[2], row![3i64]);
    }

    #[test]
    fn batch_filter_propagates_group_skip() {
        let rows = vec![row![10i64, 1i64], row![10i64, 2i64], row![20i64, 3i64]];
        let scan = crate::scan::BatchValuesScan::grouped(rows, 0, Work::new());
        let mut f = BatchFilter::new(Box::new(scan), Predicate::True, Work::new());
        assert!(BatchOperator::grouped(&f));
        f.next_batch().unwrap();
        f.advance_to_next_group();
        let b = f.next_batch().unwrap();
        assert_eq!(b.try_int(0, b.first().unwrap()), Some(20));
    }
}
