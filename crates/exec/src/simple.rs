//! Stateless / simple operators: filter, project, limit, distinct, union.

use ts_storage::{FastSet, Predicate, Row};

use crate::op::{BoxedOp, Operator, Work};

/// Filter rows by a predicate. Preserves grouping of its input.
pub struct Filter<'a> {
    input: BoxedOp<'a>,
    pred: Predicate,
    work: Work,
}

impl<'a> Filter<'a> {
    /// Filter `input` by `pred`.
    pub fn new(input: BoxedOp<'a>, pred: Predicate, work: Work) -> Self {
        Filter { input, pred, work }
    }
}

impl Operator for Filter<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let row = self.input.next()?;
            self.work.tick(1);
            if self.pred.eval(&row) {
                return Some(row);
            }
        }
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }

    fn grouped(&self) -> bool {
        self.input.grouped()
    }

    fn advance_to_next_group(&mut self) {
        self.input.advance_to_next_group();
    }
}

/// Project rows onto a set of column indices. Grouping is preserved only
/// if the caller keeps the group column; the operator stays conservative
/// and reports its input's groupedness (callers project group-last).
pub struct Project<'a> {
    input: BoxedOp<'a>,
    cols: Vec<usize>,
}

impl<'a> Project<'a> {
    /// Keep `cols` (in order) of every input row.
    pub fn new(input: BoxedOp<'a>, cols: Vec<usize>) -> Self {
        Project { input, cols }
    }
}

impl Operator for Project<'_> {
    fn next(&mut self) -> Option<Row> {
        self.input.next().map(|r| r.project(&self.cols))
    }

    fn rewind(&mut self) {
        self.input.rewind();
    }
}

/// Stop after `k` rows — the `FETCH FIRST k ROWS ONLY` clause.
pub struct Limit<'a> {
    input: BoxedOp<'a>,
    k: usize,
    produced: usize,
}

impl<'a> Limit<'a> {
    /// Emit at most `k` rows of `input`.
    pub fn new(input: BoxedOp<'a>, k: usize) -> Self {
        Limit { input, k, produced: 0 }
    }
}

impl Operator for Limit<'_> {
    fn next(&mut self) -> Option<Row> {
        if self.produced >= self.k {
            return None;
        }
        let r = self.input.next()?;
        self.produced += 1;
        Some(r)
    }

    fn rewind(&mut self) {
        self.produced = 0;
        self.input.rewind();
    }
}

/// Hash-based duplicate elimination on the projection `key_cols`
/// (emits the full row of the first occurrence).
pub struct Distinct<'a> {
    input: BoxedOp<'a>,
    key_cols: Vec<usize>,
    seen: FastSet<Row>,
    /// Reusable projection buffer: duplicate rows (the common case in
    /// the join output this operator caps) probe the seen-set through
    /// this scratch and allocate nothing; only a *new* key is cloned in.
    scratch: Row,
    work: Work,
}

impl<'a> Distinct<'a> {
    /// Distinct over `key_cols` of `input`.
    pub fn new(input: BoxedOp<'a>, key_cols: Vec<usize>, work: Work) -> Self {
        Distinct { input, key_cols, seen: FastSet::default(), scratch: Row::new(Vec::new()), work }
    }
}

impl Operator for Distinct<'_> {
    fn next(&mut self) -> Option<Row> {
        loop {
            if self.work.interrupted() {
                return None;
            }
            let row = self.input.next()?;
            self.work.tick(1);
            row.project_into(&self.key_cols, &mut self.scratch);
            if self.seen.contains(&self.scratch) {
                continue;
            }
            self.seen.insert(self.scratch.clone());
            return Some(row);
        }
    }

    fn rewind(&mut self) {
        self.seen.clear();
        self.input.rewind();
    }
}

/// Concatenation of several inputs (SQL UNION ALL; place a [`Distinct`]
/// on top for UNION).
pub struct UnionAll<'a> {
    inputs: Vec<BoxedOp<'a>>,
    current: usize,
}

impl<'a> UnionAll<'a> {
    /// Concatenate `inputs` in order.
    pub fn new(inputs: Vec<BoxedOp<'a>>) -> Self {
        UnionAll { inputs, current: 0 }
    }
}

impl Operator for UnionAll<'_> {
    fn next(&mut self) -> Option<Row> {
        while self.current < self.inputs.len() {
            if let Some(r) = self.inputs[self.current].next() {
                return Some(r);
            }
            self.current += 1;
        }
        None
    }

    fn rewind(&mut self) {
        self.current = 0;
        for i in &mut self.inputs {
            i.rewind();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    fn values(rows: Vec<Row>) -> BoxedOp<'static> {
        Box::new(ValuesScan::new(rows, Work::new()))
    }

    #[test]
    fn filter_project_limit_pipeline() {
        let rows = vec![row![1i64, "a"], row![2i64, "b"], row![3i64, "a"], row![4i64, "a"]];
        let f = Filter::new(values(rows), Predicate::eq(1, "a"), Work::new());
        let p = Project::new(Box::new(f), vec![0]);
        let mut l = Limit::new(Box::new(p), 2);
        let got = collect_all(&mut l);
        assert_eq!(got, vec![row![1i64], row![3i64]]);
        l.rewind();
        assert_eq!(collect_all(&mut l).len(), 2);
    }

    #[test]
    fn distinct_on_key_cols() {
        let rows = vec![row![1i64, "x"], row![1i64, "y"], row![2i64, "x"]];
        let mut d = Distinct::new(values(rows), vec![0], Work::new());
        let got = collect_all(&mut d);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get(1).as_str(), "x"); // first occurrence wins
        d.rewind();
        assert_eq!(collect_all(&mut d).len(), 2);
    }

    #[test]
    fn union_all_concatenates_and_rewinds() {
        let mut u = UnionAll::new(vec![
            values(vec![row![1i64]]),
            values(vec![]),
            values(vec![row![2i64], row![3i64]]),
        ]);
        assert_eq!(collect_all(&mut u).len(), 3);
        u.rewind();
        let got = collect_all(&mut u);
        assert_eq!(got[0], row![1i64]);
        assert_eq!(got[2], row![3i64]);
    }

    #[test]
    fn filter_propagates_group_skip() {
        let rows = vec![row![10i64, 1i64], row![10i64, 2i64], row![20i64, 3i64]];
        let scan = ValuesScan::grouped(rows, 0, Work::new());
        let mut f = Filter::new(Box::new(scan), Predicate::True, Work::new());
        assert!(f.grouped());
        f.next().unwrap();
        f.advance_to_next_group();
        assert_eq!(f.next().unwrap().get(0).as_int(), 20);
    }
}
