//! Materializing sort.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{Row, Value};

use crate::batch::{batch_rows, Batch, BatchOperator, BoxedBatchOp, Col};
use crate::op::{BoxedOp, Operator, Work};

/// Sort direction per key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Ascending.
    Asc,
    /// Descending (the `ORDER BY score DESC` of the paper's SQL3/SQL4).
    Desc,
}

/// Full materializing sort on a list of `(column, direction)` keys.
///
/// After sorting, the stream is clustered by the first key column, so a
/// `Sort` on the group column upgrades an ungrouped stream to a grouped
/// one (this is how the non-ET plans produce score order in the final
/// step — paying the blocking cost that DGJ plans avoid).
pub struct Sort<'a> {
    input: BoxedOp<'a>,
    keys: Vec<(usize, Dir)>,
    buffer: Option<Vec<Row>>,
    pos: usize,
    /// First-key value of the last emitted row — the group boundary for
    /// `advance_to_next_group`, kept here because emitted rows are moved
    /// out of the buffer, not cloned.
    last_group: Option<Value>,
    /// True once the first fill has been charged to `work`; rewind
    /// refills re-read the same input and must not inflate the cost
    /// metric.
    ticked: bool,
    work: Work,
}

impl<'a> Sort<'a> {
    /// Sort `input` by `keys`.
    pub fn new(input: BoxedOp<'a>, keys: Vec<(usize, Dir)>, work: Work) -> Self {
        Sort { input, keys, buffer: None, pos: 0, last_group: None, ticked: false, work }
    }

    fn fill(&mut self) {
        if self.buffer.is_some() {
            return;
        }
        if let FireAction::Starve = faults::fire(sites::EXEC_SORT_FILL) {
            self.work.starve();
        }
        let mut rows = Vec::new();
        while let Some(r) = self.input.next() {
            if !self.ticked {
                self.work.tick(1);
            }
            rows.push(r);
        }
        self.ticked = true;
        let keys = &self.keys;
        rows.sort_by(|a, b| {
            for &(col, dir) in keys {
                let ord = a.get(col).cmp(b.get(col));
                let ord = match dir {
                    Dir::Asc => ord,
                    Dir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.buffer = Some(rows);
    }
}

impl Operator for Sort<'_> {
    fn next(&mut self) -> Option<Row> {
        if self.work.interrupted() {
            return None;
        }
        self.fill();
        // lint: allow(panic-on-worker-path): fill() on the line above
        // guarantees the buffer is Some
        let buf = self.buffer.as_mut().expect("filled");
        if self.pos < buf.len() {
            // Move the row out instead of cloning it: each pass over the
            // sorted result emits every row exactly once, so the buffer
            // slot is dead after emission. One `Value` is cloned per
            // *group change* to remember the skip boundary.
            let r = std::mem::replace(&mut buf[self.pos], Row::new(Vec::new()));
            self.pos += 1;
            if let Some(&(col, _)) = self.keys.first() {
                if self.last_group.as_ref() != Some(r.get(col)) {
                    self.last_group = Some(r.get(col).clone());
                }
            }
            Some(r)
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        // Emitted rows were moved out of the buffer, so a rewind re-pulls
        // and re-sorts from the (rewound) input instead of replaying
        // clones. Same output, and the common no-rewind pass never pays a
        // per-row clone.
        self.pos = 0;
        self.last_group = None;
        self.buffer = None;
        self.input.rewind();
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        self.fill();
        let Some((col, _)) = self.keys.first().copied() else { return };
        let Some(current) = self.last_group.clone() else {
            return; // nothing emitted yet: already at a group boundary
        };
        // lint: allow(panic-on-worker-path): fill() on the line above
        // guarantees the buffer is Some
        let buf = self.buffer.as_ref().expect("filled");
        while self.pos < buf.len() && *buf[self.pos].get(col) == current {
            self.pos += 1;
        }
    }
}

/// One materialized, sorted column of a [`BatchSort`] buffer.
enum SortedCol {
    /// All-Int column kept as a raw `i64` buffer.
    Int(Vec<i64>),
    /// Everything else.
    Val(Vec<Value>),
}

impl SortedCol {
    fn value(&self, i: usize) -> Value {
        match self {
            SortedCol::Int(v) => Value::Int(v[i]),
            SortedCol::Val(v) => v[i].clone(),
        }
    }
}

/// Vectorized materializing sort.
///
/// Gathers the input into column-major buffers, sorts a permutation,
/// and emits batches from the permuted columns. All-Int columns — keys
/// and payload alike — stay raw `i64` buffers end to end: no per-row
/// scratch key, no per-row `Value`, and a number of allocations
/// proportional to the column count, not the row count (held to that
/// by the counting-allocator tests in `sort_allocs.rs`). Like the
/// tuple [`Sort`], the output is clustered by the first key column;
/// emitted batches are clipped at group boundaries so the grouped
/// batch-stream invariant holds.
pub struct BatchSort<'a> {
    input: BoxedBatchOp<'a>,
    keys: Vec<(usize, Dir)>,
    buffer: Option<Vec<SortedCol>>,
    len: usize,
    pos: usize,
    /// First-key value of the last emitted row — the group boundary for
    /// `advance_to_next_group`.
    last_group: Option<Value>,
    work: Work,
}

impl<'a> BatchSort<'a> {
    /// Sort `input` by `keys`.
    pub fn new(input: BoxedBatchOp<'a>, keys: Vec<(usize, Dir)>, work: Work) -> Self {
        BatchSort { input, keys, buffer: None, len: 0, pos: 0, last_group: None, work }
    }

    fn fill(&mut self) {
        if self.buffer.is_some() {
            return;
        }
        if let FireAction::Starve = faults::fire(sites::EXEC_SORT_FILL) {
            self.work.starve();
        }
        // Drain the input, gathering each column into a flat buffer:
        // raw i64 when every batch holds the column Int-represented,
        // owned values otherwise.
        let mut cols: Vec<SortedCol> = Vec::new();
        let mut n = 0usize;
        while let Some(b) = self.input.next_batch() {
            self.work.tick(b.selected() as u64);
            if cols.is_empty() {
                cols = (0..b.arity()).map(|_| SortedCol::Int(Vec::new())).collect();
            }
            for (c, col) in cols.iter_mut().enumerate() {
                // Demote to Value storage at the first non-Int chunk.
                if let SortedCol::Int(ints) = col {
                    if let Some(buf) = b.col(c).int_slice() {
                        ints.extend(b.sel_iter().map(|i| buf[i]));
                        continue;
                    }
                    let mut vals: Vec<Value> = ints.iter().map(|&k| Value::Int(k)).collect();
                    vals.extend(b.sel_iter().map(|i| b.value(c, i)));
                    *col = SortedCol::Val(vals);
                    continue;
                }
                if let SortedCol::Val(vals) = col {
                    vals.extend(b.sel_iter().map(|i| b.value(c, i)));
                }
            }
            n += b.selected();
        }
        self.len = n;
        // Sort a permutation by the key columns (stable, like the tuple
        // engine), then permute every column once.
        let mut perm: Vec<u32> = (0..n).map(ts_storage::cast::to_u32).collect();
        let keys = &self.keys;
        perm.sort_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &(col, dir) in keys {
                let ord = match &cols[col] {
                    SortedCol::Int(v) => v[a].cmp(&v[b]),
                    SortedCol::Val(v) => v[a].cmp(&v[b]),
                };
                let ord = match dir {
                    Dir::Asc => ord,
                    Dir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let sorted = cols
            .into_iter()
            .map(|col| match col {
                SortedCol::Int(v) => SortedCol::Int(perm.iter().map(|&i| v[i as usize]).collect()),
                SortedCol::Val(mut v) => {
                    let out = perm
                        .iter()
                        .map(|&i| std::mem::replace(&mut v[i as usize], Value::Null))
                        .collect();
                    SortedCol::Val(out)
                }
            })
            .collect();
        self.buffer = Some(sorted);
    }
}

impl<'a> BatchOperator<'a> for BatchSort<'a> {
    fn next_batch(&mut self) -> Option<Batch<'a>> {
        if self.work.interrupted() {
            return None;
        }
        self.fill();
        // lint: allow(panic-on-worker-path): fill() on the line above
        // guarantees the buffer is Some
        let buf = self.buffer.as_ref().expect("filled");
        if self.pos >= self.len {
            return None;
        }
        let mut end = (self.pos + batch_rows()).min(self.len);
        // Clip at the first key column's group boundary.
        if let Some(&(col, _)) = self.keys.first() {
            let group = buf[col].value(self.pos);
            let mut e = self.pos + 1;
            // lint: allow(unmetered-loop): bounded by one batch; the tick
            // below charges end - pos rows
            while e < end && buf[col].value(e) == group {
                e += 1;
            }
            end = e;
            self.last_group = Some(group);
        }
        let cols: Vec<Col<'a>> = buf
            .iter()
            .map(|c| match c {
                SortedCol::Int(v) => Col::IntOwned(v[self.pos..end].to_vec()),
                SortedCol::Val(v) => Col::Vals(v[self.pos..end].to_vec()),
            })
            .collect();
        let out = Batch::new(cols, end - self.pos);
        self.pos = end;
        Some(out)
    }

    fn rewind(&mut self) {
        // The sorted buffer is kept (emission copies out of it), so a
        // rewind just resets the cursor.
        self.pos = 0;
        self.last_group = None;
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        self.fill();
        let Some(&(col, _)) = self.keys.first() else { return };
        let Some(current) = self.last_group.clone() else {
            return; // nothing emitted yet: already at a group boundary
        };
        // lint: allow(panic-on-worker-path): fill() on the line above
        // guarantees the buffer is Some
        let buf = self.buffer.as_ref().expect("filled");
        while self.pos < self.len && buf[col].value(self.pos) == current {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    #[test]
    fn sorts_desc_then_asc() {
        let rows = vec![row![1i64, 5i64], row![2i64, 9i64], row![3i64, 5i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(1, Dir::Desc), (0, Dir::Asc)], Work::new());
        let got = collect_all(&mut s);
        assert_eq!(got, vec![row![2i64, 9i64], row![1i64, 5i64], row![3i64, 5i64]]);
    }

    #[test]
    fn rewind_replays_sorted_output() {
        let rows = vec![row![2i64], row![1i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        let first = collect_all(&mut s);
        s.rewind();
        assert_eq!(collect_all(&mut s), first);
    }

    #[test]
    fn sorted_stream_supports_group_skip() {
        let rows = vec![row![10i64, 1i64], row![20i64, 2i64], row![10i64, 3i64], row![20i64, 4i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        assert!(s.grouped());
        s.next().unwrap(); // (10, _)
        s.advance_to_next_group();
        assert_eq!(s.next().unwrap().get(0).as_int(), 20);
    }

    #[test]
    fn batch_sort_matches_tuple_sort() {
        let rows = vec![row![1i64, 5i64], row![2i64, 9i64], row![3i64, 5i64]];
        let keys = vec![(1, Dir::Desc), (0, Dir::Asc)];
        let tuple = {
            let scan = ValuesScan::new(rows.clone(), Work::new());
            let mut s = Sort::new(Box::new(scan), keys.clone(), Work::new());
            collect_all(&mut s)
        };
        let scan = crate::scan::BatchValuesScan::new(rows, Work::new());
        let mut s = BatchSort::new(Box::new(scan), keys, Work::new());
        assert_eq!(crate::driver::batch_collect_all(&mut s), tuple);
        s.rewind();
        assert_eq!(crate::driver::batch_collect_all(&mut s), tuple);
    }

    #[test]
    fn batch_sort_handles_str_payload_columns() {
        let rows = vec![row![2i64, "b"], row![1i64, "a"], row![2i64, "a"]];
        let scan = crate::scan::BatchValuesScan::new(rows, Work::new());
        let mut s = BatchSort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        let got = crate::driver::batch_collect_all(&mut s);
        assert_eq!(got, vec![row![1i64, "a"], row![2i64, "b"], row![2i64, "a"]]);
    }

    #[test]
    fn batch_sorted_stream_supports_group_skip() {
        let rows = vec![row![10i64, 1i64], row![20i64, 2i64], row![10i64, 3i64], row![20i64, 4i64]];
        let scan = crate::scan::BatchValuesScan::new(rows, Work::new());
        let mut s = BatchSort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        assert!(BatchOperator::grouped(&s));
        let b = s.next_batch().unwrap(); // the (10, _) group
        assert_eq!(b.try_int(0, b.first().unwrap()), Some(10));
        s.advance_to_next_group();
        let b2 = s.next_batch().unwrap();
        assert_eq!(b2.try_int(0, b2.first().unwrap()), Some(20));
    }
}
