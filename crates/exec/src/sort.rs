//! Materializing sort.

use ts_storage::faults::{self, sites, FireAction};
use ts_storage::{Row, Value};

use crate::op::{BoxedOp, Operator, Work};

/// Sort direction per key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Ascending.
    Asc,
    /// Descending (the `ORDER BY score DESC` of the paper's SQL3/SQL4).
    Desc,
}

/// Full materializing sort on a list of `(column, direction)` keys.
///
/// After sorting, the stream is clustered by the first key column, so a
/// `Sort` on the group column upgrades an ungrouped stream to a grouped
/// one (this is how the non-ET plans produce score order in the final
/// step — paying the blocking cost that DGJ plans avoid).
pub struct Sort<'a> {
    input: BoxedOp<'a>,
    keys: Vec<(usize, Dir)>,
    buffer: Option<Vec<Row>>,
    pos: usize,
    /// First-key value of the last emitted row — the group boundary for
    /// `advance_to_next_group`, kept here because emitted rows are moved
    /// out of the buffer, not cloned.
    last_group: Option<Value>,
    /// True once the first fill has been charged to `work`; rewind
    /// refills re-read the same input and must not inflate the cost
    /// metric.
    ticked: bool,
    work: Work,
}

impl<'a> Sort<'a> {
    /// Sort `input` by `keys`.
    pub fn new(input: BoxedOp<'a>, keys: Vec<(usize, Dir)>, work: Work) -> Self {
        Sort { input, keys, buffer: None, pos: 0, last_group: None, ticked: false, work }
    }

    fn fill(&mut self) {
        if self.buffer.is_some() {
            return;
        }
        if let FireAction::Starve = faults::fire(sites::EXEC_SORT_FILL) {
            self.work.starve();
        }
        let mut rows = Vec::new();
        while let Some(r) = self.input.next() {
            if !self.ticked {
                self.work.tick(1);
            }
            rows.push(r);
        }
        self.ticked = true;
        let keys = &self.keys;
        rows.sort_by(|a, b| {
            for &(col, dir) in keys {
                let ord = a.get(col).cmp(b.get(col));
                let ord = match dir {
                    Dir::Asc => ord,
                    Dir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.buffer = Some(rows);
    }
}

impl Operator for Sort<'_> {
    fn next(&mut self) -> Option<Row> {
        if self.work.interrupted() {
            return None;
        }
        self.fill();
        let buf = self.buffer.as_mut().expect("filled");
        if self.pos < buf.len() {
            // Move the row out instead of cloning it: each pass over the
            // sorted result emits every row exactly once, so the buffer
            // slot is dead after emission. One `Value` is cloned per
            // *group change* to remember the skip boundary.
            let r = std::mem::replace(&mut buf[self.pos], Row::new(Vec::new()));
            self.pos += 1;
            if let Some(&(col, _)) = self.keys.first() {
                if self.last_group.as_ref() != Some(r.get(col)) {
                    self.last_group = Some(r.get(col).clone());
                }
            }
            Some(r)
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        // Emitted rows were moved out of the buffer, so a rewind re-pulls
        // and re-sorts from the (rewound) input instead of replaying
        // clones. Same output, and the common no-rewind pass never pays a
        // per-row clone.
        self.pos = 0;
        self.last_group = None;
        self.buffer = None;
        self.input.rewind();
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        self.fill();
        let Some((col, _)) = self.keys.first().copied() else { return };
        let Some(current) = self.last_group.clone() else {
            return; // nothing emitted yet: already at a group boundary
        };
        let buf = self.buffer.as_ref().expect("filled");
        while self.pos < buf.len() && *buf[self.pos].get(col) == current {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    #[test]
    fn sorts_desc_then_asc() {
        let rows = vec![row![1i64, 5i64], row![2i64, 9i64], row![3i64, 5i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(1, Dir::Desc), (0, Dir::Asc)], Work::new());
        let got = collect_all(&mut s);
        assert_eq!(got, vec![row![2i64, 9i64], row![1i64, 5i64], row![3i64, 5i64]]);
    }

    #[test]
    fn rewind_replays_sorted_output() {
        let rows = vec![row![2i64], row![1i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        let first = collect_all(&mut s);
        s.rewind();
        assert_eq!(collect_all(&mut s), first);
    }

    #[test]
    fn sorted_stream_supports_group_skip() {
        let rows = vec![row![10i64, 1i64], row![20i64, 2i64], row![10i64, 3i64], row![20i64, 4i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        assert!(s.grouped());
        s.next().unwrap(); // (10, _)
        s.advance_to_next_group();
        assert_eq!(s.next().unwrap().get(0).as_int(), 20);
    }
}
