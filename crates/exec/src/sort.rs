//! Materializing sort.

use ts_storage::Row;

use crate::op::{BoxedOp, Operator, Work};

/// Sort direction per key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Ascending.
    Asc,
    /// Descending (the `ORDER BY score DESC` of the paper's SQL3/SQL4).
    Desc,
}

/// Full materializing sort on a list of `(column, direction)` keys.
///
/// After sorting, the stream is clustered by the first key column, so a
/// `Sort` on the group column upgrades an ungrouped stream to a grouped
/// one (this is how the non-ET plans produce score order in the final
/// step — paying the blocking cost that DGJ plans avoid).
pub struct Sort<'a> {
    input: BoxedOp<'a>,
    keys: Vec<(usize, Dir)>,
    buffer: Option<Vec<Row>>,
    pos: usize,
    work: Work,
}

impl<'a> Sort<'a> {
    /// Sort `input` by `keys`.
    pub fn new(input: BoxedOp<'a>, keys: Vec<(usize, Dir)>, work: Work) -> Self {
        Sort { input, keys, buffer: None, pos: 0, work }
    }

    fn fill(&mut self) {
        if self.buffer.is_some() {
            return;
        }
        let mut rows = Vec::new();
        while let Some(r) = self.input.next() {
            self.work.tick(1);
            rows.push(r);
        }
        let keys = self.keys.clone();
        rows.sort_by(|a, b| {
            for &(col, dir) in &keys {
                let ord = a.get(col).cmp(b.get(col));
                let ord = match dir {
                    Dir::Asc => ord,
                    Dir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.buffer = Some(rows);
    }
}

impl Operator for Sort<'_> {
    fn next(&mut self) -> Option<Row> {
        self.fill();
        let buf = self.buffer.as_ref().expect("filled");
        if self.pos < buf.len() {
            let r = buf[self.pos].clone();
            self.pos += 1;
            Some(r)
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        self.pos = 0;
        // Keep the sorted buffer: rewind re-reads the same result.
    }

    fn grouped(&self) -> bool {
        true
    }

    fn advance_to_next_group(&mut self) {
        self.fill();
        let Some((col, _)) = self.keys.first().copied() else { return };
        let buf = self.buffer.as_ref().expect("filled");
        if self.pos == 0 || self.pos > buf.len() {
            return;
        }
        let current = buf[self.pos - 1].get(col).clone();
        while self.pos < buf.len() && *buf[self.pos].get(col) == current {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::collect_all;
    use crate::scan::ValuesScan;
    use ts_storage::row;

    #[test]
    fn sorts_desc_then_asc() {
        let rows = vec![row![1i64, 5i64], row![2i64, 9i64], row![3i64, 5i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(1, Dir::Desc), (0, Dir::Asc)], Work::new());
        let got = collect_all(&mut s);
        assert_eq!(got, vec![row![2i64, 9i64], row![1i64, 5i64], row![3i64, 5i64]]);
    }

    #[test]
    fn rewind_replays_sorted_output() {
        let rows = vec![row![2i64], row![1i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        let first = collect_all(&mut s);
        s.rewind();
        assert_eq!(collect_all(&mut s), first);
    }

    #[test]
    fn sorted_stream_supports_group_skip() {
        let rows = vec![row![10i64, 1i64], row![20i64, 2i64], row![10i64, 3i64], row![20i64, 4i64]];
        let scan = ValuesScan::new(rows, Work::new());
        let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc)], Work::new());
        assert!(s.grouped());
        s.next().unwrap(); // (10, _)
        s.advance_to_next_group();
        assert_eq!(s.next().unwrap().get(0).as_int(), 20);
    }
}
