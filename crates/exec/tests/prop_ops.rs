//! Property tests: operator semantics against naive references.

use proptest::prelude::*;
use ts_exec::{
    collect_all, collect_distinct_groups, BoxedOp, Distinct, HashJoin, Hdgj, Idgj, Sort,
    ValuesScan, Work,
};
use ts_storage::{row, ColumnDef, Row, Table, TableSchema, Value, ValueType};

fn rows_strategy(n: usize, key_range: i64) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec((0..key_range, 0..key_range), 0..n)
        .prop_map(|v| v.into_iter().map(|(a, b)| row![a, b]).collect())
}

fn values(rows: Vec<Row>) -> BoxedOp<'static> {
    Box::new(ValuesScan::new(rows, Work::new()))
}

/// Naive nested-loop join reference.
fn nl_join(left: &[Row], lcol: usize, right: &[Row], rcol: usize) -> Vec<Row> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if l.get(lcol) == r.get(rcol) {
                out.push(l.concat(r));
            }
        }
    }
    out
}

fn sorted_multiset(mut v: Vec<Row>) -> Vec<Row> {
    v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_equals_nested_loops(
        left in rows_strategy(20, 6),
        right in rows_strategy(20, 6),
    ) {
        let mut j = HashJoin::new(values(left.clone()), 0, values(right.clone()), 1, Work::new());
        let got = sorted_multiset(collect_all(&mut j));
        let expected = sorted_multiset(nl_join(&left, 0, &right, 1));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(rows in rows_strategy(30, 10)) {
        let n = rows.len();
        let mut s = Sort::new(
            values(rows.clone()),
            vec![(0, ts_exec::sort::Dir::Desc), (1, ts_exec::sort::Dir::Asc)],
            Work::new(),
        );
        let got = collect_all(&mut s);
        prop_assert_eq!(got.len(), n);
        for w in got.windows(2) {
            let k0 = (w[0].get(0).as_int(), w[0].get(1).as_int());
            let k1 = (w[1].get(0).as_int(), w[1].get(1).as_int());
            prop_assert!(k0.0 > k1.0 || (k0.0 == k1.0 && k0.1 <= k1.1));
        }
        prop_assert_eq!(sorted_multiset(got), sorted_multiset(rows));
    }

    #[test]
    fn distinct_keeps_first_of_each_key(rows in rows_strategy(30, 5)) {
        let mut d = Distinct::new(values(rows.clone()), vec![0], Work::new());
        let got = collect_all(&mut d);
        // Reference: first occurrence per key, in order.
        let mut seen = std::collections::HashSet::new();
        let expected: Vec<Row> =
            rows.into_iter().filter(|r| seen.insert(r.get(0).clone())).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn idgj_and_hdgj_agree_with_reference(
        groups in proptest::collection::vec((0..4i64, proptest::collection::vec(0..8i64, 0..5)), 0..5),
    ) {
        // Build a clustered outer: (group, key) rows.
        let mut outer_rows: Vec<Row> = Vec::new();
        let mut gs: Vec<(i64, Vec<i64>)> = groups;
        gs.sort_by_key(|g| g.0);
        gs.dedup_by_key(|g| g.0);
        for (gid, keys) in &gs {
            for k in keys {
                outer_rows.push(row![*gid, *k]);
            }
        }
        // Inner table with an index.
        let mut inner = Table::new(TableSchema::new(
            "I",
            vec![ColumnDef::new("k", ValueType::Int), ColumnDef::new("v", ValueType::Int)],
            None,
        ));
        for k in 0..8i64 {
            if k % 2 == 0 {
                inner.insert(row![k, k * 100]).unwrap();
            }
        }
        inner.create_index(0);

        let grouped = |rows: Vec<Row>| -> BoxedOp<'static> {
            Box::new(ValuesScan::grouped(rows, 0, Work::new()))
        };
        let mut idgj = Idgj::new(grouped(outer_rows.clone()), 1, &inner, 0, 0, Work::new());
        let got_i = collect_all(&mut idgj);

        let inner_scan: BoxedOp<'_> =
            Box::new(ts_exec::TableScan::new(&inner, ts_storage::Predicate::True, Work::new()));
        let mut hdgj = Hdgj::new(grouped(outer_rows.clone()), 1, inner_scan, 0, 0, Work::new());
        let got_h = collect_all(&mut hdgj);

        let inner_rows: Vec<Row> = inner.rows().map(|r| r.to_row()).collect();
        let expected = nl_join(&outer_rows, 1, &inner_rows, 0);
        prop_assert_eq!(sorted_multiset(got_i.clone()), sorted_multiset(expected));
        prop_assert_eq!(sorted_multiset(got_h), sorted_multiset(got_i.clone()));
        // Group order preserved in both.
        let gseq: Vec<i64> = got_i.iter().map(|r| r.get(0).as_int()).collect();
        let mut sorted_gseq = gseq.clone();
        sorted_gseq.sort_unstable();
        prop_assert_eq!(gseq, sorted_gseq);
    }

    #[test]
    fn distinct_groups_equals_unique_group_values(
        gids in proptest::collection::vec(0..5i64, 0..20),
    ) {
        let mut sorted = gids.clone();
        sorted.sort_unstable();
        let rows: Vec<Row> = sorted.iter().map(|&g| row![g]).collect();
        let mut scan = ValuesScan::grouped(rows, 0, Work::new());
        let got = collect_distinct_groups(&mut scan, 0);
        let mut expected: Vec<Value> = sorted.into_iter().map(Value::Int).collect();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }
}
