//! Property tests for the vectorized batch engine: batch streams are
//! proven equivalent to the tuple engine's row streams, and every
//! emitted batch upholds the selection-vector invariants (sorted,
//! unique, in-bounds, non-empty), across adversarial batch sizes that
//! straddle every boundary (1, 2, 1023, 1024, 1025, table_len ± 1).

use proptest::prelude::*;
use ts_exec::{
    batch_rows, collect_all, set_batch_rows, Batch, BatchDistinct, BatchFilter, BatchOperator,
    BatchSort, BatchTableScan, BoxedBatchOp, BoxedOp, Dir, Distinct, Filter, Sort, TableScan, Work,
};
use ts_storage::{row, ColumnDef, Predicate, Row, Table, TableSchema, Value, ValueType};

/// Restores the thread-local batch-rows override (0 = engine default)
/// when dropped, so an early `prop_assert!` return cannot leak an
/// adversarial batch size into later cases or tests.
struct BatchRowsGuard;

impl Drop for BatchRowsGuard {
    fn drop(&mut self) {
        set_batch_rows(0);
    }
}

/// Table schema [a: Int, b: Int, d: Str], with optional nulls in `d` so
/// the scan exercises both the borrowed-slice and the materialized
/// `Vals` column paths.
fn make_table(rows: &[(i64, i64, Option<u8>)]) -> Table {
    const WORDS: [&str; 4] = ["alpha beta", "gamma", "delta alpha", "epsilon"];
    let mut t = Table::new(TableSchema::new(
        "T",
        vec![
            ColumnDef::new("a", ValueType::Int),
            ColumnDef::new("b", ValueType::Int),
            ColumnDef::new("d", ValueType::Str),
        ],
        None,
    ));
    for &(a, b, w) in rows {
        let d = match w {
            Some(i) => Value::from(WORDS[i as usize % WORDS.len()]),
            None => Value::Null,
        };
        t.insert(row![a, b, d]).expect("schema accepts every generated row");
    }
    t
}

fn rows_strategy(n: usize) -> impl Strategy<Value = Vec<(i64, i64, Option<u8>)>> {
    proptest::collection::vec((0..6i64, -3..3i64, proptest::option::of(0..4u8)), 0..n)
}

fn predicate(which: u8) -> Predicate {
    match which % 5 {
        0 => Predicate::True,
        1 => Predicate::eq(0, 2i64),
        2 => Predicate::contains(2, "alpha"),
        3 => Predicate::eq(0, 1i64).and(Predicate::eq(1, 0i64)),
        _ => Predicate::Not(Box::new(Predicate::eq(1, -1i64))),
    }
}

/// The batch sizes the suite drives every property through: both sides
/// of the poll window (1023/1024/1025), degenerate chunks (1, 2), and
/// both sides of the table length.
fn adversarial_sizes(table_len: usize) -> Vec<usize> {
    let mut sizes = vec![1, 2, 1023, 1024, 1025];
    sizes.push(table_len.saturating_sub(1).max(1));
    sizes.push(table_len + 1);
    sizes
}

/// Drain a batch operator, checking the selection-vector invariants on
/// every emitted batch, and return the concatenated materialized rows.
fn drain_checked<'a>(op: &mut dyn BatchOperator<'a>) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(b) = op.next_batch() {
        assert!(b.selected() > 0, "emitted batches must be non-empty");
        assert!(check_invariants(&b), "selection vector must be sorted, unique, in-bounds");
        for i in b.sel_iter() {
            out.push(b.materialize_row(i));
        }
    }
    out
}

/// The selection-vector invariants, re-derived here independently of
/// `Batch::sel_invariants_hold` so the test does not trust the engine's
/// own self-check.
fn check_invariants(b: &Batch<'_>) -> bool {
    match b.sel() {
        None => b.raw_len() > 0,
        Some(sel) => {
            !sel.is_empty()
                && sel.windows(2).all(|w| w[0] < w[1])
                && sel.iter().all(|&i| (i as usize) < b.raw_len())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concatenating a batch scan's batches reproduces the tuple scan's
    /// row stream exactly, for every adversarial batch size.
    #[test]
    fn batch_scan_concatenation_equals_tuple_scan(
        rows in rows_strategy(40),
        which in 0u8..5,
    ) {
        let table = make_table(&rows);
        let pred = predicate(which);
        let mut tuple = TableScan::new(&table, pred.clone(), Work::new());
        let expected = collect_all(&mut tuple);

        let _guard = BatchRowsGuard;
        for size in adversarial_sizes(table.len()) {
            set_batch_rows(size);
            prop_assert_eq!(batch_rows(), size);
            let mut scan = BatchTableScan::new(&table, pred.clone(), Work::new());
            let got = drain_checked(&mut scan);
            prop_assert_eq!(
                &got, &expected,
                "batch scan at batch size {} diverged from the tuple scan", size
            );
        }
    }

    /// A filter → distinct pipeline emits identical rows on both
    /// engines, and every intermediate batch upholds the invariants.
    #[test]
    fn batch_filter_distinct_pipeline_matches_tuple(
        rows in rows_strategy(40),
        which in 0u8..5,
    ) {
        let table = make_table(&rows);
        let pred = predicate(which);

        let scan: BoxedOp<'_> = Box::new(TableScan::new(&table, Predicate::True, Work::new()));
        let filt: BoxedOp<'_> = Box::new(Filter::new(scan, pred.clone(), Work::new()));
        let mut distinct = Distinct::new(filt, vec![0, 1], Work::new());
        let expected = collect_all(&mut distinct);

        let _guard = BatchRowsGuard;
        for size in adversarial_sizes(table.len()) {
            set_batch_rows(size);
            let scan: BoxedBatchOp<'_> =
                Box::new(BatchTableScan::new(&table, Predicate::True, Work::new()));
            let filt: BoxedBatchOp<'_> = Box::new(BatchFilter::new(scan, pred.clone(), Work::new()));
            let mut distinct = BatchDistinct::new(filt, vec![0, 1], Work::new());
            let got = drain_checked(&mut distinct);
            prop_assert_eq!(
                &got, &expected,
                "batch pipeline at batch size {} diverged from the tuple pipeline", size
            );
        }
    }

    /// BatchSort emits the same totally ordered stream as tuple Sort and
    /// clips its output batches at group (first-key) boundaries.
    #[test]
    fn batch_sort_matches_tuple_and_clips_groups(rows in rows_strategy(40)) {
        let table = make_table(&rows);
        let keys = vec![(0, Dir::Asc), (1, Dir::Desc)];

        let scan: BoxedOp<'_> = Box::new(TableScan::new(&table, Predicate::True, Work::new()));
        let mut sort = Sort::new(scan, keys.clone(), Work::new());
        let expected = collect_all(&mut sort);

        let _guard = BatchRowsGuard;
        for size in adversarial_sizes(table.len()) {
            set_batch_rows(size);
            let scan: BoxedBatchOp<'_> =
                Box::new(BatchTableScan::new(&table, Predicate::True, Work::new()));
            let mut sort = BatchSort::new(scan, keys.clone(), Work::new());
            let mut got = Vec::new();
            while let Some(b) = sort.next_batch() {
                prop_assert!(b.selected() > 0);
                prop_assert!(check_invariants(&b));
                // Grouped streams never emit a batch spanning two groups.
                let first = b.value(0, b.first().expect("non-empty"));
                for i in b.sel_iter() {
                    prop_assert_eq!(
                        &b.value(0, i), &first,
                        "sorted batch at size {} spans a group boundary", size
                    );
                }
                got.extend(b.sel_iter().map(|i| b.materialize_row(i)));
            }
            prop_assert_eq!(
                &got, &expected,
                "batch sort at batch size {} diverged from tuple sort", size
            );
        }
    }
}
