//! `Sort` must not clone emitted rows.
//!
//! The operator used to return `buf[pos].clone()` from `next` — one heap
//! allocation (the row's `Vec<Value>`) per emitted row, on every plan
//! that sorts. This test drives the drain-by-value rewrite with the same
//! counting-global-allocator pattern the `compute_catalog` bench uses:
//! output equality against an independently sorted expectation, then an
//! emission pass whose allocation count must not scale with row count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use ts_exec::{
    collect_all, BatchDistinct, BatchOperator, BatchSort, BatchValuesScan, BoxedBatchOp, Dir,
    Operator, Sort, ValuesScan, Work,
};
use ts_storage::{row, Row};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: a pure pass-through to `System` — every method forwards its
// arguments unchanged and returns `System`'s result, so `System`'s own
// GlobalAlloc guarantees (layout fit, pointer validity) carry over; the
// added counter work is lock-free atomics and cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed straight to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: ptr/layout/new_size forwarded untouched; the caller's
    // obligations become `System.realloc`'s preconditions verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: ptr was produced by `System.alloc`/`realloc` above with
    // this same layout, exactly what `System.dealloc` requires.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counters above are process-wide; libtest runs the tests in this
/// binary concurrently, so every test holds this lock to keep foreign
/// allocations out of a counting window.
static SERIAL: Mutex<()> = Mutex::new(());

const N: usize = 1024;

/// Deterministically shuffled rows: (key desc tie-broken, id, payload).
fn input_rows() -> Vec<Row> {
    (0..N as i64)
        .map(|i| {
            let key = (i * 37) % 11;
            row![key, i, "payload shared across rows"]
        })
        .collect()
}

#[test]
fn sort_emits_without_per_row_allocations() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rows = input_rows();

    // Independent expectation: std sort of owned clones.
    let mut expected = rows.clone();
    expected.sort_by(|a, b| b.get(0).cmp(a.get(0)).then_with(|| a.get(1).cmp(b.get(1))));

    let scan = ValuesScan::new(rows, Work::new());
    let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Desc), (1, Dir::Asc)], Work::new());

    // Force the fill (buffering + sorting may allocate; that's fine and
    // not what this test polices).
    let first = s.next().expect("non-empty input");

    // Count allocations across the pure-emission tail.
    let mut got = Vec::with_capacity(N);
    got.push(first);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    while let Some(r) = s.next() {
        got.push(r);
    }
    COUNTING.store(false, Ordering::Relaxed);
    let emission_allocs = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(got, expected, "drain-by-value changed the sorted output");
    // Before the rewrite this was >= N-1 (one `Vec<Value>` clone per
    // row); moving rows out costs at most a handful of allocations for
    // the occasional group-boundary `Value` bookkeeping.
    assert!(
        emission_allocs < 32,
        "Sort::next allocated {emission_allocs} times while emitting {N} buffered rows"
    );
}

/// `BatchSort` on all-Int input must sort on the raw `i64` column
/// buffers — a permutation over borrowed slices — not on per-row
/// scratch key rows. Allocation count across fill + emission of 1024
/// rows stays a small constant (batch-granular `Vec`s only); the
/// per-row-key version allocated at least one `Vec<Value>` per row.
#[test]
fn batch_sort_all_int_sorts_raw_buffers_without_per_row_keys() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rows: Vec<Row> = (0..N as i64).map(|i| row![(i * 37) % 11, i]).collect();
    let mut expected: Vec<(i64, i64)> =
        rows.iter().map(|r| (r.get(0).as_int(), r.get(1).as_int())).collect();
    expected.sort_unstable();

    let scan: BoxedBatchOp<'static> = Box::new(BatchValuesScan::new(rows, Work::new()));
    let mut s = BatchSort::new(scan, vec![(0, Dir::Asc), (1, Dir::Asc)], Work::new());

    let mut got: Vec<(i64, i64)> = Vec::with_capacity(N);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    while let Some(b) = s.next_batch() {
        for i in b.sel_iter() {
            got.push((
                b.try_int(0, i).expect("all-Int column"),
                b.try_int(1, i).expect("all-Int column"),
            ));
        }
    }
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(got, expected, "batch sort changed the sorted output");
    assert!(
        allocs < 128,
        "BatchSort allocated {allocs} times sorting and emitting {N} all-Int rows \
         (per-row scratch keys would cost >= {N})"
    );
}

/// `BatchDistinct` with an all-Int key must dedup straight off the raw
/// column values (an `i64` hash-set probe per row), not via per-row
/// scratch key rows.
#[test]
fn batch_distinct_all_int_key_dedups_without_per_row_scratch() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rows: Vec<Row> = (0..N as i64).map(|i| row![(i * 37) % 11, i]).collect();
    // First-occurrence reference: key k first appears at the smallest i
    // with (i * 37) % 11 == k.
    let mut seen = std::collections::HashSet::new();
    let expected: Vec<i64> =
        rows.iter().map(|r| r.get(0).as_int()).filter(|&k| seen.insert(k)).collect();

    let scan: BoxedBatchOp<'static> = Box::new(BatchValuesScan::new(rows, Work::new()));
    let mut d = BatchDistinct::new(scan, vec![0], Work::new());

    let mut got: Vec<i64> = Vec::with_capacity(16);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    while let Some(b) = d.next_batch() {
        for i in b.sel_iter() {
            got.push(b.try_int(0, i).expect("all-Int column"));
        }
    }
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(got, expected, "batch distinct changed the kept keys");
    assert!(
        allocs < 64,
        "BatchDistinct allocated {allocs} times deduping {N} all-Int rows \
         (per-row scratch keys would cost >= {N})"
    );
}

#[test]
fn sort_rewind_refills_and_replays() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rows = input_rows();
    let scan = ValuesScan::new(rows, Work::new());
    let mut s = Sort::new(Box::new(scan), vec![(0, Dir::Asc), (1, Dir::Asc)], Work::new());
    let first_pass = collect_all(&mut s);
    s.rewind();
    let second_pass = collect_all(&mut s);
    assert_eq!(first_pass, second_pass);
    assert_eq!(first_pass.len(), N);
}
