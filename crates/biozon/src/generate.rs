//! The generator itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ts_storage::{row, ColumnDef, Database, TableSchema, ValueType};

use crate::config::BiozonConfig;

/// Id bases per entity set — ids are globally unique across sets.
const PROTEIN_BASE: i64 = 1_000_000;
const DNA_BASE: i64 = 2_000_000;
const UNIGENE_BASE: i64 = 3_000_000;
const INTERACTION_BASE: i64 = 4_000_000;
const FAMILY_BASE: i64 = 5_000_000;
const STRUCTURE_BASE: i64 = 6_000_000;
const PATHWAY_BASE: i64 = 7_000_000;

/// Entity-set and relationship-set ids of the generated schema, so that
/// downstream code never hard-codes positions.
#[derive(Debug, Clone, Copy)]
pub struct SchemaIds {
    /// Protein entity set.
    pub protein: u16,
    /// DNA entity set.
    pub dna: u16,
    /// Unigene entity set.
    pub unigene: u16,
    /// Interaction entity set.
    pub interaction: u16,
    /// Family entity set.
    pub family: u16,
    /// Structure entity set.
    pub structure: u16,
    /// Pathway entity set.
    pub pathway: u16,
    /// encodes: Protein–DNA.
    pub encodes: u16,
    /// uni_encodes: Unigene–Protein.
    pub uni_encodes: u16,
    /// uni_contains: Unigene–DNA.
    pub uni_contains: u16,
    /// interacts_p: Protein–Interaction.
    pub interacts_p: u16,
    /// interacts_d: DNA–Interaction.
    pub interacts_d: u16,
    /// belongs: Protein–Family.
    pub belongs: u16,
    /// manifest: Structure–Protein.
    pub manifest: u16,
    /// member: Pathway–Protein.
    pub member: u16,
}

/// A generated database plus its schema handles.
#[derive(Debug, Clone)]
pub struct Biozon {
    /// The relational database with ER declarations.
    pub db: Database,
    /// Schema handles.
    pub ids: SchemaIds,
    /// Config it was generated from.
    pub config: BiozonConfig,
}

/// Zipf-ish sampler over `0..n`: rank r drawn with weight `1/(r+1)^s`.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Sample an index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty domain");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

/// Keyword pool for descriptions. The selectivity keywords are planted
/// independently so each hits its exact expected rate.
const FLAVOR: &[&str] = &[
    "ubiquitin",
    "kinase",
    "phosphatase",
    "receptor",
    "transcription",
    "factor",
    "binding",
    "membrane",
    "hypothetical",
    "conjugating",
    "carrier",
    "homolog",
    "variant",
    "inducible",
    "ribosomal",
];

/// Selectivity keyword planted at ~15%.
pub const KW_SELECTIVE: &str = "sel15kw";
/// Selectivity keyword planted at ~50%.
pub const KW_MEDIUM: &str = "med50kw";
/// Selectivity keyword planted at ~85%.
pub const KW_UNSELECTIVE: &str = "uns85kw";

fn description(rng: &mut StdRng, extra: &str) -> String {
    let mut words: Vec<&str> = Vec::with_capacity(6);
    let n = rng.gen_range(2..5);
    for _ in 0..n {
        words.push(FLAVOR[rng.gen_range(0..FLAVOR.len())]);
    }
    if rng.gen_bool(0.15) {
        words.push(KW_SELECTIVE);
    }
    if rng.gen_bool(0.50) {
        words.push(KW_MEDIUM);
    }
    if rng.gen_bool(0.85) {
        words.push(KW_UNSELECTIVE);
    }
    if !extra.is_empty() {
        words.push(extra);
    }
    words.join(" ")
}

/// Generate a Biozon-shaped database.
pub fn generate(cfg: &BiozonConfig) -> Biozon {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();

    let mk_entity = |db: &mut Database, name: &str, extra_cols: Vec<ColumnDef>| {
        let mut cols = vec![ColumnDef::new("ID", ValueType::Int)];
        cols.extend(extra_cols);
        let t = db.create_table(TableSchema::new(name, cols, Some(0))).expect("fresh db");
        (t, db.declare_entity_set(name, t).expect("fresh db"))
    };

    let (protein_t, protein) =
        mk_entity(&mut db, "Protein", vec![ColumnDef::new("desc", ValueType::Str)]);
    let (dna_t, dna) = mk_entity(
        &mut db,
        "DNA",
        vec![ColumnDef::new("type", ValueType::Str), ColumnDef::new("defs", ValueType::Str)],
    );
    let (unigene_t, unigene) =
        mk_entity(&mut db, "Unigene", vec![ColumnDef::new("desc", ValueType::Str)]);
    let (interaction_t, interaction) =
        mk_entity(&mut db, "Interaction", vec![ColumnDef::new("desc", ValueType::Str)]);
    let (family_t, family) =
        mk_entity(&mut db, "Family", vec![ColumnDef::new("desc", ValueType::Str)]);
    let (structure_t, structure) =
        mk_entity(&mut db, "Structure", vec![ColumnDef::new("desc", ValueType::Str)]);
    let (pathway_t, pathway) =
        mk_entity(&mut db, "Pathway", vec![ColumnDef::new("desc", ValueType::Str)]);

    let mk_rel = |db: &mut Database, name: &str, a: usize, acol: &str, b: usize, bcol: &str| {
        let t = db
            .create_table(TableSchema::new(
                name,
                vec![ColumnDef::new(acol, ValueType::Int), ColumnDef::new(bcol, ValueType::Int)],
                None,
            ))
            .expect("fresh db");
        (t, db.declare_rel_set(name, t, a, 0, b, 1).expect("fresh db"))
    };

    let (encodes_t, encodes) = mk_rel(&mut db, "Encodes", protein, "PID", dna, "DID");
    let (uni_encodes_t, uni_encodes) =
        mk_rel(&mut db, "Uni_encodes", unigene, "UID", protein, "PID");
    let (uni_contains_t, uni_contains) =
        mk_rel(&mut db, "Uni_contains", unigene, "UID", dna, "DID");
    let (interacts_p_t, interacts_p) =
        mk_rel(&mut db, "Interacts_P", protein, "PID", interaction, "IID");
    let (interacts_d_t, interacts_d) =
        mk_rel(&mut db, "Interacts_D", dna, "DID", interaction, "IID");
    let (belongs_t, belongs) = mk_rel(&mut db, "Belongs", protein, "PID", family, "FID");
    let (manifest_t, manifest) = mk_rel(&mut db, "Manifest", structure, "SID", protein, "PID");
    let (member_t, member) = mk_rel(&mut db, "Member", pathway, "WID", protein, "PID");

    // Entities.
    for i in 0..cfg.proteins {
        let d = description(&mut rng, "");
        db.table_mut(protein_t).insert(row![PROTEIN_BASE + i as i64, d]).expect("unique id");
    }
    for i in 0..cfg.dnas {
        let ty = match rng.gen_range(0..10) {
            0..=4 => "mRNA",
            5..=7 => "EST",
            _ => "genomic",
        };
        let d = description(&mut rng, "");
        db.table_mut(dna_t).insert(row![DNA_BASE + i as i64, ty, d]).expect("unique id");
    }
    for (count, base, table) in [
        (cfg.unigenes, UNIGENE_BASE, unigene_t),
        (cfg.interactions, INTERACTION_BASE, interaction_t),
        (cfg.families, FAMILY_BASE, family_t),
        (cfg.structures, STRUCTURE_BASE, structure_t),
        (cfg.pathways, PATHWAY_BASE, pathway_t),
    ] {
        for i in 0..count {
            let d = description(&mut rng, "");
            db.table_mut(table).insert(row![base + i as i64, d]).expect("unique id");
        }
    }

    // Relationships with Zipf-skewed endpoints; duplicates collapse in
    // the data graph, so a few repeats are harmless.
    let zp = Zipf::new(cfg.proteins, cfg.zipf_skew);
    let zd = Zipf::new(cfg.dnas, cfg.zipf_skew);
    let zu = Zipf::new(cfg.unigenes, cfg.zipf_skew);
    let zi = Zipf::new(cfg.interactions, cfg.zipf_skew);
    let zf = Zipf::new(cfg.families, cfg.zipf_skew);
    let zs = Zipf::new(cfg.structures, cfg.zipf_skew);
    let zw = Zipf::new(cfg.pathways, cfg.zipf_skew);

    let add_edges = |db: &mut Database,
                     table,
                     n: usize,
                     abase: i64,
                     za: &Zipf,
                     bbase: i64,
                     zb: &Zipf,
                     rng: &mut StdRng| {
        for _ in 0..n {
            let a = abase + za.sample(rng) as i64;
            let b = bbase + zb.sample(rng) as i64;
            db.table_mut(table).insert(row![a, b]).expect("rel schema");
        }
    };

    add_edges(&mut db, encodes_t, cfg.encodes, PROTEIN_BASE, &zp, DNA_BASE, &zd, &mut rng);
    add_edges(
        &mut db,
        uni_encodes_t,
        cfg.uni_encodes,
        UNIGENE_BASE,
        &zu,
        PROTEIN_BASE,
        &zp,
        &mut rng,
    );
    add_edges(
        &mut db,
        uni_contains_t,
        cfg.uni_contains,
        UNIGENE_BASE,
        &zu,
        DNA_BASE,
        &zd,
        &mut rng,
    );
    add_edges(
        &mut db,
        interacts_p_t,
        cfg.interacts_p,
        PROTEIN_BASE,
        &zp,
        INTERACTION_BASE,
        &zi,
        &mut rng,
    );
    add_edges(
        &mut db,
        interacts_d_t,
        cfg.interacts_d,
        DNA_BASE,
        &zd,
        INTERACTION_BASE,
        &zi,
        &mut rng,
    );
    add_edges(&mut db, belongs_t, cfg.belongs, PROTEIN_BASE, &zp, FAMILY_BASE, &zf, &mut rng);
    add_edges(&mut db, manifest_t, cfg.manifest, STRUCTURE_BASE, &zs, PROTEIN_BASE, &zp, &mut rng);
    add_edges(&mut db, member_t, cfg.members, PATHWAY_BASE, &zw, PROTEIN_BASE, &zp, &mut rng);

    // Plant Fig. 16 motifs: one DNA encoding two proteins that interact.
    for m in 0..cfg.fig16_motifs {
        let d = DNA_BASE + rng.gen_range(0..cfg.dnas) as i64;
        let p1 = PROTEIN_BASE + rng.gen_range(0..cfg.proteins) as i64;
        let mut p2 = PROTEIN_BASE + rng.gen_range(0..cfg.proteins) as i64;
        if p2 == p1 {
            p2 = PROTEIN_BASE + ((p2 - PROTEIN_BASE + 1) % cfg.proteins as i64);
        }
        let i = INTERACTION_BASE + (m % cfg.interactions) as i64;
        db.table_mut(encodes_t).insert(row![p1, d]).expect("rel schema");
        db.table_mut(encodes_t).insert(row![p2, d]).expect("rel schema");
        db.table_mut(interacts_p_t).insert(row![p1, i]).expect("rel schema");
        db.table_mut(interacts_p_t).insert(row![p2, i]).expect("rel schema");
    }

    // Indexes on queried attributes and statistics, as in §6.1.
    db.table_mut(dna_t).create_index(1);
    db.analyze_all();

    let ids = SchemaIds {
        protein: protein as u16,
        dna: dna as u16,
        unigene: unigene as u16,
        interaction: interaction as u16,
        family: family as u16,
        structure: structure as u16,
        pathway: pathway as u16,
        encodes: encodes as u16,
        uni_encodes: uni_encodes as u16,
        uni_contains: uni_contains as u16,
        interacts_p: interacts_p as u16,
        interacts_d: interacts_d as u16,
        belongs: belongs as u16,
        manifest: manifest as u16,
        member: member as u16,
    };
    Biozon { db, ids, config: cfg.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_graph::DataGraph;

    #[test]
    fn generation_is_deterministic() {
        let cfg = BiozonConfig::small(7);
        let b1 = generate(&cfg);
        let b2 = generate(&cfg);
        for name in ["Protein", "DNA", "Encodes", "Interacts_P"] {
            let t1 = b1.db.table_by_name(name).unwrap();
            let t2 = b2.db.table_by_name(name).unwrap();
            assert!(t1.rows().eq(t2.rows()), "{name} differs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let b1 = generate(&BiozonConfig::small(1));
        let b2 = generate(&BiozonConfig::small(2));
        let t1 = b1.db.table_by_name("Encodes").unwrap();
        let t2 = b2.db.table_by_name("Encodes").unwrap();
        assert!(!t1.rows().eq(t2.rows()));
    }

    #[test]
    fn data_graph_builds_cleanly() {
        let b = generate(&BiozonConfig::small(3));
        let g = DataGraph::from_db(&b.db).expect("no dangling fks");
        assert!(g.node_count() > 0);
        assert!(g.edge_count() > 0);
        assert_eq!(g.nodes_of_type(b.ids.protein).len(), b.config.proteins);
    }

    #[test]
    fn ids_do_not_overlap_across_sets() {
        let b = generate(&BiozonConfig::small(4));
        let mut all: Vec<i64> = Vec::new();
        for es in b.db.entity_sets() {
            let t = b.db.table(es.table);
            for r in t.rows() {
                all.push(r.get(0).as_int());
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "entity ids must be globally unique");
    }

    #[test]
    fn selectivity_keywords_hit_their_rates() {
        let b = generate(&BiozonConfig::default());
        let t = b.db.table_by_name("Protein").unwrap();
        let stats = t.stats().expect("analyzed");
        let sel = stats.contains_selectivity(1, super::KW_SELECTIVE);
        let med = stats.contains_selectivity(1, super::KW_MEDIUM);
        let uns = stats.contains_selectivity(1, super::KW_UNSELECTIVE);
        assert!((sel - 0.15).abs() < 0.04, "selective rate {sel}");
        assert!((med - 0.50).abs() < 0.05, "medium rate {med}");
        assert!((uns - 0.85).abs() < 0.04, "unselective rate {uns}");
    }

    #[test]
    fn fig16_motifs_exist() {
        let b = generate(&BiozonConfig::small(5));
        let g = DataGraph::from_db(&b.db).unwrap();
        // At least one pair of proteins shares a DNA (via encodes) and an
        // interaction.
        let enc = b.db.table_by_name("Encodes").unwrap();
        let mut found = false;
        'outer: for r1 in enc.rows() {
            for r2 in enc.rows() {
                let (p1, d1) = (r1.get(0).as_int(), r1.get(1).as_int());
                let (p2, d2) = (r2.get(0).as_int(), r2.get(1).as_int());
                if d1 == d2 && p1 < p2 {
                    // Do p1 and p2 share an interaction?
                    let n1 = g.node(b.ids.protein, p1).unwrap();
                    let n2 = g.node(b.ids.protein, p2).unwrap();
                    let i1: std::collections::HashSet<u32> = g
                        .neighbors(n1)
                        .iter()
                        .filter(|&&(r, _)| r == b.ids.interacts_p)
                        .map(|&(_, n)| n)
                        .collect();
                    if g.neighbors(n2)
                        .iter()
                        .any(|&(r, n)| r == b.ids.interacts_p && i1.contains(&n))
                    {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "a planted Fig. 16 motif must exist");
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 must dominate rank 50");
    }
}
