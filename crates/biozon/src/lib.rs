//! # ts-biozon
//!
//! A seeded synthetic generator for a Biozon-shaped biological database
//! (the paper's experimental substrate, §6.1), plus the experiment
//! workloads.
//!
//! The real Biozon (28M objects / 9.6M relationships integrated from
//! GenBank, SwissProt, …) is not available; what the paper's findings
//! depend on is reproduced structurally instead:
//!
//! * the **Fig. 1 schema** — Protein, DNA, Unigene, Interaction, Family,
//!   Structure, Pathway entity sets with encodes / uni_encodes /
//!   uni_contains / interacts(P) / interacts(D) / belongs / manifest /
//!   member relationships;
//! * **power-law degree distributions** (Zipf-sampled endpoints), which
//!   make the topology-frequency distribution come out Zipfian (Fig. 11);
//! * **engineered predicate selectivities** — keywords planted in
//!   `Protein.desc` and `Interaction.desc` at 15% / 50% / 85% rates, the
//!   selective / medium / unselective axes of Table 2;
//! * **planted Fig. 16 motifs** — two proteins encoded by one DNA that
//!   also interact — so the biologically significant topology exists to
//!   be found;
//! * globally unique entity ids across sets (the paper's "IDs of
//!   different biological objects are not overlapping" assumption that
//!   Full-Top's single AllTops table relies on).
//!
//! Everything is deterministic in the seed.

#![forbid(unsafe_code)]

pub mod config;
pub mod generate;
pub mod workload;

pub use config::BiozonConfig;
pub use generate::{generate, Biozon, SchemaIds};
pub use workload::{domain_scorer, query_mix, selectivity_predicate, weak_policy_l4, Selectivity};
