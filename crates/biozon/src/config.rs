//! Generator configuration.

/// Size and shape knobs for the synthetic Biozon.
///
/// Defaults are laptop-scale: large enough that the Zipfian frequency
/// distribution and the Table-2 method separations emerge, small enough
/// that the full offline build runs in seconds.
#[derive(Debug, Clone)]
pub struct BiozonConfig {
    /// RNG seed (everything is deterministic in it).
    pub seed: u64,
    /// Entity counts.
    pub proteins: usize,
    /// Number of DNA sequences.
    pub dnas: usize,
    /// Number of Unigene clusters.
    pub unigenes: usize,
    /// Number of interaction records.
    pub interactions: usize,
    /// Number of protein families.
    pub families: usize,
    /// Number of resolved structures.
    pub structures: usize,
    /// Number of pathways.
    pub pathways: usize,
    /// Relationship counts (edges sampled with Zipf endpoints).
    pub encodes: usize,
    /// Unigene–Protein links.
    pub uni_encodes: usize,
    /// Unigene–DNA links.
    pub uni_contains: usize,
    /// Protein–Interaction links.
    pub interacts_p: usize,
    /// DNA–Interaction links.
    pub interacts_d: usize,
    /// Protein–Family links.
    pub belongs: usize,
    /// Structure–Protein links.
    pub manifest: usize,
    /// Pathway–Protein links (simplifies the paper's Path-element
    /// indirection to a direct membership edge; documented in DESIGN.md).
    pub members: usize,
    /// Zipf skew for endpoint sampling (0 = uniform; ~0.8 gives the
    /// heavy-tailed degrees biological databases show).
    pub zipf_skew: f64,
    /// Number of Fig. 16 motifs planted (two proteins, one DNA encoding
    /// both, one interaction connecting the proteins).
    pub fig16_motifs: usize,
}

impl Default for BiozonConfig {
    fn default() -> Self {
        // Edge-to-entity ratio ~0.75, close to the real Biozon's sparsity
        // (9.6M relationships over 28M objects); denser graphs blow up
        // the l=3 path census combinatorially without changing any of
        // the paper's qualitative findings.
        BiozonConfig {
            seed: 42,
            proteins: 2000,
            dnas: 1600,
            unigenes: 900,
            interactions: 700,
            families: 200,
            structures: 350,
            pathways: 80,
            encodes: 900,
            uni_encodes: 800,
            uni_contains: 700,
            interacts_p: 600,
            interacts_d: 150,
            belongs: 700,
            manifest: 300,
            members: 300,
            zipf_skew: 0.7,
            fig16_motifs: 12,
        }
    }
}

impl BiozonConfig {
    /// A small config for fast tests.
    pub fn small(seed: u64) -> Self {
        BiozonConfig { seed, ..Self::default().scaled(0.2) }
    }

    /// Scale all entity and relationship counts by `f`.
    pub fn scaled(&self, f: f64) -> Self {
        let s = |n: usize| ((n as f64 * f).round() as usize).max(4);
        BiozonConfig {
            seed: self.seed,
            proteins: s(self.proteins),
            dnas: s(self.dnas),
            unigenes: s(self.unigenes),
            interactions: s(self.interactions),
            families: s(self.families),
            structures: s(self.structures),
            pathways: s(self.pathways),
            encodes: s(self.encodes),
            uni_encodes: s(self.uni_encodes),
            uni_contains: s(self.uni_contains),
            interacts_p: s(self.interacts_p),
            interacts_d: s(self.interacts_d),
            belongs: s(self.belongs),
            manifest: s(self.manifest),
            members: s(self.members),
            zipf_skew: self.zipf_skew,
            fig16_motifs: ((self.fig16_motifs as f64 * f).round() as usize).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preserves_seed_and_skew() {
        let base = BiozonConfig::default();
        let c = base.scaled(0.5);
        assert_eq!(c.seed, base.seed);
        assert!((c.zipf_skew - base.zipf_skew).abs() < 1e-12);
        assert_eq!(c.proteins, base.proteins / 2);
    }

    #[test]
    fn small_has_floor() {
        let c = BiozonConfig::default().scaled(0.0001);
        assert!(c.proteins >= 4);
        assert!(c.fig16_motifs >= 1);
    }
}
