//! Experiment workloads: the Table-2 selectivity grid, the Biozon domain
//! scorer, and the Appendix-B weak-relationship policy.

use ts_core::{DomainScorer, WeakPolicy};
use ts_storage::Predicate;

use crate::generate::{SchemaIds, KW_MEDIUM, KW_SELECTIVE, KW_UNSELECTIVE};

/// The three predicate selectivities of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selectivity {
    /// ~15% of rows.
    Selective,
    /// ~50% of rows.
    Medium,
    /// ~85% of rows.
    Unselective,
}

impl Selectivity {
    /// All three, in the paper's row/column order.
    pub fn all() -> [Selectivity; 3] {
        [Selectivity::Selective, Selectivity::Medium, Selectivity::Unselective]
    }

    /// Nominal fraction.
    pub fn fraction(self) -> f64 {
        match self {
            Selectivity::Selective => 0.15,
            Selectivity::Medium => 0.50,
            Selectivity::Unselective => 0.85,
        }
    }
}

impl std::fmt::Display for Selectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Selectivity::Selective => "selective",
            Selectivity::Medium => "medium",
            Selectivity::Unselective => "unselective",
        };
        write!(f, "{s}")
    }
}

/// Keyword-containment predicate of the given selectivity on a `desc`
/// column (column 1 of Protein / Interaction / Unigene tables).
pub fn selectivity_predicate(sel: Selectivity) -> Predicate {
    let kw = match sel {
        Selectivity::Selective => KW_SELECTIVE,
        Selectivity::Medium => KW_MEDIUM,
        Selectivity::Unselective => KW_UNSELECTIVE,
    };
    Predicate::contains(1, kw)
}

/// The pseudo-domain-expert configured for the Biozon schema: interaction
/// relationships are the biologically interesting edges (Fig. 16).
pub fn domain_scorer(ids: &SchemaIds) -> DomainScorer {
    DomainScorer {
        interesting_rels: vec![ids.interacts_p, ids.interacts_d],
        ..DomainScorer::default()
    }
}

/// Appendix-B weak-relationship policy for l = 4: bans the walks the
/// paper calls out as connecting "most likely unrelated" entities when
/// repeated — foremost P-D-P-U-D (§6.2.3), plus the PUPU / DUPU family
/// extended to DNA endpoints.
pub fn weak_policy_l4(ids: &SchemaIds) -> WeakPolicy {
    let (p, d, u) = (ids.protein, ids.dna, ids.unigene);
    let (e, ue, uc) = (ids.encodes, ids.uni_encodes, ids.uni_contains);
    let mut w = WeakPolicy::new();
    // P-D-P-U-D: protein → its DNA → another protein of that DNA → that
    // protein's unigene → an EST in the cluster.
    w.ban_walk(&[p, d, p, u, d], &[e, e, ue, uc]);
    // P-U-P-U-D: homologous-protein hop repeated through unigenes.
    w.ban_walk(&[p, u, p, u, d], &[ue, ue, ue, uc]);
    // D-U-P-U-D: two ESTs related only through a shared protein's clusters.
    w.ban_walk(&[d, u, p, u, d], &[uc, ue, ue, uc]);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BiozonConfig;
    use crate::generate::generate;

    #[test]
    fn predicates_select_expected_fractions() {
        let b = generate(&BiozonConfig::default());
        let t = b.db.table_by_name("Protein").unwrap();
        for sel in Selectivity::all() {
            let pred = selectivity_predicate(sel);
            let got = t.scan(&pred).len() as f64 / t.len() as f64;
            assert!(
                (got - sel.fraction()).abs() < 0.06,
                "{sel}: got {got}, expected ~{}",
                sel.fraction()
            );
        }
    }

    #[test]
    fn interaction_predicates_work_too() {
        let b = generate(&BiozonConfig::default());
        let t = b.db.table_by_name("Interaction").unwrap();
        let got = t.scan(&selectivity_predicate(Selectivity::Medium)).len() as f64 / t.len() as f64;
        assert!((got - 0.5).abs() < 0.1);
    }

    #[test]
    fn domain_scorer_uses_interactions() {
        let b = generate(&BiozonConfig::small(1));
        let s = domain_scorer(&b.ids);
        assert!(s.interesting_rels.contains(&b.ids.interacts_p));
    }

    #[test]
    fn weak_policy_has_three_bans() {
        let b = generate(&BiozonConfig::small(1));
        let w = weak_policy_l4(&b.ids);
        assert_eq!(w.len(), 3);
    }
}
