//! Experiment workloads: the Table-2 selectivity grid, the Biozon domain
//! scorer, the Appendix-B weak-relationship policy, and the serving-mix
//! generator the `ts-server` stress harness replays.

use ts_core::{DomainScorer, RankScheme, TopologyQuery, WeakPolicy};
use ts_storage::Predicate;

use crate::generate::{SchemaIds, KW_MEDIUM, KW_SELECTIVE, KW_UNSELECTIVE};

/// The three predicate selectivities of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selectivity {
    /// ~15% of rows.
    Selective,
    /// ~50% of rows.
    Medium,
    /// ~85% of rows.
    Unselective,
}

impl Selectivity {
    /// All three, in the paper's row/column order.
    pub fn all() -> [Selectivity; 3] {
        [Selectivity::Selective, Selectivity::Medium, Selectivity::Unselective]
    }

    /// Nominal fraction.
    pub fn fraction(self) -> f64 {
        match self {
            Selectivity::Selective => 0.15,
            Selectivity::Medium => 0.50,
            Selectivity::Unselective => 0.85,
        }
    }
}

impl std::fmt::Display for Selectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Selectivity::Selective => "selective",
            Selectivity::Medium => "medium",
            Selectivity::Unselective => "unselective",
        };
        write!(f, "{s}")
    }
}

/// Keyword-containment predicate of the given selectivity on a `desc`
/// column (column 1 of Protein / Interaction / Unigene tables).
pub fn selectivity_predicate(sel: Selectivity) -> Predicate {
    let kw = match sel {
        Selectivity::Selective => KW_SELECTIVE,
        Selectivity::Medium => KW_MEDIUM,
        Selectivity::Unselective => KW_UNSELECTIVE,
    };
    Predicate::contains(1, kw)
}

/// SplitMix64 step: the workload stream must be deterministic in the
/// seed and independent of any crate-level RNG state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A constraint for one query endpoint: DNA draws from its `type`
/// column (Example 2.1's `type = 'mRNA'`), everything else from the
/// Table-2 selectivity keywords on its `desc` column, with
/// unconstrained endpoints mixed in.
fn endpoint_constraint(es: u16, ids: &SchemaIds, r: u64) -> Predicate {
    if es == ids.dna {
        match r % 3 {
            0 => Predicate::True,
            1 => Predicate::eq(1, "mRNA"),
            _ => Predicate::eq(1, "EST"),
        }
    } else {
        match r % 4 {
            0 => Predicate::True,
            1 => selectivity_predicate(Selectivity::Selective),
            2 => selectivity_predicate(Selectivity::Medium),
            _ => selectivity_predicate(Selectivity::Unselective),
        }
    }
}

/// A deterministic closed-loop serving mix: `n` queries cycling the
/// paper's six entity-set pairs with constraints, `k` (1..=20), and
/// ranking scheme drawn from a SplitMix64 stream over `seed`.
///
/// This is what the serving stress harness replays: same seed, same
/// queries, in the same order, on every machine.
pub fn query_mix(ids: &SchemaIds, l: usize, n: usize, seed: u64) -> Vec<TopologyQuery> {
    let pairs = [
        (ids.protein, ids.dna),
        (ids.protein, ids.interaction),
        (ids.protein, ids.unigene),
        (ids.dna, ids.interaction),
        (ids.dna, ids.unigene),
        (ids.unigene, ids.interaction),
    ];
    let mut state = seed;
    (0..n)
        .map(|i| {
            let (es1, es2) = pairs[i % pairs.len()];
            let con1 = endpoint_constraint(es1, ids, splitmix(&mut state));
            let con2 = endpoint_constraint(es2, ids, splitmix(&mut state));
            let k = 1 + (splitmix(&mut state) % 20) as usize;
            let scheme = RankScheme::all()[(splitmix(&mut state) % 3) as usize];
            TopologyQuery::new(es1, con1, es2, con2, l).with_k(k).with_scheme(scheme)
        })
        .collect()
}

/// The pseudo-domain-expert configured for the Biozon schema: interaction
/// relationships are the biologically interesting edges (Fig. 16).
pub fn domain_scorer(ids: &SchemaIds) -> DomainScorer {
    DomainScorer {
        interesting_rels: vec![ids.interacts_p, ids.interacts_d],
        ..DomainScorer::default()
    }
}

/// Appendix-B weak-relationship policy for l = 4: bans the walks the
/// paper calls out as connecting "most likely unrelated" entities when
/// repeated — foremost P-D-P-U-D (§6.2.3), plus the PUPU / DUPU family
/// extended to DNA endpoints.
pub fn weak_policy_l4(ids: &SchemaIds) -> WeakPolicy {
    let (p, d, u) = (ids.protein, ids.dna, ids.unigene);
    let (e, ue, uc) = (ids.encodes, ids.uni_encodes, ids.uni_contains);
    let mut w = WeakPolicy::new();
    // P-D-P-U-D: protein → its DNA → another protein of that DNA → that
    // protein's unigene → an EST in the cluster.
    w.ban_walk(&[p, d, p, u, d], &[e, e, ue, uc]);
    // P-U-P-U-D: homologous-protein hop repeated through unigenes.
    w.ban_walk(&[p, u, p, u, d], &[ue, ue, ue, uc]);
    // D-U-P-U-D: two ESTs related only through a shared protein's clusters.
    w.ban_walk(&[d, u, p, u, d], &[uc, ue, ue, uc]);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BiozonConfig;
    use crate::generate::generate;

    #[test]
    fn predicates_select_expected_fractions() {
        let b = generate(&BiozonConfig::default());
        let t = b.db.table_by_name("Protein").unwrap();
        for sel in Selectivity::all() {
            let pred = selectivity_predicate(sel);
            let got = t.scan(&pred).len() as f64 / t.len() as f64;
            assert!(
                (got - sel.fraction()).abs() < 0.06,
                "{sel}: got {got}, expected ~{}",
                sel.fraction()
            );
        }
    }

    #[test]
    fn interaction_predicates_work_too() {
        let b = generate(&BiozonConfig::default());
        let t = b.db.table_by_name("Interaction").unwrap();
        let got = t.scan(&selectivity_predicate(Selectivity::Medium)).len() as f64 / t.len() as f64;
        assert!((got - 0.5).abs() < 0.1);
    }

    #[test]
    fn domain_scorer_uses_interactions() {
        let b = generate(&BiozonConfig::small(1));
        let s = domain_scorer(&b.ids);
        assert!(s.interesting_rels.contains(&b.ids.interacts_p));
    }

    #[test]
    fn query_mix_is_deterministic_and_varied() {
        let b = generate(&BiozonConfig::small(1));
        let a = query_mix(&b.ids, 3, 60, 7);
        let c = query_mix(&b.ids, 3, 60, 7);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!((x.es1, x.es2, x.k, x.scheme, x.l), (y.es1, y.es2, y.k, y.scheme, y.l));
        }
        let pairs: std::collections::BTreeSet<_> = a.iter().map(|q| (q.es1, q.es2)).collect();
        assert_eq!(pairs.len(), 6, "all six paper pairs cycle through");
        let schemes: std::collections::BTreeSet<_> =
            a.iter().map(|q| format!("{}", q.scheme)).collect();
        assert_eq!(schemes.len(), 3, "all three ranking schemes appear");
        let ks: std::collections::BTreeSet<_> = a.iter().map(|q| q.k).collect();
        assert!(ks.len() > 5 && ks.iter().all(|&k| (1..=20).contains(&k)));
        let other_seed = query_mix(&b.ids, 3, 60, 8);
        let same: usize =
            a.iter().zip(&other_seed).filter(|(x, y)| (x.k, x.scheme) == (y.k, y.scheme)).count();
        assert!(same < 30, "different seeds should draw different streams");
    }

    #[test]
    fn weak_policy_has_three_bans() {
        let b = generate(&BiozonConfig::small(1));
        let w = weak_policy_l4(&b.ids);
        assert_eq!(w.len(), 3);
    }
}
