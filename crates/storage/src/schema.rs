//! Table schemas.

use crate::value::ValueType;

/// Identifier of a table within a [`crate::Database`].
pub type TableId = usize;
/// Identifier of a column within a table.
pub type ColumnId = usize;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef { name: name.into(), ty }
    }
}

/// Schema of one table: a name, ordered columns, and an optional
/// single-column primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (unique within a database).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<ColumnId>,
}

impl TableSchema {
    /// Build a schema. `primary_key` refers to a column index.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Option<ColumnId>,
    ) -> Self {
        let schema = TableSchema { name: name.into(), columns, primary_key };
        if let Some(pk) = schema.primary_key {
            assert!(pk < schema.columns.len(), "primary key column out of range");
        }
        schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a column name to its index.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column type accessor.
    pub fn column_type(&self, id: ColumnId) -> ValueType {
        self.columns[id].ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protein_schema() -> TableSchema {
        TableSchema::new(
            "Protein",
            vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("desc", ValueType::Str)],
            Some(0),
        )
    }

    #[test]
    fn column_lookup_by_name() {
        let s = protein_schema();
        assert_eq!(s.column_id("desc"), Some(1));
        assert_eq!(s.column_id("nope"), None);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_type(0), ValueType::Int);
    }

    #[test]
    #[should_panic(expected = "primary key column out of range")]
    fn pk_out_of_range_panics() {
        TableSchema::new("T", vec![ColumnDef::new("a", ValueType::Int)], Some(3));
    }
}
