//! Columnar table storage: typed column buffers + borrowing row views.
//!
//! The previous layout kept one heap-allocated `Row(Vec<Value>)` per
//! table row, which made AllTops materialization in the offline catalog
//! build allocate once per row and made every scan chase a pointer per
//! tuple. [`ColumnStore`] flips the layout column-major, the shape the
//! paper's Table 1 space accounting assumes and the one the hot paths
//! want:
//!
//! * an **Int column** is one flat `Vec<i64>`;
//! * a **Str column** is one flat `Vec<u32>` of ids into a per-table
//!   [`Arc<str>`] pool, so repeated strings (the generator's keyword
//!   vocabulary, DNA types, …) are stored once;
//! * every column carries a **null bitmap** (`Value::Null` cells set a
//!   bit and leave a zero sentinel in the buffer).
//!
//! Inserts, scans, and clones therefore do **zero per-row heap
//! allocations** — appends are amortized into the column buffers, and
//! cloning a table memcpys a handful of flat vectors. Reads go through
//! [`RowRef`], a `Copy` view of one row that borrows the store; owned
//! [`Row`]s survive only at insertion boundaries and as operator output
//! tuples in `ts-exec`.

use std::sync::Arc;

use crate::hash::FastMap;
use crate::row::{Row, RowId};
use crate::value::{Value, ValueType};

/// Bit-per-row null mask of one column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct NullMask {
    words: Vec<u64>,
}

impl NullMask {
    /// Record row `i`'s nullness; rows must be pushed in order.
    fn push(&mut self, i: usize, null: bool) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[w] |= 1 << (i % 64);
        }
    }

    fn get(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    fn reserve(&mut self, rows: usize) {
        self.words.reserve(rows / 64 + 1);
    }

    fn heap_size(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Per-table string pool: each distinct string stored once, referenced
/// by dense `u32` ids from the Str columns.
#[derive(Debug, Clone, Default)]
struct StrPool {
    strings: Vec<Arc<str>>,
    index: FastMap<Arc<str>, u32>,
}

impl StrPool {
    /// Id of `s`, interning on first sight (the only allocation a
    /// repeated string ever costs is this one-time map entry).
    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.index.get(s.as_ref() as &str) {
            return id;
        }
        let id = crate::cast::to_u32(self.strings.len());
        self.strings.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), id);
        id
    }

    fn get(&self, id: u32) -> &Arc<str> {
        &self.strings[id as usize]
    }

    fn heap_size(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum::<usize>()
            + self.strings.len() * std::mem::size_of::<Arc<str>>()
    }
}

/// One typed column: a flat value buffer plus a null bitmap. Null cells
/// hold a zero sentinel in the buffer and a set bit in the mask.
#[derive(Debug, Clone)]
enum Column {
    Int { vals: Vec<i64>, nulls: NullMask },
    Str { ids: Vec<u32>, nulls: NullMask },
}

/// A borrowed cell; the columnar counterpart of `&Value`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cell<'a> {
    Null,
    Int(i64),
    Str(&'a str),
}

/// Column-major row storage for one table.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    len: usize,
    columns: Vec<Column>,
    pool: StrPool,
}

impl ColumnStore {
    /// Empty store with one column per type.
    pub fn new(types: impl IntoIterator<Item = ValueType>) -> Self {
        let columns = types
            .into_iter()
            .map(|ty| match ty {
                ValueType::Int => Column::Int { vals: Vec::new(), nulls: NullMask::default() },
                ValueType::Str => Column::Str { ids: Vec::new(), nulls: NullMask::default() },
            })
            .collect();
        ColumnStore { len: 0, columns, pool: StrPool::default() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of distinct strings interned in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.strings.len()
    }

    /// Pre-size every column buffer for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        for c in &mut self.columns {
            match c {
                Column::Int { vals, nulls } => {
                    vals.reserve(n);
                    nulls.reserve(n);
                }
                Column::Str { ids, nulls } => {
                    ids.reserve(n);
                    nulls.reserve(n);
                }
            }
        }
    }

    /// Append one row. The caller (the table) has already type-checked
    /// the values against the schema; a mismatch here is a bug and
    /// panics.
    pub fn push_row(&mut self, row: &Row) {
        assert_eq!(row.arity(), self.columns.len(), "row arity != column count");
        let i = self.len;
        for (c, v) in row.values().enumerate() {
            match (&mut self.columns[c], v) {
                (Column::Int { vals, nulls }, Value::Int(x)) => {
                    vals.push(*x);
                    nulls.push(i, false);
                }
                (Column::Int { vals, nulls }, Value::Null) => {
                    vals.push(0);
                    nulls.push(i, true);
                }
                (Column::Str { ids, nulls }, Value::Str(s)) => {
                    let id = self.pool.intern(s);
                    ids.push(id);
                    nulls.push(i, false);
                }
                (Column::Str { ids, nulls }, Value::Null) => {
                    ids.push(0);
                    nulls.push(i, true);
                }
                // lint: allow(unwrap-in-lib): Table::insert validated the row
                // against the schema; a mismatch here is memory corruption, not input
                (col, v) => panic!("column {c} ({col:?}) cannot hold {v:?}"),
            }
        }
        self.len += 1;
    }

    /// Append one all-integer row straight into the Int column buffers —
    /// the zero-allocation fast lane catalog materialization uses.
    /// Panics if any column is not Int (the table checks the schema).
    pub fn push_ints(&mut self, vals: &[i64]) {
        assert_eq!(vals.len(), self.columns.len(), "row arity != column count");
        let i = self.len;
        for (c, &v) in vals.iter().enumerate() {
            match &mut self.columns[c] {
                Column::Int { vals, nulls } => {
                    vals.push(v);
                    nulls.push(i, false);
                }
                // lint: allow(unwrap-in-lib): documented contract — the table checks
                // the schema is all-Int before taking the fast lane
                other => panic!("push_ints into non-Int column {c} ({other:?})"),
            }
        }
        self.len += 1;
    }

    fn cell(&self, col: usize, row: RowId) -> Cell<'_> {
        let i = row as usize;
        match &self.columns[col] {
            Column::Int { vals, nulls } => {
                if nulls.get(i) {
                    Cell::Null
                } else {
                    Cell::Int(vals[i])
                }
            }
            Column::Str { ids, nulls } => {
                if nulls.get(i) {
                    Cell::Null
                } else {
                    Cell::Str(self.pool.get(ids[i]))
                }
            }
        }
    }

    /// Owned value of one cell (an `Arc` refcount bump for strings, no
    /// heap allocation).
    pub fn value(&self, col: usize, row: RowId) -> Value {
        let i = row as usize;
        match &self.columns[col] {
            Column::Int { vals, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            Column::Str { ids, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Str(Arc::clone(self.pool.get(ids[i])))
                }
            }
        }
    }

    /// The raw `i64` buffer of an Int column with no nulls — the fast
    /// lane bulk index builds and column sorts read. `None` for Str
    /// columns or Int columns containing a null.
    pub fn ints(&self, col: usize) -> Option<&[i64]> {
        match &self.columns[col] {
            Column::Int { vals, nulls } if !nulls.any() => Some(vals),
            _ => None,
        }
    }

    /// The raw pool-id buffer of a Str column with no nulls — the Str
    /// counterpart of [`ColumnStore::ints`], read by the batch execution
    /// engine so string predicates run against borrowed pool entries
    /// instead of materializing an `Arc` bump per row. `None` for Int
    /// columns or Str columns containing a null.
    pub fn str_ids(&self, col: usize) -> Option<&[u32]> {
        match &self.columns[col] {
            Column::Str { ids, nulls } if !nulls.any() => Some(ids),
            _ => None,
        }
    }

    /// The pooled string behind a pool id from [`ColumnStore::str_ids`].
    pub fn pool_str(&self, id: u32) -> &Arc<str> {
        self.pool.get(id)
    }

    /// Compare two cells of one column by [`Value`]'s total order
    /// (NULL < Int < Str) without materializing values.
    pub fn cmp_cells(&self, col: usize, a: RowId, b: RowId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.cell(col, a), self.cell(col, b)) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Null, _) => Ordering::Less,
            (_, Cell::Null) => Ordering::Greater,
            (Cell::Int(x), Cell::Int(y)) => x.cmp(&y),
            (Cell::Int(_), Cell::Str(_)) => Ordering::Less,
            (Cell::Str(_), Cell::Int(_)) => Ordering::Greater,
            (Cell::Str(x), Cell::Str(y)) => x.cmp(y),
        }
    }

    /// View of one row.
    pub fn row(&self, id: RowId) -> RowRef<'_> {
        debug_assert!((id as usize) < self.len, "row {id} out of range");
        RowRef { store: self, id }
    }

    /// Iterate all rows as borrowing views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        (0..self.len as RowId).map(move |id| RowRef { store: self, id })
    }

    /// Reorder rows so that new row `i` is old row `perm[i]`. One fresh
    /// buffer per column — O(columns) allocations, not O(rows).
    pub fn apply_permutation(&mut self, perm: &[RowId]) {
        assert_eq!(perm.len(), self.len, "permutation length != row count");
        for c in &mut self.columns {
            match c {
                Column::Int { vals, nulls } => {
                    let mut new_vals = Vec::with_capacity(vals.len());
                    let mut new_nulls = NullMask::default();
                    new_nulls.reserve(perm.len());
                    for (i, &p) in perm.iter().enumerate() {
                        new_vals.push(vals[p as usize]);
                        new_nulls.push(i, nulls.get(p as usize));
                    }
                    *vals = new_vals;
                    *nulls = new_nulls;
                }
                Column::Str { ids, nulls } => {
                    let mut new_ids = Vec::with_capacity(ids.len());
                    let mut new_nulls = NullMask::default();
                    new_nulls.reserve(perm.len());
                    for (i, &p) in perm.iter().enumerate() {
                        new_ids.push(ids[p as usize]);
                        new_nulls.push(i, nulls.get(p as usize));
                    }
                    *ids = new_ids;
                    *nulls = new_nulls;
                }
            }
        }
    }

    /// Occurrence counts of one column's non-null values, computed
    /// columnar: integers are counted by sorting a copy of the raw
    /// buffer and run-length-scanning it (no hashing at all), strings
    /// are counted per pool id with one dense array pass. This is what
    /// [`crate::stats::TableStats::collect`] runs on instead of hashing
    /// a `Value` per cell.
    pub fn value_counts(&self, col: usize) -> Vec<(Value, u64)> {
        match &self.columns[col] {
            Column::Int { vals, nulls } => {
                let mut sorted: Vec<i64> = if nulls.any() {
                    vals.iter()
                        .enumerate()
                        .filter(|&(i, _)| !nulls.get(i))
                        .map(|(_, &v)| v)
                        .collect()
                } else {
                    vals.clone()
                };
                sorted.sort_unstable();
                let mut out: Vec<(Value, u64)> = Vec::new();
                let mut i = 0;
                while i < sorted.len() {
                    let mut j = i + 1;
                    while j < sorted.len() && sorted[j] == sorted[i] {
                        j += 1;
                    }
                    out.push((Value::Int(sorted[i]), (j - i) as u64));
                    i = j;
                }
                out
            }
            Column::Str { .. } => self
                .str_counts(col)
                .into_iter()
                .map(|(s, c)| (Value::Str(Arc::clone(s)), c))
                .collect(),
        }
    }

    /// Per-distinct-string row counts of a Str column (empty for Int
    /// columns). Token statistics derived from this touch each distinct
    /// string once, however many rows share it.
    pub fn str_counts(&self, col: usize) -> Vec<(&Arc<str>, u64)> {
        let Column::Str { ids, nulls } = &self.columns[col] else {
            return Vec::new();
        };
        let mut counts = vec![0u64; self.pool.strings.len()];
        for (i, &id) in ids.iter().enumerate() {
            if !nulls.get(i) {
                counts[id as usize] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(id, &c)| (self.pool.get(crate::cast::to_u32(id)), c))
            .collect()
    }

    /// Heap footprint of the column buffers and the string pool, in
    /// bytes: 8 per Int cell, 4 per Str cell, the null-mask words, and
    /// each distinct pooled string once. Strictly monotone in row count.
    pub fn heap_size(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Int { vals, nulls } => {
                    vals.len() * std::mem::size_of::<i64>() + nulls.heap_size()
                }
                Column::Str { ids, nulls } => {
                    ids.len() * std::mem::size_of::<u32>() + nulls.heap_size()
                }
            })
            .sum();
        cols + self.pool.heap_size()
    }
}

/// A cheap, `Copy`, borrowing view of one row of a [`ColumnStore`] —
/// what the scan/join/sort hot paths read instead of owned [`Row`]s.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a ColumnStore,
    id: RowId,
}

impl<'a> RowRef<'a> {
    /// Position of this row in its table.
    pub fn id(&self) -> RowId {
        self.id
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.store.arity()
    }

    /// Owned value of column `col` (no heap allocation; strings bump the
    /// pool `Arc`).
    pub fn get(&self, col: usize) -> Value {
        self.store.value(col, self.id)
    }

    /// Integer accessor; panics with a clear message on type confusion.
    pub fn as_int(&self, col: usize) -> i64 {
        match self.store.cell(col, self.id) {
            Cell::Int(v) => v,
            // lint: allow(unwrap-in-lib): typed-accessor contract; try_int is the
            // non-panicking sibling for schema-unaware callers
            other => panic!("expected Int cell at column {col}, found {other:?}"),
        }
    }

    /// Non-panicking integer accessor.
    pub fn try_int(&self, col: usize) -> Option<i64> {
        match self.store.cell(col, self.id) {
            Cell::Int(v) => Some(v),
            _ => None,
        }
    }

    /// String accessor, borrowing the table's pool; panics on type
    /// confusion.
    pub fn as_str(&self, col: usize) -> &'a str {
        match self.store.cell(col, self.id) {
            Cell::Str(s) => s,
            // lint: allow(unwrap-in-lib): typed-accessor contract; try_str is the
            // non-panicking sibling for schema-unaware callers
            other => panic!("expected Str cell at column {col}, found {other:?}"),
        }
    }

    /// Non-panicking string accessor.
    pub fn try_str(&self, col: usize) -> Option<&'a str> {
        match self.store.cell(col, self.id) {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if column `col` is NULL in this row.
    pub fn is_null(&self, col: usize) -> bool {
        matches!(self.store.cell(col, self.id), Cell::Null)
    }

    /// Cell-for-cell equality with an owned value, allocation-free.
    pub fn value_eq(&self, col: usize, v: &Value) -> bool {
        match (self.store.cell(col, self.id), v) {
            (Cell::Null, Value::Null) => true,
            (Cell::Int(a), Value::Int(b)) => a == *b,
            (Cell::Str(a), Value::Str(b)) => a == &**b,
            _ => false,
        }
    }

    /// Materialize an owned row (one allocation — the operator-output
    /// boundary).
    pub fn to_row(&self) -> Row {
        Row::new((0..self.arity()).map(|c| self.get(c)).collect())
    }

    /// Append all cells to an owned value buffer (join output tuples).
    pub fn push_values(&self, out: &mut Vec<Value>) {
        for c in 0..self.arity() {
            out.push(self.get(c));
        }
    }

    /// Project into a reusable scratch row, clearing it first — the
    /// allocation-free sibling of [`Row::project`].
    pub fn project_into(&self, cols: &[usize], out: &mut Row) {
        out.0.clear();
        out.0.extend(cols.iter().map(|&c| self.get(c)));
    }
}

impl PartialEq for RowRef<'_> {
    /// Cell-for-cell equality (views into different stores compare
    /// logically, not by identity).
    fn eq(&self, other: &Self) -> bool {
        self.arity() == other.arity()
            && (0..self.arity())
                .all(|c| self.store.cell(c, self.id) == other.store.cell(c, other.id))
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<Row> for RowRef<'_> {
    fn eq(&self, other: &Row) -> bool {
        self.arity() == other.arity() && (0..self.arity()).all(|c| self.value_eq(c, other.get(c)))
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = f.debug_tuple("RowRef");
        for c in 0..self.arity() {
            t.field(&self.get(c));
        }
        t.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn store() -> ColumnStore {
        let mut s = ColumnStore::new([ValueType::Int, ValueType::Str]);
        s.push_row(&row![1i64, "mRNA"]);
        s.push_row(&row![2i64, "EST"]);
        s.push_row(&row![3i64, "mRNA"]);
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.row(0).as_int(0), 1);
        assert_eq!(s.row(2).as_str(1), "mRNA");
        assert_eq!(s.row(1).get(1), Value::str("EST"));
    }

    #[test]
    fn strings_are_pooled() {
        let s = store();
        assert_eq!(s.pool_size(), 2, "mRNA interned once");
    }

    #[test]
    fn nulls_round_trip() {
        let mut s = ColumnStore::new([ValueType::Int, ValueType::Str]);
        s.push_row(&Row::new(vec![Value::Null, Value::Null]));
        s.push_row(&row![7i64, "x"]);
        assert!(s.row(0).is_null(0));
        assert!(s.row(0).is_null(1));
        assert_eq!(s.row(0).try_int(0), None);
        assert_eq!(s.row(0).try_str(1), None);
        assert_eq!(s.row(0).get(0), Value::Null);
        assert!(!s.row(1).is_null(0));
        assert_eq!(s.row(1).try_int(0), Some(7));
    }

    #[test]
    fn ints_fast_lane_requires_no_nulls() {
        let mut s = ColumnStore::new([ValueType::Int]);
        s.push_ints(&[5]);
        s.push_ints(&[6]);
        assert_eq!(s.ints(0), Some(&[5i64, 6][..]));
        s.push_row(&Row::new(vec![Value::Null]));
        assert_eq!(s.ints(0), None, "a null disables the raw buffer");
        let t = store();
        assert_eq!(t.ints(1), None, "str column has no int buffer");
    }

    #[test]
    fn row_ref_equality_and_to_row() {
        let a = store();
        let b = store();
        assert_eq!(a.row(0), b.row(0));
        assert_ne!(a.row(0), b.row(1));
        assert_eq!(a.row(1).to_row(), row![2i64, "EST"]);
        assert!(a.row(1) == row![2i64, "EST"]);
    }

    #[test]
    fn permutation_reorders_all_columns() {
        let mut s = store();
        s.apply_permutation(&[2, 0, 1]);
        assert_eq!(s.row(0).as_int(0), 3);
        assert_eq!(s.row(0).as_str(1), "mRNA");
        assert_eq!(s.row(2).as_str(1), "EST");
    }

    #[test]
    fn heap_size_strictly_monotone() {
        let mut s = ColumnStore::new([ValueType::Int, ValueType::Str]);
        let mut prev = s.heap_size();
        for i in 0..130 {
            // Repeat one string so the pool stops growing; size must
            // still strictly increase via the id buffer.
            s.push_row(&row![i as i64, "dup"]);
            let now = s.heap_size();
            assert!(now > prev, "row {i}: {now} <= {prev}");
            prev = now;
        }
    }

    #[test]
    fn cmp_cells_matches_value_order() {
        let mut s = ColumnStore::new([ValueType::Str]);
        s.push_row(&Row::new(vec![Value::Null]));
        s.push_row(&row!["a"]);
        s.push_row(&row!["b"]);
        use std::cmp::Ordering::*;
        assert_eq!(s.cmp_cells(0, 0, 1), Less);
        assert_eq!(s.cmp_cells(0, 2, 1), Greater);
        assert_eq!(s.cmp_cells(0, 1, 1), Equal);
    }

    #[test]
    fn project_into_reuses_scratch() {
        let s = store();
        let mut scratch = Row::new(Vec::new());
        s.row(2).project_into(&[1, 0], &mut scratch);
        assert_eq!(scratch, row!["mRNA", 3i64]);
        s.row(1).project_into(&[0], &mut scratch);
        assert_eq!(scratch, row![2i64]);
    }
}
