//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the relational substrate.
///
/// The engine is strict: schema violations are reported, never papered
/// over, because the topology catalog build (ts-core) depends on the base
/// data being exactly what the generator declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table name was not found in the database catalog.
    NoSuchTable(String),
    /// A column name was not found in a table schema.
    NoSuchColumn { table: String, column: String },
    /// A row's arity or value types do not match the table schema.
    SchemaMismatch { table: String, detail: String },
    /// A duplicate primary key was inserted.
    DuplicateKey { table: String, key: String },
    /// An entity or relationship set definition is inconsistent.
    BadDefinition(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no such column {column} in table {table}")
            }
            StorageError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch in table {table}: {detail}")
            }
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table {table}")
            }
            StorageError::BadDefinition(d) => write!(f, "bad definition: {d}"),
        }
    }
}

impl std::error::Error for StorageError {}
