//! Hash indexes over table columns.
//!
//! The paper's experimental setup builds "indices on all the primary keys
//! and queried attributes" (§6.1). We provide an equality hash index; the
//! optimizer's `I_i` parameter (cost of an index probe, §5.4.3) is the cost
//! of one [`HashIndex::probe`].

use crate::hash::{FastBuildHasher, FastMap};
use crate::row::RowId;
use crate::value::Value;

/// An equality hash index mapping a column value to the row ids holding it.
///
/// Non-unique by design; a unique (primary key) index is simply one where
/// every posting list has length 1, enforced by [`crate::Table`] on insert.
/// Probes hash with the fast non-Sip hasher ([`crate::hash`]); probe
/// results are position-independent, so iteration order never leaks.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: FastMap<Value, Vec<RowId>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty index pre-sized for `distinct` keys — bulk builds size the
    /// map once instead of rehash-growing run by run.
    pub fn with_capacity(distinct: usize) -> Self {
        HashIndex { map: FastMap::with_capacity_and_hasher(distinct, FastBuildHasher::default()) }
    }

    /// Insert a posting.
    pub fn insert(&mut self, key: Value, row: RowId) {
        self.map.entry(key).or_default().push(row);
    }

    /// Bulk-insert one fully formed posting run: every row id in `ids`
    /// (pre-sorted ascending) carries `key`. The posting vector is
    /// allocated at its exact final length — no per-row `entry()`
    /// churn. Bulk index builds detect runs on the columnar buffers
    /// (cheap cell comparisons) and materialize exactly one owned key
    /// per distinct value for this call. The caller guarantees each
    /// key is handed over at most once per build.
    pub fn insert_run(&mut self, key: Value, ids: &[RowId]) {
        debug_assert!(!ids.is_empty(), "a run has at least one posting");
        let prev = self.map.insert(key, ids.to_vec());
        debug_assert!(prev.is_none(), "insert_run called twice for one key");
    }

    /// [`HashIndex::insert_run`]'s whole-build sibling specialized to integer keys
    /// already extracted into a flat `(key, id)` run: the sort that
    /// produced the run never touched a `Row`, so all-Int columns (the
    /// catalog's E1/E2/TID) index without any per-comparison pointer
    /// chasing.
    pub fn from_sorted_int_postings(sorted: &[(i64, RowId)]) -> Self {
        let distinct = sorted.windows(2).filter(|w| w[0].0 != w[1].0).count()
            + usize::from(!sorted.is_empty());
        let mut map: FastMap<Value, Vec<RowId>> =
            FastMap::with_capacity_and_hasher(distinct, FastBuildHasher::default());
        let mut i = 0;
        while i < sorted.len() {
            let key = sorted[i].0;
            let mut j = i + 1;
            while j < sorted.len() && sorted[j].0 == key {
                j += 1;
            }
            map.insert(Value::Int(key), sorted[i..j].iter().map(|&(_, id)| id).collect());
            i = j;
        }
        HashIndex { map }
    }

    /// Rows whose indexed column equals `key`.
    pub fn probe(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings.
    pub fn postings(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes (space accounting).
    pub fn heap_size(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| {
                std::mem::size_of::<Value>()
                    + k.heap_size()
                    + v.len() * std::mem::size_of::<RowId>()
            })
            .sum()
    }

    /// Iterate `(key, postings)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &[RowId])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_hits_and_misses() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(7), 0);
        idx.insert(Value::Int(7), 3);
        idx.insert(Value::str("mRNA"), 1);
        assert_eq!(idx.probe(&Value::Int(7)), &[0, 3]);
        assert_eq!(idx.probe(&Value::str("mRNA")), &[1]);
        assert!(idx.probe(&Value::Int(8)).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.postings(), 3);
    }
}
