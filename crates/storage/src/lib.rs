//! # ts-storage
//!
//! The in-memory relational substrate underneath topology search.
//!
//! The paper ("Topology Search over Biological Databases") runs its methods
//! on IBM DB2 / SQL Server; this crate is our from-scratch replacement: a
//! small but complete relational engine with
//!
//! * typed [`Value`]s and [`Row`]s,
//! * columnar [`Table`] storage ([`ColumnStore`]: one flat buffer per
//!   typed column, a per-table string pool, null bitmaps) read through
//!   borrowing [`RowRef`] views — zero per-row heap allocations on
//!   insert, scan, and clone,
//! * [`Table`]s with primary-key and secondary hash [`index`]es,
//! * composable [`Predicate`]s, including the paper's keyword-containment
//!   predicate (`desc.ct('enzyme')`) and structured equality predicates,
//! * catalog [`stats`] (cardinalities, distinct counts, keyword document
//!   frequencies) used by the System-R style optimizer in `ts-optimizer`,
//! * a [`Database`] that also carries the Entity–Relationship schema
//!   (entity sets and binary relationship sets, §2.1 of the paper) from
//!   which `ts-graph` builds the data graph,
//! * the vendored fast non-Sip [`hash`]er ([`FastMap`]/[`FastSet`])
//!   behind every hot-path map in the workspace.
//!
//! Everything is deliberately simple, deterministic and allocation-aware;
//! the point is a faithful, inspectable substrate, not a general DBMS.

#![forbid(unsafe_code)]

pub mod cast;
pub mod column;
pub mod db;
pub mod error;
pub mod faults;
pub mod hash;
pub mod index;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::{ColumnStore, RowRef};
pub use db::{Database, EntitySetDef, EntitySetId, RelSetDef, RelSetId};
pub use error::StorageError;
pub use hash::{fast_hash_u16s, FastBuildHasher, FastHasher, FastMap, FastSet};
pub use index::HashIndex;
pub use predicate::Predicate;
pub use row::{Row, RowId};
pub use schema::{ColumnDef, ColumnId, TableId, TableSchema};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use value::{Value, ValueType};
