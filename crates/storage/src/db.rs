//! The database: a catalog of tables plus the Entity–Relationship schema.
//!
//! §2.1 of the paper models the database as entity sets and binary
//! relationship sets, "logically ... a large (undirected) data graph".
//! [`Database`] keeps both views: the relational tables (Fig. 3) and the
//! ER-level declarations (Fig. 1) that `ts-graph` turns into the schema
//! graph and data graph (Fig. 6).

use crate::error::StorageError;
use crate::hash::FastMap;
use crate::schema::{ColumnId, TableId, TableSchema};
use crate::table::Table;

/// Identifier of an entity set (e.g. Protein, DNA) within the ER schema.
pub type EntitySetId = usize;
/// Identifier of a relationship set (e.g. encodes) within the ER schema.
pub type RelSetId = usize;

/// Declaration of an entity set: a table whose primary key identifies the
/// entities of this type.
#[derive(Debug, Clone)]
pub struct EntitySetDef {
    /// Entity set name ("Protein").
    pub name: String,
    /// Backing table.
    pub table: TableId,
}

/// Declaration of a binary relationship set between two entity sets,
/// backed by a two-foreign-key table. Relationships are undirected
/// (the paper: "each relationship can be reversed"); `from`/`to` only fix
/// which column refers to which entity set.
#[derive(Debug, Clone)]
pub struct RelSetDef {
    /// Relationship set name ("encodes").
    pub name: String,
    /// Backing table.
    pub table: TableId,
    /// Entity set referenced by `from_col`.
    pub from: EntitySetId,
    /// Entity set referenced by `to_col`.
    pub to: EntitySetId,
    /// Column of `table` holding the `from` entity id.
    pub from_col: ColumnId,
    /// Column of `table` holding the `to` entity id.
    pub to_col: ColumnId,
}

/// An in-memory database: named tables plus the ER schema overlay.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    names: FastMap<String, TableId>,
    entity_sets: Vec<EntitySetDef>,
    rel_sets: Vec<RelSetDef>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; returns its id. Fails on duplicate names.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId, StorageError> {
        if self.names.contains_key(&schema.name) {
            return Err(StorageError::BadDefinition(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let id = self.tables.len();
        self.names.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    /// Mutable table by id.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId, StorageError> {
        self.names.get(name).copied().ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table, StorageError> {
        Ok(self.table(self.table_id(name)?))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Declare an entity set backed by `table` (which must have a PK).
    pub fn declare_entity_set(
        &mut self,
        name: impl Into<String>,
        table: TableId,
    ) -> Result<EntitySetId, StorageError> {
        let name = name.into();
        if self.tables[table].schema().primary_key.is_none() {
            return Err(StorageError::BadDefinition(format!(
                "entity set {name}: backing table has no primary key"
            )));
        }
        if self.entity_sets.iter().any(|e| e.name == name) {
            return Err(StorageError::BadDefinition(format!("entity set {name} already exists")));
        }
        let id = self.entity_sets.len();
        self.entity_sets.push(EntitySetDef { name, table });
        Ok(id)
    }

    /// Declare a relationship set.
    pub fn declare_rel_set(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        from: EntitySetId,
        from_col: ColumnId,
        to: EntitySetId,
        to_col: ColumnId,
    ) -> Result<RelSetId, StorageError> {
        let name = name.into();
        let arity = self.tables[table].schema().arity();
        if from_col >= arity || to_col >= arity {
            return Err(StorageError::BadDefinition(format!(
                "relationship set {name}: fk column out of range"
            )));
        }
        if from >= self.entity_sets.len() || to >= self.entity_sets.len() {
            return Err(StorageError::BadDefinition(format!(
                "relationship set {name}: unknown entity set"
            )));
        }
        let id = self.rel_sets.len();
        self.rel_sets.push(RelSetDef { name, table, from, to, from_col, to_col });
        Ok(id)
    }

    /// All entity set declarations.
    pub fn entity_sets(&self) -> &[EntitySetDef] {
        &self.entity_sets
    }

    /// All relationship set declarations.
    pub fn rel_sets(&self) -> &[RelSetDef] {
        &self.rel_sets
    }

    /// Entity set by name.
    pub fn entity_set_id(&self, name: &str) -> Option<EntitySetId> {
        self.entity_sets.iter().position(|e| e.name == name)
    }

    /// Entity set definition.
    pub fn entity_set(&self, id: EntitySetId) -> &EntitySetDef {
        &self.entity_sets[id]
    }

    /// Relationship set definition.
    pub fn rel_set(&self, id: RelSetId) -> &RelSetDef {
        &self.rel_sets[id]
    }

    /// Run `analyze` on every table.
    pub fn analyze_all(&mut self) {
        for t in &mut self.tables {
            t.analyze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let protein = db
            .create_table(TableSchema::new(
                "Protein",
                vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("desc", ValueType::Str)],
                Some(0),
            ))
            .unwrap();
        let dna = db
            .create_table(TableSchema::new(
                "DNA",
                vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("type", ValueType::Str)],
                Some(0),
            ))
            .unwrap();
        let encodes = db
            .create_table(TableSchema::new(
                "Encodes",
                vec![ColumnDef::new("PID", ValueType::Int), ColumnDef::new("DID", ValueType::Int)],
                None,
            ))
            .unwrap();
        let p = db.declare_entity_set("Protein", protein).unwrap();
        let d = db.declare_entity_set("DNA", dna).unwrap();
        db.declare_rel_set("encodes", encodes, p, 0, d, 1).unwrap();
        db.table_mut(protein).insert(row![32i64, "enzyme UBCi"]).unwrap();
        db.table_mut(dna).insert(row![214i64, "mRNA"]).unwrap();
        db.table_mut(encodes).insert(row![32i64, 214i64]).unwrap();
        db
    }

    #[test]
    fn catalog_lookup() {
        let db = tiny_db();
        assert_eq!(db.table_count(), 3);
        assert_eq!(db.table_by_name("Protein").unwrap().len(), 1);
        assert!(db.table_id("Nope").is_err());
        assert_eq!(db.entity_set_id("DNA"), Some(1));
        assert_eq!(db.rel_sets().len(), 1);
        let r = db.rel_set(0);
        assert_eq!(r.name, "encodes");
        assert_eq!((r.from, r.to), (0, 1));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let err = db
            .create_table(TableSchema::new(
                "Protein",
                vec![ColumnDef::new("x", ValueType::Int)],
                None,
            ))
            .unwrap_err();
        assert!(matches!(err, StorageError::BadDefinition(_)));
    }

    #[test]
    fn entity_set_requires_pk() {
        let mut db = Database::new();
        let t = db
            .create_table(TableSchema::new("NoPk", vec![ColumnDef::new("a", ValueType::Int)], None))
            .unwrap();
        assert!(db.declare_entity_set("NoPk", t).is_err());
    }

    #[test]
    fn rel_set_validates_columns_and_sets() {
        let mut db = tiny_db();
        let enc = db.table_id("Encodes").unwrap();
        assert!(db.declare_rel_set("bad", enc, 0, 9, 1, 1).is_err());
        assert!(db.declare_rel_set("bad", enc, 7, 0, 1, 1).is_err());
    }

    #[test]
    fn analyze_all_populates_stats() {
        let mut db = tiny_db();
        db.analyze_all();
        assert!(db.table_by_name("Protein").unwrap().stats().is_some());
    }
}
