//! Typed values stored in table cells.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The type of a column / value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (entity IDs, foreign keys, scores).
    Int,
    /// Interned UTF-8 string (definitions, types, keywords).
    Str,
}

/// A single cell value.
///
/// Strings are `Arc<str>` so that rows can be cloned cheaply while the
/// generator shares keyword payloads across millions of rows.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// String value.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// Integer accessor; panics with a clear message on type confusion.
    ///
    /// Used on foreign-key columns where the schema guarantees `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            // lint: allow(unwrap-in-lib): typed-accessor contract; try_int is the
            // non-panicking sibling for schema-unaware callers
            other => panic!("expected Int value, found {other:?}"),
        }
    }

    /// Non-panicking integer accessor.
    pub fn try_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor; panics on type confusion.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            // lint: allow(unwrap-in-lib): typed-accessor contract; try_str is the
            // non-panicking sibling for schema-unaware callers
            other => panic!("expected Str value, found {other:?}"),
        }
    }

    /// Non-panicking string accessor.
    pub fn try_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes, used by the space
    /// accounting behind Table 1 of the paper.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) => 0,
            Value::Str(s) => s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Int < Str; within a type, natural order.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_hash_agree() {
        let a = Value::str("enzyme");
        let b = Value::str("enzyme");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(Value::Int(1), Value::str("1"));
    }

    #[test]
    fn total_order_is_null_int_str() {
        let mut vals = vec![Value::str("a"), Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals, vec![Value::Null, Value::Int(-1), Value::Int(3), Value::str("a")]);
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(42).as_int(), 42);
        assert_eq!(Value::str("mRNA").as_str(), "mRNA");
        assert_eq!(Value::Null.try_int(), None);
        assert_eq!(Value::Int(1).try_str(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_str() {
        Value::str("x").as_int();
    }

    #[test]
    fn heap_size_counts_string_payload() {
        assert_eq!(Value::Int(7).heap_size(), 0);
        assert_eq!(Value::str("abcd").heap_size(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("uni").to_string(), "uni");
    }
}
