//! A vendored FxHash-style hasher for the hot-path maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3: a keyed PRF designed
//! to resist hash-flooding from untrusted input. Every key in this
//! system is trusted internal data — interned `PathSig`/`CanonicalCode`
//! vectors, entity ids, pooled strings — and the offline build probes
//! these maps millions of times, so the DoS insurance costs real wall
//! clock on long keys for nothing. [`FastHasher`] is the standard
//! production answer (the word-at-a-time multiply-xor scheme of
//! rustc-hash / FxHash, vendored here because this build environment has
//! no registry access): a rotate, an xor, and one multiply per word.
//!
//! Determinism discipline: a non-random hasher must never be allowed to
//! *hide* an iteration-order dependence (a randomly-seeded hasher would
//! surface it as flaky output; a fixed one freezes it into "works on my
//! machine"). Every map swept onto [`FastMap`] therefore either (a) is
//! lookup-only — iteration never feeds output — or (b) has its iteration
//! sorted/grouped structurally before anything observable is derived.
//! `tests/hasher_equivalence.rs` holds the whole offline build to that
//! contract by rebuilding the catalog under randomly-seeded SipHash and
//! asserting byte identity.

// lint: allow(std-hash-in-hot-path): this module defines the FastMap/FastSet
// aliases; std's HashMap is the base type being re-seeded, not a use of SipHash
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family: odd, high entropy across the high
/// bits, one `mul` per word on every 64-bit target.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Word-at-a-time multiply-xor hasher (FxHash scheme). Not keyed, not
/// flood-resistant — for trusted internal keys only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // One multiply per 8-byte word, then one per remaining tail
        // chunk; the length is folded in so prefixes don't collide with
        // their extensions.
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            // lint: allow(unwrap-in-lib): split_at(8) just made head exactly 8 bytes
            self.add(u64::from_le_bytes(head.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (head, tail) = rest.split_at(4);
            // lint: allow(unwrap-in-lib): split_at(4) just made head exactly 4 bytes
            self.add(u32::from_le_bytes(head.try_into().expect("4-byte chunk")) as u64);
            rest = tail;
        }
        for &b in rest {
            self.add(b as u64);
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] — the `S` parameter of the aliases
/// below and of the hasher-generic build internals in `ts-core`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` with the fast hasher — drop-in for hot-path maps.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` with the fast hasher.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

/// Hash of a `u16` sequence, identical to what `FastHasher` produces for
/// the same values written element-wise. This is the precomputed-hash
/// currency of the `PathSig` interners: a worker hashes a signature once
/// at first-intern time, caches the result alongside the interned id,
/// and every later interner (the catalog's, at merge time) reuses the
/// cached hash instead of re-walking the signature bytes.
#[inline]
pub fn fast_hash_u16s(seq: &[u16]) -> u64 {
    let mut h = FastHasher::default();
    for &v in seq {
        h.write_u16(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&vec![1u16, 2, 3]), hash_of(&vec![1u16, 2, 3]));
        assert_eq!(hash_of(&"topology"), hash_of(&"topology"));
        assert_eq!(hash_of(&(7u16, 42i64)), hash_of(&(7u16, 42i64)));
    }

    #[test]
    fn different_keys_usually_differ() {
        assert_ne!(hash_of(&vec![1u16, 2, 3]), hash_of(&vec![1u16, 3, 2]));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&""), hash_of(&"x"));
    }

    #[test]
    fn byte_writes_fold_length() {
        // A prefix and its extension must not collide trivially.
        let mut a = FastHasher::default();
        a.write(b"abcd");
        let mut b = FastHasher::default();
        b.write(b"abcd\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fast_hash_u16s_matches_element_writes() {
        let seq = [3u16, 0, 7, 0, 3];
        let mut h = FastHasher::default();
        for &v in &seq {
            h.write_u16(v);
        }
        assert_eq!(fast_hash_u16s(&seq), h.finish());
        assert_ne!(fast_hash_u16s(&seq), fast_hash_u16s(&seq[..4]));
    }

    #[test]
    fn fastmap_roundtrip() {
        let mut m: FastMap<Vec<u16>, u32> = FastMap::default();
        for i in 0..100u32 {
            m.insert(vec![i as u16, (i * 7) as u16], i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&vec![i as u16, (i * 7) as u16]), Some(&i));
        }
        let mut s: FastSet<i64> = FastSet::default();
        s.insert(-3);
        assert!(s.contains(&-3) && !s.contains(&3));
    }
}
