//! Rows and row identifiers.

use crate::value::Value;

/// Index of a row within its table's row vector.
///
/// `u32` keeps catalog tables (AllTops is the big one) compact; a table is
/// limited to ~4 billion rows, far beyond laptop-scale reproduction needs.
pub type RowId = u32;

/// A row is an owned sequence of values matching the table schema arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Iterate the values.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Concatenate two rows (used by joins to build output tuples).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Concatenate with a borrowed columnar row: the join output tuple
    /// is built in a single allocation, instead of materializing the
    /// inner row first and concatenating second.
    pub fn concat_ref(&self, other: crate::column::RowRef<'_>) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.arity());
        v.extend_from_slice(&self.0);
        other.push_values(&mut v);
        Row(v)
    }

    /// Project the row onto the given column indices.
    pub fn project(&self, cols: &[usize]) -> Row {
        Row(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Project into a reusable scratch row, clearing it first. Spares
    /// the per-row `Vec` allocation `project` pays when the caller only
    /// needs the projection transiently (e.g. duplicate-elimination
    /// keys in the join output path).
    pub fn project_into(&self, cols: &[usize], out: &mut Row) {
        out.0.clear();
        out.0.extend(cols.iter().map(|&c| self.0[c].clone()));
    }

    /// Approximate heap footprint in bytes (for Table 1 space accounting):
    /// inline value size plus string payloads.
    pub fn heap_size(&self) -> usize {
        self.0.len() * std::mem::size_of::<Value>()
            + self.0.iter().map(Value::heap_size).sum::<usize>()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

/// Convenience macro for building rows in tests and generators.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_order() {
        let a = row![1i64, "x"];
        let b = row![2i64];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(0).as_int(), 1);
        assert_eq!(c.get(1).as_str(), "x");
        assert_eq!(c.get(2).as_int(), 2);
    }

    #[test]
    fn project_selects_columns() {
        let r = row![10i64, "a", 20i64];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row![20i64, 10i64]);
    }

    #[test]
    fn project_into_matches_project() {
        let r = row![10i64, "a", 20i64];
        let mut scratch = Row::new(vec![Value::from(99i64)]);
        r.project_into(&[2, 0], &mut scratch);
        assert_eq!(scratch, r.project(&[2, 0]));
        r.project_into(&[1], &mut scratch);
        assert_eq!(scratch, row!["a"]);
    }

    #[test]
    fn heap_size_includes_strings() {
        let r = row![1i64, "abcd"];
        assert_eq!(r.heap_size(), 2 * std::mem::size_of::<Value>() + 4);
    }
}
