//! Catalog statistics.
//!
//! §5.4.3 of the paper assumes the database system keeps (1) group counts,
//! (2) group cardinalities, (3) relation cardinalities `N_i`, (4) index
//! probe costs `I_i`, (5) local-predicate selectivities `ρ_i`, and (6) join
//! selectivities `s_i`, noting that these "can be calculated using
//! selectivity and join estimation techniques". This module is those
//! techniques: per-column distinct counts, most-common-value sketches, and
//! keyword document frequencies, collected in one pass over a table.

use crate::column::ColumnStore;
use crate::hash::FastMap;
use crate::schema::{ColumnId, TableSchema};
use crate::value::{Value, ValueType};

/// Number of most-common values tracked exactly per column.
const MCV_LIMIT: usize = 64;

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Number of non-null values.
    pub non_null: u64,
    /// Number of distinct non-null values.
    pub distinct: u64,
    /// Most common values with exact counts (top 64 by count).
    pub mcv: Vec<(Value, u64)>,
    /// For string columns: token → number of rows containing the token.
    pub token_doc_freq: FastMap<String, u64>,
}

/// Statistics for one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Total row count.
    pub rows: u64,
    /// Per-column statistics, indexed by [`ColumnId`].
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics from the columnar buffers, column by column:
    /// integer columns hash their raw `i64` buffer, string columns count
    /// rows per pooled string — so token document frequencies are
    /// computed once per *distinct* string and multiplied by its row
    /// count, instead of re-tokenizing every row.
    pub fn collect(schema: &TableSchema, store: &ColumnStore) -> Self {
        let columns = (0..schema.arity())
            .map(|c| {
                // One counting pass per column: Str columns derive value
                // counts AND token frequencies from a single str_counts
                // scan; Int columns take the sort-and-run-length pass.
                let mut token_doc_freq: FastMap<String, u64> = FastMap::default();
                // Token scratch, reused across the column's pooled
                // strings; sort-dedup replaces the old `Vec::contains`
                // probe, which was O(tokens²) per string.
                let mut toks: Vec<&str> = Vec::new();
                let counts: Vec<(Value, u64)> = match schema.column_type(c) {
                    ValueType::Int => store.value_counts(c),
                    ValueType::Str => store
                        .str_counts(c)
                        .into_iter()
                        .map(|(s, rows)| {
                            // Count each token once per row (document
                            // frequency); rows sharing a pooled string
                            // share its token set.
                            toks.clear();
                            toks.extend(s.split_whitespace());
                            toks.sort_unstable();
                            toks.dedup();
                            for &tok in &toks {
                                // Probe with the borrowed token; a key
                                // is only allocated the first time the
                                // token is seen in the column.
                                match token_doc_freq.get_mut(tok) {
                                    Some(df) => *df += rows,
                                    None => {
                                        token_doc_freq.insert(tok.to_string(), rows);
                                    }
                                }
                            }
                            (Value::Str(std::sync::Arc::clone(s)), rows)
                        })
                        .collect(),
                };
                let non_null: u64 = counts.iter().map(|&(_, n)| n).sum();
                let distinct = counts.len() as u64;
                let mut mcv = counts;
                mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                mcv.truncate(MCV_LIMIT);
                ColumnStats { non_null, distinct, mcv, token_doc_freq }
            })
            .collect();

        TableStats { rows: store.len() as u64, columns }
    }

    /// Selectivity of `col = value`.
    ///
    /// Exact if the value is among the tracked most-common values;
    /// otherwise the uniform `1/distinct` estimate over the residual mass.
    pub fn eq_selectivity(&self, col: ColumnId, value: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let Some(cs) = self.columns.get(col) else { return 0.0 };
        if let Some((_, count)) = cs.mcv.iter().find(|(v, _)| v == value) {
            return *count as f64 / self.rows as f64;
        }
        let mcv_rows: u64 = cs.mcv.iter().map(|(_, c)| c).sum();
        let mcv_distinct = cs.mcv.len() as u64;
        let rest_rows = cs.non_null.saturating_sub(mcv_rows);
        let rest_distinct = cs.distinct.saturating_sub(mcv_distinct);
        if rest_distinct == 0 {
            // All values tracked and `value` is not among them.
            return 0.0;
        }
        (rest_rows as f64 / rest_distinct as f64) / self.rows as f64
    }

    /// Selectivity of `col.ct(keyword)` from the token document frequency.
    pub fn contains_selectivity(&self, col: ColumnId, keyword: &str) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let Some(cs) = self.columns.get(col) else { return 0.0 };
        match cs.token_doc_freq.get(keyword) {
            Some(&df) => df as f64 / self.rows as f64,
            None => 0.0,
        }
    }

    /// Distinct count for a column (0 if unknown).
    pub fn distinct(&self, col: ColumnId) -> u64 {
        self.columns.get(col).map(|c| c.distinct).unwrap_or(0)
    }
}

/// Estimate the selectivity of an equi-join between two columns using the
/// textbook `1 / max(d1, d2)` rule — the optimizer's `s_i` (§5.4.3 item 6).
pub fn join_selectivity(
    left: &TableStats,
    lcol: ColumnId,
    right: &TableStats,
    rcol: ColumnId,
) -> f64 {
    let d1 = left.distinct(lcol).max(1);
    let d2 = right.distinct(rcol).max(1);
    1.0 / d1.max(d2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnDef, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "DNA",
            vec![
                ColumnDef::new("ID", ValueType::Int),
                ColumnDef::new("type", ValueType::Str),
                ColumnDef::new("defs", ValueType::Str),
            ],
            Some(0),
        )
    }

    fn store_of(schema: &TableSchema, rows: &[crate::row::Row]) -> ColumnStore {
        let mut s = ColumnStore::new(schema.columns.iter().map(|c| c.ty));
        for r in rows {
            s.push_row(r);
        }
        s
    }

    fn rows() -> ColumnStore {
        store_of(
            &schema(),
            &[
                row![1i64, "mRNA", "human ubiquitin carrier protein mRNA"],
                row![2i64, "mRNA", "homo sapiens MMS2 mRNA complete cds"],
                row![3i64, "EST", "sampled short sequence"],
                row![4i64, "genomic", "chromosome fragment"],
            ],
        )
    }

    #[test]
    fn eq_selectivity_from_mcv_is_exact() {
        let st = TableStats::collect(&schema(), &rows());
        assert!((st.eq_selectivity(1, &Value::str("mRNA")) - 0.5).abs() < 1e-12);
        assert!((st.eq_selectivity(1, &Value::str("EST")) - 0.25).abs() < 1e-12);
        assert_eq!(st.eq_selectivity(1, &Value::str("tRNA")), 0.0);
    }

    #[test]
    fn contains_selectivity_counts_documents_not_tokens() {
        let st = TableStats::collect(&schema(), &rows());
        assert!((st.contains_selectivity(2, "mRNA") - 0.5).abs() < 1e-12);
        assert_eq!(st.contains_selectivity(2, "plasmid"), 0.0);
    }

    #[test]
    fn distinct_counts() {
        let st = TableStats::collect(&schema(), &rows());
        assert_eq!(st.distinct(0), 4);
        assert_eq!(st.distinct(1), 3);
    }

    #[test]
    fn join_selectivity_uses_max_distinct() {
        let a = TableStats::collect(&schema(), &rows());
        let two = store_of(
            &schema(),
            &[
                row![1i64, "mRNA", "human ubiquitin carrier protein mRNA"],
                row![2i64, "mRNA", "homo sapiens MMS2 mRNA complete cds"],
            ],
        );
        let b = TableStats::collect(&schema(), &two);
        let s = join_selectivity(&a, 0, &b, 0);
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_table_has_zero_selectivity() {
        let st = TableStats::collect(&schema(), &store_of(&schema(), &[]));
        assert_eq!(st.eq_selectivity(1, &Value::str("mRNA")), 0.0);
        assert_eq!(st.contains_selectivity(2, "x"), 0.0);
    }

    #[test]
    fn token_dedup_matches_naive_reference() {
        // Regression for the sort-dedup rewrite: document frequencies
        // must match a naive first-occurrence scan exactly, including on
        // strings with heavy in-string repetition and shared rows.
        let s = store_of(
            &schema(),
            &[
                row![1i64, "mRNA", "ubi ubi ubi carrier ubi protein protein"],
                row![2i64, "mRNA", "ubi ubi ubi carrier ubi protein protein"],
                row![3i64, "mRNA", "protein carrier"],
                row![4i64, "EST", "zz aa zz aa zz"],
                row![5i64, "EST", "aa"],
            ],
        );
        let st = TableStats::collect(&schema(), &s);
        // Naive reference: per row, count each token once.
        let mut reference: std::collections::HashMap<&str, u64> = Default::default();
        for doc in [
            "ubi ubi ubi carrier ubi protein protein",
            "ubi ubi ubi carrier ubi protein protein",
            "protein carrier",
            "zz aa zz aa zz",
            "aa",
        ] {
            let mut seen: Vec<&str> = Vec::new();
            for tok in doc.split_whitespace() {
                if !seen.contains(&tok) {
                    seen.push(tok);
                    *reference.entry(tok).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(st.columns[2].token_doc_freq.len(), reference.len());
        for (tok, &df) in &reference {
            assert_eq!(st.columns[2].token_doc_freq.get(*tok), Some(&df), "token {tok}");
        }
        assert_eq!(st.columns[2].token_doc_freq.get("ubi"), Some(&2));
        assert_eq!(st.columns[2].token_doc_freq.get("aa"), Some(&2));
        assert_eq!(st.columns[2].token_doc_freq.get("protein"), Some(&3));
    }

    #[test]
    fn nulls_excluded_from_counts() {
        let s = store_of(
            &schema(),
            &[
                row![1i64, "mRNA", "alpha beta"],
                crate::row::Row::new(vec![Value::Int(2), Value::Null, Value::Null]),
            ],
        );
        let st = TableStats::collect(&schema(), &s);
        assert_eq!(st.columns[1].non_null, 1);
        assert_eq!(st.columns[1].distinct, 1);
        assert_eq!(st.columns[2].token_doc_freq.get("alpha"), Some(&1));
    }
}
