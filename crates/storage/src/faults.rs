//! Deterministic fault injection: named fail points with seeded
//! schedules.
//!
//! The serving layer's robustness claims ("a poisoned query never takes
//! down the server", "budget exhaustion degrades, it does not hang") are
//! only testable if faults can be *produced on demand*. This module is
//! the production half of that bargain: code under test calls
//! [`fire`] at named sites, and a test arms the registry with a
//! deterministic schedule of panics, delays, and budget starvation.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when compiled out.** Without the `failpoints` cargo
//!    feature, [`fire`] is an `#[inline(always)]` empty function — the
//!    optimizer erases the call and the site's match arm entirely.
//!    Workspace builds enable the feature through `ts-server`'s
//!    dependency (cargo feature unification), so the whole test suite
//!    exercises the instrumented code; an embedding that depends on the
//!    individual crates alone compiles the registry away.
//! 2. **Cheap when compiled in but disarmed.** The fast path is one
//!    relaxed atomic load — no lock, no map lookup — so per-tuple sites
//!    in the execution engine stay affordable.
//! 3. **Deterministic given a seed.** [`arm_seeded`] derives every
//!    site's schedule from a SplitMix64 stream, so a failing storm test
//!    reproduces from its seed alone. (Cross-thread *interleaving* is
//!    still scheduler-dependent; invariant-style assertions — "every
//!    query got a well-formed answer" — hold under any interleaving.)
//!
//! The registry is process-global. Tests that arm it must serialize
//! themselves (a `static Mutex` in the test binary) and disarm when
//! done.

/// What an armed fail point does when its schedule comes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep for the given number of milliseconds (exercises deadlines
    /// and queue backpressure).
    Delay(u64),
    /// Ask the *caller* to starve the current budget (exercises the
    /// degrade ladder without waiting out a real deadline).
    Starve,
}

/// What the caller of [`fire`] must do. Panics and delays are applied
/// inside [`fire`] itself; starvation needs the caller's budget handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Starve action must be applied to the caller's budget"]
pub enum FireAction {
    /// Nothing due (or the fault was applied internally).
    Proceed,
    /// Mark the current work budget starved.
    Starve,
}

/// When an armed site fires: hit indexes `i` with `i % period == offset`,
/// for at most `budget` fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// The injected fault.
    pub kind: FaultKind,
    /// Fire every `period`-th hit (must be ≥ 1).
    pub period: u64,
    /// Phase within the period.
    pub offset: u64,
    /// Maximum number of fires (`None` = unlimited).
    pub budget: Option<u64>,
}

/// The registered fail-point sites, one constant per call site family.
pub mod sites {
    /// Per-source worker loop of the offline catalog build.
    pub const CORE_COMPUTE_WORKER: &str = "core.compute.worker";
    /// Entry of a method evaluation (after validation, before the plan).
    pub const CORE_METHOD_EVAL: &str = "core.method.eval";
    /// Table/values scan `next()`.
    pub const EXEC_SCAN: &str = "exec.scan";
    /// Hash-join build loop.
    pub const EXEC_JOIN_BUILD: &str = "exec.join.build";
    /// DGJ probe/expand step.
    pub const EXEC_DGJ_PROBE: &str = "exec.dgj.probe";
    /// Sort operator buffer fill.
    pub const EXEC_SORT_FILL: &str = "exec.sort.fill";
    /// Budgeted driver collection loop.
    pub const EXEC_DRIVER_LOOP: &str = "exec.driver.loop";
    /// Server worker, per admitted job.
    pub const SERVER_WORKER: &str = "server.worker";
    /// Server admission path (delay/starve only by convention: it runs
    /// on the caller's thread, outside any panic isolation).
    pub const SERVER_ADMIT: &str = "server.admit";

    /// Every registered site, in a fixed order.
    pub fn all() -> &'static [&'static str] {
        &[
            CORE_COMPUTE_WORKER,
            CORE_METHOD_EVAL,
            EXEC_SCAN,
            EXEC_JOIN_BUILD,
            EXEC_DGJ_PROBE,
            EXEC_SORT_FILL,
            EXEC_DRIVER_LOOP,
            SERVER_WORKER,
            SERVER_ADMIT,
        ]
    }
}

/// True when the registry is compiled into this build (the `failpoints`
/// feature). Tests gate on this rather than silently passing.
pub const fn compiled_in() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Duration;

    use super::{FaultKind, FireAction, Schedule};
    use crate::FastMap;

    struct SiteState {
        schedule: Schedule,
        /// Calls to `fire` for this site since arming.
        hits: u64,
        /// Faults actually injected.
        fired: u64,
    }

    /// Fast-path gate: one relaxed load decides "nothing armed".
    static ARMED: AtomicBool = AtomicBool::new(false);

    fn registry() -> MutexGuard<'static, FastMap<&'static str, SiteState>> {
        static REG: OnceLock<Mutex<FastMap<&'static str, SiteState>>> = OnceLock::new();
        // An injected panic can poison the lock mid-`fire`; the map is
        // valid after any partial update, so recover the guard.
        REG.get_or_init(|| Mutex::new(FastMap::default()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolve `site` to its static name so the registry key never
    /// borrows from the caller.
    fn static_site(site: &str) -> Option<&'static str> {
        super::sites::all().iter().find(|s| **s == site).copied()
    }

    pub fn fire(site: &str) -> FireAction {
        if !ARMED.load(Ordering::Relaxed) {
            return FireAction::Proceed;
        }
        let due = {
            let mut reg = registry();
            let Some(state) = reg.get_mut(site) else {
                return FireAction::Proceed;
            };
            let hit = state.hits;
            state.hits += 1;
            let s = &state.schedule;
            let due = hit % s.period == s.offset && s.budget.is_none_or(|b| state.fired < b);
            if !due {
                return FireAction::Proceed;
            }
            state.fired += 1;
            s.kind
            // Lock released here: a panic below must not poison it, and
            // a delay must not serialize every other site.
        };
        match due {
            // lint: allow(unwrap-in-lib): panicking is this fault kind's entire
            // job; every production call site sits under documented isolation
            FaultKind::Panic => panic!("injected fault at fail point `{site}`"),
            FaultKind::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                FireAction::Proceed
            }
            FaultKind::Starve => FireAction::Starve,
        }
    }

    pub fn arm(site: &str, schedule: Schedule) {
        assert!(schedule.period >= 1, "fail-point period must be >= 1");
        let Some(key) = static_site(site) else {
            // lint: allow(unwrap-in-lib): arming an unregistered site is a test
            // harness bug; failing loudly beats silently injecting nothing
            panic!("unknown fail-point site `{site}`; register it in faults::sites");
        };
        registry().insert(key, SiteState { schedule, hits: 0, fired: 0 });
        ARMED.store(true, Ordering::SeqCst);
    }

    pub fn disarm_all() {
        ARMED.store(false, Ordering::SeqCst);
        registry().clear();
    }

    pub fn fire_counts() -> Vec<(&'static str, u64, u64)> {
        let reg = registry();
        let mut out: Vec<(&'static str, u64, u64)> = super::sites::all()
            .iter()
            .filter_map(|s| reg.get(s).map(|st| (*s, st.hits, st.fired)))
            .collect();
        out.sort_unstable();
        out
    }

    /// SplitMix64 step — the repo's standard seeded stream.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn arm_seeded(seed: u64) {
        let mut s = seed;
        for site in super::sites::all() {
            let r = splitmix(&mut s);
            let schedule = if site.starts_with("exec.") {
                // Per-tuple sites: long period, tight budget, or a
                // storm would fire thousands of faults per query.
                Schedule {
                    kind: kind_from(r, /* allow_panic */ true),
                    period: 257 + (r >> 12) % 512,
                    offset: (r >> 24) % 257,
                    budget: Some(2 + (r >> 40) % 3),
                }
            } else if *site == super::sites::SERVER_ADMIT {
                // Admission runs on the caller's thread, outside panic
                // isolation: inject only delays and starvation there.
                Schedule {
                    kind: if r & 1 == 0 { FaultKind::Delay(1) } else { FaultKind::Starve },
                    period: 5 + (r >> 12) % 7,
                    offset: (r >> 24) % 5,
                    budget: Some(8 + (r >> 40) % 8),
                }
            } else {
                // Per-job / per-source sites.
                Schedule {
                    kind: kind_from(r, true),
                    period: 3 + (r >> 12) % 5,
                    offset: (r >> 24) % 3,
                    budget: Some(4 + (r >> 40) % 8),
                }
            };
            arm(site, schedule);
        }
    }

    fn kind_from(r: u64, allow_panic: bool) -> FaultKind {
        match (r >> 4) % 3 {
            0 if allow_panic => FaultKind::Panic,
            0 | 1 => FaultKind::Delay(1 + (r >> 16) % 2),
            _ => FaultKind::Starve,
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, arm_seeded, disarm_all, fire, fire_counts};

#[cfg(not(feature = "failpoints"))]
mod imp_off {
    use super::{FireAction, Schedule};

    /// Compiled-out fast path: the optimizer erases the call.
    #[inline(always)]
    pub fn fire(_site: &str) -> FireAction {
        FireAction::Proceed
    }

    #[inline(always)]
    pub fn arm(_site: &str, _schedule: Schedule) {}

    #[inline(always)]
    pub fn arm_seeded(_seed: u64) {}

    #[inline(always)]
    pub fn disarm_all() {}

    #[inline(always)]
    pub fn fire_counts() -> Vec<(&'static str, u64, u64)> {
        Vec::new()
    }
}

#[cfg(not(feature = "failpoints"))]
pub use imp_off::{arm, arm_seeded, disarm_all, fire, fire_counts};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests in this module serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_fire_is_a_no_op() {
        let _g = guard();
        disarm_all();
        assert_eq!(fire(sites::EXEC_SCAN), FireAction::Proceed);
        assert!(fire_counts().is_empty());
    }

    #[test]
    fn schedule_period_offset_and_budget() {
        let _g = guard();
        disarm_all();
        arm(
            sites::EXEC_DRIVER_LOOP,
            Schedule { kind: FaultKind::Starve, period: 3, offset: 1, budget: Some(2) },
        );
        let got: Vec<FireAction> = (0..9).map(|_| fire(sites::EXEC_DRIVER_LOOP)).collect();
        // Hits 1 and 4 fire; hit 7 is due but the budget is spent.
        let fired: Vec<usize> = got
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == FireAction::Starve)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fired, vec![1, 4]);
        assert_eq!(fire_counts(), vec![(sites::EXEC_DRIVER_LOOP, 9, 2)]);
        disarm_all();
    }

    #[test]
    fn panic_kind_panics_and_recovers() {
        let _g = guard();
        disarm_all();
        arm(
            sites::CORE_METHOD_EVAL,
            Schedule { kind: FaultKind::Panic, period: 1, offset: 0, budget: Some(1) },
        );
        let r = std::panic::catch_unwind(|| fire(sites::CORE_METHOD_EVAL));
        assert!(r.is_err(), "armed Panic site must panic");
        // The registry survives the panic (no poisoned-lock propagation).
        assert_eq!(fire(sites::CORE_METHOD_EVAL), FireAction::Proceed);
        disarm_all();
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let _g = guard();
        disarm_all();
        arm_seeded(0xDEAD_BEEF);
        let c1 = fire_counts();
        assert_eq!(c1.len(), sites::all().len(), "every site gets a schedule");
        disarm_all();
        arm_seeded(0xDEAD_BEEF);
        assert_eq!(fire_counts().len(), c1.len());
        disarm_all();
    }

    #[test]
    fn unknown_site_rejected() {
        let _g = guard();
        disarm_all();
        let r = std::panic::catch_unwind(|| {
            arm(
                "no.such.site",
                Schedule { kind: FaultKind::Starve, period: 1, offset: 0, budget: None },
            )
        });
        assert!(r.is_err());
        disarm_all();
    }
}
