//! Query predicates.
//!
//! A 2-query in the paper (§2.2) attaches a constraint `con_i` to each
//! entity set; a constraint "may contain multiple predicates, including
//! keyword search clauses and structured predicates". Example 2.1 uses
//! `desc.ct('enzyme')` (keyword containment) and `type = 'mRNA'`
//! (structured equality). [`Predicate`] covers those plus boolean
//! combinators, and knows how to estimate its own selectivity from
//! [`crate::stats::TableStats`] — that estimate is the optimizer's
//! `ρ_i` parameter (§5.4.3, item 5).

use crate::column::RowRef;
use crate::row::Row;
use crate::schema::ColumnId;
use crate::stats::TableStats;
use crate::value::Value;

/// A predicate over rows of a single table.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no constraint on this entity set).
    True,
    /// Always false (used for degenerate plans in tests).
    False,
    /// `col = value` structured predicate.
    Eq(ColumnId, Value),
    /// Keyword containment: the string column contains `keyword` as a
    /// whitespace-delimited token — the paper's `.ct('enzyme')`.
    Contains(ColumnId, String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = value` helper.
    pub fn eq(col: ColumnId, value: impl Into<Value>) -> Self {
        Predicate::Eq(col, value.into())
    }

    /// Keyword containment helper.
    pub fn contains(col: ColumnId, keyword: impl Into<String>) -> Self {
        Predicate::Contains(col, keyword.into())
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a borrowed columnar row — the allocation-free
    /// twin of [`Predicate::eval`], used by table scans and the query
    /// methods' σ passes. Semantics are identical cell for cell (the
    /// storage-conformance suite holds the two to that).
    pub fn eval_ref(&self, row: RowRef<'_>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(col, v) => row.value_eq(*col, v),
            Predicate::Contains(col, kw) => match row.try_str(*col) {
                Some(s) => s.split_whitespace().any(|tok| tok == kw),
                None => false,
            },
            Predicate::And(a, b) => a.eval_ref(row) && b.eval_ref(row),
            Predicate::Or(a, b) => a.eval_ref(row) || b.eval_ref(row),
            Predicate::Not(a) => !a.eval_ref(row),
        }
    }

    /// Evaluate against a row. NULL never satisfies Eq/Contains.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(col, v) => row.get(*col) == v,
            Predicate::Contains(col, kw) => match row.get(*col) {
                Value::Str(s) => s.split_whitespace().any(|tok| tok == kw),
                _ => false,
            },
            Predicate::And(a, b) => a.eval(row) && b.eval(row),
            Predicate::Or(a, b) => a.eval(row) || b.eval(row),
            Predicate::Not(a) => !a.eval(row),
        }
    }

    /// Estimate the fraction of rows satisfying this predicate, from table
    /// statistics. Uses the classic System-R independence assumptions.
    pub fn selectivity(&self, stats: &TableStats) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::False => 0.0,
            Predicate::Eq(col, v) => stats.eq_selectivity(*col, v),
            Predicate::Contains(col, kw) => stats.contains_selectivity(*col, kw),
            Predicate::And(a, b) => a.selectivity(stats) * b.selectivity(stats),
            Predicate::Or(a, b) => {
                let (sa, sb) = (a.selectivity(stats), b.selectivity(stats));
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Not(a) => 1.0 - a.selectivity(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn contains_matches_tokens_not_substrings() {
        let p = Predicate::contains(1, "enzyme");
        assert!(p.eval(&row![1i64, "ubiquitin-conjugating enzyme UBCi"]));
        // "enzymes" is a different token; `.ct` is token containment here.
        assert!(!p.eval(&row![2i64, "enzymes galore"]));
        assert!(!p.eval(&row![3i64, 9i64])); // wrong type -> false
    }

    #[test]
    fn eq_and_boolean_combinators() {
        let p = Predicate::eq(1, "mRNA").and(Predicate::eq(0, 5i64));
        assert!(p.eval(&row![5i64, "mRNA"]));
        assert!(!p.eval(&row![5i64, "EST"]));
        let q = Predicate::eq(1, "mRNA").or(Predicate::eq(1, "EST"));
        assert!(q.eval(&row![5i64, "EST"]));
        let n = Predicate::Not(Box::new(Predicate::True));
        assert!(!n.eval(&row![1i64]));
    }

    #[test]
    fn null_never_matches() {
        let p = Predicate::eq(0, 1i64);
        assert!(!p.eval(&Row::new(vec![Value::Null])));
        let c = Predicate::contains(0, "x");
        assert!(!c.eval(&Row::new(vec![Value::Null])));
    }
}
