//! Checked narrowing casts for index/offset math.
//!
//! CSR offsets, interner ids, and column positions are stored narrow
//! (`u32`/`u16`/`u8`) but computed wide (`usize`). A bare `value as u32`
//! truncates silently when the invariant ("this buffer never exceeds
//! 4 GiB of entries") is violated; these helpers make the invariant
//! explicit. Debug builds assert the value is in range, release builds
//! compile down to the same raw cast — zero cost on the hot path.
//!
//! The `ts-lint` `narrowing-cast` rule points offenders here; the raw
//! casts inside each helper are the single allowed occurrence.

/// `usize` → `u32`, asserting the value fits in debug builds.
#[inline(always)]
pub fn to_u32(v: usize) -> u32 {
    debug_assert!(v <= u32::MAX as usize, "to_u32: {v} exceeds u32::MAX");
    v as u32 // lint: allow(narrowing-cast): range checked by the debug_assert above
}

/// `usize` → `u16`, asserting the value fits in debug builds.
#[inline(always)]
pub fn to_u16(v: usize) -> u16 {
    debug_assert!(v <= u16::MAX as usize, "to_u16: {v} exceeds u16::MAX");
    v as u16 // lint: allow(narrowing-cast): range checked by the debug_assert above
}

/// `usize` → `u8`, asserting the value fits in debug builds.
#[inline(always)]
pub fn to_u8(v: usize) -> u8 {
    debug_assert!(v <= u8::MAX as usize, "to_u8: {v} exceeds u8::MAX");
    v as u8 // lint: allow(narrowing-cast): range checked by the debug_assert above
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_round_trip() {
        assert_eq!(to_u32(0), 0);
        assert_eq!(to_u32(u32::MAX as usize), u32::MAX);
        assert_eq!(to_u16(u16::MAX as usize), u16::MAX);
        assert_eq!(to_u8(255), 255);
    }

    #[test]
    #[should_panic(expected = "to_u8")]
    #[cfg(debug_assertions)]
    fn out_of_range_panics_in_debug() {
        let _ = to_u8(256);
    }
}
