//! Tables: rows + indexes + statistics.

use std::collections::HashMap;

use crate::error::StorageError;
use crate::index::HashIndex;
use crate::predicate::Predicate;
use crate::row::{Row, RowId};
use crate::schema::{ColumnId, TableSchema};
use crate::stats::TableStats;
use crate::value::Value;

/// A heap of rows with a schema, optional unique primary-key index,
/// secondary hash indexes, and lazily refreshed statistics.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
    /// Unique index on the primary-key column, if the schema declares one.
    pk_index: Option<HashIndex>,
    /// Secondary (non-unique) indexes by column.
    secondary: HashMap<ColumnId, HashIndex>,
    /// Cached statistics; `None` until [`Table::analyze`] runs.
    stats: Option<TableStats>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        let pk_index = schema.primary_key.map(|_| HashIndex::new());
        Table { schema, rows: Vec::new(), pk_index, secondary: HashMap::new(), stats: None }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row by id.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// Insert a row, maintaining indexes. Rejects arity mismatches, type
    /// mismatches on non-null values, and duplicate primary keys.
    pub fn insert(&mut self, row: Row) -> Result<RowId, StorageError> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch {
                table: self.schema.name.clone(),
                detail: format!("arity {} != {}", row.arity(), self.schema.arity()),
            });
        }
        for (c, v) in row.values().enumerate() {
            if let Some(ty) = v.value_type() {
                if ty != self.schema.column_type(c) {
                    return Err(StorageError::SchemaMismatch {
                        table: self.schema.name.clone(),
                        detail: format!(
                            "column {} expects {:?}, got {v:?}",
                            c,
                            self.schema.column_type(c)
                        ),
                    });
                }
            }
        }
        let id = self.rows.len() as RowId;
        if let (Some(pk_col), Some(pk_index)) = (self.schema.primary_key, self.pk_index.as_mut()) {
            let key = row.get(pk_col);
            if !pk_index.probe(key).is_empty() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
            pk_index.insert(key.clone(), id);
        }
        for (&col, idx) in self.secondary.iter_mut() {
            idx.insert(row.get(col).clone(), id);
        }
        self.rows.push(row);
        self.stats = None;
        Ok(id)
    }

    /// Pre-size the row heap for `n` additional rows (bulk loads).
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
    }

    /// A copy of this table under a different name: rows, indexes, and
    /// statistics are cloned as-is instead of being re-validated,
    /// re-hashed, and re-collected row by row. This is how the catalog
    /// materializes LeftTops from AllTops.
    pub fn clone_renamed(&self, name: impl Into<String>) -> Table {
        let mut t = self.clone();
        t.schema.name = name.into();
        t
    }

    /// Build (or rebuild) a secondary hash index on `col`.
    pub fn create_index(&mut self, col: ColumnId) {
        let mut idx = HashIndex::new();
        for (i, row) in self.rows.iter().enumerate() {
            idx.insert(row.get(col).clone(), i as RowId);
        }
        self.secondary.insert(col, idx);
    }

    /// Build (or rebuild) a secondary hash index on `col` from one
    /// sorted run of row ids instead of row-by-row insertion: sort the
    /// ids by `(key, id)`, then hand each fully formed run to the index
    /// as an exact-sized posting list. Probe results are identical to
    /// [`Table::create_index`]; this is the bulk path catalog
    /// finalization uses on its large append-only tables.
    pub fn create_index_bulk(&mut self, col: ColumnId) {
        let rows = &self.rows;
        // Declared-Int columns (every catalog table column is one)
        // extract to a flat (key, id) run first, so the sort compares
        // plain integers instead of chasing into rows. A Null slipping
        // into an Int column (nulls pass insert's type check) falls
        // back to the generic path.
        let mut keyed: Vec<(i64, RowId)> = Vec::new();
        let all_int = self.schema.column_type(col) == crate::value::ValueType::Int && {
            keyed.reserve_exact(rows.len());
            rows.iter().enumerate().all(|(i, r)| match r.get(col) {
                Value::Int(v) => {
                    keyed.push((*v, i as RowId));
                    true
                }
                _ => false,
            })
        };
        let idx = if all_int {
            keyed.sort_unstable();
            HashIndex::from_sorted_int_postings(&keyed)
        } else {
            let mut ids: Vec<RowId> = (0..rows.len() as RowId).collect();
            ids.sort_unstable_by(|&a, &b| {
                rows[a as usize].get(col).cmp(rows[b as usize].get(col)).then(a.cmp(&b))
            });
            HashIndex::from_sorted_postings(&ids, |id| rows[id as usize].get(col))
        };
        self.secondary.insert(col, idx);
    }

    /// Look up rows by primary key.
    pub fn by_pk(&self, key: &Value) -> Option<&Row> {
        let pk_index = self.pk_index.as_ref()?;
        pk_index.probe(key).first().map(|&id| self.row(id))
    }

    /// Row id (not row) by primary key.
    pub fn rowid_by_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.as_ref()?.probe(key).first().copied()
    }

    /// Probe a secondary index (must exist) for row ids matching `key`.
    pub fn index_probe(&self, col: ColumnId, key: &Value) -> &[RowId] {
        self.secondary
            .get(&col)
            .unwrap_or_else(|| panic!("no index on column {col} of {}", self.schema.name))
            .probe(key)
    }

    /// True if a secondary index exists on `col`.
    pub fn has_index(&self, col: ColumnId) -> bool {
        self.secondary.contains_key(&col) || self.schema.primary_key == Some(col)
    }

    /// Sequential scan with a predicate; returns matching row ids.
    pub fn scan(&self, pred: &Predicate) -> Vec<RowId> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.eval(r))
            .map(|(i, _)| i as RowId)
            .collect()
    }

    /// Refresh statistics (one pass). Idempotent until the next insert.
    pub fn analyze(&mut self) -> &TableStats {
        if self.stats.is_none() {
            self.stats = Some(TableStats::collect(&self.schema, &self.rows));
        }
        self.stats.as_ref().expect("just set")
    }

    /// Cached statistics, if [`Table::analyze`] has run since the last insert.
    pub fn stats(&self) -> Option<&TableStats> {
        self.stats.as_ref()
    }

    /// Approximate heap footprint of rows + indexes, in bytes. This is the
    /// quantity reported in the Table 1 space-requirement reproduction.
    pub fn heap_size(&self) -> usize {
        let rows: usize = self.rows.iter().map(Row::heap_size).sum();
        let pk = self.pk_index.as_ref().map(HashIndex::heap_size).unwrap_or(0);
        let sec: usize = self.secondary.values().map(HashIndex::heap_size).sum();
        rows + pk + sec
    }

    /// Sort rows by a column (ascending) and rebuild all indexes.
    ///
    /// Catalog tables (LeftTops) are stored grouped by topology id so DGJ
    /// group scans are contiguous; this is the clustering step.
    pub fn sort_by_column(&mut self, col: ColumnId) {
        self.rows.sort_by(|a, b| a.get(col).cmp(b.get(col)));
        if let Some(pk_col) = self.schema.primary_key {
            let mut idx = HashIndex::new();
            for (i, row) in self.rows.iter().enumerate() {
                idx.insert(row.get(pk_col).clone(), i as RowId);
            }
            self.pk_index = Some(idx);
        }
        let cols: Vec<ColumnId> = self.secondary.keys().copied().collect();
        for c in cols {
            self.create_index_bulk(c);
        }
        self.stats = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn dna_table() -> Table {
        let schema = TableSchema::new(
            "DNA",
            vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("type", ValueType::Str)],
            Some(0),
        );
        let mut t = Table::new(schema);
        t.insert(row![214i64, "mRNA"]).unwrap();
        t.insert(row![215i64, "mRNA"]).unwrap();
        t.insert(row![742i64, "genomic"]).unwrap();
        t
    }

    #[test]
    fn insert_and_pk_lookup() {
        let t = dna_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_pk(&Value::Int(215)).unwrap().get(1).as_str(), "mRNA");
        assert!(t.by_pk(&Value::Int(999)).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = dna_table();
        let err = t.insert(row![214i64, "EST"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = dna_table();
        assert!(matches!(t.insert(row![1i64]).unwrap_err(), StorageError::SchemaMismatch { .. }));
        assert!(matches!(
            t.insert(row!["notanint", "mRNA"]).unwrap_err(),
            StorageError::SchemaMismatch { .. }
        ));
    }

    #[test]
    fn secondary_index_probe_matches_scan() {
        let mut t = dna_table();
        t.create_index(1);
        let via_idx = t.index_probe(1, &Value::str("mRNA")).to_vec();
        let via_scan = t.scan(&Predicate::eq(1, "mRNA"));
        assert_eq!(via_idx, via_scan);
        assert!(t.has_index(1));
        assert!(t.has_index(0)); // pk
        assert!(!t.has_index(99));
    }

    #[test]
    fn index_maintained_across_inserts() {
        let mut t = dna_table();
        t.create_index(1);
        t.insert(row![900i64, "mRNA"]).unwrap();
        assert_eq!(t.index_probe(1, &Value::str("mRNA")).len(), 3);
    }

    #[test]
    fn analyze_caches_until_insert() {
        let mut t = dna_table();
        let rows = t.analyze().rows;
        assert_eq!(rows, 3);
        assert!(t.stats().is_some());
        t.insert(row![901i64, "EST"]).unwrap();
        assert!(t.stats().is_none());
        assert_eq!(t.analyze().rows, 4);
    }

    #[test]
    fn sort_by_column_rebuilds_indexes() {
        let mut t = dna_table();
        t.create_index(1);
        t.sort_by_column(1); // genomic, mRNA, mRNA
        assert_eq!(t.row(0).get(1).as_str(), "genomic");
        assert_eq!(t.by_pk(&Value::Int(742)).unwrap().get(0).as_int(), 742);
        assert_eq!(t.index_probe(1, &Value::str("mRNA")).len(), 2);
    }

    #[test]
    fn bulk_index_matches_row_by_row_build() {
        let mut a = dna_table();
        a.insert(row![900i64, "mRNA"]).unwrap();
        a.insert(row![901i64, "EST"]).unwrap();
        let mut b = a.clone();
        a.create_index(1);
        b.create_index_bulk(1);
        for key in [Value::str("mRNA"), Value::str("genomic"), Value::str("EST"), Value::str("?")] {
            assert_eq!(a.index_probe(1, &key), b.index_probe(1, &key), "{key:?}");
        }
        // Posting order is insertion order in both builds.
        assert_eq!(b.index_probe(1, &Value::str("mRNA")), &[0, 1, 3]);
    }

    #[test]
    fn bulk_index_int_fast_path_matches() {
        let schema = TableSchema::new(
            "Rel",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            None,
        );
        let mut a = Table::new(schema);
        for (x, y) in [(7, 1), (3, 2), (7, 3), (1, 4), (3, 5), (7, 6)] {
            a.insert(row![x as i64, y as i64]).unwrap();
        }
        let mut b = a.clone();
        a.create_index(0);
        b.create_index_bulk(0);
        for key in [1i64, 3, 7, 99] {
            assert_eq!(a.index_probe(0, &Value::Int(key)), b.index_probe(0, &Value::Int(key)));
        }
        assert_eq!(b.index_probe(0, &Value::Int(7)), &[0, 2, 5]);
    }

    #[test]
    fn bulk_index_with_nulls_falls_back_to_generic_path() {
        let schema = TableSchema::new(
            "N",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            None,
        );
        let mut t = Table::new(schema);
        t.insert(row![1i64, 1i64]).unwrap();
        t.insert(Row::new(vec![Value::Null, Value::Int(2)])).unwrap();
        t.insert(row![1i64, 3i64]).unwrap();
        t.create_index_bulk(0);
        assert_eq!(t.index_probe(0, &Value::Int(1)), &[0, 2]);
        assert_eq!(t.index_probe(0, &Value::Null), &[1]);
    }

    #[test]
    fn bulk_index_on_empty_table() {
        let mut t = Table::new(dna_table().schema().clone());
        t.create_index_bulk(1);
        assert!(t.index_probe(1, &Value::str("mRNA")).is_empty());
    }

    #[test]
    fn heap_size_grows_with_rows() {
        let mut t = dna_table();
        let before = t.heap_size();
        t.insert(row![950i64, "a-longer-type-string"]).unwrap();
        assert!(t.heap_size() > before);
    }
}
