//! Tables: columnar row storage + indexes + statistics.

use crate::column::{ColumnStore, RowRef};
use crate::error::StorageError;
use crate::hash::FastMap;
use crate::index::HashIndex;
use crate::predicate::Predicate;
use crate::row::{Row, RowId};
use crate::schema::{ColumnId, TableSchema};
use crate::stats::TableStats;
use crate::value::{Value, ValueType};

/// A table: a schema over a [`ColumnStore`], an optional unique
/// primary-key index, secondary hash indexes, and lazily refreshed
/// statistics. Rows are stored column-major — inserts, scans, and
/// clones do no per-row heap allocation; reads hand out borrowing
/// [`RowRef`] views.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    store: ColumnStore,
    /// Unique index on the primary-key column, if the schema declares one.
    pk_index: Option<HashIndex>,
    /// Secondary (non-unique) indexes by column.
    secondary: FastMap<ColumnId, HashIndex>,
    /// Cached statistics; `None` until [`Table::analyze`] runs.
    stats: Option<TableStats>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        let pk_index = schema.primary_key.map(|_| HashIndex::new());
        let store = ColumnStore::new(schema.columns.iter().map(|c| c.ty));
        Table { schema, store, pk_index, secondary: FastMap::default(), stats: None }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// All rows, in insertion order, as borrowing views.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> + Clone {
        self.store.iter()
    }

    /// Row by id.
    pub fn row(&self, id: RowId) -> RowRef<'_> {
        self.store.row(id)
    }

    /// The columnar storage behind this table (read-only; the
    /// conformance suite and the benches audit it directly).
    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    /// Insert a row, maintaining indexes. Rejects arity mismatches, type
    /// mismatches on non-null values, and duplicate primary keys.
    pub fn insert(&mut self, row: Row) -> Result<RowId, StorageError> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch {
                table: self.schema.name.clone(),
                detail: format!("arity {} != {}", row.arity(), self.schema.arity()),
            });
        }
        for (c, v) in row.values().enumerate() {
            if let Some(ty) = v.value_type() {
                if ty != self.schema.column_type(c) {
                    return Err(StorageError::SchemaMismatch {
                        table: self.schema.name.clone(),
                        detail: format!(
                            "column {} expects {:?}, got {v:?}",
                            c,
                            self.schema.column_type(c)
                        ),
                    });
                }
            }
        }
        let id = self.store.len() as RowId;
        if let (Some(pk_col), Some(pk_index)) = (self.schema.primary_key, self.pk_index.as_mut()) {
            let key = row.get(pk_col);
            if !pk_index.probe(key).is_empty() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
            pk_index.insert(key.clone(), id);
        }
        for (&col, idx) in self.secondary.iter_mut() {
            idx.insert(row.get(col).clone(), id);
        }
        self.store.push_row(&row);
        self.stats = None;
        Ok(id)
    }

    /// Insert one all-integer row straight into the column buffers —
    /// the zero-allocation fast lane for catalog materialization
    /// (AllTops/LeftTops/ExcpTops rows are all-Int). Equivalent to
    /// `insert(row![..])` on an all-Int schema, without building the
    /// owned row.
    pub fn insert_ints(&mut self, vals: &[i64]) -> Result<RowId, StorageError> {
        if vals.len() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch {
                table: self.schema.name.clone(),
                detail: format!("arity {} != {}", vals.len(), self.schema.arity()),
            });
        }
        for c in 0..vals.len() {
            if self.schema.column_type(c) != ValueType::Int {
                return Err(StorageError::SchemaMismatch {
                    table: self.schema.name.clone(),
                    detail: format!("column {c} expects {:?}, got Int", self.schema.column_type(c)),
                });
            }
        }
        let id = self.store.len() as RowId;
        if let (Some(pk_col), Some(pk_index)) = (self.schema.primary_key, self.pk_index.as_mut()) {
            let key = Value::Int(vals[pk_col]);
            if !pk_index.probe(&key).is_empty() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
            pk_index.insert(key, id);
        }
        for (&col, idx) in self.secondary.iter_mut() {
            idx.insert(Value::Int(vals[col]), id);
        }
        self.store.push_ints(vals);
        self.stats = None;
        Ok(id)
    }

    /// Pre-size the column buffers for `n` additional rows (bulk loads).
    pub fn reserve(&mut self, n: usize) {
        self.store.reserve(n);
    }

    /// A copy of this table under a different name: column buffers,
    /// indexes, and statistics are cloned as-is instead of being
    /// re-validated, re-hashed, and re-collected row by row. This is how
    /// the catalog materializes LeftTops from AllTops.
    pub fn clone_renamed(&self, name: impl Into<String>) -> Table {
        let mut t = self.clone();
        t.schema.name = name.into();
        t
    }

    /// Build (or rebuild) a secondary hash index on `col`.
    pub fn create_index(&mut self, col: ColumnId) {
        let mut idx = HashIndex::new();
        for (i, row) in self.store.iter().enumerate() {
            idx.insert(row.get(col), i as RowId);
        }
        self.secondary.insert(col, idx);
    }

    /// Build (or rebuild) a secondary hash index on `col` from one
    /// sorted run of row ids instead of row-by-row insertion: sort the
    /// ids by `(key, id)`, then hand each fully formed run to the index
    /// as an exact-sized posting list. Probe results are identical to
    /// [`Table::create_index`]; this is the bulk path catalog
    /// finalization uses on its large append-only tables.
    pub fn create_index_bulk(&mut self, col: ColumnId) {
        // Null-free Int columns (every catalog table column is one) sort
        // the raw `i64` buffer as flat `(key, id)` pairs — no `Value`
        // construction, no pointer chasing. Anything else (Str columns,
        // or an Int column a null slipped into) takes the generic path.
        let idx = if let Some(vals) = self.store.ints(col) {
            let mut keyed: Vec<(i64, RowId)> = Vec::with_capacity(vals.len());
            keyed.extend(vals.iter().enumerate().map(|(i, &v)| (v, i as RowId)));
            keyed.sort_unstable();
            HashIndex::from_sorted_int_postings(&keyed)
        } else {
            let store = &self.store;
            let mut ids: Vec<RowId> = (0..store.len() as RowId).collect();
            ids.sort_unstable_by(|&a, &b| store.cmp_cells(col, a, b).then(a.cmp(&b)));
            // Run boundaries are detected with borrowed cell compares;
            // only one owned key materializes per distinct value, and
            // the map is pre-sized so it never rehash-grows mid-build.
            let distinct = ids
                .windows(2)
                .filter(|w| store.cmp_cells(col, w[0], w[1]) != std::cmp::Ordering::Equal)
                .count()
                + usize::from(!ids.is_empty());
            let mut idx = HashIndex::with_capacity(distinct);
            let mut i = 0;
            while i < ids.len() {
                let mut j = i + 1;
                while j < ids.len()
                    && store.cmp_cells(col, ids[i], ids[j]) == std::cmp::Ordering::Equal
                {
                    j += 1;
                }
                idx.insert_run(store.value(col, ids[i]), &ids[i..j]);
                i = j;
            }
            idx
        };
        self.secondary.insert(col, idx);
    }

    /// Look up a row by primary key.
    pub fn by_pk(&self, key: &Value) -> Option<RowRef<'_>> {
        let pk_index = self.pk_index.as_ref()?;
        pk_index.probe(key).first().map(|&id| self.row(id))
    }

    /// Row id (not row) by primary key.
    pub fn rowid_by_pk(&self, key: &Value) -> Option<RowId> {
        self.pk_index.as_ref()?.probe(key).first().copied()
    }

    /// Probe a secondary index (must exist) for row ids matching `key`.
    pub fn index_probe(&self, col: ColumnId, key: &Value) -> &[RowId] {
        self.secondary
            .get(&col)
            // lint: allow(unwrap-in-lib): documented contract ("must exist") —
            // probing a column never indexed is a programming error, not data
            .unwrap_or_else(|| panic!("no index on column {col} of {}", self.schema.name))
            .probe(key)
    }

    /// True if a secondary index exists on `col`.
    pub fn has_index(&self, col: ColumnId) -> bool {
        self.secondary.contains_key(&col) || self.schema.primary_key == Some(col)
    }

    /// Sequential scan with a predicate; returns matching row ids. Runs
    /// over the column buffers with no per-row allocation.
    pub fn scan(&self, pred: &Predicate) -> Vec<RowId> {
        self.store
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.eval_ref(*r))
            .map(|(i, _)| i as RowId)
            .collect()
    }

    /// Refresh statistics (one pass). Idempotent until the next insert.
    pub fn analyze(&mut self) -> &TableStats {
        self.stats.get_or_insert_with(|| TableStats::collect(&self.schema, &self.store))
    }

    /// Cached statistics, if [`Table::analyze`] has run since the last insert.
    pub fn stats(&self) -> Option<&TableStats> {
        self.stats.as_ref()
    }

    /// Approximate heap footprint of the column buffers + indexes, in
    /// bytes. This is the quantity reported in the Table 1
    /// space-requirement reproduction; string payloads are counted once
    /// per distinct string (the pool), not once per row.
    pub fn heap_size(&self) -> usize {
        let pk = self.pk_index.as_ref().map(HashIndex::heap_size).unwrap_or(0);
        let sec: usize = self.secondary.values().map(HashIndex::heap_size).sum();
        self.store.heap_size() + pk + sec
    }

    /// Sort rows by a column (ascending, stable) and rebuild all indexes.
    ///
    /// Catalog tables (LeftTops) are stored grouped by topology id so DGJ
    /// group scans are contiguous; this is the clustering step. The sort
    /// permutes the typed column buffers directly — a flat `(i64, id)`
    /// sort when the column is null-free Int — instead of shuffling
    /// owned rows.
    pub fn sort_by_column(&mut self, col: ColumnId) {
        let mut perm: Vec<RowId> = (0..self.store.len() as RowId).collect();
        if let Some(vals) = self.store.ints(col) {
            perm.sort_unstable_by_key(|&i| (vals[i as usize], i));
        } else {
            let store = &self.store;
            perm.sort_unstable_by(|&a, &b| store.cmp_cells(col, a, b).then(a.cmp(&b)));
        }
        self.store.apply_permutation(&perm);
        if let Some(pk_col) = self.schema.primary_key {
            let mut idx = HashIndex::new();
            for (i, row) in self.store.iter().enumerate() {
                idx.insert(row.get(pk_col), i as RowId);
            }
            self.pk_index = Some(idx);
        }
        let mut cols: Vec<ColumnId> = self.secondary.keys().copied().collect();
        cols.sort_unstable();
        for c in cols {
            self.create_index_bulk(c);
        }
        self.stats = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn dna_table() -> Table {
        let schema = TableSchema::new(
            "DNA",
            vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("type", ValueType::Str)],
            Some(0),
        );
        let mut t = Table::new(schema);
        t.insert(row![214i64, "mRNA"]).unwrap();
        t.insert(row![215i64, "mRNA"]).unwrap();
        t.insert(row![742i64, "genomic"]).unwrap();
        t
    }

    #[test]
    fn insert_and_pk_lookup() {
        let t = dna_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_pk(&Value::Int(215)).unwrap().as_str(1), "mRNA");
        assert!(t.by_pk(&Value::Int(999)).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = dna_table();
        let err = t.insert(row![214i64, "EST"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = dna_table();
        assert!(matches!(t.insert(row![1i64]).unwrap_err(), StorageError::SchemaMismatch { .. }));
        assert!(matches!(
            t.insert(row!["notanint", "mRNA"]).unwrap_err(),
            StorageError::SchemaMismatch { .. }
        ));
    }

    #[test]
    fn insert_ints_matches_generic_insert() {
        let schema = TableSchema::new(
            "Rel",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            Some(0),
        );
        let mut a = Table::new(schema.clone());
        let mut b = Table::new(schema);
        for (x, y) in [(1i64, 10i64), (2, 20), (3, 30)] {
            a.insert(row![x, y]).unwrap();
            b.insert_ints(&[x, y]).unwrap();
        }
        assert!(a.rows().eq(b.rows()));
        assert_eq!(a.heap_size(), b.heap_size());
        // Same validation too: duplicate pk and wrong arity rejected.
        assert!(matches!(b.insert_ints(&[1, 99]).unwrap_err(), StorageError::DuplicateKey { .. }));
        assert!(matches!(b.insert_ints(&[4]).unwrap_err(), StorageError::SchemaMismatch { .. }));
        // And a Str column rejects the fast lane outright.
        let mut t = dna_table();
        assert!(matches!(t.insert_ints(&[1, 2]).unwrap_err(), StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn insert_ints_maintains_indexes() {
        let schema = TableSchema::new(
            "Rel",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            None,
        );
        let mut t = Table::new(schema);
        t.create_index(0);
        t.insert_ints(&[7, 1]).unwrap();
        t.insert_ints(&[7, 2]).unwrap();
        assert_eq!(t.index_probe(0, &Value::Int(7)), &[0, 1]);
    }

    #[test]
    fn secondary_index_probe_matches_scan() {
        let mut t = dna_table();
        t.create_index(1);
        let via_idx = t.index_probe(1, &Value::str("mRNA")).to_vec();
        let via_scan = t.scan(&Predicate::eq(1, "mRNA"));
        assert_eq!(via_idx, via_scan);
        assert!(t.has_index(1));
        assert!(t.has_index(0)); // pk
        assert!(!t.has_index(99));
    }

    #[test]
    fn index_maintained_across_inserts() {
        let mut t = dna_table();
        t.create_index(1);
        t.insert(row![900i64, "mRNA"]).unwrap();
        assert_eq!(t.index_probe(1, &Value::str("mRNA")).len(), 3);
    }

    #[test]
    fn analyze_caches_until_insert() {
        let mut t = dna_table();
        let rows = t.analyze().rows;
        assert_eq!(rows, 3);
        assert!(t.stats().is_some());
        t.insert(row![901i64, "EST"]).unwrap();
        assert!(t.stats().is_none());
        assert_eq!(t.analyze().rows, 4);
    }

    #[test]
    fn sort_by_column_rebuilds_indexes() {
        let mut t = dna_table();
        t.create_index(1);
        t.sort_by_column(1); // genomic, mRNA, mRNA
        assert_eq!(t.row(0).as_str(1), "genomic");
        assert_eq!(t.by_pk(&Value::Int(742)).unwrap().as_int(0), 742);
        assert_eq!(t.index_probe(1, &Value::str("mRNA")).len(), 2);
    }

    #[test]
    fn bulk_index_matches_row_by_row_build() {
        let mut a = dna_table();
        a.insert(row![900i64, "mRNA"]).unwrap();
        a.insert(row![901i64, "EST"]).unwrap();
        let mut b = a.clone();
        a.create_index(1);
        b.create_index_bulk(1);
        for key in [Value::str("mRNA"), Value::str("genomic"), Value::str("EST"), Value::str("?")] {
            assert_eq!(a.index_probe(1, &key), b.index_probe(1, &key), "{key:?}");
        }
        // Posting order is insertion order in both builds.
        assert_eq!(b.index_probe(1, &Value::str("mRNA")), &[0, 1, 3]);
    }

    #[test]
    fn bulk_index_int_fast_path_matches() {
        let schema = TableSchema::new(
            "Rel",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            None,
        );
        let mut a = Table::new(schema);
        for (x, y) in [(7, 1), (3, 2), (7, 3), (1, 4), (3, 5), (7, 6)] {
            a.insert(row![x as i64, y as i64]).unwrap();
        }
        let mut b = a.clone();
        a.create_index(0);
        b.create_index_bulk(0);
        for key in [1i64, 3, 7, 99] {
            assert_eq!(a.index_probe(0, &Value::Int(key)), b.index_probe(0, &Value::Int(key)));
        }
        assert_eq!(b.index_probe(0, &Value::Int(7)), &[0, 2, 5]);
    }

    #[test]
    fn bulk_index_with_nulls_falls_back_to_generic_path() {
        let schema = TableSchema::new(
            "N",
            vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
            None,
        );
        let mut t = Table::new(schema);
        t.insert(row![1i64, 1i64]).unwrap();
        t.insert(Row::new(vec![Value::Null, Value::Int(2)])).unwrap();
        t.insert(row![1i64, 3i64]).unwrap();
        t.create_index_bulk(0);
        assert_eq!(t.index_probe(0, &Value::Int(1)), &[0, 2]);
        assert_eq!(t.index_probe(0, &Value::Null), &[1]);
    }

    #[test]
    fn bulk_index_on_empty_table() {
        let mut t = Table::new(dna_table().schema().clone());
        t.create_index_bulk(1);
        assert!(t.index_probe(1, &Value::str("mRNA")).is_empty());
    }

    #[test]
    fn heap_size_grows_with_rows() {
        let mut t = dna_table();
        let before = t.heap_size();
        t.insert(row![950i64, "a-longer-type-string"]).unwrap();
        assert!(t.heap_size() > before);
    }

    #[test]
    fn heap_size_counts_pooled_strings_once() {
        let mut t = dna_table();
        let before = t.heap_size();
        t.insert(row![950i64, "mRNA"]).unwrap(); // already pooled
        let dup_growth = t.heap_size() - before;
        let before = t.heap_size();
        t.insert(row![951i64, "never-seen-before"]).unwrap();
        let fresh_growth = t.heap_size() - before;
        assert!(
            fresh_growth > dup_growth,
            "fresh string must cost its payload: {fresh_growth} vs {dup_growth}"
        );
    }

    #[test]
    fn clone_renamed_shares_layout() {
        let t = dna_table();
        let c = t.clone_renamed("Copy");
        assert_eq!(c.schema().name, "Copy");
        assert!(t.rows().eq(c.rows()));
        assert_eq!(t.heap_size(), c.heap_size());
    }
}
