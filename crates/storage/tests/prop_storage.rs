//! Property tests for the storage substrate: index probes agree with
//! scans, and selectivity estimates agree with measured fractions.

use proptest::prelude::*;
use ts_storage::{row, ColumnDef, Predicate, Table, TableSchema, Value, ValueType};

fn table_from(values: &[(i64, u8)]) -> Table {
    // Column 1 takes one of four string values, column 2 is a keyword bag.
    let mut t = Table::new(TableSchema::new(
        "T",
        vec![
            ColumnDef::new("ID", ValueType::Int),
            ColumnDef::new("kind", ValueType::Str),
            ColumnDef::new("desc", ValueType::Str),
        ],
        Some(0),
    ));
    const KINDS: [&str; 4] = ["mRNA", "EST", "genomic", "plasmid"];
    for (i, &(seedish, kind)) in values.iter().enumerate() {
        let kind = KINDS[(kind % 4) as usize];
        let mut desc = String::from("base");
        if seedish % 3 == 0 {
            desc.push_str(" alpha");
        }
        if seedish % 7 == 0 {
            desc.push_str(" beta");
        }
        t.insert(row![i as i64, kind, desc]).expect("unique pk");
    }
    t.create_index(1);
    t.analyze();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_probe_agrees_with_scan(values in proptest::collection::vec((0i64..100, 0u8..8), 1..60)) {
        let t = table_from(&values);
        for kind in ["mRNA", "EST", "genomic", "plasmid", "absent"] {
            let via_scan = t.scan(&Predicate::eq(1, kind));
            let via_index = t.index_probe(1, &Value::str(kind)).to_vec();
            prop_assert_eq!(via_scan, via_index, "kind {}", kind);
        }
    }

    #[test]
    fn eq_selectivity_matches_actual_fraction(values in proptest::collection::vec((0i64..100, 0u8..8), 1..60)) {
        let t = table_from(&values);
        let stats = t.stats().expect("analyzed");
        for kind in ["mRNA", "EST", "genomic", "plasmid"] {
            let actual = t.scan(&Predicate::eq(1, kind)).len() as f64 / t.len() as f64;
            let est = stats.eq_selectivity(1, &Value::str(kind));
            // Four distinct values: all tracked in the MCV list, so the
            // estimate must be exact.
            prop_assert!((actual - est).abs() < 1e-12, "kind {}: {} vs {}", kind, actual, est);
        }
    }

    #[test]
    fn contains_selectivity_matches_actual_fraction(values in proptest::collection::vec((0i64..100, 0u8..8), 1..60)) {
        let t = table_from(&values);
        let stats = t.stats().expect("analyzed");
        for kw in ["alpha", "beta", "base", "gamma"] {
            let actual = t.scan(&Predicate::contains(2, kw)).len() as f64 / t.len() as f64;
            let est = stats.contains_selectivity(2, kw);
            prop_assert!((actual - est).abs() < 1e-12, "kw {}: {} vs {}", kw, actual, est);
        }
    }

    #[test]
    fn boolean_predicates_respect_logic(values in proptest::collection::vec((0i64..100, 0u8..8), 1..40)) {
        let t = table_from(&values);
        let p = Predicate::eq(1, "mRNA");
        let q = Predicate::contains(2, "alpha");
        let and_rows = t.scan(&p.clone().and(q.clone()));
        let or_rows = t.scan(&p.clone().or(q.clone()));
        let p_rows = t.scan(&p);
        let q_rows = t.scan(&q);
        // AND ⊆ each; each ⊆ OR; |AND| + |OR| == |P| + |Q|.
        for r in &and_rows {
            prop_assert!(p_rows.contains(r) && q_rows.contains(r));
        }
        for r in &p_rows {
            prop_assert!(or_rows.contains(r));
        }
        prop_assert_eq!(and_rows.len() + or_rows.len(), p_rows.len() + q_rows.len());
    }

    #[test]
    fn sort_by_column_preserves_content(values in proptest::collection::vec((0i64..100, 0u8..8), 1..40)) {
        let mut t = table_from(&values);
        let before: Vec<i64> = {
            let mut ids: Vec<i64> = t.rows().map(|r| r.as_int(0)).collect();
            ids.sort_unstable();
            ids
        };
        t.sort_by_column(1);
        let mut after: Vec<i64> = t.rows().map(|r| r.as_int(0)).collect();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        // PK lookups survive the re-cluster.
        let ids: Vec<i64> = t.rows().map(|r| r.as_int(0)).collect();
        for id in ids {
            let key = Value::Int(id);
            prop_assert_eq!(t.by_pk(&key).expect("present").get(0), key);
        }
    }
}
