//! The running example of the paper as a reusable fixture.
//!
//! [`figure3_db`] builds exactly the database of Fig. 3 (and hence the
//! data graph of Fig. 6): proteins 32/78/34/44, unigenes 103/150/188/194,
//! DNAs 214/215/742 and their encodes / uni_encodes / uni_contains rows.
//! Unit tests across the workspace assert the paper's worked examples
//! (PS(78,215,3) = {l2,l3,l6}, 3-Top(78,215) = {T3,T4}, …) against it.
//!
//! Entity-set ids: Protein=0, Unigene=1, DNA=2.
//! Relationship-set ids: encodes=0, uni_encodes=1, uni_contains=2.

use ts_storage::{row, ColumnDef, Database, TableSchema, ValueType};

use crate::data_graph::DataGraph;
use crate::schema_graph::SchemaGraph;

/// Entity-set id of Protein in the fixture.
pub const PROTEIN: u16 = 0;
/// Entity-set id of Unigene in the fixture.
pub const UNIGENE: u16 = 1;
/// Entity-set id of DNA in the fixture.
pub const DNA: u16 = 2;

/// Build the Fig. 3 example database.
pub fn figure3_db() -> Database {
    let mut db = Database::new();
    let protein = db
        .create_table(TableSchema::new(
            "Protein",
            vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("desc", ValueType::Str)],
            Some(0),
        ))
        .expect("fresh db");
    let unigene = db
        .create_table(TableSchema::new(
            "Unigene",
            vec![ColumnDef::new("ID", ValueType::Int), ColumnDef::new("desc", ValueType::Str)],
            Some(0),
        ))
        .expect("fresh db");
    let dna = db
        .create_table(TableSchema::new(
            "DNA",
            vec![
                ColumnDef::new("ID", ValueType::Int),
                ColumnDef::new("type", ValueType::Str),
                ColumnDef::new("defs", ValueType::Str),
            ],
            Some(0),
        ))
        .expect("fresh db");
    let encodes = db
        .create_table(TableSchema::new(
            "Encodes",
            vec![ColumnDef::new("PID", ValueType::Int), ColumnDef::new("DID", ValueType::Int)],
            None,
        ))
        .expect("fresh db");
    let uni_encodes = db
        .create_table(TableSchema::new(
            "Uni_encodes",
            vec![ColumnDef::new("UID", ValueType::Int), ColumnDef::new("PID", ValueType::Int)],
            None,
        ))
        .expect("fresh db");
    let uni_contains = db
        .create_table(TableSchema::new(
            "Uni_contains",
            vec![ColumnDef::new("UID", ValueType::Int), ColumnDef::new("DID", ValueType::Int)],
            None,
        ))
        .expect("fresh db");

    let p = db.declare_entity_set("Protein", protein).expect("fresh db");
    let u = db.declare_entity_set("Unigene", unigene).expect("fresh db");
    let d = db.declare_entity_set("DNA", dna).expect("fresh db");
    db.declare_rel_set("encodes", encodes, p, 0, d, 1).expect("fresh db");
    db.declare_rel_set("uni_encodes", uni_encodes, u, 0, p, 1).expect("fresh db");
    db.declare_rel_set("uni_contains", uni_contains, u, 0, d, 1).expect("fresh db");

    for (id, desc) in [
        (32i64, "Ubiquitin-conjugating enzyme UBCi"),
        (78, "Ubiquitin-conjugating enzyme variant MMS2"),
        (34, "vitamin D inducible protein"),
        (44, "ubiquitin-conjugating enzyme E2B homolog"),
    ] {
        db.table_mut(protein).insert(row![id, desc]).expect("unique ids");
    }
    for (id, desc) in [
        (103i64, "ubiquitin-conjugating enzyme E2"),
        (150, "hypothetical protein FLJ13855"),
        (188, "ubiquitin-conjugating enzyme E2S"),
        (194, "ubiquitin-conjugating enzyme E2S"),
    ] {
        db.table_mut(unigene).insert(row![id, desc]).expect("unique ids");
    }
    for (id, ty, defs) in [
        (214i64, "mRNA", "Oryctolagus cuniculus ubiquitin-conjugating enzyme UBCi"),
        (215, "mRNA", "Homo sapiens MMS2 mRNA complete cds"),
        (742, "mRNA", "Human ubiquitin carrier protein E2-EPF mRNA complete cds"),
    ] {
        db.table_mut(dna).insert(row![id, ty, defs]).expect("unique ids");
    }
    db.table_mut(encodes).insert(row![32i64, 214i64]).expect("insert");
    db.table_mut(encodes).insert(row![34i64, 215i64]).expect("insert");
    for (uid, pid) in [(103i64, 78i64), (150, 78), (103, 34), (188, 44), (194, 44)] {
        db.table_mut(uni_encodes).insert(row![uid, pid]).expect("insert");
    }
    for (uid, did) in [(103i64, 215i64), (150, 215), (188, 742), (194, 742)] {
        db.table_mut(uni_contains).insert(row![uid, did]).expect("insert");
    }
    db.analyze_all();
    db
}

/// Fixture bundle: database, data graph, schema graph.
pub fn figure3() -> (Database, DataGraph, SchemaGraph) {
    let db = figure3_db();
    let g = DataGraph::from_db(&db).expect("fixture is consistent");
    let s = SchemaGraph::from_db(&db);
    (db, g, s)
}
