//! The schema graph (Fig. 1 of the paper) and schema-level path machinery.
//!
//! Nodes are entity sets, edges are relationship sets. Two tools live
//! here:
//!
//! * **walk enumeration** — all label walks of length ≤ l between two
//!   entity sets. These are the "schema paths" the paper's Topology
//!   Computation module iterates (§4.1), and the raw material for the
//!   SQL method's candidate-topology enumeration (§3.1, the "ten schema
//!   paths of length three or less that connect proteins and DNAs");
//! * **reachability tables** — `reach[t][r]` = "can entity set `t` reach
//!   the target set within r edges", used to prune the instance-level
//!   DFS in [`crate::paths`] to exactly the walks that could complete.

use ts_storage::cast;
use ts_storage::Database;

/// A walk at the schema level: `types.len() == rels.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchemaWalk {
    /// Entity-set ids along the walk.
    pub types: Vec<u16>,
    /// Relationship-set ids along the walk.
    pub rels: Vec<u16>,
}

impl SchemaWalk {
    /// Walk length in edges.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True for the degenerate zero-edge walk (never produced).
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }
}

/// The schema graph: entity sets connected by relationship sets.
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    n_types: usize,
    /// adjacency: for each entity set, (relationship id, other entity set).
    adj: Vec<Vec<(u16, u16)>>,
}

impl SchemaGraph {
    /// Build from the ER declarations of a database.
    pub fn from_db(db: &Database) -> Self {
        let n_types = db.entity_sets().len();
        let mut adj: Vec<Vec<(u16, u16)>> = vec![Vec::new(); n_types];
        for (rid, rel) in db.rel_sets().iter().enumerate() {
            let rid16 = cast::to_u16(rid);
            adj[rel.from].push((rid16, cast::to_u16(rel.to)));
            if rel.from != rel.to {
                adj[rel.to].push((rid16, cast::to_u16(rel.from)));
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        SchemaGraph { n_types, adj }
    }

    /// Number of entity sets.
    pub fn type_count(&self) -> usize {
        self.n_types
    }

    /// Neighbour list of an entity set.
    pub fn neighbors(&self, t: u16) -> &[(u16, u16)] {
        &self.adj[t as usize]
    }

    /// All label walks from `from` to `to` of length 1..=`max_len`.
    ///
    /// Walks may revisit entity sets (instance paths are simple over
    /// *entities*, not over *types* — P-D-P-U-D in §6.2.3 revisits both P
    /// and D at the schema level).
    pub fn walks(&self, from: u16, to: u16, max_len: usize) -> Vec<SchemaWalk> {
        let reach = self.reach_table(to, max_len);
        let mut out = Vec::new();
        let mut types = vec![from];
        let mut rels = Vec::new();
        self.walk_dfs(to, max_len, &reach, &mut types, &mut rels, &mut out);
        out
    }

    fn walk_dfs(
        &self,
        to: u16,
        max_len: usize,
        reach: &[Vec<bool>],
        types: &mut Vec<u16>,
        rels: &mut Vec<u16>,
        out: &mut Vec<SchemaWalk>,
    ) {
        let cur = *types.last().expect("walk is non-empty");
        if !rels.is_empty() && cur == to {
            out.push(SchemaWalk { types: types.clone(), rels: rels.clone() });
        }
        if rels.len() == max_len {
            return;
        }
        let remaining = max_len - rels.len();
        for &(rid, next) in &self.adj[cur as usize] {
            if !reach[next as usize][remaining - 1] {
                continue;
            }
            types.push(next);
            rels.push(rid);
            self.walk_dfs(to, max_len, reach, types, rels, out);
            types.pop();
            rels.pop();
        }
    }

    /// `reach[t][r]` — true iff entity set `t` can reach `target` using at
    /// most `r` edges (`reach[target][0]` is true).
    pub fn reach_table(&self, target: u16, max_len: usize) -> Vec<Vec<bool>> {
        let mut reach = vec![vec![false; max_len + 1]; self.n_types];
        reach[target as usize][0] = true;
        for r in 1..=max_len {
            for t in 0..self.n_types {
                reach[t][r] = reach[t][r - 1]
                    || self.adj[t].iter().any(|&(_, next)| reach[next as usize][r - 1]);
            }
        }
        reach
    }

    /// Count of schema walks (the paper's "ten schema paths of length
    /// three or less that connect proteins and DNAs").
    pub fn walk_count(&self, from: u16, to: u16, max_len: usize) -> usize {
        self.walks(from, to, max_len).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_storage::{ColumnDef, TableSchema, ValueType};

    /// Minimal Biozon-like ER schema: Protein, DNA, Unigene with
    /// encodes(P,D), uni_encodes(U,P), uni_contains(U,D).
    fn tiny_schema_db() -> Database {
        let mut db = Database::new();
        let mk_entity = |db: &mut Database, name: &str| {
            let t = db
                .create_table(TableSchema::new(
                    name,
                    vec![ColumnDef::new("ID", ValueType::Int)],
                    Some(0),
                ))
                .unwrap();
            db.declare_entity_set(name, t).unwrap()
        };
        let p = mk_entity(&mut db, "Protein");
        let d = mk_entity(&mut db, "DNA");
        let u = mk_entity(&mut db, "Unigene");
        let mk_rel = |db: &mut Database, name: &str, a, b| {
            let t = db
                .create_table(TableSchema::new(
                    name,
                    vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
                    None,
                ))
                .unwrap();
            db.declare_rel_set(name, t, a, 0, b, 1).unwrap()
        };
        mk_rel(&mut db, "encodes", p, d);
        mk_rel(&mut db, "uni_encodes", u, p);
        mk_rel(&mut db, "uni_contains", u, d);
        db
    }

    #[test]
    fn adjacency_is_undirected() {
        let db = tiny_schema_db();
        let g = SchemaGraph::from_db(&db);
        assert_eq!(g.type_count(), 3);
        // Protein sees encodes->DNA and uni_encodes->Unigene.
        let p_neigh = g.neighbors(0);
        assert_eq!(p_neigh.len(), 2);
        assert!(p_neigh.contains(&(0, 1)));
        assert!(p_neigh.contains(&(1, 2)));
    }

    #[test]
    fn walks_of_length_one_and_two() {
        let db = tiny_schema_db();
        let g = SchemaGraph::from_db(&db);
        let w1 = g.walks(0, 1, 1);
        assert_eq!(w1.len(), 1); // P -encodes- D
        assert_eq!(w1[0].rels, vec![0]);
        let w2 = g.walks(0, 1, 2);
        // length 1: P-D; length 2: P-U-D
        assert_eq!(w2.len(), 2);
        assert!(w2.iter().any(|w| w.rels == vec![1, 2]));
    }

    #[test]
    fn walks_can_revisit_types() {
        let db = tiny_schema_db();
        let g = SchemaGraph::from_db(&db);
        let w3 = g.walks(0, 1, 3);
        // Must include P-D-P-D style revisits: P -encodes- D -encodes- P -encodes- D.
        assert!(w3.iter().any(|w| w.types == vec![0, 1, 0, 1]));
        // And the count matches a hand enumeration:
        // l=1: PD (1)
        // l=2: P-U-D (1)
        // l=3: P-D-P-D, P-D-U-D, P-U-P-D, P-U-D? no (len2 already), P-U-U? no.
        //   From P: P-D-P-D (e,e,e), P-D-U-D (e,uc,uc), P-U-P-D (ue,ue,e).
        assert_eq!(w3.len(), 5);
    }

    #[test]
    fn reach_table_monotone() {
        let db = tiny_schema_db();
        let g = SchemaGraph::from_db(&db);
        let reach = g.reach_table(1, 3);
        assert!(reach[1][0]);
        assert!(!reach[0][0]);
        assert!(reach[0][1]);
        assert!(reach[2][1]);
        for row in reach.iter().take(3) {
            for r in 1..=3 {
                assert!(!row[r - 1] || row[r], "monotone in r");
            }
        }
    }

    #[test]
    fn self_relationship_supported() {
        let mut db = tiny_schema_db();
        let sim = db
            .create_table(TableSchema::new(
                "Similar",
                vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
                None,
            ))
            .unwrap();
        db.declare_rel_set("similar", sim, 0, 0, 0, 1).unwrap();
        let g = SchemaGraph::from_db(&db);
        let w = g.walks(0, 1, 2);
        // P -similar- P -encodes- D is now a walk.
        assert!(w.iter().any(|w| w.rels == vec![3, 0]));
    }
}
