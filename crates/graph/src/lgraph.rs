//! Small labeled undirected multigraphs.
//!
//! Topology graphs are unions of a handful of paths, so they are tiny
//! (≤ ~2 + (l−1)·s nodes). [`LGraph`] stores them densely: node labels are
//! entity-set ids, edge labels are relationship-set ids. Multi-edges with
//! different labels between the same node pair are allowed (two entity
//! sets can be connected by several relationship sets).

use std::fmt;

use ts_storage::cast;

/// A small labeled undirected multigraph.
///
/// Node indices are `u8` — topology graphs never approach 256 nodes; the
/// compute pipeline enforces this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LGraph {
    /// Node labels (entity-set / type ids).
    pub labels: Vec<u16>,
    /// Edges `(u, v, label)` with `u <= v` normalized; sorted, deduped.
    pub edges: Vec<(u8, u8, u16)>,
}

impl LGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with `label`; returns its index.
    pub fn add_node(&mut self, label: u16) -> u8 {
        assert!(self.labels.len() < u8::MAX as usize, "topology graph too large");
        self.labels.push(label);
        cast::to_u8(self.labels.len() - 1)
    }

    /// Add an undirected edge; endpoint order is normalized. Duplicate
    /// `(u, v, label)` triples are ignored (parallel identical
    /// relationships collapse at the schema level).
    pub fn add_edge(&mut self, u: u8, v: u8, label: u16) {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        assert!((b as usize) < self.labels.len(), "edge endpoint out of range");
        let e = (a, b, label);
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v` (parallel edges counted separately).
    pub fn degree(&self, v: u8) -> usize {
        self.edges.iter().filter(|&&(a, b, _)| a == v || b == v).count()
    }

    /// Labeled neighbourhood of `v`: `(edge label, neighbour index)` pairs.
    pub fn neighbors(&self, v: u8) -> Vec<(u16, u8)> {
        let mut out = Vec::new();
        for &(a, b, l) in &self.edges {
            if a == v {
                out.push((l, b));
            } else if b == v {
                out.push((l, a));
            }
        }
        out
    }

    /// Normalize edge order (sorted). Called before hashing/compare.
    pub fn normalize(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Apply a node permutation: node `i` of the result is node `perm[i]`
    /// of `self`. Used by property tests and the canonicalizer.
    pub fn permuted(&self, perm: &[u8]) -> LGraph {
        assert_eq!(perm.len(), self.labels.len());
        let mut inv = vec![0u8; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = cast::to_u8(new);
        }
        let mut g = LGraph {
            labels: perm.iter().map(|&old| self.labels[old as usize]).collect(),
            edges: self
                .edges
                .iter()
                .map(|&(u, v, l)| {
                    let (a, b) = (inv[u as usize], inv[v as usize]);
                    if a <= b {
                        (a, b, l)
                    } else {
                        (b, a, l)
                    }
                })
                .collect(),
        };
        g.normalize();
        g
    }

    /// True if the graph is connected (empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u8];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (_, w) in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

impl fmt::Display for LGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LGraph(n={}, e={:?})", self.node_count(), self.edges)
    }
}

/// Builds the union of instance paths into an [`LGraph`], identifying
/// nodes by an external key (the data-graph node id), as required by
/// Definition 2: paths that share an intermediate entity must share the
/// node in the union graph (this is exactly what distinguishes T3 from T4
/// in Fig. 5 of the paper).
#[derive(Debug, Clone, Default)]
pub struct InstanceGraphBuilder {
    graph: LGraph,
    /// key (external node id) → local index, small linear map.
    keys: Vec<(u32, u8)>,
}

impl InstanceGraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an external node, creating it with `label` on first sight.
    pub fn node(&mut self, key: u32, label: u16) -> u8 {
        if let Some(&(_, idx)) = self.keys.iter().find(|(k, _)| *k == key) {
            return idx;
        }
        let idx = self.graph.add_node(label);
        self.keys.push((key, idx));
        idx
    }

    /// Add an edge between two external nodes.
    pub fn edge(&mut self, ukey: u32, ulabel: u16, vkey: u32, vlabel: u16, elabel: u16) {
        let u = self.node(ukey, ulabel);
        let v = self.node(vkey, vlabel);
        self.graph.add_edge(u, v, elabel);
    }

    /// Finish: normalized union graph.
    pub fn build(mut self) -> LGraph {
        self.graph.normalize();
        self.graph
    }

    /// Drop all nodes and edges, keeping buffer capacity — the reusable
    /// form of the builder: the Definition-2 product builds one union
    /// per representative combination, and a cleared builder makes that
    /// allocation-free once its buffers are warm.
    pub fn clear(&mut self) {
        self.graph.labels.clear();
        self.graph.edges.clear();
        self.keys.clear();
    }

    /// Normalize and borrow the built union without consuming the
    /// builder. Callers clone only the unions they decide to keep (the
    /// memoized-canonicalization path discards almost all of them).
    pub fn finish_ref(&mut self) -> &LGraph {
        self.graph.normalize();
        &self.graph
    }

    /// Local index of an already-interned key, if present.
    pub fn lookup(&self, key: u32) -> Option<u8> {
        self.keys.iter().find(|(k, _)| *k == key).map(|&(_, i)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Protein=0, DNA=1, Unigene=2; encodes=0, uni_encodes=1, uni_contains=2.
    fn path_graph(labels: &[u16], rels: &[u16]) -> LGraph {
        let mut g = LGraph::new();
        let nodes: Vec<u8> = labels.iter().map(|&l| g.add_node(l)).collect();
        for (i, &r) in rels.iter().enumerate() {
            g.add_edge(nodes[i], nodes[i + 1], r);
        }
        g.normalize();
        g
    }

    #[test]
    fn add_and_query() {
        let g = path_graph(&[0, 2, 1], &[1, 2]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), vec![(1, 1)]);
        assert!(g.is_connected());
    }

    #[test]
    fn duplicate_edges_collapse_but_multilabels_survive() {
        let mut g = LGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0); // same undirected edge
        g.add_edge(a, b, 7); // different label: a real multi-edge
        g.normalize();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = path_graph(&[0, 2, 1], &[1, 2]);
        let p = g.permuted(&[2, 0, 1]);
        assert_eq!(p.labels, vec![1, 0, 2]);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        // degree multiset preserved
        let mut d1: Vec<usize> = (0..3).map(|v| g.degree(v as u8)).collect();
        let mut d2: Vec<usize> = (0..3).map(|v| p.degree(v as u8)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn disconnected_detected() {
        let mut g = LGraph::new();
        g.add_node(0);
        g.add_node(1);
        assert!(!g.is_connected());
        assert!(LGraph::new().is_connected());
    }

    #[test]
    fn builder_shares_nodes_across_paths() {
        // Paths p78-u103-d215 and p78-u103-p34-d215 share u103 (paper's
        // l2 and l6 sharing the entity u103 -> topology T3 not T4).
        let mut b = InstanceGraphBuilder::new();
        b.edge(78, 0, 103, 2, 1); // p78 -uni_encodes- u103
        b.edge(103, 2, 215, 1, 2); // u103 -uni_contains- d215
        b.edge(103, 2, 34, 0, 1); // u103 -uni_encodes- p34
        b.edge(34, 0, 215, 1, 0); // p34 -encodes- d215
        let g = b.build();
        assert_eq!(g.node_count(), 4); // p78, u103, d215, p34 (u103 shared)
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn builder_distinct_keys_make_distinct_nodes() {
        // Same label sequence but distinct unigene entities -> 5 nodes (T4 shape).
        let mut b = InstanceGraphBuilder::new();
        b.edge(78, 0, 103, 2, 1);
        b.edge(103, 2, 215, 1, 2);
        b.edge(78, 0, 150, 2, 1); // different unigene
        b.edge(150, 2, 215, 1, 2);
        let g = b.build();
        assert_eq!(g.node_count(), 4); // p78, u103, u150, d215
        assert_eq!(g.edge_count(), 4);
        assert_eq!(b_lookup_count(&g), 2);
    }

    fn b_lookup_count(g: &LGraph) -> usize {
        g.labels.iter().filter(|&&l| l == 2).count()
    }
}
