//! # ts-graph
//!
//! Graph substrate for topology search, implementing §2.1 of the paper:
//!
//! * the **data graph** (Fig. 6): one node per entity, one undirected
//!   labeled edge per relationship row ([`DataGraph`]);
//! * the **schema graph** (Fig. 1): entity sets connected by relationship
//!   sets, with label-walk enumeration and reachability tables used to
//!   prune instance-path search ([`SchemaGraph`]);
//! * **simple-path enumeration** `PS(a, b, l)` — all simple paths of
//!   length ≤ l between two entities ([`paths`]);
//! * **labeled-graph isomorphism** via exact canonical codes (colour
//!   refinement + backtracking minimal encoding, a miniature nauty) —
//!   the identity of a topology everywhere in the system ([`canon`]);
//! * small **labeled multigraphs** and union-building from paths
//!   ([`lgraph`]), plus ASCII [`render`]ing of topology structures.

#![forbid(unsafe_code)]

pub mod canon;
pub mod data_graph;
pub mod fixtures;
pub mod lgraph;
pub mod paths;
pub mod render;
pub mod schema_graph;

pub use canon::{canonical_code, is_isomorphic, CanonicalCode};
pub use data_graph::{DataGraph, NodeId};
pub use lgraph::{InstanceGraphBuilder, LGraph};
pub use paths::{
    enumerate_pair_paths, paths_from, paths_from_into, PairPaths, Path, PathArena, PathRef,
    PathSig, PathSink,
};
pub use schema_graph::SchemaGraph;
