//! ASCII rendering of topology structures.
//!
//! Fig. 12 of the paper shows "the details of the top 10 most frequent
//! topologies relating Proteins and DNAs" as small graph drawings; the
//! benchmark harness reproduces that table textually. Rendering is
//! deterministic: nodes are emitted in canonical-ish order (sorted by
//! label then index) and each edge on its own line.

use crate::lgraph::LGraph;
use ts_storage::cast;

/// Render a labeled graph as an edge list, resolving label names through
/// the provided lookup functions.
///
/// Output looks like:
/// ```text
/// nodes: Protein#0, Unigene#1, DNA#2
/// Protein#0 --uni_encodes-- Unigene#1
/// Unigene#1 --uni_contains-- DNA#2
/// ```
pub fn render(
    g: &LGraph,
    type_name: &dyn Fn(u16) -> String,
    rel_name: &dyn Fn(u16) -> String,
) -> String {
    let mut out = String::new();
    let names: Vec<String> =
        g.labels.iter().enumerate().map(|(i, &l)| format!("{}#{}", type_name(l), i)).collect();
    out.push_str("nodes: ");
    out.push_str(&names.join(", "));
    out.push('\n');
    let mut edges = g.edges.clone();
    edges.sort_unstable();
    for (u, v, l) in edges {
        out.push_str(&format!("{} --{}-- {}\n", names[u as usize], rel_name(l), names[v as usize]));
    }
    out
}

/// Compact single-line motif string, e.g. `P-U-D` paths render as
/// `[P]-ue-[U]-uc-[D]` using caller-provided short names.
pub fn motif_line(
    g: &LGraph,
    type_name: &dyn Fn(u16) -> String,
    rel_name: &dyn Fn(u16) -> String,
) -> String {
    // If the graph is a simple path, draw it linearly; otherwise fall back
    // to a degree-annotated summary.
    if let Some(order) = path_order(g) {
        let mut s = String::new();
        for (i, &v) in order.iter().enumerate() {
            s.push_str(&format!("[{}]", type_name(g.labels[v as usize])));
            if i + 1 < order.len() {
                let (a, b) = (order[i], order[i + 1]);
                let lbl = g
                    .edges
                    .iter()
                    .find(|&&(x, y, _)| (x == a && y == b) || (x == b && y == a))
                    .map(|&(_, _, l)| rel_name(l))
                    .unwrap_or_else(|| "?".into());
                s.push_str(&format!("-{lbl}-"));
            }
        }
        s
    } else {
        let mut labels: Vec<String> = g.labels.iter().map(|&l| type_name(l)).collect();
        labels.sort();
        format!("{{{} nodes: {}; {} edges}}", g.node_count(), labels.join(","), g.edge_count())
    }
}

/// If `g` is a simple path, return its node order end-to-end.
fn path_order(g: &LGraph) -> Option<Vec<u8>> {
    let n = g.node_count();
    if n == 0 || g.edge_count() != n - 1 {
        return None;
    }
    let degs: Vec<usize> = (0..n).map(|v| g.degree(cast::to_u8(v))).collect();
    let ends: Vec<u8> = (0..n).filter(|&v| degs[v] == 1).map(cast::to_u8).collect();
    if n == 1 {
        return Some(vec![0]);
    }
    if ends.len() != 2 || degs.iter().any(|&d| d > 2) {
        return None;
    }
    let mut order = vec![ends[0]];
    let mut prev: Option<u8> = None;
    while order.len() < n {
        let cur = *order.last().expect("non-empty");
        let next = g.neighbors(cur).into_iter().map(|(_, w)| w).find(|&w| Some(w) != prev)?;
        prev = Some(cur);
        order.push(next);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tn(t: u16) -> String {
        ["P", "U", "D"][t as usize].to_string()
    }
    fn rn(r: u16) -> String {
        ["e", "ue", "uc"][r as usize].to_string()
    }

    #[test]
    fn renders_path_as_line() {
        let mut g = LGraph::new();
        let p = g.add_node(0);
        let u = g.add_node(1);
        let d = g.add_node(2);
        g.add_edge(p, u, 1);
        g.add_edge(u, d, 2);
        g.normalize();
        assert_eq!(motif_line(&g, &tn, &rn), "[P]-ue-[U]-uc-[D]");
        let full = render(&g, &tn, &rn);
        assert!(full.contains("P#0 --ue-- U#1"));
        assert!(full.contains("U#1 --uc-- D#2"));
    }

    #[test]
    fn non_path_falls_back_to_summary() {
        let mut g = LGraph::new();
        let p = g.add_node(0);
        let u1 = g.add_node(1);
        let u2 = g.add_node(1);
        let d = g.add_node(2);
        g.add_edge(p, u1, 1);
        g.add_edge(u1, d, 2);
        g.add_edge(p, u2, 1);
        g.add_edge(u2, d, 2);
        g.normalize();
        let line = motif_line(&g, &tn, &rn);
        assert!(line.contains("4 nodes"));
        assert!(line.contains("4 edges"));
    }

    #[test]
    fn single_node_renders() {
        let mut g = LGraph::new();
        g.add_node(0);
        assert_eq!(motif_line(&g, &tn, &rn), "[P]");
    }

    #[test]
    fn cycle_is_not_a_path() {
        let mut g = LGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 2);
        g.normalize();
        assert!(path_order(&g).is_none());
    }
}
