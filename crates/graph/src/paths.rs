//! Simple-path enumeration: `PS(a, b, l)` from §2.1 of the paper.
//!
//! "A path is a sequence of consecutive edges ... A simple path is a path
//! such that no node is traversed more than once. All paths mentioned in
//! this paper are simple paths." Enumeration is a DFS over the data graph
//! pruned by schema-level reachability: a partial path is extended along
//! an edge only if the neighbour's entity set can still reach the target
//! entity set within the remaining length budget. This visits exactly the
//! prefixes of label walks the schema admits — the same work the paper's
//! per-schema-path SQL queries do (§4.1), fused into one traversal.

use std::collections::HashMap;

use crate::data_graph::{DataGraph, NodeId};
use crate::schema_graph::SchemaGraph;

/// An instance-level simple path. `nodes.len() == rels.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Data-graph nodes along the path.
    pub nodes: Vec<NodeId>,
    /// Relationship-set ids along the path.
    pub rels: Vec<u16>,
}

impl Path {
    /// Path length in edges.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True for a degenerate zero-edge path (never produced by the
    /// enumerator, but kept total for callers constructing paths).
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// `(first, last)` node.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (*self.nodes.first().expect("path has nodes"), *self.nodes.last().expect("path has nodes"))
    }

    /// Label signature identifying the path's isomorphism class.
    ///
    /// A path's labeled graph is determined by its alternating
    /// type/relationship label sequence, up to reversal; the signature is
    /// the lexicographic minimum of the sequence and its reverse, so two
    /// paths are isomorphic iff their signatures are equal (Definition 1's
    /// equivalence classes reduce to signature equality for paths).
    pub fn sig(&self, g: &DataGraph) -> PathSig {
        let mut fwd = Vec::with_capacity(self.nodes.len() + self.rels.len());
        for i in 0..self.rels.len() {
            fwd.push(g.node_type(self.nodes[i]));
            fwd.push(self.rels[i]);
        }
        fwd.push(g.node_type(*self.nodes.last().expect("path has nodes")));
        let mut rev = fwd.clone();
        rev.reverse();
        PathSig(fwd.min(rev))
    }

    /// The path with nodes and rels reversed.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        let mut rels = self.rels.clone();
        nodes.reverse();
        rels.reverse();
        Path { nodes, rels }
    }
}

/// Reversal-normalized label signature of a path (its equivalence class).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathSig(pub Vec<u16>);

impl PathSig {
    /// Number of edges in paths of this class.
    pub fn len(&self) -> usize {
        self.0.len() / 2
    }

    /// True only for the degenerate empty signature.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// All simple paths of length 1..=`l` starting at `a` and ending at any
/// node of entity set `to_es`. `reach` must be
/// `schema.reach_table(to_es, l)`.
pub fn paths_from(
    g: &DataGraph,
    reach: &[Vec<bool>],
    a: NodeId,
    to_es: u16,
    l: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    let mut nodes = vec![a];
    let mut rels: Vec<u16> = Vec::new();
    let mut on_path = HashMap::new();
    on_path.insert(a, ());
    dfs(g, reach, to_es, l, &mut nodes, &mut rels, &mut on_path, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &DataGraph,
    reach: &[Vec<bool>],
    to_es: u16,
    l: usize,
    nodes: &mut Vec<NodeId>,
    rels: &mut Vec<u16>,
    on_path: &mut HashMap<NodeId, ()>,
    out: &mut Vec<Path>,
) {
    let cur = *nodes.last().expect("path non-empty");
    if !rels.is_empty() && g.node_type(cur) == to_es {
        out.push(Path { nodes: nodes.clone(), rels: rels.clone() });
    }
    if rels.len() == l {
        return;
    }
    let remaining = l - rels.len();
    for &(rid, next) in g.neighbors(cur) {
        if on_path.contains_key(&next) {
            continue;
        }
        if !reach[g.node_type(next) as usize][remaining - 1] {
            continue;
        }
        nodes.push(next);
        rels.push(rid);
        on_path.insert(next, ());
        dfs(g, reach, to_es, l, nodes, rels, on_path, out);
        on_path.remove(&next);
        nodes.pop();
        rels.pop();
    }
}

/// The `l`-path sets for every connected pair `(a, b)` with
/// `type(a) = from_es`, `type(b) = to_es`: the union of `PS(a,b,l)` over
/// all pairs, grouped by pair.
#[derive(Debug, Clone, Default)]
pub struct PairPaths {
    /// `(a, b)` → paths from a to b. For `from_es == to_es`, keys are
    /// normalized to `a < b` and each path is stored oriented a→b.
    pub map: HashMap<(NodeId, NodeId), Vec<Path>>,
}

impl PairPaths {
    /// Number of connected pairs.
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of paths.
    pub fn path_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Pairs in deterministic order (sorted by node ids).
    pub fn sorted_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut keys: Vec<_> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

/// Enumerate the path sets between two entity sets.
pub fn enumerate_pair_paths(
    g: &DataGraph,
    schema: &SchemaGraph,
    from_es: u16,
    to_es: u16,
    l: usize,
) -> PairPaths {
    let reach = schema.reach_table(to_es, l);
    let mut pp = PairPaths::default();
    for &a in g.nodes_of_type(from_es) {
        for path in paths_from(g, &reach, a, to_es, l) {
            let (s, e) = path.endpoints();
            debug_assert_eq!(s, a);
            if from_es == to_es {
                // Each undirected pair is discovered from both endpoints;
                // keep the a < b orientation only.
                if s > e {
                    continue;
                }
            }
            pp.map.entry((s, e)).or_default().push(path);
        }
    }
    pp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3;

    #[test]
    fn ps_78_215_3_matches_paper() {
        // §2.2 Example: PS(78, 215, 3) = { l2, l3, l6 }.
        let (db, g, schema) = figure3();
        let _ = db;
        let p78 = g.node(0, 78).unwrap();
        let d215 = g.node(2, 215).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = &pp.map[&(p78, d215)];
        assert_eq!(paths.len(), 3);
        // Two of them share a signature (P-U-D via u103 and via u150), one
        // is the length-3 P-U-P-D path.
        let mut sigs: Vec<PathSig> = paths.iter().map(|p| p.sig(&g)).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 2);
    }

    #[test]
    fn ps_44_742_3_has_two_isomorphic_paths() {
        // §2.2 Example: PS(44, 742, 3) = { l4, l5 }, both isomorphic.
        let (_db, g, schema) = figure3();
        let p44 = g.node(0, 44).unwrap();
        let d742 = g.node(2, 742).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = &pp.map[&(p44, d742)];
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].sig(&g), paths[1].sig(&g));
    }

    #[test]
    fn pair_32_214_has_direct_encode() {
        let (_db, g, schema) = figure3();
        let p32 = g.node(0, 32).unwrap();
        let d214 = g.node(2, 214).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = &pp.map[&(p32, d214)];
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn signature_reversal_invariance() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        for paths in pp.map.values() {
            for p in paths {
                assert_eq!(p.sig(&g), p.reversed().sig(&g));
            }
        }
    }

    #[test]
    fn paths_are_simple() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 4);
        for paths in pp.map.values() {
            for p in paths {
                let mut ns = p.nodes.clone();
                ns.sort_unstable();
                ns.dedup();
                assert_eq!(ns.len(), p.nodes.len(), "path revisits a node: {p:?}");
            }
        }
    }

    #[test]
    fn same_type_pairs_normalized() {
        // Protein–Protein pairs through shared unigenes/DNAs.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 0, 2);
        for &(a, b) in pp.map.keys() {
            assert!(a < b);
        }
        // p78 and p34 share u103: a P-U-P path must exist.
        let p78 = g.node(0, 78).unwrap();
        let p34 = g.node(0, 34).unwrap();
        let key = (p78.min(p34), p78.max(p34));
        assert!(pp.map.contains_key(&key));
    }

    #[test]
    fn length_limit_respected() {
        let (_db, g, schema) = figure3();
        for l in 1..=4 {
            let pp = enumerate_pair_paths(&g, &schema, 0, 2, l);
            for paths in pp.map.values() {
                for p in paths {
                    assert!(p.len() <= l);
                }
            }
        }
    }

    #[test]
    fn longer_limit_never_loses_paths() {
        let (_db, g, schema) = figure3();
        let pp3 = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let pp4 = enumerate_pair_paths(&g, &schema, 0, 2, 4);
        assert!(pp4.path_count() >= pp3.path_count());
        for (pair, paths) in &pp3.map {
            let sup = &pp4.map[pair];
            for p in paths {
                assert!(sup.contains(p));
            }
        }
    }
}
