//! Simple-path enumeration: `PS(a, b, l)` from §2.1 of the paper.
//!
//! "A path is a sequence of consecutive edges ... A simple path is a path
//! such that no node is traversed more than once. All paths mentioned in
//! this paper are simple paths." Enumeration is a DFS over the data graph
//! pruned by schema-level reachability: a partial path is extended along
//! an edge only if the neighbour's entity set can still reach the target
//! entity set within the remaining length budget. This visits exactly the
//! prefixes of label walks the schema admits — the same work the paper's
//! per-schema-path SQL queries do (§4.1), fused into one traversal.
//!
//! The offline build enumerates millions of paths, so results stream into
//! a [`PathSink`]: either a plain `Vec<Path>` (one allocation pair per
//! path — fine for online per-pair work) or a CSR-style [`PathArena`]
//! (two shared buffers plus an offset table, with borrowing [`PathRef`]
//! views — the allocation-lean form the catalog build uses).

use crate::data_graph::{DataGraph, NodeId};
use crate::schema_graph::SchemaGraph;
use ts_storage::cast;
use ts_storage::FastMap;

/// An owned instance-level simple path. `nodes.len() == rels.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Data-graph nodes along the path.
    pub nodes: Vec<NodeId>,
    /// Relationship-set ids along the path.
    pub rels: Vec<u16>,
}

impl Path {
    /// Path length in edges.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True for a degenerate zero-edge path (never produced by the
    /// enumerator, but kept total for callers constructing paths).
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Borrowing view of this path.
    pub fn as_ref(&self) -> PathRef<'_> {
        PathRef { nodes: &self.nodes, rels: &self.rels }
    }

    /// `(first, last)` node.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        self.as_ref().endpoints()
    }

    /// Label signature identifying the path's isomorphism class.
    pub fn sig(&self, g: &DataGraph) -> PathSig {
        self.as_ref().sig(g)
    }

    /// The path with nodes and rels reversed.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        let mut rels = self.rels.clone();
        nodes.reverse();
        rels.reverse();
        Path { nodes, rels }
    }
}

/// A borrowed view of a simple path — the arena's element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRef<'a> {
    /// Data-graph nodes along the path.
    pub nodes: &'a [NodeId],
    /// Relationship-set ids along the path.
    pub rels: &'a [u16],
}

impl PathRef<'_> {
    /// Path length in edges.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True for a degenerate zero-edge path.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// `(first, last)` node.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        // lint: allow(panic-on-worker-path): Path is only constructed with
        // at least one node (a path of k rels has k + 1 nodes)
        (*self.nodes.first().expect("path has nodes"), *self.nodes.last().expect("path has nodes"))
    }

    /// Label signature identifying the path's isomorphism class.
    ///
    /// A path's labeled graph is determined by its alternating
    /// type/relationship label sequence, up to reversal; the signature is
    /// the lexicographic minimum of the sequence and its reverse, so two
    /// paths are isomorphic iff their signatures are equal (Definition 1's
    /// equivalence classes reduce to signature equality for paths). Built
    /// in one pass: the forward sequence is materialized once and compared
    /// against its own mirror in place — no clone-and-reverse round-trip.
    pub fn sig(&self, g: &DataGraph) -> PathSig {
        let mut fwd = Vec::new();
        self.sig_into(g, &mut fwd);
        PathSig(fwd)
    }

    /// Fill `buf` with the path's normalized signature sequence — the
    /// scratch form of [`PathRef::sig`]. The offline build groups and
    /// interns signatures through one reused buffer, so a path's sig
    /// costs no allocation once the buffer is warm.
    pub fn sig_into(&self, g: &DataGraph, buf: &mut Vec<u16>) {
        buf.clear();
        self.sig_extend(g, buf);
    }

    /// Append the path's normalized signature sequence to `arena`
    /// (normalizing only the appended tail) — the flat-arena form used
    /// when many paths' signatures share one buffer. This is the single
    /// definition of the signature encoding; both scratch forms go
    /// through it.
    pub fn sig_extend(&self, g: &DataGraph, arena: &mut Vec<u16>) {
        let start = arena.len();
        arena.reserve(self.nodes.len() + self.rels.len());
        for i in 0..self.rels.len() {
            arena.push(g.node_type(self.nodes[i]));
            arena.push(self.rels[i]);
        }
        // lint: allow(panic-on-worker-path): Path is only constructed with
        // at least one node
        arena.push(g.node_type(*self.nodes.last().expect("path has nodes")));
        PathSig::normalize_slice(&mut arena[start..]);
    }

    /// An owning copy.
    pub fn to_path(&self) -> Path {
        Path { nodes: self.nodes.to_vec(), rels: self.rels.to_vec() }
    }
}

/// Reversal-normalized label signature of a path (its equivalence class).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathSig(pub Vec<u16>);

impl PathSig {
    /// Normalize an interleaved `type, rel, type, …, type` sequence into
    /// a signature: the lexicographic minimum of the sequence and its
    /// reverse, decided by an in-place mirror comparison (the sequence is
    /// reversed only when the reverse actually wins).
    pub fn from_interleaved(mut seq: Vec<u16>) -> PathSig {
        Self::normalize_slice(&mut seq);
        PathSig(seq)
    }

    /// In-place normalization of an interleaved sequence: reverse it iff
    /// the reverse is lexicographically smaller (mirror comparison, no
    /// copy). After this, the slice *is* signature bytes — comparing or
    /// hashing it is comparing or hashing the signature.
    pub fn normalize_slice(seq: &mut [u16]) {
        let n = seq.len();
        for i in 0..n {
            match seq[i].cmp(&seq[n - 1 - i]) {
                std::cmp::Ordering::Less => return,
                std::cmp::Ordering::Greater => {
                    seq.reverse();
                    return;
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        // palindromic: forward == reverse
    }

    /// Number of edges in paths of this class.
    pub fn len(&self) -> usize {
        self.0.len() / 2
    }

    /// True only for the degenerate empty signature.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Receives each accepted path of a DFS enumeration as borrowed slices.
///
/// The two standard sinks: `Vec<Path>` copies every path into owned
/// vectors (the seed behaviour); [`PathArena`] appends into shared
/// buffers without per-path allocation.
pub trait PathSink {
    /// Called once per accepted path; `nodes.len() == rels.len() + 1`.
    fn accept(&mut self, nodes: &[NodeId], rels: &[u16]);
}

impl PathSink for Vec<Path> {
    fn accept(&mut self, nodes: &[NodeId], rels: &[u16]) {
        self.push(Path { nodes: nodes.to_vec(), rels: rels.to_vec() });
    }
}

/// CSR-style path store: one shared `nodes` buffer, one shared `rels`
/// buffer, and an offset table. Path `i` has `nodes[off[i]..off[i+1]]`;
/// because every path has exactly one more node than relationships, the
/// `rels` range is derived from the same table (`off[i] - i`) — a single
/// offset column covers both buffers.
#[derive(Debug, Clone)]
pub struct PathArena {
    nodes: Vec<NodeId>,
    rels: Vec<u16>,
    /// Node-buffer start offset per path, plus one trailing end offset.
    off: Vec<u32>,
}

impl Default for PathArena {
    fn default() -> Self {
        PathArena { nodes: Vec::new(), rels: Vec::new(), off: vec![0] }
    }
}

impl PathArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.off.len() - 1
    }

    /// True when no paths are stored.
    pub fn is_empty(&self) -> bool {
        self.off.len() == 1
    }

    /// Total node slots in the backing buffer (capacity diagnostics).
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Drop all paths, keeping the buffer capacity for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.rels.clear();
        self.off.truncate(1);
    }

    /// Append a path (two `memcpy`s, no per-path allocation once the
    /// buffers are warm).
    pub fn push(&mut self, nodes: &[NodeId], rels: &[u16]) {
        debug_assert_eq!(nodes.len(), rels.len() + 1, "path shape");
        self.nodes.extend_from_slice(nodes);
        self.rels.extend_from_slice(rels);
        self.off.push(cast::to_u32(self.nodes.len()));
    }

    /// Borrowing view of path `i`.
    pub fn get(&self, i: usize) -> PathRef<'_> {
        let (ns, ne) = (self.off[i] as usize, self.off[i + 1] as usize);
        PathRef { nodes: &self.nodes[ns..ne], rels: &self.rels[ns - i..ne - (i + 1)] }
    }

    /// Iterate over all stored paths.
    pub fn iter(&self) -> impl Iterator<Item = PathRef<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl PathSink for PathArena {
    fn accept(&mut self, nodes: &[NodeId], rels: &[u16]) {
        self.push(nodes, rels);
    }
}

/// All simple paths of length 1..=`l` starting at `a` and ending at any
/// node of entity set `to_es`, as owned [`Path`]s. `reach` must be
/// `schema.reach_table(to_es, l)`. The offline build streams into an
/// arena via [`paths_from_into`] instead.
pub fn paths_from(
    g: &DataGraph,
    reach: &[Vec<bool>],
    a: NodeId,
    to_es: u16,
    l: usize,
) -> Vec<Path> {
    let mut out = Vec::new();
    paths_from_into(g, reach, a, to_es, l, &mut out);
    out
}

/// Stream all simple paths of length 1..=`l` from `a` to entity set
/// `to_es` into `sink`.
pub fn paths_from_into<S: PathSink>(
    g: &DataGraph,
    reach: &[Vec<bool>],
    a: NodeId,
    to_es: u16,
    l: usize,
    sink: &mut S,
) {
    let mut nodes = Vec::with_capacity(l + 1);
    nodes.push(a);
    let mut rels: Vec<u16> = Vec::with_capacity(l);
    dfs(g, reach, to_es, l, &mut nodes, &mut rels, sink);
}

fn dfs<S: PathSink>(
    g: &DataGraph,
    reach: &[Vec<bool>],
    to_es: u16,
    l: usize,
    nodes: &mut Vec<NodeId>,
    rels: &mut Vec<u16>,
    sink: &mut S,
) {
    // lint: allow(panic-on-worker-path): the dfs entry point seeds nodes
    // with the start node before the first recursive call
    let cur = *nodes.last().expect("path non-empty");
    if !rels.is_empty() && g.node_type(cur) == to_es {
        sink.accept(nodes, rels);
    }
    if rels.len() == l {
        return;
    }
    let remaining = l - rels.len();
    for &(rid, next) in g.neighbors(cur) {
        // Simplicity check: the path stack is at most l+1 nodes, so a
        // linear scan beats any hash set.
        if nodes.contains(&next) {
            continue;
        }
        if !reach[g.node_type(next) as usize][remaining - 1] {
            continue;
        }
        nodes.push(next);
        rels.push(rid);
        dfs(g, reach, to_es, l, nodes, rels, sink);
        nodes.pop();
        rels.pop();
    }
}

/// The `l`-path sets for every connected pair `(a, b)` with
/// `type(a) = from_es`, `type(b) = to_es`: the union of `PS(a,b,l)` over
/// all pairs, grouped by pair. Backed by a [`PathArena`]; the map holds
/// arena indices, not owned paths.
#[derive(Debug, Clone, Default)]
pub struct PairPaths {
    /// The shared path store.
    pub arena: PathArena,
    /// `(a, b)` → arena indices of the paths from a to b. For
    /// `from_es == to_es`, keys are normalized to `a < b` and each path
    /// is stored oriented a→b. Consumers never iterate this map raw —
    /// [`PairPaths::sorted_pairs`] is the deterministic order.
    pub map: FastMap<(NodeId, NodeId), Vec<u32>>,
}

impl PairPaths {
    /// Number of connected pairs.
    pub fn pair_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of paths.
    pub fn path_count(&self) -> usize {
        self.arena.len()
    }

    /// Pairs in deterministic order (sorted by node ids).
    pub fn sorted_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut keys: Vec<_> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Borrowing views of the paths of one pair (empty if unconnected).
    pub fn paths(&self, a: NodeId, b: NodeId) -> Vec<PathRef<'_>> {
        self.map
            .get(&(a, b))
            .map(|idxs| idxs.iter().map(|&i| self.arena.get(i as usize)).collect())
            .unwrap_or_default()
    }

    /// All paths of all pairs, as borrowing views.
    pub fn all_paths(&self) -> impl Iterator<Item = PathRef<'_>> {
        self.arena.iter()
    }
}

/// Sink that files each accepted path under its endpoint pair, skipping
/// the duplicate b→a discovery of same-type pairs.
struct PairSink {
    arena: PathArena,
    map: FastMap<(NodeId, NodeId), Vec<u32>>,
    same_type: bool,
}

impl PathSink for PairSink {
    fn accept(&mut self, nodes: &[NodeId], rels: &[u16]) {
        // lint: allow(panic-on-worker-path): sinks only receive non-empty
        // node lists — accept fires after the dfs seeded its start node
        let (s, e) = (nodes[0], *nodes.last().expect("path has nodes"));
        if self.same_type && s > e {
            // Each undirected pair is discovered from both endpoints;
            // keep the a < b orientation only.
            return;
        }
        let idx = cast::to_u32(self.arena.len());
        self.arena.push(nodes, rels);
        self.map.entry((s, e)).or_default().push(idx);
    }
}

/// Enumerate the path sets between two entity sets.
pub fn enumerate_pair_paths(
    g: &DataGraph,
    schema: &SchemaGraph,
    from_es: u16,
    to_es: u16,
    l: usize,
) -> PairPaths {
    let reach = schema.reach_table(to_es, l);
    let mut sink =
        PairSink { arena: PathArena::new(), map: FastMap::default(), same_type: from_es == to_es };
    for &a in g.nodes_of_type(from_es) {
        paths_from_into(g, &reach, a, to_es, l, &mut sink);
    }
    PairPaths { arena: sink.arena, map: sink.map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3;

    #[test]
    fn ps_78_215_3_matches_paper() {
        // §2.2 Example: PS(78, 215, 3) = { l2, l3, l6 }.
        let (db, g, schema) = figure3();
        let _ = db;
        let p78 = g.node(0, 78).unwrap();
        let d215 = g.node(2, 215).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = pp.paths(p78, d215);
        assert_eq!(paths.len(), 3);
        // Two of them share a signature (P-U-D via u103 and via u150), one
        // is the length-3 P-U-P-D path.
        let mut sigs: Vec<PathSig> = paths.iter().map(|p| p.sig(&g)).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 2);
    }

    #[test]
    fn ps_44_742_3_has_two_isomorphic_paths() {
        // §2.2 Example: PS(44, 742, 3) = { l4, l5 }, both isomorphic.
        let (_db, g, schema) = figure3();
        let p44 = g.node(0, 44).unwrap();
        let d742 = g.node(2, 742).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = pp.paths(p44, d742);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].sig(&g), paths[1].sig(&g));
    }

    #[test]
    fn pair_32_214_has_direct_encode() {
        let (_db, g, schema) = figure3();
        let p32 = g.node(0, 32).unwrap();
        let d214 = g.node(2, 214).unwrap();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let paths = pp.paths(p32, d214);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn signature_reversal_invariance() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        for p in pp.all_paths() {
            assert_eq!(p.sig(&g), p.to_path().reversed().sig(&g));
        }
    }

    #[test]
    fn palindromic_signatures_survive_normalization() {
        // A sequence equal to its own reverse must pass through unchanged.
        let seq = vec![3u16, 7, 1, 7, 3];
        assert_eq!(PathSig::from_interleaved(seq.clone()).0, seq);
        // And the reverse of a non-palindrome maps to the same signature.
        let fwd = vec![0u16, 5, 2, 6, 1];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(PathSig::from_interleaved(fwd.clone()), PathSig::from_interleaved(rev));
        assert_eq!(PathSig::from_interleaved(fwd.clone()).0, fwd);
    }

    #[test]
    fn paths_are_simple() {
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 2, 4);
        for p in pp.all_paths() {
            let mut ns = p.nodes.to_vec();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), p.nodes.len(), "path revisits a node: {p:?}");
        }
    }

    #[test]
    fn same_type_pairs_normalized() {
        // Protein–Protein pairs through shared unigenes/DNAs.
        let (_db, g, schema) = figure3();
        let pp = enumerate_pair_paths(&g, &schema, 0, 0, 2);
        for &(a, b) in pp.map.keys() {
            assert!(a < b);
        }
        // p78 and p34 share u103: a P-U-P path must exist.
        let p78 = g.node(0, 78).unwrap();
        let p34 = g.node(0, 34).unwrap();
        let key = (p78.min(p34), p78.max(p34));
        assert!(pp.map.contains_key(&key));
    }

    #[test]
    fn length_limit_respected() {
        let (_db, g, schema) = figure3();
        for l in 1..=4 {
            let pp = enumerate_pair_paths(&g, &schema, 0, 2, l);
            for p in pp.all_paths() {
                assert!(p.len() <= l);
            }
        }
    }

    #[test]
    fn longer_limit_never_loses_paths() {
        let (_db, g, schema) = figure3();
        let pp3 = enumerate_pair_paths(&g, &schema, 0, 2, 3);
        let pp4 = enumerate_pair_paths(&g, &schema, 0, 2, 4);
        assert!(pp4.path_count() >= pp3.path_count());
        for (&pair, idxs) in &pp3.map {
            let sup: Vec<Path> = pp4.paths(pair.0, pair.1).iter().map(PathRef::to_path).collect();
            for &i in idxs {
                assert!(sup.contains(&pp3.arena.get(i as usize).to_path()));
            }
        }
    }

    #[test]
    fn arena_roundtrip_preserves_paths() {
        let (_db, g, schema) = figure3();
        let reach = schema.reach_table(2, 3);
        for &a in g.nodes_of_type(0) {
            let owned = paths_from(&g, &reach, a, 2, 3);
            let mut arena = PathArena::new();
            paths_from_into(&g, &reach, a, 2, 3, &mut arena);
            assert_eq!(arena.len(), owned.len());
            for (i, p) in owned.iter().enumerate() {
                assert_eq!(arena.get(i), p.as_ref());
            }
        }
    }

    #[test]
    fn arena_clear_keeps_capacity() {
        let mut arena = PathArena::new();
        arena.push(&[1, 2, 3], &[7, 8]);
        arena.push(&[4, 5], &[9]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(1).endpoints(), (4, 5));
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.node_slots(), 0);
        arena.push(&[6, 7], &[1]);
        assert_eq!(arena.get(0).rels, &[1]);
    }
}
