//! The data graph (Fig. 6 of the paper): entities as nodes, relationship
//! rows as undirected labeled edges.

use ts_storage::cast;
use ts_storage::FastMap;

use ts_storage::{Database, StorageError, Value};

/// Global node identifier in the data graph.
pub type NodeId = u32;

/// The instance-level graph over a [`Database`]'s ER declarations.
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    /// Entity-set id per node.
    node_type: Vec<u16>,
    /// Entity primary key per node.
    node_entity: Vec<i64>,
    /// Adjacency: `(relationship-set id, neighbour)`, sorted and deduped.
    adj: Vec<Vec<(u16, NodeId)>>,
    /// `(entity set, entity id)` → node.
    index: FastMap<(u16, i64), NodeId>,
    /// Nodes per entity set.
    type_nodes: Vec<Vec<NodeId>>,
}

impl DataGraph {
    /// Build the data graph from a database: one node per entity-table
    /// row, one edge per relationship-table row. Dangling foreign keys
    /// are an error — the topology catalog must not silently lose paths.
    pub fn from_db(db: &Database) -> Result<Self, StorageError> {
        let mut g = DataGraph {
            type_nodes: vec![Vec::new(); db.entity_sets().len()],
            ..DataGraph::default()
        };

        for (es_id, es) in db.entity_sets().iter().enumerate() {
            let table = db.table(es.table);
            let pk = table
                .schema()
                .primary_key
                .ok_or_else(|| StorageError::BadDefinition(format!("{} lacks pk", es.name)))?;
            for row in table.rows() {
                let id = row.get(pk).try_int().ok_or_else(|| StorageError::SchemaMismatch {
                    table: es.name.clone(),
                    detail: "non-integer primary key".into(),
                })?;
                let node: NodeId = cast::to_u32(g.node_type.len());
                g.node_type.push(cast::to_u16(es_id));
                g.node_entity.push(id);
                g.adj.push(Vec::new());
                g.index.insert((cast::to_u16(es_id), id), node);
                g.type_nodes[es_id].push(node);
            }
        }

        for (rid, rel) in db.rel_sets().iter().enumerate() {
            let table = db.table(rel.table);
            for row in table.rows() {
                let from_id = row.get(rel.from_col).try_int().ok_or_else(|| {
                    StorageError::SchemaMismatch {
                        table: rel.name.clone(),
                        detail: "non-integer foreign key".into(),
                    }
                })?;
                let to_id =
                    row.get(rel.to_col).try_int().ok_or_else(|| StorageError::SchemaMismatch {
                        table: rel.name.clone(),
                        detail: "non-integer foreign key".into(),
                    })?;
                let u = *g.index.get(&(cast::to_u16(rel.from), from_id)).ok_or_else(|| {
                    StorageError::BadDefinition(format!(
                        "{}: dangling fk {} into {}",
                        rel.name,
                        from_id,
                        db.entity_set(rel.from).name
                    ))
                })?;
                let v = *g.index.get(&(cast::to_u16(rel.to), to_id)).ok_or_else(|| {
                    StorageError::BadDefinition(format!(
                        "{}: dangling fk {} into {}",
                        rel.name,
                        to_id,
                        db.entity_set(rel.to).name
                    ))
                })?;
                if u != v {
                    let rid16 = cast::to_u16(rid);
                    g.adj[u as usize].push((rid16, v));
                    g.adj[v as usize].push((rid16, u));
                }
            }
        }

        for a in &mut g.adj {
            a.sort_unstable();
            a.dedup();
        }
        Ok(g)
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.node_type.len()
    }

    /// Total (undirected) edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Node by `(entity set, entity id)`.
    pub fn node(&self, es: u16, entity: i64) -> Option<NodeId> {
        self.index.get(&(es, entity)).copied()
    }

    /// Entity-set id of a node.
    pub fn node_type(&self, n: NodeId) -> u16 {
        self.node_type[n as usize]
    }

    /// Entity primary key of a node.
    pub fn node_entity(&self, n: NodeId) -> i64 {
        self.node_entity[n as usize]
    }

    /// Entity primary key as a storage [`Value`].
    pub fn node_entity_value(&self, n: NodeId) -> Value {
        Value::Int(self.node_entity[n as usize])
    }

    /// Neighbours of a node: `(relationship-set id, neighbour)`.
    pub fn neighbors(&self, n: NodeId) -> &[(u16, NodeId)] {
        &self.adj[n as usize]
    }

    /// All nodes of an entity set.
    pub fn nodes_of_type(&self, es: u16) -> &[NodeId] {
        &self.type_nodes[es as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_db;
    use ts_storage::row;

    #[test]
    fn figure6_counts() {
        let db = figure3_db();
        let g = DataGraph::from_db(&db).unwrap();
        assert_eq!(g.node_count(), 11); // 4 P + 4 U + 3 D
        assert_eq!(g.edge_count(), 11); // 2 encodes + 5 uni_encodes + 4 uni_contains
        assert_eq!(g.nodes_of_type(0).len(), 4);
    }

    #[test]
    fn node_lookup_and_labels() {
        let db = figure3_db();
        let g = DataGraph::from_db(&db).unwrap();
        let p78 = g.node(0, 78).unwrap();
        assert_eq!(g.node_type(p78), 0);
        assert_eq!(g.node_entity(p78), 78);
        assert!(g.node(0, 9999).is_none());
        // p78 has uni_encodes edges from u103 and u150.
        let n = g.neighbors(p78);
        assert_eq!(n.len(), 2);
        assert!(n.iter().all(|&(r, _)| r == 1));
    }

    #[test]
    fn dangling_fk_is_an_error() {
        let mut db = figure3_db();
        let enc = db.table_id("Encodes").unwrap();
        db.table_mut(enc).insert(row![32i64, 999_999i64]).unwrap();
        let err = DataGraph::from_db(&db).unwrap_err();
        assert!(matches!(err, StorageError::BadDefinition(_)));
    }

    #[test]
    fn duplicate_relationship_rows_collapse() {
        let mut db = figure3_db();
        let enc = db.table_id("Encodes").unwrap();
        db.table_mut(enc).insert(row![32i64, 214i64]).unwrap(); // duplicate
        let g = DataGraph::from_db(&db).unwrap();
        assert_eq!(g.edge_count(), 11);
    }
}
