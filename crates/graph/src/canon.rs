//! Exact canonical codes for small labeled multigraphs.
//!
//! Isomorphism of labeled graphs (Definition in §2.1 of the paper) is the
//! equivalence that defines both path classes and topologies, so the
//! system needs a *canonical form*: a value equal for two graphs iff they
//! are isomorphic. We compute it nauty-style, scaled down to topology-
//! sized graphs:
//!
//! 1. **Colour refinement** (1-WL): nodes start coloured by their label
//!    and are iteratively split by the multiset of (edge label, neighbour
//!    colour) pairs, with deterministic re-ranking each round.
//! 2. **Backtracking search** over all node orderings consistent with the
//!    refined colours (positions are filled from the minimal remaining
//!    colour class), emitting an incremental adjacency encoding and
//!    keeping the lexicographically smallest — with prefix pruning
//!    against the best code found so far.
//!
//! Topology graphs have ≤ ~15 nodes and refinement collapses almost all
//! symmetry, so the search is effectively linear in practice; the
//! exhaustive fallback guarantees exactness on adversarial symmetric
//! inputs (property-tested below).

use crate::lgraph::LGraph;
use ts_storage::cast;

/// A canonical code: two graphs have equal codes iff they are isomorphic
/// as labeled multigraphs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CanonicalCode(pub Vec<u32>);

impl CanonicalCode {
    /// Stable hex digest, handy as a compact catalog key in dumps.
    pub fn digest(&self) -> String {
        // FNV-1a over the code words; collisions are irrelevant because
        // equality always goes through the full code.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.0 {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        format!("{h:016x}")
    }
}

/// Compute the canonical code of `g`.
pub fn canonical_code(g: &LGraph) -> CanonicalCode {
    let n = g.node_count();
    if n == 0 {
        return CanonicalCode(Vec::new());
    }
    let colors = refine(g);
    let mut search = Search {
        g,
        colors: &colors,
        perm: Vec::with_capacity(n),
        used: vec![false; n],
        code: Vec::new(),
        best: None,
    };
    search.run();
    // lint: allow(panic-on-worker-path): the n == 0 early return above
    // means run() always records at least one candidate code
    CanonicalCode(search.best.expect("non-empty graph yields a code"))
}

/// Isomorphism test via canonical codes, with cheap invariant pre-checks.
pub fn is_isomorphic(a: &LGraph, b: &LGraph) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let mut la = a.labels.clone();
    let mut lb = b.labels.clone();
    la.sort_unstable();
    lb.sort_unstable();
    if la != lb {
        return false;
    }
    canonical_code(a) == canonical_code(b)
}

/// 1-WL colour refinement with deterministic colour ranks.
fn refine(g: &LGraph) -> Vec<u32> {
    let n = g.node_count();
    // Initial colours: rank of node label.
    let mut sorted_labels: Vec<u16> = g.labels.clone();
    sorted_labels.sort_unstable();
    sorted_labels.dedup();
    let mut colors: Vec<u32> = g
        .labels
        .iter()
        // lint: allow(panic-on-worker-path): sorted_labels was built from
        // exactly these labels three lines above, so the search always hits
        .map(|l| cast::to_u32(sorted_labels.binary_search(l).expect("label present")))
        .collect();

    // Precompute neighbourhoods once.
    let neigh: Vec<Vec<(u16, u8)>> = (0..n).map(|v| g.neighbors(cast::to_u8(v))).collect();

    loop {
        // Signature per node: (current colour, sorted (elabel, neighbour colour)).
        let mut sigs: Vec<(u32, Vec<(u16, u32)>)> = Vec::with_capacity(n);
        for v in 0..n {
            let mut ns: Vec<(u16, u32)> =
                neigh[v].iter().map(|&(el, w)| (el, colors[w as usize])).collect();
            ns.sort_unstable();
            sigs.push((colors[v], ns));
        }
        let mut distinct: Vec<&(u32, Vec<(u16, u32)>)> = sigs.iter().collect();
        distinct.sort();
        distinct.dedup();
        let new_colors: Vec<u32> = sigs
            .iter()
            // lint: allow(panic-on-worker-path): distinct was built from
            // sigs on the line above, so the search always hits
            .map(|s| cast::to_u32(distinct.binary_search(&s).expect("sig present")))
            .collect();
        if new_colors == colors {
            return colors;
        }
        colors = new_colors;
    }
}

/// Backtracking minimal-code search.
struct Search<'a> {
    g: &'a LGraph,
    colors: &'a [u32],
    perm: Vec<u8>,
    used: Vec<bool>,
    code: Vec<u32>,
    best: Option<Vec<u32>>,
}

impl Search<'_> {
    fn run(&mut self) {
        self.step(true);
    }

    /// `tight` — the current partial code equals the best code's prefix
    /// of the same length. Only then may a row that compares greater
    /// than best's corresponding segment be pruned; once the partial
    /// code is strictly smaller ("free"), every completion must be
    /// explored because it beats the current best regardless of later
    /// rows. (All complete codes have equal length: each label, slot
    /// separator, row marker and edge label appears exactly once.)
    fn step(&mut self, tight: bool) {
        let n = self.g.node_count();
        if self.perm.len() == n {
            match &self.best {
                Some(b) if self.code.as_slice() >= b.as_slice() => {}
                _ => self.best = Some(self.code.clone()),
            }
            return;
        }
        // Candidates: unused nodes in the minimal remaining colour class.
        let cmin = (0..n)
            .filter(|&v| !self.used[v])
            .map(|v| self.colors[v])
            .min()
            // lint: allow(panic-on-worker-path): the code.len() == n branch
            // above returns first when every node is used
            .expect("unused node exists");
        let candidates: Vec<usize> =
            (0..n).filter(|&v| !self.used[v] && self.colors[v] == cmin).collect();

        for v in candidates {
            let row = self.row_for(cast::to_u8(v));
            let mut child_tight = false;
            if let Some(best) = &self.best {
                if tight {
                    let start = self.code.len();
                    let end = (start + row.len()).min(best.len());
                    match row.as_slice().cmp(&best[start..end]) {
                        std::cmp::Ordering::Greater => continue, // prune
                        std::cmp::Ordering::Equal => child_tight = true,
                        std::cmp::Ordering::Less => child_tight = false,
                    }
                }
            }
            let mark = self.code.len();
            self.code.extend_from_slice(&row);
            self.used[v] = true;
            self.perm.push(cast::to_u8(v));

            self.step(child_tight);

            self.perm.pop();
            self.used[v] = false;
            self.code.truncate(mark);
        }
    }

    /// Encoding row for placing node `v` at the next position: its label,
    /// then for every already-placed node the sorted edge labels between
    /// them. Token space: 0 = slot separator, 1 = row end, labels ≥ 2.
    fn row_for(&self, v: u8) -> Vec<u32> {
        let mut row = Vec::with_capacity(2 + self.perm.len());
        row.push(u32::from(self.g.labels[v as usize]) + 2);
        for &p in &self.perm {
            let mut labels: Vec<u32> = self
                .g
                .edges
                .iter()
                .filter(|&&(a, b, _)| (a == p && b == v) || (a == v && b == p))
                .map(|&(_, _, l)| u32::from(l) + 2)
                .collect();
            labels.sort_unstable();
            row.push(0);
            row.extend(labels);
        }
        row.push(1);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(labels: &[u16], rels: &[u16]) -> LGraph {
        let mut g = LGraph::new();
        let nodes: Vec<u8> = labels.iter().map(|&l| g.add_node(l)).collect();
        for (i, &r) in rels.iter().enumerate() {
            g.add_edge(nodes[i], nodes[i + 1], r);
        }
        g.normalize();
        g
    }

    #[test]
    fn empty_graph_code() {
        assert_eq!(canonical_code(&LGraph::new()), CanonicalCode(Vec::new()));
    }

    #[test]
    fn permutation_invariance_small() {
        let g = path(&[0, 2, 1], &[1, 2]);
        let c = canonical_code(&g);
        assert_eq!(canonical_code(&g.permuted(&[2, 0, 1])), c);
        assert_eq!(canonical_code(&g.permuted(&[1, 2, 0])), c);
    }

    #[test]
    fn label_changes_change_code() {
        let g1 = path(&[0, 2, 1], &[1, 2]);
        let g2 = path(&[0, 2, 1], &[1, 1]); // different edge label
        let g3 = path(&[0, 0, 1], &[1, 2]); // different node label
        assert_ne!(canonical_code(&g1), canonical_code(&g2));
        assert_ne!(canonical_code(&g1), canonical_code(&g3));
    }

    #[test]
    fn reversal_is_isomorphic() {
        // P -e- D and D -e- P are the same undirected labeled graph.
        let g1 = path(&[0, 1], &[0]);
        let g2 = path(&[1, 0], &[0]);
        assert!(is_isomorphic(&g1, &g2));
    }

    #[test]
    fn t3_vs_t4_distinguished() {
        // Paper Fig. 5: T3 (paths share the Unigene node) vs T4 (they
        // don't) must have different codes.
        // Types: P=0, D=1, U=2. Rels: encodes=0, uni_encodes=1, uni_contains=2.
        let mut t3 = LGraph::new();
        let p78 = t3.add_node(0);
        let u = t3.add_node(2);
        let d = t3.add_node(1);
        let p34 = t3.add_node(0);
        t3.add_edge(p78, u, 1);
        t3.add_edge(u, d, 2);
        t3.add_edge(u, p34, 1);
        t3.add_edge(p34, d, 0);
        t3.normalize();

        let mut t4 = LGraph::new();
        let p78b = t4.add_node(0);
        let u1 = t4.add_node(2);
        let d2 = t4.add_node(1);
        let u2 = t4.add_node(2);
        let p34b = t4.add_node(0);
        t4.add_edge(p78b, u1, 1);
        t4.add_edge(u1, d2, 2);
        t4.add_edge(p78b, u2, 1);
        t4.add_edge(u2, p34b, 1);
        t4.add_edge(p34b, d2, 0);
        t4.normalize();

        assert!(!is_isomorphic(&t3, &t4));
    }

    #[test]
    fn parallel_path_symmetry_collapses() {
        // T5-like: P connected to D via two identical U paths. The two U
        // nodes are automorphic; codes from both orderings must agree.
        let mut g = LGraph::new();
        let p = g.add_node(0);
        let u1 = g.add_node(2);
        let u2 = g.add_node(2);
        let d = g.add_node(1);
        g.add_edge(p, u1, 1);
        g.add_edge(u1, d, 2);
        g.add_edge(p, u2, 1);
        g.add_edge(u2, d, 2);
        g.normalize();
        let c = canonical_code(&g);
        assert_eq!(canonical_code(&g.permuted(&[0, 2, 1, 3])), c);
        assert_eq!(canonical_code(&g.permuted(&[3, 1, 2, 0])), c);
    }

    #[test]
    fn multi_edge_graphs_distinguished() {
        // P =double edge= D (encodes + interacts-with) vs single edge.
        let mut g1 = LGraph::new();
        let p = g1.add_node(0);
        let d = g1.add_node(1);
        g1.add_edge(p, d, 0);
        g1.add_edge(p, d, 3);
        g1.normalize();
        let g2 = path(&[0, 1], &[0]);
        assert!(!is_isomorphic(&g1, &g2));
        // And the double edge is order-insensitive.
        let mut g3 = LGraph::new();
        let d2 = g3.add_node(1);
        let p2 = g3.add_node(0);
        g3.add_edge(p2, d2, 3);
        g3.add_edge(d2, p2, 0);
        g3.normalize();
        assert!(is_isomorphic(&g1, &g3));
    }

    #[test]
    fn digest_is_stable() {
        let g = path(&[0, 1], &[0]);
        let d1 = canonical_code(&g).digest();
        let d2 = canonical_code(&g.permuted(&[1, 0])).digest();
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 16);
    }

    #[test]
    fn cycle_vs_path_same_labels() {
        // Triangle P-D-U-P vs path P-D-U plus isolated? Use equal node and
        // edge counts: square cycle vs two parallel paths already covered;
        // here: 4-cycle vs 4-path+extra edge shapes.
        let mut cyc = LGraph::new();
        let a = cyc.add_node(0);
        let b = cyc.add_node(1);
        let c = cyc.add_node(0);
        let d = cyc.add_node(1);
        cyc.add_edge(a, b, 0);
        cyc.add_edge(b, c, 0);
        cyc.add_edge(c, d, 0);
        cyc.add_edge(d, a, 0);
        cyc.normalize();

        let mut star = LGraph::new();
        let hub = star.add_node(0);
        let x = star.add_node(1);
        let y = star.add_node(1);
        let z = star.add_node(0);
        star.add_edge(hub, x, 0);
        star.add_edge(hub, y, 0);
        star.add_edge(z, x, 0);
        star.add_edge(z, y, 0);
        star.normalize();
        // These are actually isomorphic (both are 4-cycles with alternating
        // labels) — a good sanity check that structure, not construction
        // order, decides the code.
        assert!(is_isomorphic(&cyc, &star));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random small labeled multigraph.
    fn arb_graph() -> impl Strategy<Value = LGraph> {
        (2usize..7).prop_flat_map(|n| {
            let labels = proptest::collection::vec(0u16..4, n);
            let edges =
                proptest::collection::vec((0..n as u8, 0..n as u8, 0u16..3), 0..(n * (n - 1)));
            (labels, edges).prop_map(|(labels, edges)| {
                let mut g = LGraph { labels, edges: Vec::new() };
                for (u, v, l) in edges {
                    if u != v {
                        g.add_edge(u, v, l);
                    }
                }
                g.normalize();
                g
            })
        })
    }

    fn arb_perm(n: usize) -> impl Strategy<Value = Vec<u8>> {
        Just((0..n as u8).collect::<Vec<u8>>()).prop_shuffle()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn canonical_code_is_permutation_invariant(g in arb_graph()) {
            let n = g.node_count();
            let code = canonical_code(&g);
            // exercise a handful of permutations deterministically derived
            let mut perm: Vec<u8> = (0..n as u8).collect();
            perm.rotate_left(1);
            prop_assert_eq!(canonical_code(&g.permuted(&perm)), code.clone());
            perm.reverse();
            prop_assert_eq!(canonical_code(&g.permuted(&perm)), code);
        }

        #[test]
        fn random_permutations_preserve_code(
            (g, perm) in arb_graph().prop_flat_map(|g| {
                let n = g.node_count();
                (Just(g), arb_perm(n))
            })
        ) {
            prop_assert_eq!(canonical_code(&g.permuted(&perm)), canonical_code(&g));
        }

        #[test]
        fn is_isomorphic_is_reflexive_and_symmetric(g in arb_graph(), h in arb_graph()) {
            prop_assert!(is_isomorphic(&g, &g));
            prop_assert_eq!(is_isomorphic(&g, &h), is_isomorphic(&h, &g));
        }
    }
}
