//! Property tests: the reachability-pruned path enumerator against an
//! independent brute-force reference on random databases.

use proptest::prelude::*;
use ts_graph::{enumerate_pair_paths, DataGraph, NodeId, SchemaGraph};
use ts_storage::{row, ColumnDef, Database, TableSchema, ValueType};

/// Build a random 3-entity-set database (P, U, D with the fixture's
/// relationship shapes) from edge lists.
fn build_db(
    n_per_set: usize,
    encodes: &[(usize, usize)],
    uni_encodes: &[(usize, usize)],
    uni_contains: &[(usize, usize)],
) -> Database {
    let mut db = Database::new();
    let mk = |db: &mut Database, name: &str| {
        let t = db
            .create_table(TableSchema::new(
                name,
                vec![ColumnDef::new("ID", ValueType::Int)],
                Some(0),
            ))
            .unwrap();
        db.declare_entity_set(name, t).unwrap();
        t
    };
    let pt = mk(&mut db, "P");
    let ut = mk(&mut db, "U");
    let dt = mk(&mut db, "D");
    let rel = |db: &mut Database, name: &str, a: usize, b: usize| {
        let t = db
            .create_table(TableSchema::new(
                name,
                vec![ColumnDef::new("A", ValueType::Int), ColumnDef::new("B", ValueType::Int)],
                None,
            ))
            .unwrap();
        db.declare_rel_set(name, t, a, 0, b, 1).unwrap();
        t
    };
    let enc = rel(&mut db, "enc", 0, 2);
    let ue = rel(&mut db, "ue", 1, 0);
    let uc = rel(&mut db, "uc", 1, 2);
    // ids: P 100.., U 200.., D 300..
    for i in 0..n_per_set {
        db.table_mut(pt).insert(row![100 + i as i64]).unwrap();
        db.table_mut(ut).insert(row![200 + i as i64]).unwrap();
        db.table_mut(dt).insert(row![300 + i as i64]).unwrap();
    }
    for &(p, d) in encodes {
        db.table_mut(enc)
            .insert(row![100 + (p % n_per_set) as i64, 300 + (d % n_per_set) as i64])
            .unwrap();
    }
    for &(u, p) in uni_encodes {
        db.table_mut(ue)
            .insert(row![200 + (u % n_per_set) as i64, 100 + (p % n_per_set) as i64])
            .unwrap();
    }
    for &(u, d) in uni_contains {
        db.table_mut(uc)
            .insert(row![200 + (u % n_per_set) as i64, 300 + (d % n_per_set) as i64])
            .unwrap();
    }
    db
}

/// Brute-force reference: recursive simple-path enumeration with no
/// schema pruning at all.
fn brute_force_paths(
    g: &DataGraph,
    from_es: u16,
    to_es: u16,
    l: usize,
) -> std::collections::HashSet<(NodeId, NodeId, Vec<u16>, Vec<NodeId>)> {
    let mut out = std::collections::HashSet::new();
    fn rec(
        g: &DataGraph,
        to_es: u16,
        l: usize,
        nodes: &mut Vec<NodeId>,
        rels: &mut Vec<u16>,
        out: &mut std::collections::HashSet<(NodeId, NodeId, Vec<u16>, Vec<NodeId>)>,
    ) {
        let cur = *nodes.last().unwrap();
        if !rels.is_empty() && g.node_type(cur) == to_es {
            out.insert((nodes[0], cur, rels.clone(), nodes.clone()));
        }
        if rels.len() == l {
            return;
        }
        for &(rid, next) in g.neighbors(cur) {
            if nodes.contains(&next) {
                continue;
            }
            nodes.push(next);
            rels.push(rid);
            rec(g, to_es, l, nodes, rels, out);
            nodes.pop();
            rels.pop();
        }
    }
    for &a in g.nodes_of_type(from_es) {
        let mut nodes = vec![a];
        let mut rels = Vec::new();
        rec(g, to_es, l, &mut nodes, &mut rels, &mut out);
    }
    out
}

fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(2 * n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enumerator_matches_brute_force(
        enc in edges_strategy(5),
        ue in edges_strategy(5),
        uc in edges_strategy(5),
        l in 1usize..=4,
    ) {
        let db = build_db(5, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);

        let pp = enumerate_pair_paths(&g, &schema, 0, 2, l);
        let mut got = std::collections::HashSet::new();
        for ((a, b), idxs) in &pp.map {
            for &i in idxs {
                let p = pp.arena.get(i as usize);
                got.insert((*a, *b, p.rels.to_vec(), p.nodes.to_vec()));
            }
        }
        let expected = brute_force_paths(&g, 0, 2, l);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn arena_enumeration_matches_vec_enumerator(
        enc in edges_strategy(5),
        ue in edges_strategy(5),
        uc in edges_strategy(5),
        l in 1usize..=4,
    ) {
        // The arena-backed sink must yield exactly the path sequence the
        // owned `Vec<Path>` sink yields — same order, same contents, same
        // signatures — for every source entity.
        let db = build_db(5, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let reach = schema.reach_table(2, l);
        for &a in g.nodes_of_type(0) {
            let owned = ts_graph::paths_from(&g, &reach, a, 2, l);
            let mut arena = ts_graph::PathArena::new();
            ts_graph::paths_from_into(&g, &reach, a, 2, l, &mut arena);
            prop_assert_eq!(arena.len(), owned.len());
            for (i, p) in owned.iter().enumerate() {
                prop_assert_eq!(arena.get(i), p.as_ref());
                prop_assert_eq!(arena.get(i).sig(&g), p.sig(&g));
            }
        }
    }

    #[test]
    fn same_type_pairs_are_each_counted_once(
        ue in edges_strategy(5),
    ) {
        // P-P pairs via shared unigenes: each undirected pair once.
        let db = build_db(5, &[], &ue, &[]);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let pp = enumerate_pair_paths(&g, &schema, 0, 0, 2);
        for &(a, b) in pp.map.keys() {
            prop_assert!(a < b);
        }
        // Reference count: brute force counts each path twice (once per
        // orientation); enumerate counts once.
        let brute = brute_force_paths(&g, 0, 0, 2);
        prop_assert_eq!(pp.path_count() * 2, brute.len());
    }

    #[test]
    fn path_count_monotone_in_l(
        enc in edges_strategy(4),
        ue in edges_strategy(4),
        uc in edges_strategy(4),
    ) {
        let db = build_db(4, &enc, &ue, &uc);
        let g = DataGraph::from_db(&db).unwrap();
        let schema = SchemaGraph::from_db(&db);
        let mut prev = 0;
        for l in 1..=4 {
            let n = enumerate_pair_paths(&g, &schema, 0, 2, l).path_count();
            prop_assert!(n >= prev, "l={l}: {n} < {prev}");
            prev = n;
        }
    }
}
