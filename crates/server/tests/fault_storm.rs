//! The resilience contract, enforced under deterministic fault
//! injection: every admitted query gets exactly one well-formed
//! response, the served snapshot's bytes never change, and no injected
//! panic escapes its per-query isolation boundary.
//!
//! The fail-point registry is process-global, so every test here — even
//! the ones that arm nothing — takes the `FAULTS` mutex: an unguarded
//! evaluation racing a storm would absorb the storm's faults.

use std::sync::Mutex;

use ts_bench::{build_env, EnvOptions};
use ts_biozon::SchemaIds;
use ts_core::{
    try_compute_catalog, ComputeError, ComputeOptions, Exhausted, Method, QueryError, Snapshot,
    TopologyQuery,
};
use ts_server::{BudgetSpec, QueryResponse, Server, ServerConfig, ServerError};
use ts_storage::faults::{self, sites, FaultKind, Schedule};
use ts_storage::Predicate;

static FAULTS: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|p| p.into_inner())
}

/// A small but real serving snapshot (generated Biozon, computed +
/// pruned + scored catalog at l = 3).
fn snapshot(scale: f64) -> (Snapshot, SchemaIds) {
    let env = build_env(EnvOptions { scale, ..EnvOptions::default() });
    let ids = env.biozon.ids;
    (Snapshot::new(env.biozon.db, env.graph, env.schema, env.catalog), ids)
}

fn count(responses: &[QueryResponse]) -> (usize, usize, usize, usize) {
    let mut c = (0, 0, 0, 0);
    for r in responses {
        match r {
            QueryResponse::Ok(_) => c.0 += 1,
            QueryResponse::Degraded { .. } => c.1 += 1,
            QueryResponse::Rejected(_) => c.2 += 1,
            QueryResponse::Failed(_) => c.3 += 1,
        }
    }
    c
}

#[test]
fn storm_yields_only_well_formed_responses_and_identical_snapshot_bytes() {
    let _g = guard();
    assert!(faults::compiled_in(), "ts-server must build ts-storage with failpoints");
    faults::disarm_all();

    let (snap, ids) = snapshot(0.15);
    let digest_before = snap.digest();
    let l = snap.catalog.l;
    let server = Server::new(
        snap,
        ServerConfig {
            workers: 4,
            queue_cap: 32,
            default_budget: BudgetSpec {
                deadline_ms: Some(2_000),
                step_quota: Some(500_000),
                row_quota: None,
            },
            ..ServerConfig::default()
        },
    );

    faults::arm_seeded(0x5707_1CDE);

    let methods = [
        Method::FullTop,
        Method::FastTop,
        Method::FullTopK,
        Method::FastTopK,
        Method::FullTopKEt,
        Method::FastTopKEt,
        Method::FullTopKOpt,
        Method::FastTopKOpt,
    ];
    let mix = ts_biozon::query_mix(&ids, l, 96, 0xC0FF_EE00);
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for (i, mut q) in mix.into_iter().enumerate() {
        // Every 12th query is deliberately malformed: the storm must
        // reject it with a typed error, not a panic or a hang.
        if i % 12 == 5 {
            q.es1 = 200;
        } else if i % 12 == 11 {
            q.l = l + 2;
        }
        match server.submit(methods[i % methods.len()], q) {
            Ok(t) => tickets.push(t),
            Err(ServerError::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms >= 1);
                shed += 1;
            }
            Err(ServerError::ShuttingDown) => unreachable!("nobody shut the server down"),
        }
    }

    let responses: Vec<QueryResponse> = tickets.into_iter().map(|t| t.wait()).collect();
    let (ok, degraded, rejected, failed) = count(&responses);
    assert_eq!(
        ok + degraded + rejected + failed + shed,
        96,
        "every query is accounted for: ok {ok}, degraded {degraded}, rejected {rejected}, \
         failed {failed}, shed {shed}"
    );
    assert!(rejected >= 1, "the malformed queries must surface as Rejected");
    for r in &responses {
        if let QueryResponse::Rejected(e) = r {
            assert!(matches!(
                e,
                QueryError::UnknownEntity { es: 200, .. } | QueryError::LMismatch { .. }
            ));
        }
    }

    // Phase 2: three exec sites live in operators the nine-method
    // dispatch does not build on this data (hash-plan table scans +
    // joins, and the Sort operator). Drive them directly over the
    // served snapshot, still under the storm; injected panics are
    // confined the same way the server confines them. Both engines run:
    // every fail-point site must fire on the tuple path AND the batch
    // path.
    let snap = server.snapshot();
    let tops = &snap.catalog.alltops;
    for _ in 0..12 {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let work = ts_exec::Work::with_budget(ts_exec::Budget {
                step_quota: Some(50_000),
                ..ts_exec::Budget::default()
            });
            let probe: ts_exec::BoxedOp<'_> =
                Box::new(ts_exec::TableScan::new(tops, Predicate::True, work.clone()));
            let build: ts_exec::BoxedOp<'_> =
                Box::new(ts_exec::TableScan::new(tops, Predicate::True, work.clone()));
            let join: ts_exec::BoxedOp<'_> =
                Box::new(ts_exec::HashJoin::new(probe, 0, build, 0, work.clone()));
            let mut sorted = ts_exec::Sort::new(join, vec![(2, ts_exec::Dir::Asc)], work.clone());
            ts_exec::collect_all_budgeted(&mut sorted, &work).len()
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let work = ts_exec::Work::with_budget(ts_exec::Budget {
                step_quota: Some(50_000),
                ..ts_exec::Budget::default()
            });
            let probe: ts_exec::BoxedBatchOp<'_> =
                Box::new(ts_exec::BatchTableScan::new(tops, Predicate::True, work.clone()));
            let build: ts_exec::BoxedBatchOp<'_> =
                Box::new(ts_exec::BatchTableScan::new(tops, Predicate::True, work.clone()));
            let join: ts_exec::BoxedBatchOp<'_> =
                Box::new(ts_exec::BatchHashJoin::new(probe, 0, build, 0, work.clone()));
            let mut sorted =
                ts_exec::BatchSort::new(join, vec![(2, ts_exec::Dir::Asc)], work.clone());
            ts_exec::batch_collect_all_budgeted(&mut sorted, &work).len()
        }));
    }

    // The storm must have reached every registered fail-point site on
    // the serving side (the offline compute site has its own test).
    let counts = faults::fire_counts();
    let hits = |site: &str| counts.iter().find(|(s, ..)| *s == site).map_or(0, |&(_, h, _)| h);
    for site in sites::all() {
        if *site == sites::CORE_COMPUTE_WORKER {
            continue;
        }
        assert!(hits(site) > 0, "storm never reached fail-point site {site}: {counts:?}");
    }
    let total_fired: u64 = counts.iter().map(|&(_, _, f)| f).sum();
    assert!(total_fired > 0, "the storm fired no faults at all: {counts:?}");

    faults::disarm_all();

    // The served snapshot is byte-identical after the storm.
    assert_eq!(server.snapshot().digest(), digest_before);
    let report = server.shutdown();
    assert!(
        report.worker_panics.is_empty(),
        "a panic escaped per-query isolation: {:?}",
        report.worker_panics
    );
    assert_eq!(report.stats.completed(), (ok + degraded + rejected + failed) as u64);
}

#[test]
fn publish_swaps_epochs_without_disturbing_responses() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    let digest = snap.digest();
    let server = Server::new(snap, ServerConfig::default());
    assert_eq!(server.epoch(), 0);

    let mix = ts_biozon::query_mix(&ids, l, 24, 11);
    let mut tickets = Vec::new();
    for (i, q) in mix.into_iter().enumerate() {
        if i == 12 {
            // Rebuild (the generator is seeded, so the content digest
            // comes out identical) and publish mid-workload.
            let (snap2, _) = snapshot(0.1);
            assert_eq!(server.publish(snap2), 1);
        }
        tickets.push(server.submit(Method::FullTopK, q).expect("queue is large enough"));
    }
    let epochs: Vec<u64> = tickets.iter().map(|t| t.epoch()).collect();
    assert!(epochs.contains(&0) && epochs.contains(&1), "both epochs admitted queries");
    for t in tickets {
        match t.wait() {
            QueryResponse::Ok(_) | QueryResponse::Degraded { .. } => {}
            other => panic!("epoch swap disturbed a query: {other:?}"),
        }
    }
    assert_eq!(server.epoch(), 1);
    assert_eq!(server.snapshot().epoch, 1);
    assert_eq!(server.snapshot().digest(), digest);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_typed_overload_error() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    let server =
        Server::new(snap, ServerConfig { workers: 1, queue_cap: 1, ..ServerConfig::default() });

    // Hold every job in the single worker for 25 ms so the queue backs
    // up behind it.
    faults::arm(
        sites::SERVER_WORKER,
        Schedule { kind: FaultKind::Delay(25), period: 1, offset: 0, budget: None },
    );
    let mix = ts_biozon::query_mix(&ids, l, 8, 23);
    let mut tickets = Vec::new();
    let mut sheds = Vec::new();
    for q in mix {
        match server.submit(Method::FullTop, q) {
            Ok(t) => tickets.push(t),
            Err(e) => sheds.push(e),
        }
    }
    assert!(!sheds.is_empty(), "8 instant submits into workers=1/cap=1 must shed");
    for e in &sheds {
        match e {
            ServerError::Overloaded { retry_after_ms, queue_depth } => {
                assert!(*retry_after_ms >= 1);
                assert!(*queue_depth >= 1);
            }
            ServerError::ShuttingDown => panic!("wrong error: {e}"),
        }
    }
    for t in tickets {
        assert!(matches!(t.wait(), QueryResponse::Ok(_) | QueryResponse::Degraded { .. }));
    }
    faults::disarm_all();
    let stats = server.shutdown().stats;
    assert_eq!(stats.shed as usize, sheds.len());
}

#[test]
fn injected_worker_panics_are_isolated_per_query() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    let server =
        Server::new(snap, ServerConfig { workers: 2, queue_cap: 64, ..ServerConfig::default() });

    // Every second job that reaches a worker panics at the server.worker
    // fail point.
    faults::arm(
        sites::SERVER_WORKER,
        Schedule { kind: FaultKind::Panic, period: 2, offset: 1, budget: None },
    );
    let mix = ts_biozon::query_mix(&ids, l, 12, 5);
    let responses: Vec<QueryResponse> = mix
        .into_iter()
        .map(|q| server.submit(Method::FastTopK, q).expect("queue is large enough").wait())
        .collect();
    faults::disarm_all();

    let (ok, degraded, _rejected, failed) = count(&responses);
    assert_eq!(failed, 6, "period 2 / offset 1 panics exactly half of 12 jobs");
    assert_eq!(ok + degraded, 6, "the other half still completes");
    for r in &responses {
        if let QueryResponse::Failed(detail) = r {
            assert!(detail.contains("injected fault"), "payload survives: {detail}");
        }
    }
    let report = server.shutdown();
    assert!(report.worker_panics.is_empty(), "worker threads must survive injected panics");
    assert_eq!(report.stats.failed, 6);
}

#[test]
fn blown_step_quota_degrades_to_the_full_baseline() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    let server = Server::new(snap, ServerConfig::default());
    let q = ts_biozon::query_mix(&ids, l, 1, 3).remove(0);

    // A 10-step quota trips on anything; the ladder retries Full-Top-k.
    let spec = BudgetSpec { deadline_ms: None, step_quota: Some(10), row_quota: None };
    let resp = server
        .submit_with(Method::FastTopKOpt, q.clone(), spec.clone())
        .expect("empty queue admits")
        .wait();
    match resp {
        QueryResponse::Degraded { reason, fell_back, .. } => {
            assert_eq!(reason, Exhausted::Steps);
            assert_eq!(fell_back, Some(Method::FullTopK));
        }
        other => panic!("expected a degraded response, got {other:?}"),
    }

    // The baseline itself has no fallback rung below it.
    let resp =
        server.submit_with(Method::FullTop, q.clone(), spec).expect("empty queue admits").wait();
    match resp {
        QueryResponse::Degraded { reason, fell_back, .. } => {
            assert_eq!(reason, Exhausted::Steps);
            assert_eq!(fell_back, None);
        }
        other => panic!("expected a degraded response, got {other:?}"),
    }

    // An already-expired deadline degrades without retrying (no time
    // left to spend on a second plan).
    let spec = BudgetSpec { deadline_ms: Some(0), step_quota: None, row_quota: None };
    let resp = server.submit_with(Method::FullTopK, q, spec).expect("empty queue admits").wait();
    match resp {
        QueryResponse::Degraded { reason, fell_back, .. } => {
            assert_eq!(reason, Exhausted::Deadline);
            assert_eq!(fell_back, None);
        }
        other => panic!("expected a degraded response, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn compute_worker_panic_is_a_typed_error_on_both_paths() {
    let _g = guard();
    faults::disarm_all();
    let b = ts_biozon::generate(&ts_biozon::BiozonConfig::small(1));
    let graph = ts_graph::DataGraph::from_db(&b.db).expect("generator is consistent");
    let schema = ts_graph::SchemaGraph::from_db(&b.db);

    let mut opts = ComputeOptions::with_l(2);
    opts.parallel = false;
    faults::arm(
        sites::CORE_COMPUTE_WORKER,
        Schedule { kind: FaultKind::Panic, period: 1, offset: 0, budget: Some(1) },
    );
    let serial = try_compute_catalog(&b.db, &graph, &schema, &opts);
    match serial {
        Err(ComputeError::WorkerPanicked { detail }) => {
            assert!(detail.contains("injected fault"), "payload survives: {detail}")
        }
        other => panic!("serial build must surface the panic as a typed error, got {other:?}"),
    }

    let mut opts = ComputeOptions::with_l(2);
    opts.parallel = true;
    opts.min_parallel_sources = 0;
    faults::arm(
        sites::CORE_COMPUTE_WORKER,
        Schedule { kind: FaultKind::Panic, period: 1, offset: 0, budget: Some(1) },
    );
    let parallel = try_compute_catalog(&b.db, &graph, &schema, &opts);
    assert!(
        matches!(parallel, Err(ComputeError::WorkerPanicked { .. })),
        "parallel build must surface the panic as a typed error, got {parallel:?}"
    );

    faults::disarm_all();
    let clean = try_compute_catalog(&b.db, &graph, &schema, &opts);
    assert!(clean.is_ok(), "the build succeeds once the fault is disarmed");
}

#[test]
fn batch_engine_mid_batch_exhaustion_yields_well_formed_degraded_partials() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    // ServerConfig::default() serves on the vectorized batch engine.
    let server = Server::new(snap, ServerConfig::default());
    let q = TopologyQuery::new(ids.protein, Predicate::True, ids.dna, Predicate::True, l);

    // A 1-row quota trips mid-batch in the top-k driver: the partial
    // keeps exactly the quota's worth of distinct groups, score-ordered.
    let spec = BudgetSpec { deadline_ms: None, step_quota: None, row_quota: Some(1) };
    let resp = server
        .submit_with(Method::FullTopKEt, q.clone().with_k(8), spec)
        .expect("empty queue admits")
        .wait();
    match resp {
        QueryResponse::Degraded { partial, reason, fell_back } => {
            assert_eq!(reason, Exhausted::Rows);
            assert_eq!(fell_back, None, "a blown row quota keeps the partial");
            assert_eq!(partial.topologies.len(), 1, "quota of 1 keeps exactly one group");
            for w in partial.topologies.windows(2) {
                assert!(w[0].1 >= w[1].1, "partial top-k must stay score-ordered");
            }
        }
        other => panic!("row quota must degrade mid-batch, got {other:?}"),
    }

    // Steps and Deadline surface the same way on the batch path.
    for (spec, want) in [
        (BudgetSpec { deadline_ms: None, step_quota: Some(10), row_quota: None }, Exhausted::Steps),
        (
            BudgetSpec { deadline_ms: Some(0), step_quota: None, row_quota: None },
            Exhausted::Deadline,
        ),
    ] {
        let resp = server
            .submit_with(Method::FullTopK, q.clone().with_k(8), spec)
            .expect("empty queue admits")
            .wait();
        match resp {
            QueryResponse::Degraded { partial, reason, .. } => {
                assert_eq!(reason, want);
                assert!(partial.topologies.len() <= 8, "partial top-k never exceeds k");
                for w in partial.topologies.windows(2) {
                    assert!(w[0].1 >= w[1].1, "partial top-k must stay score-ordered");
                }
            }
            other => panic!("expected a degraded response with {want:?}, got {other:?}"),
        }
    }

    // Cancellation: hold the worker at its fail point so shutdown_now's
    // cancel token is raised before the evaluation starts ticking; the
    // batch drivers observe it at the next poll boundary.
    faults::arm(
        sites::SERVER_WORKER,
        Schedule { kind: FaultKind::Delay(60), period: 1, offset: 0, budget: Some(1) },
    );
    let ticket = server.submit(Method::FullTop, q).expect("empty queue admits");
    std::thread::sleep(std::time::Duration::from_millis(15));
    let report = server.shutdown_now();
    faults::disarm_all();
    match ticket.wait() {
        QueryResponse::Degraded { reason, .. } => assert_eq!(reason, Exhausted::Cancelled),
        QueryResponse::Failed(detail) => {
            panic!("cancellation must degrade, not fail: {detail}")
        }
        other => panic!("expected a cancelled degraded response, got {other:?}"),
    }
    assert!(report.worker_panics.is_empty());
}

#[test]
fn all_nine_methods_reject_malformed_queries_without_panicking() {
    let _g = guard();
    faults::disarm_all();
    let (snap, ids) = snapshot(0.1);
    let l = snap.catalog.l;
    let ctx = snap.ctx();
    let good = TopologyQuery::new(ids.protein, Predicate::True, ids.dna, Predicate::True, l);

    for m in Method::all() {
        let mut q = good.clone();
        q.es1 = 250;
        assert!(
            matches!(m.try_eval(&ctx, &q), Err(QueryError::UnknownEntity { es: 250, .. })),
            "{m} must reject an unknown es1"
        );
        let mut q = good.clone();
        q.es2 = 251;
        assert!(
            matches!(m.try_eval(&ctx, &q), Err(QueryError::UnknownEntity { es: 251, .. })),
            "{m} must reject an unknown es2"
        );
        let mut q = good.clone();
        q.l = l + 1;
        assert!(
            matches!(m.try_eval(&ctx, &q), Err(QueryError::LMismatch { .. })),
            "{m} must reject a mismatched l"
        );
        assert!(m.try_eval(&ctx, &good).is_ok(), "{m} still evaluates the valid query");
    }

    // And through the server: a malformed query is a Rejected response.
    let server = Server::new(snap, ServerConfig::default());
    let mut q = good;
    q.es1 = 250;
    let resp = server.submit(Method::Sql, q).expect("empty queue admits").wait();
    assert!(matches!(resp, QueryResponse::Rejected(QueryError::UnknownEntity { es: 250, .. })));
    server.shutdown();
}
