//! # ts-server
//!
//! A resilient embedded serving layer over the nine evaluation methods
//! of §6: the piece a production deployment of the paper's system would
//! wrap around the catalog.
//!
//! Design, in one pass through a query's life:
//!
//! * **Admission** — [`Server::submit`] pushes onto a bounded queue.
//!   A full queue is *load shedding*: the caller gets a typed
//!   [`ServerError::Overloaded`] with a retry-after hint derived from
//!   the observed service rate, never an unbounded wait.
//! * **Budget** — every admitted query carries a [`ts_exec::Budget`]
//!   (wall-clock deadline measured from admission, step quota, row
//!   quota, server-wide cancellation token) threaded through the
//!   cooperative [`ts_exec::Work`] meter that every operator already
//!   polls at batch boundaries.
//! * **Snapshot** — workers evaluate against an immutable
//!   [`ts_core::Snapshot`] shared via `Arc`; [`Server::publish`] swaps
//!   the `Arc` and bumps the epoch. In-flight queries finish on the
//!   snapshot they started with; nothing is ever mutated in place.
//! * **Degradation** — a budget-exhausted query is not an error: the
//!   partial result ships as [`QueryResponse::Degraded`], and when the
//!   *step* quota blows on an expensive method the worker reruns the
//!   cheap `Full-Top`/`Full-Top-k` baseline (fresh quota, original
//!   deadline) before giving up — the planner's choice is a
//!   performance bet, not a correctness dependency.
//! * **Isolation** — the whole per-query evaluation runs under
//!   `catch_unwind`: a panicking query (including every injected
//!   `ts_storage::faults` panic) becomes [`QueryResponse::Failed`] for
//!   that one caller while the worker thread lives on.
//!
//! The [`stress`] module is the closed-loop driver that replays
//! `ts_biozon::workload::query_mix` against a server and reports
//! throughput/latency/shed/degraded figures (`BENCH_serving.json`).

#![forbid(unsafe_code)]

pub mod server;
pub mod stress;

pub use server::{
    BudgetSpec, QueryResponse, Server, ServerConfig, ServerError, ShutdownReport, Stats, Ticket,
};
pub use stress::{run_stress, StressOptions, StressReport};
