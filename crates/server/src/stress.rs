//! Closed-loop workload driver: `clients` threads replay the
//! deterministic `ts_biozon::workload::query_mix` against a [`Server`],
//! each waiting for its response before submitting the next query, and
//! the merged latencies become the serving figures checked into
//! `BENCH_serving.json`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ts_biozon::SchemaIds;
use ts_core::Method;

use crate::server::{QueryResponse, Server, ServerError};

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct StressOptions {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total queries across all clients.
    pub queries: usize,
    /// Workload seed (same seed → same queries in the same per-client
    /// order on every machine).
    pub seed: u64,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions { clients: 4, queries: 240, seed: 0xB10_0AD5 }
    }
}

/// What one stress run observed.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Queries attempted (submits, including shed ones).
    pub attempted: u64,
    /// Queries that received a response.
    pub completed: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Degraded` responses.
    pub degraded: u64,
    /// `Rejected` responses.
    pub rejected: u64,
    /// `Failed` responses (isolated panics).
    pub failed: u64,
    /// Submissions shed with `Overloaded`.
    pub shed: u64,
    /// Completed queries per second of wall clock.
    pub qps: f64,
    /// Median end-to-end latency (submit → response), microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: u64,
    /// shed / attempted.
    pub shed_rate: f64,
    /// degraded / completed.
    pub degraded_rate: f64,
    /// Total wall clock of the run, milliseconds.
    pub wall_ms: f64,
}

impl StressReport {
    /// Hand-rolled JSON (the workspace has no serde): one flat object,
    /// keys stable for CI field checks.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"attempted\": {},\n  \"completed\": {},\n  \"ok\": {},\n  \
             \"degraded\": {},\n  \"rejected\": {},\n  \"failed\": {},\n  \"shed\": {},\n  \
             \"qps\": {:.1},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \
             \"shed_rate\": {:.4},\n  \"degraded_rate\": {:.4},\n  \"wall_ms\": {:.1}\n}}\n",
            self.attempted,
            self.completed,
            self.ok,
            self.degraded,
            self.rejected,
            self.failed,
            self.shed,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.shed_rate,
            self.degraded_rate,
            self.wall_ms
        )
    }
}

/// SplitMix64, duplicated from the workload module so the method mix is
/// derived from the same seed family without exporting a private RNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The serving method mix: everything but SQL (whose two-to-three
/// orders of magnitude, the paper's §6.2 point, would turn a stress run
/// into a SQL benchmark).
const METHODS: [Method; 8] = [
    Method::FullTop,
    Method::FastTop,
    Method::FullTopK,
    Method::FastTopK,
    Method::FullTopKEt,
    Method::FastTopKEt,
    Method::FullTopKOpt,
    Method::FastTopKOpt,
];

#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    degraded: u64,
    rejected: u64,
    failed: u64,
    shed: u64,
    attempted: u64,
}

/// Run the closed loop and merge per-client tallies.
pub fn run_stress(server: &Server, ids: &SchemaIds, opts: &StressOptions) -> StressReport {
    let l = server.snapshot().catalog.l;
    let clients = opts.clients.max(1);
    let per_client = opts.queries.div_ceil(clients);
    let merged = Mutex::new(Tally::default());
    let start = Instant::now();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let merged = &merged;
            let seed = opts.seed.wrapping_add((c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            scope.spawn(move || {
                let mix = ts_biozon::query_mix(ids, l, per_client, seed);
                let mut rng = seed ^ 0x5ca1_ab1e;
                let mut tally = Tally::default();
                for q in mix {
                    let method = METHODS[(splitmix(&mut rng) % METHODS.len() as u64) as usize];
                    tally.attempted += 1;
                    let t0 = Instant::now();
                    match server.submit(method, q) {
                        Err(ServerError::ShuttingDown) => break,
                        Err(ServerError::Overloaded { retry_after_ms, .. }) => {
                            tally.shed += 1;
                            // Closed loop: back off for the hinted
                            // interval (capped — this is a bench, not a
                            // production client) and move on.
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(5)));
                        }
                        Ok(ticket) => {
                            let resp = ticket.wait();
                            tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                            match resp {
                                QueryResponse::Ok(_) => tally.ok += 1,
                                QueryResponse::Degraded { .. } => tally.degraded += 1,
                                QueryResponse::Rejected(_) => tally.rejected += 1,
                                QueryResponse::Failed(_) => tally.failed += 1,
                            }
                        }
                    }
                }
                let mut m = merged.lock().unwrap_or_else(|p| p.into_inner());
                m.latencies_us.extend_from_slice(&tally.latencies_us);
                m.ok += tally.ok;
                m.degraded += tally.degraded;
                m.rejected += tally.rejected;
                m.failed += tally.failed;
                m.shed += tally.shed;
                m.attempted += tally.attempted;
            });
        }
    });

    let wall = start.elapsed();
    let mut t = merged.into_inner().unwrap_or_else(|p| p.into_inner());
    t.latencies_us.sort_unstable();
    let completed = t.latencies_us.len() as u64;
    let pct = |p: usize| -> u64 {
        if t.latencies_us.is_empty() {
            0
        } else {
            t.latencies_us[(t.latencies_us.len() * p / 100).min(t.latencies_us.len() - 1)]
        }
    };
    StressReport {
        attempted: t.attempted,
        completed,
        ok: t.ok,
        degraded: t.degraded,
        rejected: t.rejected,
        failed: t.failed,
        shed: t.shed,
        qps: completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: pct(50),
        p99_us: pct(99),
        shed_rate: if t.attempted > 0 { t.shed as f64 / t.attempted as f64 } else { 0.0 },
        degraded_rate: if completed > 0 { t.degraded as f64 / completed as f64 } else { 0.0 },
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}
