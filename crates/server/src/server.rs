//! The server proper: bounded admission, budgeted evaluation on shared
//! snapshots, graceful degradation, and per-query panic isolation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ts_core::{panic_detail, EvalOutcome, Exhausted, Method, QueryError, Snapshot, TopologyQuery};
use ts_exec::{Budget, Work};
use ts_storage::faults::{self, sites, FireAction};

/// Per-query resource limits, all optional. `None` everywhere means the
/// query runs exactly like the historical unbudgeted path.
#[derive(Debug, Clone, Default)]
pub struct BudgetSpec {
    /// Wall-clock deadline in milliseconds, measured from *admission*
    /// (time spent queued counts against it).
    pub deadline_ms: Option<u64>,
    /// Maximum work units (tuples touched + index probes).
    pub step_quota: Option<u64>,
    /// Maximum result rows.
    pub row_quota: Option<u64>,
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads evaluating queries.
    pub workers: usize,
    /// Bounded queue capacity; a submit beyond it is shed.
    pub queue_cap: usize,
    /// Budget applied by [`Server::submit`] (override per query with
    /// [`Server::submit_with`]).
    pub default_budget: BudgetSpec,
    /// Execution engine the workers evaluate queries on (vectorized
    /// batches by default; `Engine::Tuple` selects the row-at-a-time
    /// Volcano path, e.g. for differential testing).
    pub engine: ts_exec::Engine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            default_budget: BudgetSpec::default(),
            engine: ts_exec::Engine::Batch,
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The bounded queue is full; try again after the hint.
    Overloaded {
        /// Estimated milliseconds until capacity frees up, from the
        /// observed mean service time and current queue depth.
        retry_after_ms: u64,
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded { retry_after_ms, queue_depth } => {
                write!(f, "overloaded: queue depth {queue_depth}, retry after ~{retry_after_ms} ms")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The terminal state of one admitted query. Every admitted query gets
/// exactly one of these — a panic, an injected fault, or an exhausted
/// budget never silently loses a response.
#[derive(Debug)]
pub enum QueryResponse {
    /// Ran to completion under budget.
    Ok(EvalOutcome),
    /// The budget tripped; `partial` holds what was computed in time.
    Degraded {
        /// Partial (or fallback) result.
        partial: EvalOutcome,
        /// The limit that tripped first.
        reason: Exhausted,
        /// `Some(m)` when the worker degraded to the cheap baseline
        /// method `m` after the requested method blew its step quota.
        fell_back: Option<Method>,
    },
    /// The query failed validation and never ran.
    Rejected(QueryError),
    /// The query panicked (worker survived) or was dropped unrun at
    /// shutdown; the string is the panic payload / drop reason.
    Failed(String),
}

impl QueryResponse {
    /// The outcome carried by an `Ok` or `Degraded` response.
    pub fn outcome(&self) -> Option<&EvalOutcome> {
        match self {
            QueryResponse::Ok(o) => Some(o),
            QueryResponse::Degraded { partial, .. } => Some(partial),
            _ => None,
        }
    }
}

/// Monotonic serving counters (a consistent-enough snapshot; individual
/// counters are exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Admission attempts (including shed ones).
    pub submitted: u64,
    /// Refused with [`ServerError::Overloaded`].
    pub shed: u64,
    /// Completed with [`QueryResponse::Ok`].
    pub ok: u64,
    /// Completed with [`QueryResponse::Degraded`].
    pub degraded: u64,
    /// Completed with [`QueryResponse::Rejected`].
    pub rejected: u64,
    /// Completed with [`QueryResponse::Failed`] (isolated panics).
    pub failed: u64,
    /// Total worker-busy microseconds across completed queries.
    pub busy_us: u64,
}

impl Stats {
    /// Queries that received a response.
    pub fn completed(&self) -> u64 {
        self.ok + self.degraded + self.rejected + self.failed
    }
}

#[derive(Debug, Default)]
struct StatCells {
    submitted: AtomicU64,
    shed: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    busy_us: AtomicU64,
}

struct Job {
    method: Method,
    query: TopologyQuery,
    spec: BudgetSpec,
    admitted: Instant,
    reply: mpsc::Sender<QueryResponse>,
}

struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cancel: Arc<AtomicBool>,
    workers: usize,
    queue_cap: usize,
    stats: StatCells,
}

/// Recover a poisoned mutex: the payload is plain data and every
/// invariant is re-established by the next state transition, so a
/// poisoned lock only means some query panicked — which is exactly the
/// event the server is built to survive.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The cheap, predictable baseline to degrade to when an expensive
/// method blows its step quota: the single precomputed-join methods of
/// §3.2/§5.1. `None` when the requested method *is* the baseline.
fn fallback(m: Method) -> Option<Method> {
    match m {
        Method::FullTop | Method::FullTopK => None,
        m if m.is_topk() => Some(Method::FullTopK),
        _ => Some(Method::FullTop),
    }
}

/// An embedded multi-threaded query service over immutable snapshots.
///
/// Dropping the server performs a graceful shutdown (drain the queue,
/// join the workers); use [`Server::shutdown`] to also collect the
/// report.
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    default_budget: BudgetSpec,
}

/// What [`Server::shutdown`] observed while winding down.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Panic payloads of worker *threads* that died outside the
    /// per-query isolation boundary. Always empty unless the worker
    /// loop itself is buggy — per-query panics land in
    /// [`QueryResponse::Failed`] instead.
    pub worker_panics: Vec<String>,
    /// Final counters.
    pub stats: Stats,
}

/// A handle to one admitted query.
pub struct Ticket {
    rx: mpsc::Receiver<QueryResponse>,
    epoch: u64,
}

impl Ticket {
    /// Block until the response arrives. A query dropped unrun (server
    /// shut down with [`Server::shutdown_now`]) yields a `Failed`
    /// response rather than an error type of its own.
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().unwrap_or_else(|_| {
            QueryResponse::Failed("dropped before a worker ran it (server shut down)".to_string())
        })
    }

    /// Like [`Ticket::wait`] with a timeout; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryResponse> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// The publication epoch current when this query was admitted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Server {
    /// Spawn `config.workers` workers over the initial snapshot.
    pub fn new(snapshot: Snapshot, config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(snapshot.epoch),
            snapshot: RwLock::new(Arc::new(snapshot)),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            workers,
            queue_cap: config.queue_cap.max(1),
            stats: StatCells::default(),
        });
        let engine = config.engine;
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ts-server-{i}"))
                    .spawn(move || {
                        ts_exec::set_engine(engine);
                        worker_loop(&shared)
                    })
                    // lint: allow(panic-on-worker-path): spawn fails only on
                    // OS thread exhaustion at server construction, before
                    // any query is accepted; aborting startup is correct
                    .expect("spawning a server worker thread")
            })
            .collect();
        Server { shared, handles, default_budget: config.default_budget }
    }

    /// Submit under the configured default budget.
    pub fn submit(&self, method: Method, query: TopologyQuery) -> Result<Ticket, ServerError> {
        self.submit_with(method, query, self.default_budget.clone())
    }

    /// Submit with an explicit per-query budget.
    pub fn submit_with(
        &self,
        method: Method,
        query: TopologyQuery,
        spec: BudgetSpec,
    ) -> Result<Ticket, ServerError> {
        let shared = &self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        // Injected admission faults: Delay (applied inside `fire`)
        // models a stalled admission path; Starve models an upstream
        // shed decision.
        if let FireAction::Starve = faults::fire(sites::SERVER_ADMIT) {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            let depth = lock(&shared.queue).len();
            return Err(ServerError::Overloaded {
                retry_after_ms: self.retry_after_ms(depth),
                queue_depth: depth,
            });
        }
        let (tx, rx) = mpsc::channel();
        let job = Job { method, query, spec, admitted: Instant::now(), reply: tx };
        {
            let mut q = lock(&shared.queue);
            if q.len() >= shared.queue_cap {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                let depth = q.len();
                drop(q);
                return Err(ServerError::Overloaded {
                    retry_after_ms: self.retry_after_ms(depth),
                    queue_depth: depth,
                });
            }
            q.push_back(job);
        }
        shared.cv.notify_one();
        Ok(Ticket { rx, epoch: shared.epoch.load(Ordering::Acquire) })
    }

    /// Publish a rebuilt snapshot: epoch bumps, the `Arc` swaps, and
    /// in-flight queries finish on the snapshot they started with.
    /// Returns the new epoch.
    pub fn publish(&self, mut snapshot: Snapshot) -> u64 {
        let epoch = self.shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        snapshot.epoch = epoch;
        let arc = Arc::new(snapshot);
        *self.shared.snapshot.write().unwrap_or_else(|p| p.into_inner()) = arc;
        epoch
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Current counters.
    pub fn stats(&self) -> Stats {
        let s = &self.shared.stats;
        Stats {
            submitted: s.submitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            ok: s.ok.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            busy_us: s.busy_us.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: admit nothing new, drain the queue, join the
    /// workers.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.wind_down()
    }

    /// Immediate shutdown: additionally raises the server-wide
    /// cancellation token (in-flight budgeted queries trip `Cancelled`
    /// at their next poll) and drops everything still queued (their
    /// tickets resolve to `Failed`).
    pub fn shutdown_now(mut self) -> ShutdownReport {
        self.shared.cancel.store(true, Ordering::Release);
        lock(&self.shared.queue).clear();
        self.wind_down()
    }

    fn wind_down(&mut self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        let mut worker_panics = Vec::new();
        for h in self.handles.drain(..) {
            // Deliberately not `.join().expect(..)` (the lint rule this
            // PR adds exists because of exactly this pattern): a dead
            // worker is reported, not re-raised.
            if let Err(payload) = h.join() {
                worker_panics.push(panic_detail(payload));
            }
        }
        ShutdownReport { worker_panics, stats: self.stats() }
    }

    fn retry_after_ms(&self, queue_depth: usize) -> u64 {
        let stats = self.stats();
        let avg_us = stats.busy_us.checked_div(stats.completed()).unwrap_or(2_000);
        ((queue_depth as u64).saturating_mul(avg_us) / (self.shared.workers as u64).max(1) / 1_000)
            .max(1)
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("epoch", &self.epoch())
            .field("queue_depth", &self.queue_depth())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.wind_down();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = next_job(shared) {
        let snap = shared.snapshot.read().unwrap_or_else(|p| p.into_inner()).clone();
        let started = Instant::now();
        // lint: allow(catch-unwind-audit): the per-query isolation
        // boundary — anything the evaluation panics with (including
        // every injected `faults` panic) becomes a Failed response for
        // this one caller; AssertUnwindSafe is sound because `snap` is
        // immutable shared state and `job`'s meter is freshly created
        // inside the closure, so nothing mutated before the panic is
        // observed afterwards
        let resp = catch_unwind(AssertUnwindSafe(|| process(shared, &snap, &job)))
            .unwrap_or_else(|payload| QueryResponse::Failed(panic_detail(payload)));
        let cell = match &resp {
            QueryResponse::Ok(_) => &shared.stats.ok,
            QueryResponse::Degraded { .. } => &shared.stats.degraded,
            QueryResponse::Rejected(_) => &shared.stats.rejected,
            QueryResponse::Failed(_) => &shared.stats.failed,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        shared.stats.busy_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        // The caller may have stopped waiting; a closed channel is fine.
        let _ = job.reply.send(resp);
    }
}

fn next_job(shared: &Shared) -> Option<Job> {
    let mut q = lock(&shared.queue);
    loop {
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        q = shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
    }
}

fn budget_for(shared: &Shared, job: &Job) -> Budget {
    Budget {
        deadline: job.spec.deadline_ms.map(|ms| job.admitted + Duration::from_millis(ms)),
        step_quota: job.spec.step_quota,
        row_quota: job.spec.row_quota,
        cancel: Some(Arc::clone(&shared.cancel)),
    }
}

fn process(shared: &Shared, snap: &Snapshot, job: &Job) -> QueryResponse {
    let work = Work::with_budget(budget_for(shared, job));
    if let FireAction::Starve = faults::fire(sites::SERVER_WORKER) {
        work.starve();
    }
    let ctx = snap.ctx();
    let outcome = match job.method.try_eval_with(&ctx, &job.query, work) {
        Err(e) => return QueryResponse::Rejected(e),
        Ok(o) => o,
    };
    let reason = match outcome.exhausted {
        None => return QueryResponse::Ok(outcome),
        Some(r) => r,
    };
    // Degrade ladder: a blown *step* quota (or injected starvation) on
    // an expensive method is the planner's bet failing, so retry once
    // on the cheap precomputed-join baseline with a fresh quota but the
    // ORIGINAL deadline — wall-clock promises survive degradation. A
    // blown deadline / row quota / cancellation keeps the partial.
    if matches!(reason, Exhausted::Steps | Exhausted::Starved) {
        if let Some(fb) = fallback(job.method) {
            let fresh = Work::with_budget(budget_for(shared, job));
            if let Ok(second) = fb.try_eval_with(&ctx, &job.query, fresh) {
                let reason = second.exhausted.unwrap_or(reason);
                return QueryResponse::Degraded { partial: second, reason, fell_back: Some(fb) };
            }
        }
    }
    QueryResponse::Degraded { partial: outcome, reason, fell_back: None }
}
