//! # ts-optimizer
//!
//! Cost-based optimization for top-k topology queries (§5.4 of the
//! paper), in two layers:
//!
//! * [`cost`] — the paper's probabilistic cost model for stacks of DGJ
//!   operators: Lemma 1/2 recurrences for the per-tuple result
//!   probability `x_i` and no-result probe cost `δ_i`, Theorems 2–4 for
//!   the per-group parameters `np_i` / `nc_i` / `ec_i`, and Theorem 1's
//!   dynamic program for `E[Z^k_{1:m}]`, the expected cost of finding the
//!   top-k results over groups `g_1..g_m` in score order.
//! * [`planner`] — a System-R style bottom-up dynamic program over join
//!   orders that keeps, per relation subset, the least-cost plan for each
//!   *interesting property* combination; following §5.4.1 we add the
//!   **early-termination property** (a plan whose operators all preserve
//!   group order and support `advance_to_next_group`) next to the usual
//!   interesting orders, and let DGJ join algorithms compete with regular
//!   hash joins and index nested loops.
//!
//! The crate is deliberately independent of `ts-core`: it prices abstract
//! relations described by cardinalities, selectivities and probe costs,
//! so it is reusable for the broader SQL6 query class of §5.4.

#![forbid(unsafe_code)]

pub mod cost;
pub mod planner;

pub use cost::{et_stack_cost, CostModel, DgjOpParams, DgjStackParams};
pub use planner::{
    plan_join_order, JoinAlgo, JoinEdge, JoinGraph, PhysicalPlan, PlanProps, Relation,
};
