//! The early-termination cost model (§5.4.2–5.4.3 and Appendix A).
//!
//! Notation (paper → here):
//!
//! * `n` operators `opr_1..opr_n` stacked above a group-ordered source;
//!   `opr_1` is the lowest (consumes the group stream).
//! * `m` groups `g_1..g_m` with cardinalities `Card_i`.
//! * `s_i·N_i` — expected inner matches per outer tuple at `opr_i`
//!   ([`DgjOpParams::fanout`]).
//! * `ρ_i` — selectivity of the local predicate at `opr_i`.
//! * `I_i` — cost of one index probe at `opr_i`.
//!
//! Two places where we fix the paper's arithmetic (the experiments are
//! insensitive to the fixes, but the math should stand on its own):
//!
//! 1. Lemma 1 states `x_{n+1} = 0`; a tuple that has passed *all* joins
//!    and predicates **is** a result, so the base case must be
//!    `x_{n+1} = 1` (with 0, every `x_i` collapses to 0).
//! 2. Theorem 4 writes `ρ_l` for the probability that the j-th tuple is a
//!    result while Lemma 1 derives that probability as `x_l`; we use
//!    `x_l` consistently.
//!
//! We also evaluate the binomial expectations in closed form: with
//! `J ~ Bin(m, ρ)`, `E[1-(1-x)^J] = 1-(1-ρx)^m`, which extends smoothly
//! to fractional expected fan-outs.

/// Parameters of one operator in a DGJ stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DgjOpParams {
    /// Expected number of inner matches per outer tuple: `s_i · N_i`.
    pub fanout: f64,
    /// Local predicate selectivity `ρ_i` at this operator.
    pub rho: f64,
    /// Cost of one index probe `I_i` (HDGJ: amortized per-tuple rescan cost).
    pub probe_cost: f64,
}

/// Parameters of a whole stack: the operators bottom-up plus the group
/// cardinalities in score order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DgjStackParams {
    /// `opr_1..opr_n`, bottom-up.
    pub ops: Vec<DgjOpParams>,
    /// `Card_1..Card_m` in the score order the plan will consume.
    pub groups: Vec<f64>,
}

/// Derived quantities of the model, exposed for tests and explain output.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `x_i` for `i = 1..=n+1` (`x[0]` unused; `x[n+1] = 1`).
    pub x: Vec<f64>,
    /// `δ_i` for `i = 1..=n+1` (`δ[n+1] = 0`).
    pub delta: Vec<f64>,
    /// Per-group `np_i` (probability of no result in group i).
    pub np: Vec<f64>,
    /// Per-group `nc_i` (expected cost of finding no result in group i).
    pub nc: Vec<f64>,
    /// Per-group `ec_i` (expected cost of finding the first result).
    pub ec: Vec<f64>,
}

impl CostModel {
    /// Evaluate Lemmas 1–2 and Theorems 2–4 for a stack.
    pub fn derive(p: &DgjStackParams) -> CostModel {
        let n = p.ops.len();
        // Lemma 1 (closed form, corrected base case x_{n+1} = 1).
        let mut x = vec![0.0; n + 2];
        x[n + 1] = 1.0;
        for i in (1..=n).rev() {
            let op = p.ops[i - 1];
            x[i] = 1.0 - (1.0 - op.rho * x[i + 1]).max(0.0).powf(op.fanout.max(0.0));
        }
        // Lemma 2 (closed form): δ_i = I_i + m_i·ρ_i·δ_{i+1}.
        let mut delta = vec![0.0; n + 2];
        for i in (1..=n).rev() {
            let op = p.ops[i - 1];
            delta[i] = op.probe_cost + op.fanout * op.rho * delta[i + 1];
        }

        let x1 = if n == 0 { 1.0 } else { x[1] };
        let d1 = if n == 0 { 0.0 } else { delta[1] };

        let mut np = Vec::with_capacity(p.groups.len());
        let mut nc = Vec::with_capacity(p.groups.len());
        let mut ec = Vec::with_capacity(p.groups.len());
        for &card in &p.groups {
            // Theorem 2.
            let npi = (1.0 - x1).max(0.0).powf(card);
            np.push(npi);
            // Theorem 3: nc_i = np_i · Card_i · δ_1.
            nc.push(npi * card * d1);
            // Theorem 4 (with the x_l fix), evaluated bottom-up.
            ec.push(expected_first_result_cost(p, &x, &delta, card));
        }
        CostModel { x, delta, np, nc, ec }
    }
}

/// `EC^{1:n}_h`: expected cost for the stack to find the first result
/// among `h` input tuples of `opr_1` (Theorem 4).
///
/// `EC^{l:n}_h = Σ_{j=1..h} x_l (1-x_l)^{j-1} [ (j-1)δ_l + I_l + EC^{l+1:n}_{m_l} ]`,
/// computed in closed form over the geometric series.
fn expected_first_result_cost(p: &DgjStackParams, x: &[f64], delta: &[f64], h: f64) -> f64 {
    fn ec_level(p: &DgjStackParams, x: &[f64], delta: &[f64], l: usize, h: f64) -> f64 {
        if l > p.ops.len() || h <= 0.0 {
            return 0.0;
        }
        let op = p.ops[l - 1];
        let xl = x[l].clamp(0.0, 1.0);
        if xl <= f64::EPSILON {
            return 0.0; // no tuple ever produces a result: every term has factor x_l = 0
        }
        let q = 1.0 - xl;
        // S0 = Σ_{j=1..h} x q^{j-1} = 1 - q^h
        let qh = q.powf(h);
        let s0 = 1.0 - qh;
        // S1 = Σ_{j=1..h} (j-1) x q^{j-1}
        //    = x·q·(1 - h·q^{h-1} + (h-1)·q^h) / (1-q)^2
        let s1 = if q <= f64::EPSILON {
            0.0
        } else {
            xl * q * (1.0 - h * q.powf(h - 1.0) + (h - 1.0) * qh) / ((1.0 - q) * (1.0 - q))
        };
        let ec_next = ec_level(p, x, delta, l + 1, op.fanout);
        s1 * delta[l] + s0 * (op.probe_cost + ec_next)
    }
    ec_level(p, x, delta, 1, h.max(0.0)).max(0.0)
}

/// Theorem 1: `E[Z^k_{1:m}]`, the expected cost of finding the top `k`
/// results from groups `g_1..g_m` in score order, by dynamic programming
/// over `(l, k)` with base cases `E[Z^k_{l:m}] = 0` when `l > m` or
/// `k = 0`:
///
/// `E[Z^k_{l:m}] = ec_l + (1-np_l)·E[Z^{k-1}_{l+1:m}] + nc_l + np_l·E[Z^k_{l+1:m}]`
pub fn et_stack_cost(p: &DgjStackParams, k: usize) -> f64 {
    let m = p.groups.len();
    if m == 0 || k == 0 {
        return 0.0;
    }
    let model = CostModel::derive(p);
    // dp[l][kk] = E[Z^kk_{l+1..m}] with l in 0..=m (l = m: beyond last).
    let kmax = k.min(m);
    let mut next = vec![0.0f64; kmax + 1]; // l = m+1 row: zeros
    for l in (1..=m).rev() {
        let mut cur = vec![0.0f64; kmax + 1];
        for kk in 1..=kmax {
            let i = l - 1;
            cur[kk] = model.ec[i]
                + (1.0 - model.np[i]) * next[kk - 1]
                + model.nc[i]
                + model.np[i] * next[kk];
        }
        next = cur;
    }
    next[kmax]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(ops: Vec<DgjOpParams>, groups: Vec<f64>) -> DgjStackParams {
        DgjStackParams { ops, groups }
    }

    fn op(fanout: f64, rho: f64, probe: f64) -> DgjOpParams {
        DgjOpParams { fanout, rho, probe_cost: probe }
    }

    #[test]
    fn x_closed_form_single_op() {
        // One operator, fanout 2, rho 0.5: x_1 = 1 - (1 - 0.5)^2 = 0.75.
        let p = stack(vec![op(2.0, 0.5, 1.0)], vec![1.0]);
        let m = CostModel::derive(&p);
        assert!((m.x[1] - 0.75).abs() < 1e-12);
        assert_eq!(m.x[2], 1.0);
    }

    #[test]
    fn x_composes_down_the_stack() {
        // Two ops: x_2 = 1-(1-ρ2)^m2; x_1 = 1-(1-ρ1·x_2)^m1.
        let p = stack(vec![op(1.0, 0.5, 1.0), op(1.0, 0.5, 1.0)], vec![1.0]);
        let m = CostModel::derive(&p);
        assert!((m.x[2] - 0.5).abs() < 1e-12);
        assert!((m.x[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_recurrence() {
        // δ_2 = I_2 = 3; δ_1 = I_1 + m_1 ρ_1 δ_2 = 1 + 2·0.5·3 = 4.
        let p = stack(vec![op(2.0, 0.5, 1.0), op(1.0, 1.0, 3.0)], vec![1.0]);
        let m = CostModel::derive(&p);
        assert!((m.delta[2] - 3.0).abs() < 1e-12);
        assert!((m.delta[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn np_is_no_result_probability() {
        let p = stack(vec![op(1.0, 0.5, 1.0)], vec![2.0]);
        let m = CostModel::derive(&p);
        // x1 = 0.5; np = (1-0.5)^2 = 0.25.
        assert!((m.np[0] - 0.25).abs() < 1e-12);
        // nc = np · Card · δ1 = 0.25 · 2 · 1 = 0.5.
        assert!((m.nc[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ec_zero_when_nothing_matches() {
        let p = stack(vec![op(1.0, 0.0, 1.0)], vec![100.0]);
        let m = CostModel::derive(&p);
        assert_eq!(m.ec[0], 0.0);
        assert!((m.np[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ec_single_certain_hit_costs_one_probe() {
        // rho = 1, fanout = 1 => x1 = 1: the first tuple always produces a
        // result; expected cost = I_1.
        let p = stack(vec![op(1.0, 1.0, 2.5)], vec![10.0]);
        let m = CostModel::derive(&p);
        assert!((m.ec[0] - 2.5).abs() < 1e-9, "ec = {}", m.ec[0]);
    }

    #[test]
    fn ec_geometric_expected_tries() {
        // x1 = 0.5, unbounded-ish h: E[tries] = 2, each failed try costs
        // δ1 = I = 1, the final try costs I. EC ≈ E[(j-1)]·δ + E[S0]·I
        //   = (sum formula) ≈ 1·1 + 1·1 = 2 for large h.
        let p = stack(vec![op(1.0, 0.5, 1.0)], vec![1000.0]);
        let m = CostModel::derive(&p);
        assert!((m.ec[0] - 2.0).abs() < 1e-6, "ec = {}", m.ec[0]);
    }

    #[test]
    fn theorem1_k1_single_group() {
        // One group, k=1: E = ec + nc (np·E[..] terms vanish past the end).
        let p = stack(vec![op(1.0, 0.5, 1.0)], vec![4.0]);
        let m = CostModel::derive(&p);
        let e = et_stack_cost(&p, 1);
        assert!((e - (m.ec[0] + m.nc[0])).abs() < 1e-12);
    }

    #[test]
    fn theorem1_monotone_in_k() {
        let p =
            stack(vec![op(3.0, 0.3, 1.0), op(1.0, 0.4, 1.0)], vec![50.0, 40.0, 30.0, 20.0, 10.0]);
        let mut prev = 0.0;
        for k in 1..=5 {
            let e = et_stack_cost(&p, k);
            assert!(e >= prev, "cost must grow with k: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn theorem1_k_capped_by_group_count() {
        let p = stack(vec![op(1.0, 0.9, 1.0)], vec![5.0, 5.0]);
        // Asking for more results than groups costs the same as k = m.
        assert!((et_stack_cost(&p, 2) - et_stack_cost(&p, 10)).abs() < 1e-12);
    }

    #[test]
    fn selective_predicates_make_et_expensive() {
        // The paper's empirical finding (§6.2.2): ET plans are poor for
        // selective predicates because groups rarely produce a match and
        // each group is paid for in full. Cost with rho = 0.01 must
        // exceed cost with rho = 0.9 for the same shape.
        let groups: Vec<f64> = vec![100.0; 50];
        let cheap = stack(vec![op(1.0, 0.9, 1.0), op(1.0, 0.9, 1.0)], groups.clone());
        let dear = stack(vec![op(1.0, 0.01, 1.0), op(1.0, 0.01, 1.0)], groups);
        assert!(et_stack_cost(&dear, 10) > et_stack_cost(&cheap, 10));
    }

    #[test]
    fn empty_stack_or_zero_k_is_free() {
        assert_eq!(et_stack_cost(&DgjStackParams::default(), 5), 0.0);
        let p = stack(vec![op(1.0, 0.5, 1.0)], vec![3.0]);
        assert_eq!(et_stack_cost(&p, 0), 0.0);
    }
}
