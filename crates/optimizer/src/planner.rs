//! System-R style join-order planning with the early-termination property
//! (§5.4.1 of the paper).
//!
//! The classic bottom-up dynamic program enumerates left-deep join orders
//! and keeps, for every subset of relations, the least-cost plan for each
//! *interesting property*. Besides the usual interesting order we track
//! the paper's new property: **early termination** — the plan preserves
//! group order end-to-end *and* every operator above the group source
//! supports `advance_to_next_group` (i.e. is a DGJ operator). At the
//! root, an ET-capable plan may be re-priced with the Theorem-1 model
//! ([`crate::cost::et_stack_cost`]) when a top-k target is given; the
//! cheaper of the best regular plan and the best ET plan wins — that
//! choice *is* `Fast-Top-k-Opt` / `Full-Top-k-Opt`.

use crate::cost::{et_stack_cost, DgjOpParams, DgjStackParams};

/// A base relation with its statistics.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Display name.
    pub name: String,
    /// Cardinality `N_i`.
    pub card: f64,
    /// Local predicate selectivity `ρ_i`.
    pub sel: f64,
    /// Cost of one index probe `I_i`; `None` when the join column has no
    /// index (index-based joins are then inapplicable).
    pub probe_cost: Option<f64>,
    /// True if scanning this relation yields group-ordered output (the
    /// TopInfo-by-score stream in topology plans).
    pub group_source: bool,
}

/// An equi-join edge between two relations with its selectivity `s_i`.
#[derive(Debug, Clone, Copy)]
pub struct JoinEdge {
    /// First relation index.
    pub a: usize,
    /// Second relation index.
    pub b: usize,
    /// Join selectivity.
    pub sel: f64,
}

/// The query: relations, join edges, and the number of groups flowing out
/// of the group source (topologies in score order).
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Base relations.
    pub relations: Vec<Relation>,
    /// Join edges.
    pub edges: Vec<JoinEdge>,
    /// Number of groups produced by the group source (`m` in the paper).
    pub group_count: f64,
}

/// Physical join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Regular hash join (build inner once). Destroys group order.
    Hash,
    /// Regular index nested loops. Preserves order, cannot skip groups.
    IndexNl,
    /// Index nested-loops DGJ (order + skip).
    Idgj,
    /// Hash DGJ (order + skip, inner re-evaluated per group).
    Hdgj,
}

/// Properties tracked as "interesting" during DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanProps {
    /// Output clustered in the group order of the group source.
    pub group_ordered: bool,
    /// Every operator above the group source supports group skipping.
    pub early_term: bool,
}

/// A left-deep physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Leaf scan of a base relation (predicate applied).
    Scan {
        /// Relation index.
        rel: usize,
    },
    /// Join of a left subplan with a base relation.
    Join {
        /// Join algorithm.
        algo: JoinAlgo,
        /// Outer subplan.
        left: Box<PhysicalPlan>,
        /// Inner base relation index.
        right: usize,
    },
}

impl PhysicalPlan {
    /// One-line explain string, e.g. `HDGJ(IDGJ(TopInfo, LeftTops), Protein)`.
    pub fn explain(&self, jg: &JoinGraph) -> String {
        match self {
            PhysicalPlan::Scan { rel } => jg.relations[*rel].name.clone(),
            PhysicalPlan::Join { algo, left, right } => {
                let a = match algo {
                    JoinAlgo::Hash => "HASH",
                    JoinAlgo::IndexNl => "INL",
                    JoinAlgo::Idgj => "IDGJ",
                    JoinAlgo::Hdgj => "HDGJ",
                };
                format!("{}({}, {})", a, left.explain(jg), jg.relations[*right].name)
            }
        }
    }

    /// The join chain bottom-up: `(algo, relation)` per level.
    pub fn chain(&self) -> Vec<(JoinAlgo, usize)> {
        match self {
            PhysicalPlan::Scan { .. } => Vec::new(),
            PhysicalPlan::Join { algo, left, right } => {
                let mut c = left.chain();
                c.push((*algo, *right));
                c
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    plan: PhysicalPlan,
    cost: f64,
    out_card: f64,
    props: PlanProps,
}

/// The planner's decision: the winning plan plus its estimated cost, and
/// whether the Theorem-1 early-termination pricing was the reason.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// Winning physical plan.
    pub plan: PhysicalPlan,
    /// Estimated cost of the winner.
    pub cost: f64,
    /// True if the winner was priced with the ET model.
    pub used_early_termination: bool,
}

/// Run the DP. `topk` enables Theorem-1 pricing of ET-capable roots.
///
/// Relations must form a connected join graph; the group source (if any)
/// is forced to be the leftmost (outer-most) relation of ET plans, since
/// group order can only originate there.
pub fn plan_join_order(jg: &JoinGraph, topk: Option<usize>) -> PlanChoice {
    let n = jg.relations.len();
    assert!((1..=16).contains(&n), "planner supports 1..=16 relations");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // best[mask] -> list of non-dominated candidates (by props).
    let mut best: Vec<Vec<Candidate>> = vec![Vec::new(); (full as usize) + 1];

    for (i, rel) in jg.relations.iter().enumerate() {
        let props = PlanProps { group_ordered: rel.group_source, early_term: rel.group_source };
        offer(
            &mut best[1usize << i],
            Candidate {
                plan: PhysicalPlan::Scan { rel: i },
                cost: rel.card,
                out_card: (rel.card * rel.sel).max(1e-9),
                props,
            },
        );
    }

    for mask in 1..=full {
        if best[mask as usize].is_empty() {
            continue;
        }
        let lefts = best[mask as usize].clone();
        for right in 0..n {
            if mask & (1 << right) != 0 {
                continue;
            }
            let Some(edge_sel) = connecting_sel(jg, mask, right) else { continue };
            let rel = &jg.relations[right];
            let right_out = (rel.card * rel.sel).max(1e-9);
            for left in &lefts {
                let out_card = (left.out_card * right_out * edge_sel).max(1e-9);
                let matches_per_tuple = (rel.card * edge_sel).max(0.0);
                // Hash join: build inner once, probe with outer.
                offer(
                    &mut best[(mask | (1 << right)) as usize],
                    Candidate {
                        plan: PhysicalPlan::Join {
                            algo: JoinAlgo::Hash,
                            left: Box::new(left.plan.clone()),
                            right,
                        },
                        cost: left.cost + rel.card + left.out_card + out_card,
                        out_card,
                        props: PlanProps { group_ordered: false, early_term: false },
                    },
                );
                // Index-based joins need an index on the join column.
                if let Some(probe) = rel.probe_cost {
                    let inl_cost =
                        left.cost + left.out_card * (probe + matches_per_tuple) + out_card;
                    offer(
                        &mut best[(mask | (1 << right)) as usize],
                        Candidate {
                            plan: PhysicalPlan::Join {
                                algo: JoinAlgo::IndexNl,
                                left: Box::new(left.plan.clone()),
                                right,
                            },
                            cost: inl_cost,
                            out_card,
                            props: PlanProps {
                                group_ordered: left.props.group_ordered,
                                early_term: false,
                            },
                        },
                    );
                    if left.props.early_term {
                        offer(
                            &mut best[(mask | (1 << right)) as usize],
                            Candidate {
                                plan: PhysicalPlan::Join {
                                    algo: JoinAlgo::Idgj,
                                    left: Box::new(left.plan.clone()),
                                    right,
                                },
                                cost: inl_cost,
                                out_card,
                                props: PlanProps { group_ordered: true, early_term: true },
                            },
                        );
                    }
                }
                // HDGJ: order-preserving hash, inner re-scanned per group.
                if left.props.early_term {
                    offer(
                        &mut best[(mask | (1 << right)) as usize],
                        Candidate {
                            plan: PhysicalPlan::Join {
                                algo: JoinAlgo::Hdgj,
                                left: Box::new(left.plan.clone()),
                                right,
                            },
                            cost: left.cost + jg.group_count * rel.card + left.out_card + out_card,
                            out_card,
                            props: PlanProps { group_ordered: true, early_term: true },
                        },
                    );
                }
            }
        }
    }

    // Root choice: best regular (full-evaluation) plan vs best ET plan.
    let roots = &best[full as usize];
    assert!(!roots.is_empty(), "join graph must be connected");
    let best_regular = roots.iter().min_by(|a, b| a.cost.total_cmp(&b.cost)).expect("non-empty");
    let best_et =
        roots.iter().filter(|c| c.props.early_term).min_by(|a, b| a.cost.total_cmp(&b.cost));

    match (topk, best_et) {
        (Some(k), Some(et)) => {
            let et_cost = price_et(jg, &et.plan, k);
            if et_cost < best_regular.cost {
                PlanChoice { plan: et.plan.clone(), cost: et_cost, used_early_termination: true }
            } else {
                PlanChoice {
                    plan: best_regular.plan.clone(),
                    cost: best_regular.cost,
                    used_early_termination: false,
                }
            }
        }
        _ => PlanChoice {
            plan: best_regular.plan.clone(),
            cost: best_regular.cost,
            used_early_termination: false,
        },
    }
}

/// Price an ET-capable plan with Theorem 1, deriving per-operator
/// parameters from the join chain (uniform group sizes).
fn price_et(jg: &JoinGraph, plan: &PhysicalPlan, k: usize) -> f64 {
    let chain = plan.chain();
    let source_out = match base_relation(plan) {
        Some(i) => (jg.relations[i].card * jg.relations[i].sel).max(1.0),
        None => return f64::INFINITY,
    };
    let m = jg.group_count.max(1.0);
    let card_per_group = (source_out / m).max(1.0);
    let mut ops = Vec::with_capacity(chain.len());
    let mut prev = base_relation(plan).expect("checked");
    for (algo, right) in chain {
        let rel = &jg.relations[right];
        let sel = connecting_sel(jg, 1 << prev, right).unwrap_or(1e-9);
        let probe = match algo {
            JoinAlgo::Hdgj => rel.card, // per-group rescan amortized as the probe
            _ => rel.probe_cost.unwrap_or(1.0),
        };
        ops.push(DgjOpParams {
            fanout: (rel.card * sel).max(1e-9),
            rho: rel.sel,
            probe_cost: probe,
        });
        prev = right;
    }
    let groups = vec![card_per_group; m as usize];
    source_out.mul_add(0.0, et_stack_cost(&DgjStackParams { ops, groups }, k))
        + jg.relations[base_relation(plan).expect("checked")].card // initial scan
}

fn base_relation(plan: &PhysicalPlan) -> Option<usize> {
    match plan {
        PhysicalPlan::Scan { rel } => Some(*rel),
        PhysicalPlan::Join { left, .. } => base_relation(left),
    }
}

/// Selectivity connecting `right` to any relation in `mask` (product over
/// all applicable edges; `None` when disconnected — avoids cross joins).
fn connecting_sel(jg: &JoinGraph, mask: u32, right: usize) -> Option<f64> {
    let mut sel = 1.0;
    let mut connected = false;
    for e in &jg.edges {
        let (x, y) = (e.a, e.b);
        if (x == right && mask & (1 << y) != 0) || (y == right && mask & (1 << x) != 0) {
            sel *= e.sel;
            connected = true;
        }
    }
    connected.then_some(sel)
}

/// Keep only non-dominated candidates: one best plan per property combo,
/// and drop any candidate beaten in both cost and properties.
fn offer(slot: &mut Vec<Candidate>, cand: Candidate) {
    if let Some(existing) = slot.iter_mut().find(|c| c.props == cand.props) {
        if cand.cost < existing.cost {
            *existing = cand;
        }
        return;
    }
    slot.push(cand);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Topology-query shaped graph: TopInfo (group source) — LeftTops —
    /// Protein — DNA. Mirrors Fig. 15 of the paper.
    fn topology_graph(protein_sel: f64, dna_sel: f64) -> JoinGraph {
        JoinGraph {
            relations: vec![
                Relation {
                    name: "TopInfo".into(),
                    card: 200.0,
                    sel: 1.0,
                    probe_cost: Some(1.0),
                    group_source: true,
                },
                Relation {
                    name: "LeftTops".into(),
                    card: 100_000.0,
                    sel: 1.0,
                    probe_cost: Some(1.0),
                    group_source: false,
                },
                Relation {
                    name: "Protein".into(),
                    card: 20_000.0,
                    sel: protein_sel,
                    probe_cost: Some(1.0),
                    group_source: false,
                },
                Relation {
                    name: "DNA".into(),
                    card: 30_000.0,
                    sel: dna_sel,
                    probe_cost: Some(1.0),
                    group_source: false,
                },
            ],
            edges: vec![
                JoinEdge { a: 0, b: 1, sel: 1.0 / 200.0 },
                JoinEdge { a: 1, b: 2, sel: 1.0 / 20_000.0 },
                JoinEdge { a: 1, b: 3, sel: 1.0 / 30_000.0 },
            ],
            group_count: 200.0,
        }
    }

    #[test]
    fn unselective_topk_prefers_et() {
        let jg = topology_graph(0.85, 0.85);
        let choice = plan_join_order(&jg, Some(10));
        assert!(
            choice.used_early_termination,
            "expected ET plan for unselective predicates, got {} at cost {}",
            choice.plan.explain(&jg),
            choice.cost
        );
    }

    #[test]
    fn selective_topk_prefers_regular() {
        let jg = topology_graph(0.0005, 0.0005);
        let choice = plan_join_order(&jg, Some(10));
        assert!(
            !choice.used_early_termination,
            "expected regular plan for selective predicates, got {}",
            choice.plan.explain(&jg)
        );
    }

    #[test]
    fn no_topk_never_uses_et() {
        let jg = topology_graph(0.85, 0.85);
        let choice = plan_join_order(&jg, None);
        assert!(!choice.used_early_termination);
    }

    #[test]
    fn et_plans_start_at_group_source() {
        let jg = topology_graph(0.85, 0.85);
        let choice = plan_join_order(&jg, Some(5));
        if choice.used_early_termination {
            assert_eq!(base_relation(&choice.plan), Some(0), "ET plan must scan TopInfo first");
        }
    }

    #[test]
    fn two_relation_plan() {
        let jg = JoinGraph {
            relations: vec![
                Relation {
                    name: "A".into(),
                    card: 10.0,
                    sel: 1.0,
                    probe_cost: None,
                    group_source: false,
                },
                Relation {
                    name: "B".into(),
                    card: 1000.0,
                    sel: 0.5,
                    probe_cost: Some(1.0),
                    group_source: false,
                },
            ],
            edges: vec![JoinEdge { a: 0, b: 1, sel: 0.001 }],
            group_count: 1.0,
        };
        let choice = plan_join_order(&jg, None);
        // Index NL (10 probes) should beat hash (build 1000).
        let explain = choice.plan.explain(&jg);
        assert!(explain.contains("INL"), "got {explain}");
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let jg = JoinGraph {
            relations: vec![
                Relation {
                    name: "A".into(),
                    card: 1.0,
                    sel: 1.0,
                    probe_cost: None,
                    group_source: false,
                },
                Relation {
                    name: "B".into(),
                    card: 1.0,
                    sel: 1.0,
                    probe_cost: None,
                    group_source: false,
                },
            ],
            edges: vec![],
            group_count: 1.0,
        };
        let _ = plan_join_order(&jg, None);
    }

    #[test]
    fn explain_renders_chain() {
        let jg = topology_graph(0.5, 0.5);
        let choice = plan_join_order(&jg, Some(10));
        let s = choice.plan.explain(&jg);
        assert!(s.contains("TopInfo") || s.contains("LeftTops"));
        assert!(s.contains('('));
    }

    #[test]
    fn chain_lists_joins_bottom_up() {
        let plan = PhysicalPlan::Join {
            algo: JoinAlgo::Idgj,
            left: Box::new(PhysicalPlan::Join {
                algo: JoinAlgo::Hash,
                left: Box::new(PhysicalPlan::Scan { rel: 0 }),
                right: 1,
            }),
            right: 2,
        };
        let chain = plan.chain();
        assert_eq!(chain, vec![(JoinAlgo::Hash, 1), (JoinAlgo::Idgj, 2)]);
    }
}
