//! Property tests for the Theorem-1 cost model and the System-R planner.

use proptest::prelude::*;
use ts_optimizer::{
    et_stack_cost, plan_join_order, CostModel, DgjOpParams, DgjStackParams, JoinEdge, JoinGraph,
    Relation,
};

fn arb_op() -> impl Strategy<Value = DgjOpParams> {
    (0.1f64..10.0, 0.0f64..1.0, 0.5f64..4.0).prop_map(|(fanout, rho, probe_cost)| DgjOpParams {
        fanout,
        rho,
        probe_cost,
    })
}

fn arb_stack() -> impl Strategy<Value = DgjStackParams> {
    (proptest::collection::vec(arb_op(), 1..4), proptest::collection::vec(1.0f64..200.0, 1..30))
        .prop_map(|(ops, groups)| DgjStackParams { ops, groups })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn probabilities_are_probabilities(p in arb_stack()) {
        let m = CostModel::derive(&p);
        for &x in &m.x[1..] {
            prop_assert!((0.0..=1.0).contains(&x), "x = {x}");
        }
        for (&np, &nc) in m.np.iter().zip(m.nc.iter()) {
            prop_assert!((0.0..=1.0).contains(&np), "np = {np}");
            prop_assert!(nc >= 0.0);
        }
        for &ec in &m.ec {
            prop_assert!(ec >= 0.0 && ec.is_finite());
        }
    }

    #[test]
    fn cost_monotone_in_k(p in arb_stack()) {
        let mut prev = 0.0;
        for k in 1..=6 {
            let c = et_stack_cost(&p, k);
            prop_assert!(c.is_finite());
            prop_assert!(c + 1e-9 >= prev, "k={k}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn impossible_results_cost_only_the_failures(mut p in arb_stack()) {
        // With rho = 0 everywhere, no group ever yields a result: the
        // total cost is exactly the sum of per-group no-result costs.
        for op in &mut p.ops {
            op.rho = 0.0;
        }
        let m = CostModel::derive(&p);
        let expected: f64 = m.nc.iter().sum();
        let c = et_stack_cost(&p, 3);
        prop_assert!((c - expected).abs() < 1e-6 * expected.max(1.0), "{c} vs {expected}");
    }

    #[test]
    fn certain_results_stop_after_k_groups(mut p in arb_stack()) {
        // With rho = 1 and fanout >= 1, the first tuple of each group is a
        // result: the plan touches exactly min(k, m) groups.
        for op in &mut p.ops {
            op.rho = 1.0;
            op.fanout = op.fanout.max(1.0);
        }
        let m = p.groups.len();
        let k = 2usize.min(m);
        let model = CostModel::derive(&p);
        let expected: f64 = model.ec.iter().take(k).sum();
        let c = et_stack_cost(&p, k);
        prop_assert!((c - expected).abs() < 1e-6 * expected.max(1.0), "{c} vs {expected}");
    }

    #[test]
    fn planner_always_produces_a_connected_plan(
        cards in proptest::collection::vec(10.0f64..10_000.0, 2..5),
        sels in proptest::collection::vec(0.01f64..1.0, 2..5),
        k in proptest::option::of(1usize..20),
    ) {
        let n = cards.len().min(sels.len());
        let relations: Vec<Relation> = (0..n)
            .map(|i| Relation {
                name: format!("R{i}"),
                card: cards[i],
                sel: sels[i],
                probe_cost: Some(1.0),
                group_source: i == 0,
            })
            .collect();
        // Star join graph around R0.
        let edges: Vec<JoinEdge> = (1..n)
            .map(|i| JoinEdge { a: 0, b: i, sel: 1.0 / cards[i].max(2.0) })
            .collect();
        let jg = JoinGraph { relations, edges, group_count: 50.0 };
        let choice = plan_join_order(&jg, k);
        prop_assert!(choice.cost.is_finite() && choice.cost >= 0.0);
        // The plan must mention every relation exactly once.
        let explain = choice.plan.explain(&jg);
        for i in 0..n {
            let name = format!("R{i}");
            prop_assert_eq!(explain.matches(&name).count(), 1, "{}", explain);
        }
        // ET plans only when a top-k target exists.
        if k.is_none() {
            prop_assert!(!choice.used_early_termination);
        }
    }
}
