//! Lexer/parser robustness suite.
//!
//! The v2 linter's recursive-descent parser is *total* by design: any
//! byte sequence must lex, item-scan, and lint without panicking, with
//! every reported span inside the file's bounds. This suite hammers
//! that contract three ways — raw byte soup, Rust-ish token soup
//! (deeply unbalanced braces, stray `fn`/`loop`/`!` fragments), and
//! real workspace sources under random byte-level mutation (deletions,
//! duplications, flips), which preserve enough structure to reach the
//! deeper parser paths that pure noise never hits.
//!
//! Run with `PROPTEST_CASES=512` in CI's release pass for real
//! coverage; the checked-in counts are sized for debug `cargo test`.

use proptest::prelude::*;
use ts_lint::{Config, FileCtx, FileKind, ItemTree, Linter, SourceFile, RULES};

/// Every registered rule, active for the fuzz crate — the engine must
/// survive noise with the full rule set on, not just the parser.
fn all_rules_linter() -> Linter {
    let mut toml = String::new();
    for rule in RULES {
        toml.push_str(&format!("[rules.{}]\ncrates = [\"fuzz\"]\n", rule.name));
    }
    Linter::new(Config::parse(&toml).expect("generated all-rules config parses"))
}

/// The totality contract: lex + parse + full lint of `text` never
/// panics, and every span lands inside the file.
fn check_total(text: &str) {
    let src = SourceFile::parse(text);
    let tree = ItemTree::parse(&src);
    let ntoks = tree.toks.len();
    let nlines = text.lines().count() + 1; // lenient: EOF findings may point one past
    for f in &tree.fns {
        assert!(f.line >= 1 && f.line <= nlines, "fn line {} out of bounds", f.line);
        assert!(
            f.body.start <= f.body.end && f.body.end <= ntoks,
            "fn body {:?} escapes token stream of {ntoks}",
            f.body
        );
    }
    for call in tree.calls_in(0..ntoks) {
        assert!(call.line >= 1 && call.line <= nlines, "call line {} out of bounds", call.line);
    }
    let ctx = FileCtx { crate_name: "fuzz".to_string(), kind: FileKind::Lib };
    for finding in all_rules_linter().lint_source("fuzz.rs", text, &ctx) {
        let line = finding.violation.line;
        assert!(line >= 1 && line <= nlines, "finding line {line} out of bounds");
    }
}

/// Rust-ish fragments that stress item scanning: keywords, unbalanced
/// delimiters, attributes, comment and string openers left dangling.
const FRAGMENTS: [&str; 24] = [
    "fn",
    "loop",
    "while",
    "for",
    "in",
    "impl",
    "trait",
    "unsafe",
    "{",
    "}",
    "(",
    ")",
    "!",
    ".",
    "=",
    ";",
    "#[cfg(test)]",
    "let",
    "mut",
    "f",
    "next",
    "tick",
    "\"",
    "//",
];

/// Real sources mutated below: the linter's own densest files plus an
/// operator file full of the constructs the flow rules walk.
const REAL_SOURCES: [&str; 4] = [
    include_str!("../src/flow.rs"),
    include_str!("../src/parse.rs"),
    include_str!("../src/engine.rs"),
    include_str!("../../exec/src/join.rs"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        check_total(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn token_soup_never_panics(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), 0u8..4u8), 0..256),
    ) {
        let mut text = String::new();
        for (i, sep) in picks {
            text.push_str(FRAGMENTS[i]);
            text.push(if sep == 0 { '\n' } else { ' ' });
        }
        check_total(&text);
    }

    #[test]
    fn mutated_real_sources_never_panic(
        file in 0usize..REAL_SOURCES.len(),
        kind in 0u8..3u8,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        flip in 0u8..=255u8,
    ) {
        let base = REAL_SOURCES[file].as_bytes();
        let (mut lo, mut hi) =
            ((a * base.len() as f64) as usize, (b * base.len() as f64) as usize);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut bytes = base.to_vec();
        match kind {
            0 => drop(bytes.drain(lo..hi)),          // delete a range
            1 => bytes.extend_from_slice(&base[lo..hi]), // duplicate a range at EOF
            _ => {
                if lo < bytes.len() {
                    bytes[lo] ^= flip;               // flip one byte
                }
            }
        }
        check_total(&String::from_utf8_lossy(&bytes));
    }
}
