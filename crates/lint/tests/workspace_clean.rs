//! The lint gate as a test: the workspace itself must be lint-clean
//! under the checked-in `ts-lint.toml`, so `cargo test` fails the same
//! way CI's dedicated lint job would. Every allow directive in the tree
//! is also re-audited here — a stale or reasonless one is a finding.

use std::path::Path;

use ts_lint::{Config, Linter};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let toml =
        std::fs::read_to_string(root.join("ts-lint.toml")).expect("workspace ts-lint.toml exists");
    let linter = Linter::new(Config::parse(&toml).expect("workspace lint config parses"));
    let report = linter.lint_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files > 50, "suspiciously small scan: {} files", report.files);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_clean(),
        "workspace has {} lint finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}
