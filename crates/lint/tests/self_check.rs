//! Fixture-corpus self-test.
//!
//! Every file under `tests/fixtures/fire/` carries `//~ FIRE <rule>`
//! markers on the exact lines a finding must anchor to; the linter must
//! produce those findings and nothing else. Every file under
//! `tests/fixtures/clean/` exercises the tricky spans (strings,
//! comments, `#[cfg(test)]` regions, justified allow directives) and
//! must produce zero findings.
//!
//! Each fixture is linted with only the rule its file name encodes
//! enabled (`narrowing_cast.rs` → `narrowing-cast`), so corpus files
//! stay focused; the meta rules (`bad-allow`, `unused-allow`) always
//! run and have their own fire fixtures.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ts_lint::{Config, FileCtx, FileKind, Linter};

const MARKER: &str = "//~ FIRE ";

/// Rules to enable for a fixture, from its file stem.
fn rules_for(stem: &str) -> Vec<&'static str> {
    match stem {
        "unordered_iter" => vec!["unordered-iter"],
        "std_hash" => vec!["std-hash-in-hot-path"],
        "nondet" => vec!["nondeterministic-source"],
        "narrowing_cast" => vec!["narrowing-cast"],
        "unwrap_in_lib" => vec!["unwrap-in-lib"],
        "undocumented_unsafe" => vec!["undocumented-unsafe"],
        "bare_join_expect" => vec!["bare-join-expect"],
        "catch_unwind_audit" => vec!["catch-unwind-audit"],
        "unmetered_loop" => vec!["unmetered-loop"],
        "panic_on_worker_path" => vec!["panic-on-worker-path"],
        "determinism_taint" => vec!["determinism-taint"],
        // Meta-rule fixtures: bad-allow needs no base rule at all;
        // unused-allow needs one active rule its second case can miss.
        "bad_allow" => vec![],
        "unused_allow" => vec!["unwrap-in-lib"],
        other => panic!("fixture {other}.rs has no rule mapping; extend rules_for"),
    }
}

fn linter_for(stem: &str) -> Linter {
    let mut toml = String::new();
    for rule in rules_for(stem) {
        toml.push_str(&format!("[rules.{rule}]\ncrates = [\"fixture\"]\n"));
    }
    Linter::new(Config::parse(&toml).expect("generated fixture config parses"))
}

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(kind)
}

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(fixture_dir(kind))
        .expect("fixture dir exists")
        .map(|e| e.expect("fixture dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under tests/fixtures/{kind}");
    files
}

/// `(line, rule)` pairs declared by `//~ FIRE <rule>` markers.
fn expected_findings(text: &str) -> BTreeSet<(usize, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find(MARKER) {
            rest = &rest[pos + MARKER.len()..];
            let rule: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
            assert!(!rule.is_empty(), "empty FIRE marker on line {}", i + 1);
            out.insert((i + 1, rule));
        }
    }
    out
}

fn actual_findings(path: &Path, text: &str) -> BTreeSet<(usize, String)> {
    let stem = path.file_stem().expect("fixture has a stem").to_string_lossy().to_string();
    let ctx = FileCtx { crate_name: "fixture".to_string(), kind: FileKind::Lib };
    linter_for(&stem)
        .lint_source(&path.display().to_string(), text, &ctx)
        .into_iter()
        .map(|f| (f.violation.line, f.violation.rule.to_string()))
        .collect()
}

#[test]
fn fire_fixtures_fire_exactly_as_marked() {
    for path in fixture_files("fire") {
        let text = fs::read_to_string(&path).expect("fixture readable");
        let expected = expected_findings(&text);
        assert!(!expected.is_empty(), "{}: fire fixture has no FIRE markers", path.display());
        let actual = actual_findings(&path, &text);
        assert_eq!(
            actual,
            expected,
            "{}: findings (left) diverge from FIRE markers (right)",
            path.display()
        );
    }
}

#[test]
fn clean_fixtures_stay_silent() {
    for path in fixture_files("clean") {
        let text = fs::read_to_string(&path).expect("fixture readable");
        assert!(
            !text.contains(MARKER),
            "{}: clean fixture carries a FIRE marker; move it to fire/",
            path.display()
        );
        let actual = actual_findings(&path, &text);
        assert!(actual.is_empty(), "{}: expected silence, got {actual:?}", path.display());
    }
}

/// Every configurable rule must be pinned by at least one must-fire and
/// one must-not-fire fixture, so a rule can't silently rot.
#[test]
fn every_rule_has_fire_and_clean_coverage() {
    for kind in ["fire", "clean"] {
        let mut covered: BTreeSet<String> = BTreeSet::new();
        for path in fixture_files(kind) {
            let stem = path.file_stem().expect("stem").to_string_lossy().to_string();
            covered.extend(rules_for(&stem).iter().map(|r| r.to_string()));
        }
        for rule in ts_lint::RULES {
            assert!(covered.contains(rule.name), "rule {} lacks a {kind} fixture", rule.name);
        }
    }
}
