//! Docs/binary drift gate: the rule catalog in `docs/LINTS.md` must
//! name exactly the rules the binary registers — a rule added without
//! documentation, or documentation for a rule that was removed or
//! renamed, fails here (and in CI, which runs the same comparison
//! against `--list-rules`).

use std::collections::BTreeSet;

const LINTS_MD: &str = include_str!("../../../docs/LINTS.md");

/// Rule names documented as `### `rule-name`` headings.
fn documented() -> BTreeSet<String> {
    LINTS_MD
        .lines()
        .filter_map(|l| l.strip_prefix("### `"))
        .filter_map(|rest| rest.strip_suffix('`'))
        .map(|name| name.to_string())
        .collect()
}

#[test]
fn catalog_matches_registered_rules() {
    let mut registered: BTreeSet<String> =
        ts_lint::RULES.iter().map(|r| r.name.to_string()).collect();
    // The always-on meta rules are not in RULES but are part of the
    // user-facing surface (and of `--list-rules`).
    registered.insert(ts_lint::rules::BAD_ALLOW.to_string());
    registered.insert(ts_lint::rules::UNUSED_ALLOW.to_string());
    let documented = documented();
    let missing: Vec<_> = registered.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&registered).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "docs/LINTS.md drifted from the registered rule set: \
         undocumented {missing:?}, stale headings {stale:?}"
    );
}
