//! Negative self-test for `unmetered-loop`: the rule must be sharp
//! enough that deleting any *single* budget poll (`Work::tick` /
//! `count_row`) from the real ts-exec driver source makes it fire.
//!
//! This pins the rule's sensitivity, not just its existence — a
//! regression that credits loops too generously (say, counting
//! `interrupted()` as a poll, or crediting through a metered callee)
//! would keep the workspace "clean" while letting an unpolled loop
//! ship. Each mutation below would be exactly such a bug slipping in.

use ts_lint::{Config, FileCtx, FileKind, Linter};

const DRIVER_SRC: &str = include_str!("../../exec/src/driver.rs");

fn linter() -> Linter {
    Linter::new(
        Config::parse("[rules.unmetered-loop]\ncrates = [\"ts-exec\"]\n")
            .expect("unmetered-loop config parses"),
    )
}

fn unmetered_findings(text: &str) -> Vec<usize> {
    let ctx = FileCtx { crate_name: "ts-exec".to_string(), kind: FileKind::Lib };
    linter()
        .lint_source("crates/exec/src/driver.rs", text, &ctx)
        .into_iter()
        .filter(|f| f.violation.rule == "unmetered-loop")
        .map(|f| f.violation.line)
        .collect()
}

/// The shipped driver passes the rule as-is (its unbudgeted drains
/// carry reasoned allows; everything else polls).
#[test]
fn pristine_driver_is_clean() {
    assert_eq!(unmetered_findings(DRIVER_SRC), Vec::<usize>::new());
}

/// Deleting any single budget poll trips the rule.
#[test]
fn deleting_any_single_poll_fires() {
    let poll_lines: Vec<usize> = DRIVER_SRC
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(".count_row(") || l.contains(".tick("))
        .map(|(i, _)| i)
        .collect();
    assert!(
        poll_lines.len() >= 4,
        "driver.rs should contain at least its four budget polls, found {}",
        poll_lines.len()
    );
    for &target in &poll_lines {
        let mutated: String = DRIVER_SRC
            .lines()
            .enumerate()
            .map(|(i, l)| if i == target { "" } else { l })
            .collect::<Vec<_>>()
            .join("\n");
        let findings = unmetered_findings(&mutated);
        assert!(
            !findings.is_empty(),
            "deleting the poll on line {} left every loop credited — \
             unmetered-loop lost its single-deletion sensitivity",
            target + 1
        );
    }
}
