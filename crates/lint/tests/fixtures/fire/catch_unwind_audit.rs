// Must-fire corpus for `catch-unwind-audit`: panic-isolation
// boundaries with no written audit.

use std::panic::{catch_unwind, AssertUnwindSafe};

fn swallow(f: impl FnOnce() -> u32) -> Option<u32> {
    catch_unwind(AssertUnwindSafe(f)).ok() //~ FIRE catch-unwind-audit
}

fn qualified(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok() //~ FIRE catch-unwind-audit
}
