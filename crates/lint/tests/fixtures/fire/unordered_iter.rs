// Must-fire corpus for `unordered-iter`: iterating a hash map/set with
// no sort or order-insensitive reduction in sight.

use ts_storage::{FastMap, FastSet};

fn leak_keys(m: &FastMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _v) in m.iter() { //~ FIRE unordered-iter
        out.push(*k);
    }
    out
}

fn consume_whole_map(m: FastMap<u32, u32>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, v) in m { //~ FIRE unordered-iter
        out.push(u64::from(k) + u64::from(v));
    }
    out
}

fn collect_values(seen: &mut FastSet<u64>) -> Vec<u64> {
    seen.iter().copied().collect() //~ FIRE unordered-iter
}

fn std_maps_fire_too(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    let tmp: Vec<u32> = m.keys().copied().collect(); //~ FIRE unordered-iter
    tmp
}
