// Must-fire corpus for `narrowing-cast`: bare `as` casts to narrow
// integer types.

fn offsets(buf: &[u8]) -> u32 {
    buf.len() as u32 //~ FIRE narrowing-cast
}

fn type_id(n: usize) -> u16 {
    n as u16 //~ FIRE narrowing-cast
}

fn node_index(v: usize) -> u8 {
    v as u8 //~ FIRE narrowing-cast
}

fn signed_too(x: i64) -> i32 {
    x as i32 //~ FIRE narrowing-cast
}

fn mid_expression(xs: &[u64], i: usize) -> u32 {
    xs[i] as u32 + 1 //~ FIRE narrowing-cast
}
