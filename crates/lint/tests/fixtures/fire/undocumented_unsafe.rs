// Must-fire corpus for `undocumented-unsafe`: unsafe without a stated
// soundness argument.

unsafe fn raw_read(p: *const u32) -> u32 { //~ FIRE undocumented-unsafe
    *p
}

fn caller(p: *const u32) -> u32 {
    // A plain comment without the magic marker does not count.
    unsafe { raw_read(p) } //~ FIRE undocumented-unsafe
}

struct Wrapper(u64);

unsafe impl Send for Wrapper {} //~ FIRE undocumented-unsafe
