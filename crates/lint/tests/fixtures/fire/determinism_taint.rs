// Must-fire corpus for `determinism-taint`: hash-map iteration results
// flowing into catalog/serialization sinks — directly, through a
// collected local, and through a function return — with no sort in
// between. Findings anchor at the sink, where the fix belongs.

use ts_storage::FastMap;

fn leak_direct(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    for (k, _v) in m.iter() {
        cat.add_pair(*k); //~ FIRE determinism-taint
    }
}

fn leak_via_local(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    let keys: Vec<u32> = m.keys().copied().collect();
    cat.insert_ints(&keys); //~ FIRE determinism-taint
}

fn hash_ordered_keys(m: &FastMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

fn leak_via_return(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    let ks = hash_ordered_keys(m);
    cat.insert_ints(&ks); //~ FIRE determinism-taint
}

fn leak_via_accumulator(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    let mut acc = Vec::new();
    for v in m.values() {
        acc.push(*v);
    }
    cat.serialize(&acc); //~ FIRE determinism-taint
}
