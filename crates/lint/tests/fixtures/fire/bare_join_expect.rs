// Must-fire corpus for `bare-join-expect`: thread joins that re-raise
// a worker panic instead of surfacing a typed error.

fn join_all(handles: Vec<std::thread::JoinHandle<u64>>) -> u64 {
    let mut total = 0;
    for h in handles {
        total += h.join().expect("worker panicked"); //~ FIRE bare-join-expect
    }
    total
}

fn join_one(h: std::thread::JoinHandle<()>) {
    h.join().unwrap(); //~ FIRE bare-join-expect
}
