// Must-fire corpus for `unmetered-loop`: loops in operator/driver
// bodies that never reach a Work budget poll (tick/count_row) within
// the default two call-graph hops.

struct Row;

impl Scan {
    fn next(&mut self) -> Option<Row> {
        loop { //~ FIRE unmetered-loop
            if self.exhausted() {
                return None;
            }
        }
    }
}

fn collect_all(op: &mut Scan) -> Vec<Row> {
    let mut out = Vec::new();
    // `op.next()` ticks inside, but a pull stage never takes metering
    // credit from the operators beneath it: the driver loop itself
    // must poll, or a starving operator starves the driver too.
    while let Some(r) = op.next() { //~ FIRE unmetered-loop
        out.push(r);
    }
    out
}

fn next_batch(out: &mut Batch) -> bool {
    for slot in out.slots() { //~ FIRE unmetered-loop
        fill(slot);
    }
    true
}

fn fill(_slot: &mut Slot) {}

fn distinct_topk(w: &Work) {
    // The poll exists, but three hops down — past the default budget
    // of two.
    loop { //~ FIRE unmetered-loop
        one_hop(w);
    }
}

fn one_hop(w: &Work) {
    two_hops(w);
}

fn two_hops(w: &Work) {
    three_hops(w);
}

fn three_hops(w: &Work) {
    w.tick(1);
}
