// Must-fire corpus for the `unused-allow` meta rule: directives that
// suppress nothing.

fn nothing_to_suppress(xs: &[u32]) -> usize {
    // lint: allow(unwrap-in-lib): stale — the unwrap was refactored away //~ FIRE unused-allow
    xs.len()
}

fn wrong_rule_for_the_line(m: Option<u32>) -> u32 {
    // lint: allow(narrowing-cast): there is no cast here, only an unwrap //~ FIRE unused-allow
    m.expect("suppressed by nothing") //~ FIRE unwrap-in-lib
}
