// Must-fire corpus for the `unused-allow` meta rule: directives that
// suppress nothing.

fn nothing_to_suppress(xs: &[u32]) -> usize {
    // lint: allow(unwrap-in-lib): stale — the unwrap was refactored away //~ FIRE unused-allow
    xs.len()
}

fn wrong_rule_for_the_line(m: Option<u32>) -> u32 {
    // lint: allow(narrowing-cast): there is no cast here, only an unwrap //~ FIRE unused-allow
    m.expect("suppressed by nothing") //~ FIRE unwrap-in-lib
}

fn stale_metering_allow(xs: &[u32]) -> usize {
    // lint: allow(unmetered-loop): stale — the loop ticks every row now //~ FIRE unused-allow
    xs.len()
}

fn stale_worker_path_allow(xs: &[u32]) -> usize {
    // lint: allow(panic-on-worker-path): stale — converted to an error path //~ FIRE unused-allow
    xs.len()
}
