// Must-fire corpus for `unwrap-in-lib`: aborts in library code.

fn unchecked(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ FIRE unwrap-in-lib
}

fn trusting(m: Option<u32>) -> u32 {
    m.expect("caller promised Some") //~ FIRE unwrap-in-lib
}

fn aborting(kind: u8) -> &'static str {
    match kind {
        0 => "zero",
        1 => panic!("one is not supported"), //~ FIRE unwrap-in-lib
        2 => unreachable!("twos were filtered upstream"), //~ FIRE unwrap-in-lib
        3 => todo!(), //~ FIRE unwrap-in-lib
        _ => unimplemented!(), //~ FIRE unwrap-in-lib
    }
}
