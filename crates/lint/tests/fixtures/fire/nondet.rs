// Must-fire corpus for `nondeterministic-source`: clocks and RNG in
// catalog-construction code.

use std::time::{Instant, SystemTime};

fn timed_build() -> f64 {
    let start = Instant::now(); //~ FIRE nondeterministic-source
    start.elapsed().as_secs_f64()
}

fn wall_clock_stamp() -> SystemTime {
    SystemTime::now() //~ FIRE nondeterministic-source
}

fn random_seed() -> u64 {
    let mut rng = rand::thread_rng(); //~ FIRE nondeterministic-source
    rng.next_u64()
}

fn ambient_state() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new() //~ FIRE nondeterministic-source
}
