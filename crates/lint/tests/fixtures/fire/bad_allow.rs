// Must-fire corpus for the `bad-allow` meta rule: directives naming an
// unknown rule, or carrying no written reason.

fn unknown_rule(xs: &[u32]) -> u32 {
    // lint: allow(no-such-rule): the rule name is wrong //~ FIRE bad-allow
    xs.len() as u32
}

fn missing_reason(xs: &[u32]) -> u32 {
    xs.len() as u32 // lint: allow(narrowing-cast) //~ FIRE bad-allow
}

fn reasonless_metering_allow(xs: &[u32]) -> usize {
    xs.len() // lint: allow(unmetered-loop) //~ FIRE bad-allow
}

fn reasonless_taint_allow(xs: &[u32]) -> usize {
    xs.len() // lint: allow(determinism-taint) //~ FIRE bad-allow
}
