// Must-fire corpus for `std-hash-in-hot-path`: std's seeded SipHash
// maps in library code of a hot-path crate.

use std::collections::HashMap; //~ FIRE std-hash-in-hot-path
use std::collections::{
    HashSet, //~ FIRE std-hash-in-hot-path
};

fn build(n: u32) -> HashMap<u32, u32> {
    let mut m = std::collections::HashMap::new(); //~ FIRE std-hash-in-hot-path
    for i in 0..n {
        m.insert(i, i * 2);
    }
    m
}

fn dedup(xs: &[u64]) -> usize {
    let s: HashSet<u64> = xs.iter().copied().collect();
    s.len()
}
