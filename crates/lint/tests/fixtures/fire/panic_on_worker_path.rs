// Must-fire corpus for `panic-on-worker-path`: panic sites reachable
// transitively from the worker entry points. `off_path` panics too but
// is unreachable, so it must NOT fire — reachability, not text search.

fn worker_loop(jobs: &Queue) {
    while let Some(job) = jobs.pop() {
        dispatch(job);
    }
}

fn dispatch(job: Job) {
    let plan = job.plan.unwrap(); //~ FIRE panic-on-worker-path
    run(plan);
}

fn run(plan: Plan) {
    let first = plan.steps.first().expect("plan has steps"); //~ FIRE panic-on-worker-path
    finish(first);
}

fn finish(step: &Step) {
    if step.cost == 0 {
        panic!("zero-cost step"); //~ FIRE panic-on-worker-path
    }
}

fn off_path(x: Option<u32>) -> u32 {
    x.unwrap()
}
