// Must-NOT-fire corpus for `determinism-taint`: sorted-before-sink,
// ordered-container collection, order-insensitive reductions, taint
// cleansed by an explicit receiver sort, untainted data, a justified
// allow, and test code.

use std::collections::BTreeMap;
use ts_storage::FastMap;

fn sorted_before_sink(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        cat.add_pair(k);
    }
}

fn ordered_container(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    let ordered: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
    for (k, _v) in &ordered {
        cat.add_pair(*k);
    }
}

fn order_insensitive(m: &FastMap<u32, u64>, cat: &mut Catalog) {
    let total: u64 = m.values().sum();
    cat.add_pair(total);
}

fn untainted_slice(values: &[u32], cat: &mut Catalog) {
    for v in values {
        cat.add_pair(*v);
    }
}

fn justified(m: &FastMap<u32, u32>, cat: &mut Catalog) {
    for (k, _v) in m.iter() {
        // lint: allow(determinism-taint): the catalog slot is keyed by
        // k itself, so insertion order cannot reach the bytes
        cat.insert_row(*k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_leak_order() {
        let m: FastMap<u32, u32> = FastMap::default();
        let mut cat = Catalog::default();
        for (k, _v) in m.iter() {
            cat.add_pair(*k);
        }
    }
}
