// Must-NOT-fire corpus for `undocumented-unsafe`: every unsafe states
// its invariant, on the line or in a comment block directly above.

// SAFETY: the caller must pass a pointer to a live, aligned u32; this
// function adds no requirements of its own.
unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}

fn same_line(p: *const u32) -> u32 {
    unsafe { raw_read(p) } // SAFETY: p comes from a pinned local below
}

fn block_above(x: &u32) -> u32 {
    // SAFETY: a reference is always a valid, aligned, live pointer to
    // its referent, so reading through the derived raw pointer is sound.
    // This comment block spans several lines and still counts because
    // it touches the unsafe line without interleaving code.
    unsafe { raw_read(x as *const u32) }
}

struct Wrapper(u64);

// SAFETY: Wrapper owns a plain u64 with no thread affinity.
unsafe impl Send for Wrapper {}

fn spans_do_not_fire() -> &'static str {
    // The word unsafe in prose, or in a string, is not an unsafe block.
    "unsafe as data"
}
