// Must-NOT-fire corpus for `unmetered-loop`: direct polls, polls one
// and two call-graph hops away, loops outside metered fns, a justified
// allow, and test code.

struct Row;

impl Scan {
    fn next(&mut self) -> Option<Row> {
        loop {
            self.w.tick(1);
            if self.exhausted() {
                return None;
            }
        }
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        for slot in out.slots() {
            self.w.count_row();
            fill(slot);
        }
        true
    }
}

fn fill(_slot: &mut Slot) {}

fn collect_all(op: &mut Scan, w: &Work) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        w.count_row();
        out.push(r);
    }
    out
}

fn batch_collect_all(op: &mut Scan, w: &Work) {
    // The poll is two hops away: pump -> meter -> tick.
    loop {
        if !pump(op, w) {
            break;
        }
    }
}

fn pump(op: &mut Scan, w: &Work) -> bool {
    meter(w);
    op.exhausted()
}

fn meter(w: &Work) {
    w.tick(8);
}

fn helper_outside_the_metered_set(xs: &[u32]) -> u64 {
    let mut acc = 0;
    for x in xs {
        acc += u64::from(*x);
    }
    acc
}

fn distinct_topk(rows: &[Row]) {
    // lint: allow(unmetered-loop): bounded by rows.len(); no Work
    // handle is plumbed into this merge step
    for r in rows {
        keep(r);
    }
}

fn keep(_r: &Row) {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_next() {
        let mut n = 0;
        loop {
            n += 1;
            if n > 3 {
                break;
            }
        }
    }
}
