// Must-NOT-fire corpus for `bare-join-expect`: collected join results,
// argful (non-thread) joins, prose, test code, and a justified allow.

fn collected(handles: Vec<std::thread::JoinHandle<u64>>) -> Result<u64, String> {
    let mut total = 0;
    for h in handles {
        match h.join() {
            Ok(v) => total += v,
            Err(_) => return Err("worker panicked".to_string()),
        }
    }
    Ok(total)
}

/// `Path::join` and `slice::join` take an argument, so they never look
/// like the argless thread `.join()` the pattern requires.
fn argful_joins(dir: &std::path::Path, parts: &[String]) -> String {
    let p = dir.join("segment.txt");
    format!("{}:{}", p.display(), parts.join(","))
}

fn prose() -> usize {
    let msg = "docs may quote .join().expect( and .join().unwrap() freely";
    msg.len()
}

fn justified(h: std::thread::JoinHandle<u64>) -> u64 {
    // lint: allow(bare-join-expect): the worker body is a pure integer
    // fold over validated input and cannot panic; an abort here would
    // itself be the bug worth catching loudly
    h.join().expect("infallible worker")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_join_expect() {
        let h = std::thread::spawn(|| 7u64);
        assert_eq!(h.join().expect("test worker"), 7);
    }
}
