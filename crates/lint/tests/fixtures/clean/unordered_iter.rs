// Must-NOT-fire corpus for `unordered-iter`: sorted results,
// order-insensitive reductions, tricky spans, and a justified allow.

use ts_storage::{FastMap, FastSet};

fn sorted_before_observable(m: &FastMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = m.keys().copied().collect();
    out.sort_unstable();
    out
}

fn order_insensitive_reduction(m: &FastMap<u32, u64>) -> u64 {
    m.values().sum()
}

fn counting_is_fine(s: &FastSet<u64>) -> usize {
    s.iter().count()
}

fn spans_do_not_fire(m: &FastMap<u32, u32>) -> usize {
    // Prose mentioning m.iter() in a comment is not code.
    let msg = "neither is m.iter() inside a string literal";
    msg.len() + m.len()
}

fn justified(m: &FastMap<u32, u32>) -> u64 {
    let mut acc = 0;
    // lint: allow(unordered-iter): xor-accumulation is order-insensitive
    for (_k, v) in m.iter() {
        acc ^= u64::from(*v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_out_of_scope() {
        let m: FastMap<u32, u32> = FastMap::default();
        for (_k, _v) in m.iter() {}
    }
}
