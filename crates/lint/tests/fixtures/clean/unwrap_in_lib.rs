// Must-NOT-fire corpus for `unwrap-in-lib`: error propagation, tricky
// spans, test code, and a justified allow.

#[derive(Debug)]
struct EmptyInput;

fn propagating(xs: &[u32]) -> Result<u32, EmptyInput> {
    xs.first().copied().ok_or(EmptyInput)
}

fn chaining(m: Option<u32>) -> Option<u32> {
    let v = m?;
    Some(v + 1)
}

/// Doc prose may say `.unwrap()` or `panic!(...)` without firing.
fn spans_do_not_fire() -> usize {
    let msg = "strings may contain .unwrap() and panic!( too";
    msg.len()
}

fn justified(xs: &mut Vec<u32>) -> u32 {
    xs.push(7);
    // lint: allow(unwrap-in-lib): xs is non-empty — pushed on the
    // previous line
    *xs.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let xs = vec![1u32, 2];
        assert_eq!(*xs.first().unwrap(), 1);
        let n: Option<u32> = Some(3);
        assert_eq!(n.expect("is some"), 3);
    }
}
