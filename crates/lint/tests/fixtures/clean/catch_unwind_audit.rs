// Must-NOT-fire corpus for `catch-unwind-audit`: audited boundaries,
// prose, imports, and test code.

use std::panic::{catch_unwind, AssertUnwindSafe};

fn audited(f: impl FnOnce() -> u32) -> Result<u32, String> {
    // lint: allow(catch-unwind-audit): confines panics from the caller-
    // supplied closure so the caller gets a typed error instead of a
    // dead thread; AssertUnwindSafe is sound because `f` is consumed
    // and no shared state is observed after the catch
    catch_unwind(AssertUnwindSafe(f)).map_err(|_| "panicked".to_string())
}

/// Prose and strings may mention `catch_unwind(..)` without firing, and
/// the import above carries no `(` so it stays silent too.
fn prose() -> usize {
    let s = "catch_unwind( in a string literal does not fire";
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_catch_freely() {
        assert!(catch_unwind(AssertUnwindSafe(|| panic!("boom"))).is_err());
    }
}
