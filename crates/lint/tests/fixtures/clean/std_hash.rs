// Must-NOT-fire corpus for `std-hash-in-hot-path`: the fast aliases,
// tricky spans, test code, and a justified allow.

use ts_storage::{FastMap, FastSet};

fn build(n: u32) -> FastMap<u32, u32> {
    let mut m = FastMap::default();
    for i in 0..n {
        m.insert(i, i * 2);
    }
    m
}

fn spans_do_not_fire() -> &'static str {
    // Mentioning std::collections::HashMap in a comment is fine.
    "and std::collections::HashSet inside a string literal is data"
}

// lint: allow(std-hash-in-hot-path): seeded-map differential test needs
// the std type to exercise SipHash against the fast hasher
use std::collections::HashMap;

fn compare(m: &HashMap<u32, u32>, f: &FastMap<u32, u32>) -> bool {
    m.len() == f.len()
}

fn dedup(xs: &[u64]) -> usize {
    let s: FastSet<u64> = xs.iter().copied().collect();
    s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_std_maps() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
