// Must-NOT-fire corpus for `nondeterministic-source`: seeds plumbed in
// from the caller, tricky spans, test code, and a justified allow.

use std::time::Instant;

fn seeded(seed: u64) -> u64 {
    // Deterministic: the caller owns the seed; no ambient entropy.
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn spans_do_not_fire() -> &'static str {
    // A comment may say Instant::now or thread_rng without firing.
    "and so may a string: Instant::now() / SystemTime::now()"
}

fn justified() -> f64 {
    // lint: allow(nondeterministic-source): timing statistic only; the
    // elapsed value is reported, never written into catalog bytes
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_may_read_the_clock() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}
