// Must-NOT-fire corpus for `narrowing-cast`: checked helpers, infallible
// widenings, tricky spans, test code, and a justified allow.

use ts_storage::cast;

fn checked(buf: &[u8]) -> u32 {
    cast::to_u32(buf.len())
}

fn widening(x: u16) -> u32 {
    u32::from(x)
}

fn widening_as_is_fine(x: u32) -> u64 {
    // `as` to a wider or same-width type never truncates.
    x as u64
}

fn to_usize_is_fine(x: u32) -> usize {
    x as usize
}

fn spans_do_not_fire() -> &'static str {
    // A comment can say `len as u32` without firing.
    "and a string can too: n as u16"
}

fn justified(n: usize) -> u8 {
    // lint: allow(narrowing-cast): n is a topology-graph node index,
    // asserted < 256 by LGraph::add_node
    n as u8
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast_freely() {
        let n: usize = 300;
        assert_eq!(n as u8, 44);
    }
}
