// Must-NOT-fire corpus for `panic-on-worker-path`: error propagation
// along the worker path, unreachable panics (owned by the blanket
// unwrap-in-lib rule instead), tricky spans, a justified allow, and
// test code.

fn worker_loop(jobs: &Queue) -> Result<(), ServeError> {
    while let Some(job) = jobs.pop() {
        dispatch(job)?;
    }
    Ok(())
}

fn dispatch(job: Job) -> Result<(), ServeError> {
    let plan = job.plan.ok_or(ServeError::NoPlan)?;
    run(plan)
}

fn run(plan: Plan) -> Result<(), ServeError> {
    let msg = "prose may say .unwrap() or panic!( inside a string";
    observe(msg.len(), plan)
}

fn observe(n: usize, _plan: Plan) -> Result<(), ServeError> {
    if n == 0 {
        return Err(ServeError::Empty);
    }
    Ok(())
}

fn off_path_helper(x: Option<u32>) -> u32 {
    // Unreachable from any worker entry; panic discipline here is the
    // blanket unwrap-in-lib rule's job, not this rule's.
    x.unwrap()
}

fn process(job: Job) -> Result<u32, ServeError> {
    job.validate()?;
    // lint: allow(panic-on-worker-path): validate() just proved slots
    // is non-empty
    let v = job.slots.first().copied().unwrap();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_worker_loop_may_unwrap() {
        let q = Queue::default();
        worker_loop(&q).unwrap();
    }
}
