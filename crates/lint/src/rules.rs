//! The per-file lexical rules (the call-graph rule families live in
//! [`crate::flow`]).
//!
//! Every rule pattern-matches the *sanitized* token stream from
//! [`crate::source`] — string literals, char literals, and comments can
//! never fire a rule. Rules are heuristic by design: they over-approximate
//! (a provably harmless match is silenced with an allow directive that
//! must carry a reason) and the fixture corpus in `tests/fixtures/`
//! pins both directions of every rule.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::source::{Line, SourceFile};

/// What part of a crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` — library (or binary) code.
    Lib,
    /// `tests/` integration tests.
    Test,
    /// `benches/` benchmark targets.
    Bench,
    /// `examples/`.
    Example,
}

/// Per-file context the engine hands to the rules.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Name of the owning crate (from its `Cargo.toml`).
    pub crate_name: String,
    /// Which target tree the file lives in.
    pub kind: FileKind,
}

/// One finding, pre-suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`RULES`], or a meta rule).
    pub rule: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Human-readable message with the remedy.
    pub message: String,
    /// Extra evidence lines (call chains, taint paths) shown by
    /// `--explain`.
    pub notes: Vec<String>,
}

impl Violation {
    /// A note-less finding (the common case for lexical rules).
    pub fn new(rule: &'static str, line: usize, message: String) -> Violation {
        Violation { rule, line, message, notes: Vec::new() }
    }
}

/// Static description of one rule, for `--list-rules` and the README.
pub struct RuleInfo {
    /// Rule name as used in config and allow directives.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Name of the unordered-iteration determinism rule.
pub const UNORDERED_ITER: &str = "unordered-iter";
/// Name of the std-hasher-in-hot-path rule.
pub const STD_HASH: &str = "std-hash-in-hot-path";
/// Name of the nondeterministic-source rule.
pub const NONDET_SOURCE: &str = "nondeterministic-source";
/// Name of the narrowing-cast rule.
pub const NARROWING_CAST: &str = "narrowing-cast";
/// Name of the unwrap/expect/panic-in-library rule.
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
/// Name of the undocumented-unsafe rule.
pub const UNDOCUMENTED_UNSAFE: &str = "undocumented-unsafe";
/// Name of the bare thread-join rule.
pub const BARE_JOIN_EXPECT: &str = "bare-join-expect";
/// Name of the catch_unwind audit rule.
pub const CATCH_UNWIND_AUDIT: &str = "catch-unwind-audit";
pub use crate::flow::{DETERMINISM_TAINT, PANIC_ON_WORKER_PATH, UNMETERED_LOOP};

/// Meta rule: malformed or reasonless allow directives.
pub const BAD_ALLOW: &str = "bad-allow";
/// Meta rule: allow directives that suppress nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// The configurable rules (meta rules are always on).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: UNORDERED_ITER,
        summary: "iterating a FastMap/FastSet/HashMap/HashSet without sorting the results \
                  (or an order-insensitive reduction) can leak hash order into output",
    },
    RuleInfo {
        name: STD_HASH,
        summary: "std::collections::HashMap/HashSet in hot-path crates must be the \
                  ts-storage FastMap/FastSet aliases",
    },
    RuleInfo {
        name: NONDET_SOURCE,
        summary: "Instant::now/SystemTime::now/ad-hoc RNG in catalog-construction code \
                  is a nondeterminism source",
    },
    RuleInfo {
        name: NARROWING_CAST,
        summary: "bare `as u8/u16/u32/i8/i16/i32` in offset/interner math must use the \
                  checked ts_storage::cast helpers (or an infallible `T::from`)",
    },
    RuleInfo {
        name: UNWRAP_IN_LIB,
        summary: "unwrap/expect/panic! in non-test library code must become an error \
                  path or justify its infallibility",
    },
    RuleInfo {
        name: UNDOCUMENTED_UNSAFE,
        summary: "`unsafe` requires a `// SAFETY:` comment on or directly above it",
    },
    RuleInfo {
        name: BARE_JOIN_EXPECT,
        summary: "`JoinHandle::join().expect(..)`/`.unwrap()` re-raises a worker panic in \
                  the joining thread; collect the join Results and surface a typed error",
    },
    RuleInfo {
        name: CATCH_UNWIND_AUDIT,
        summary: "every `catch_unwind` site is a panic-isolation boundary and must carry \
                  an allow directive auditing what it confines and where failures go",
    },
    RuleInfo {
        name: UNMETERED_LOOP,
        summary: "a loop in an operator/driver body must reach a Work budget poll \
                  (tick/count_row) within the configured call-graph hops, or the \
                  deadline/cancel machinery starves",
    },
    RuleInfo {
        name: PANIC_ON_WORKER_PATH,
        summary: "panic sites (unwrap/expect/panic!) transitively reachable from the \
                  server worker entry points ride the per-query isolation boundary \
                  and must become errors or carry a reasoned allow",
    },
    RuleInfo {
        name: DETERMINISM_TAINT,
        summary: "data iterated out of a FastMap/FastSet/HashMap must pass a sort \
                  (or an order-insensitive reduction) before reaching a \
                  catalog/serialization sink",
    },
];

/// True when `name` is a configurable or meta rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name) || name == BAD_ALLOW || name == UNUSED_ALLOW
}

/// A minimal token: identifiers/numbers vs. single punctuation chars.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Punct(char),
}

impl Tok {
    fn word(&self) -> Option<&str> {
        match self {
            Tok::Word(w) => Some(w),
            Tok::Punct(_) => None,
        }
    }

    fn is(&self, w: &str) -> bool {
        self.word() == Some(w)
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// Tokenize one sanitized line (whitespace dropped).
fn toks(code: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut word = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            if !word.is_empty() {
                out.push(Tok::Word(std::mem::take(&mut word)));
            }
            if !c.is_whitespace() {
                out.push(Tok::Punct(c));
            }
        }
    }
    if !word.is_empty() {
        out.push(Tok::Word(word));
    }
    out
}

/// [`active`] addressed by 1-based line number — the form the
/// call-graph rules in [`crate::flow`] need.
pub(crate) fn line_active(
    cfg: &Config,
    ctx: &FileCtx,
    rule: &str,
    src: &SourceFile,
    n: usize,
) -> bool {
    src.line(n).is_some_and(|l| active(cfg, ctx, rule, l))
}

/// Should this (line, rule) combination be checked at all?
fn active(cfg: &Config, ctx: &FileCtx, rule: &str, line: &Line) -> bool {
    let Some(scope) = cfg.rules.get(rule) else {
        return false;
    };
    if !scope.covers(&ctx.crate_name) {
        return false;
    }
    if scope.include_tests {
        return true;
    }
    ctx.kind == FileKind::Lib && !line.in_test
}

/// Run every configured rule over one file.
pub fn run_rules(file: &SourceFile, ctx: &FileCtx, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    unordered_iter(file, ctx, cfg, &mut out);
    std_hash(file, ctx, cfg, &mut out);
    nondet_source(file, ctx, cfg, &mut out);
    narrowing_cast(file, ctx, cfg, &mut out);
    unwrap_in_lib(file, ctx, cfg, &mut out);
    undocumented_unsafe(file, ctx, cfg, &mut out);
    bare_join_expect(file, ctx, cfg, &mut out);
    catch_unwind_audit(file, ctx, cfg, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------- rules

const MAP_TYPES: [&str; 4] = ["FastMap", "FastSet", "HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "into_keys"];
/// Substrings that prove the iteration cannot leak hash order: the
/// result is sorted, lands in an ordered container, or feeds an
/// order-insensitive reduction.
const ORDER_SINKS: [&str; 12] = [
    "sort",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    ".sum(",
    ".sum::",
    ".count(",
    ".min(",
    ".max(",
    ".all(",
    ".any(",
    ".len(",
];

/// Collect names declared (or typed) as one of the four map types:
/// `name: FastMap<..>` (lets, fields, params) and
/// `let [mut] name = .. FastMap::..`. Shared with the taint rule in
/// [`crate::flow`].
pub(crate) fn collect_map_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &file.lines {
        let t = toks(&line.code);
        for i in 0..t.len() {
            let Some(w) = t[i].word() else {
                continue;
            };
            if !MAP_TYPES.contains(&w) {
                continue;
            }
            // Type position: walk back over `path::` segments, `&`,
            // `mut`, and lifetimes to the `:` that annotates the name.
            let mut j = i;
            loop {
                if j >= 3 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':') {
                    j -= 3; // `ident ::`
                } else if j >= 1 && (t[j - 1].is_punct('&') || t[j - 1].is("mut")) {
                    j -= 1;
                } else if j >= 2 && t[j - 2].is_punct('\'') && t[j - 1].word().is_some() {
                    j -= 2; // `'a`
                } else {
                    break;
                }
            }
            if j >= 2 && t[j - 1].is_punct(':') && !t[j - 2].is_punct(':') {
                if let Some(name) = t[j - 2].word() {
                    names.insert(name.to_string());
                    continue;
                }
            }
            // Initializer position: `let [mut] name = .. FastMap..`.
            if let Some(let_pos) = t[..i].iter().position(|x| x.is("let")) {
                let mut k = let_pos + 1;
                if t.get(k).is_some_and(|x| x.is("mut")) {
                    k += 1;
                }
                if let Some(Tok::Word(name)) = t.get(k) {
                    if t.get(k + 1).is_some_and(|x| x.is_punct('=')) {
                        names.insert(name.clone());
                    }
                }
            }
        }
    }
    names
}

fn unordered_iter(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    if !cfg.rules.get(UNORDERED_ITER).is_some_and(|s| s.covers(&ctx.crate_name)) {
        return;
    }
    let names = collect_map_names(file);
    if names.is_empty() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let n = idx + 1;
        if !active(cfg, ctx, UNORDERED_ITER, line) {
            continue;
        }
        let t = toks(&line.code);
        let mut fired: Option<String> = None;
        // Pattern A: `name.iter_method(`.
        for i in 0..t.len() {
            if let Some(m) = t[i].word() {
                if ITER_METHODS.contains(&m)
                    && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && i >= 2
                    && t[i - 1].is_punct('.')
                {
                    if let Some(name) = t[i - 2].word() {
                        if names.contains(name) {
                            fired = Some(format!("`{name}.{m}()`"));
                            break;
                        }
                    }
                }
            }
        }
        // Pattern B: `for pat in [&][mut][self.]name` ending the header.
        if fired.is_none() {
            if let Some(for_pos) = t.iter().position(|x| x.is("for")) {
                if let Some(in_rel) = t[for_pos..].iter().position(|x| x.is("in")) {
                    let mut k = for_pos + in_rel + 1;
                    while t.get(k).is_some_and(|x| x.is_punct('&') || x.is("mut")) {
                        k += 1;
                    }
                    if t.get(k).is_some_and(|x| x.is("self"))
                        && t.get(k + 1).is_some_and(|x| x.is_punct('.'))
                    {
                        k += 2;
                    }
                    if let Some(Tok::Word(name)) = t.get(k) {
                        let next = t.get(k + 1);
                        let ends_header = next.is_none() || next.is_some_and(|x| x.is_punct('{'));
                        if names.contains(name) && ends_header {
                            fired = Some(format!("`for .. in {name}`"));
                        }
                    }
                }
            }
        }
        if let Some(what) = fired {
            // Exonerating context: a sort or order-insensitive sink in
            // the statement window (this line and the next few).
            let window_has_sink = file.lines[idx..(idx + 7).min(file.lines.len())]
                .iter()
                .any(|l| ORDER_SINKS.iter().any(|s| l.code.contains(s)));
            if !window_has_sink {
                out.push(Violation {
                    rule: UNORDERED_ITER,
                    notes: Vec::new(),
                    line: n,
                    message: format!(
                        "{what} iterates an unordered map/set; hash order can leak into \
                         output — sort the results (or reduce order-insensitively) before \
                         anything observable, or allow with a written reason"
                    ),
                });
            }
        }
    }
}

fn std_hash(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    // Multi-line `use std::collections::{ ... }` groups: the opening
    // line carries the path, members sit on their own lines.
    let mut in_group = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let n = idx + 1;
        if !active(cfg, ctx, STD_HASH, line) {
            in_group = false;
            continue;
        }
        let code = &line.code;
        let opens = code.contains("std::collections::");
        let named = |c: &str| toks(c).iter().any(|t| t.is("HashMap") || t.is("HashSet"));
        let fire = (opens || in_group) && named(code);
        if fire {
            out.push(Violation {
                rule: STD_HASH,
                notes: Vec::new(),
                line: n,
                message: "std HashMap/HashSet in a hot-path crate: use the \
                          ts_storage::{FastMap, FastSet} aliases (SipHash costs real wall \
                          clock on trusted keys), or allow with a written reason"
                    .to_string(),
            });
        }
        if opens && code.contains('{') && !code.contains('}') {
            in_group = true;
        } else if in_group && (code.contains('}') || code.contains(';')) {
            in_group = false;
        }
    }
}

const NONDET_PATTERNS: [&str; 6] = [
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "RandomState::new",
];

fn nondet_source(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, NONDET_SOURCE, line) {
            continue;
        }
        if let Some(p) = NONDET_PATTERNS.iter().find(|p| line.code.contains(*p)) {
            out.push(Violation {
                rule: NONDET_SOURCE,
                notes: Vec::new(),
                line: idx + 1,
                message: format!(
                    "`{p}` is a nondeterminism source in catalog-construction code; plumb \
                     seeds/clocks in from the caller, or allow with a reason explaining why \
                     it cannot reach catalog bytes"
                ),
            });
        }
    }
}

const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn narrowing_cast(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, NARROWING_CAST, line) {
            continue;
        }
        let t = toks(&line.code);
        for i in 0..t.len().saturating_sub(1) {
            if t[i].is("as") {
                if let Some(target) = t[i + 1].word() {
                    if NARROW_TARGETS.contains(&target) {
                        out.push(Violation {
                            rule: NARROWING_CAST,
                            notes: Vec::new(),
                            line: idx + 1,
                            message: format!(
                                "bare `as {target}` can truncate silently; use the checked \
                                 ts_storage::cast helpers (debug_assert in-range) for \
                                 narrowing, or `{target}::from(..)` when the source type \
                                 makes it infallible"
                            ),
                        });
                        break; // one finding per line keeps allows line-shaped
                    }
                }
            }
        }
    }
}

const PANIC_PATTERNS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

fn unwrap_in_lib(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, UNWRAP_IN_LIB, line) {
            continue;
        }
        if let Some(p) = PANIC_PATTERNS.iter().find(|p| line.code.contains(*p)) {
            out.push(Violation {
                rule: UNWRAP_IN_LIB,
                notes: Vec::new(),
                line: idx + 1,
                message: format!(
                    "`{}` in library code can abort the whole build/serve path; return an \
                     error, restructure so the invariant is by construction, or allow with \
                     the reason it cannot fail",
                    p.trim_start_matches('.').trim_end_matches('(')
                ),
            });
        }
    }
}

fn undocumented_unsafe(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, UNDOCUMENTED_UNSAFE, line) {
            continue;
        }
        if !toks(&line.code).iter().any(|t| t.is("unsafe")) {
            continue;
        }
        // Documented if this line carries a SAFETY: comment, or if the
        // contiguous run of comment-only lines directly above contains
        // one (a multi-line SAFETY block counts as a whole).
        let mut documented = line.comment.contains("SAFETY:");
        let mut i = idx;
        while !documented && i > 0 {
            i -= 1;
            let above = &file.lines[i];
            if !above.code.trim().is_empty() || above.comment.is_empty() {
                break;
            }
            documented = above.comment.contains("SAFETY:");
        }
        if !documented {
            out.push(Violation {
                rule: UNDOCUMENTED_UNSAFE,
                notes: Vec::new(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY:` comment on or directly above it; \
                          state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// Argless `.join()` is what disambiguates a thread join from
/// `Path::join`/`slice::join`, both of which take an argument.
const JOIN_PATTERNS: [&str; 2] = [".join().expect(", ".join().unwrap()"];

fn bare_join_expect(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, BARE_JOIN_EXPECT, line) {
            continue;
        }
        if let Some(p) = JOIN_PATTERNS.iter().find(|p| line.code.contains(*p)) {
            out.push(Violation {
                rule: BARE_JOIN_EXPECT,
                notes: Vec::new(),
                line: idx + 1,
                message: format!(
                    "`{p}..)` re-raises a worker panic in the joining thread, aborting the \
                     whole batch; collect the join Results and surface a typed error (as \
                     try_compute_catalog does), or allow with the reason the worker cannot \
                     panic"
                ),
            });
        }
    }
}

fn catch_unwind_audit(file: &SourceFile, ctx: &FileCtx, cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !active(cfg, ctx, CATCH_UNWIND_AUDIT, line) {
            continue;
        }
        if line.code.contains("catch_unwind(") {
            out.push(Violation {
                rule: CATCH_UNWIND_AUDIT,
                notes: Vec::new(),
                line: idx + 1,
                message: "`catch_unwind` erects a panic-isolation boundary that must be \
                          audited: allow with a reason stating what can panic inside, why \
                          the closure is unwind-safe, and how the failure is reported onward"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_words_and_puncts() {
        let t = toks("let x: FastMap<u32, Vec<u8>> = FastMap::default();");
        assert!(t.iter().any(|x| x.is("FastMap")));
        assert!(t.iter().any(|x| x.is_punct('<')));
        assert!(!t.iter().any(|x| x.is("FastMap<")));
    }

    #[test]
    fn map_names_from_types_fields_and_lets() {
        let f = SourceFile::parse(
            "struct S { index: FastMap<u32, u32>, other: Vec<u8> }\n\
             fn f(seen: &mut ts_storage::FastSet<u64>) {}\n\
             let mut acc = HashMap::new();\n",
        );
        let names = collect_map_names(&f);
        assert!(names.contains("index"));
        assert!(names.contains("seen"));
        assert!(names.contains("acc"));
        assert!(!names.contains("other"));
    }
}
