//! The three call-graph rule families: budget-poll discipline
//! (`unmetered-loop`), panic reachability (`panic-on-worker-path`),
//! and hash-order dataflow (`determinism-taint`).
//!
//! All three consume the [`crate::graph::Workspace`] model. They are
//! conservative syntactic analyses, not type checkers: name resolution
//! fans out to every same-named fn, and taint propagation follows
//! locals and returns but not fields or closures. The documented
//! direction of every approximation is in `docs/LINTS.md`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::{FnId, Workspace};
use crate::parse::{ItemTree, Tok};
use crate::rules::{collect_map_names, line_active, FileKind, Violation};

/// Name of the budget-poll discipline rule.
pub const UNMETERED_LOOP: &str = "unmetered-loop";
/// Name of the panic-reachability rule.
pub const PANIC_ON_WORKER_PATH: &str = "panic-on-worker-path";
/// Name of the hash-order dataflow rule.
pub const DETERMINISM_TAINT: &str = "determinism-taint";

/// Functions whose loops must poll the budget, unless overridden by the
/// rule's `fns` key: the operator pull methods and the plan drivers.
const DEFAULT_METERED_FNS: &[&str] = &[
    "next",
    "next_batch",
    "collect_all",
    "collect_all_budgeted",
    "collect_distinct_topk",
    "collect_distinct_topk_budgeted",
    "distinct_topk",
    "batch_collect_all",
    "batch_collect_all_budgeted",
    "batch_collect_distinct_topk",
    "batch_collect_distinct_topk_budgeted",
    "batch_distinct_topk",
];

/// Calls that advance the budget machinery (`budget-calls` key). Note
/// `interrupted` is deliberately absent: it only *reads* the latched
/// flag — a loop that checks `interrupted()` but never ticks can spin
/// past every deadline, because deadline/cancel polling happens inside
/// `tick` and quota accounting inside `tick`/`count_row`.
const DEFAULT_BUDGET_CALLS: &[&str] = &["tick", "count_row"];

/// Call-graph hops searched for a budget poll (`hops` key).
const DEFAULT_HOPS: usize = 2;

/// Worker-path entry fns (`entries` key): the server worker loop and
/// the nine-method evaluator front doors.
const DEFAULT_ENTRIES: &[&str] = &["worker_loop", "process", "eval_with", "try_eval_with"];

/// Panic-site categories checked by default (`categories` key). The
/// `slice-index` category (bare `x[i]` indexing) is opt-in, and
/// arithmetic overflow is delegated wholesale to the release-checked
/// CI profile — see docs/LINTS.md.
const DEFAULT_PANIC_CATEGORIES: &[&str] = &["unwrap", "expect", "panic-macro"];

/// Catalog/serialization sinks hash order must not reach (`sinks` key).
const DEFAULT_SINKS: &[&str] = &[
    "add_pair",
    "insert_ints",
    "insert_row",
    "intern_sig",
    "intern_sig_prehashed",
    "intern_code",
    "fnv_digest",
    "serialize",
    "write_all",
    "write_fmt",
];

/// Map-iteration method names (shared with `unordered-iter`).
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "into_keys"];

/// `.sort*()` / ordered-container / order-insensitive-reduction names:
/// a statement containing one of these neutralizes the taint it uses.
const CLEANSERS: [&str; 14] = [
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
    "len",
    "fold",
    "product",
    "is_empty",
    "contains",
];

/// Methods that move a tainted argument into their receiver.
const ACCUMULATORS: [&str; 4] = ["push", "extend", "insert", "append"];

/// Names excluded from the return-taint fixpoint. Resolution is by
/// bare name, and these collide with std's iterator/accessor/
/// constructor vocabulary on non-map types (`Vec::iter`, `Table::new`,
/// `slice::get`, ...) — one workspace fn named `iter` that returns
/// hash-ordered data would otherwise taint every `.iter()` call in
/// every covered crate. Direct map iteration is still caught by the
/// receiver check; a workspace fn with one of these names that *does*
/// return hash-ordered data is a documented false-negative shape (see
/// docs/LINTS.md).
const RETURN_TAINT_STOP: [&str; 18] = [
    "new",
    "default",
    "clone",
    "get",
    "len",
    "first",
    "last",
    "value",
    "values",
    "keys",
    "iter",
    "iter_mut",
    "into_iter",
    "into_keys",
    "drain",
    "collect",
    "with_capacity",
    "hash",
];

/// One cross-file finding, attributed to a file index.
pub type FileViolation = (usize, Violation);

/// Run every configured call-graph rule over the workspace.
pub fn run_flow_rules(ws: &Workspace, cfg: &Config) -> Vec<FileViolation> {
    let mut out = Vec::new();
    unmetered_loop(ws, cfg, &mut out);
    panic_on_worker_path(ws, cfg, &mut out);
    determinism_taint(ws, cfg, &mut out);
    out
}

// ------------------------------------------------------- unmetered-loop

fn unmetered_loop(ws: &Workspace, cfg: &Config, out: &mut Vec<FileViolation>) {
    let Some(scope) = cfg.rules.get(UNMETERED_LOOP) else { return };
    let metered: BTreeSet<&str> = scope.list("fns", DEFAULT_METERED_FNS).into_iter().collect();
    let budget: BTreeSet<&str> =
        scope.list("budget-calls", DEFAULT_BUDGET_CALLS).into_iter().collect();
    let hops = scope.num("hops", DEFAULT_HOPS);
    for (fi, file) in ws.files.iter().enumerate() {
        if !scope.covers(&file.ctx.crate_name) {
            continue;
        }
        for f in &file.items.fns {
            if !metered.contains(f.name.as_str()) || f.body.is_empty() {
                continue;
            }
            for lp in file.items.loops_in(f.body.clone()) {
                if !line_active(cfg, &file.ctx, UNMETERED_LOOP, &file.src, lp.line) {
                    continue;
                }
                let mut searched: Vec<String> = Vec::new();
                if loop_reaches_poll(
                    ws,
                    &file.items,
                    lp.body.clone(),
                    &budget,
                    &metered,
                    hops,
                    &mut searched,
                ) {
                    continue;
                }
                searched.sort();
                searched.dedup();
                out.push((
                    fi,
                    Violation {
                        rule: UNMETERED_LOOP,
                        line: lp.line,
                        message: format!(
                            "`{}` in `{}` never reaches a budget poll ({}) within {hops} \
                             call-graph hops; a plan stuck in this loop is invisible to the \
                             deadline/cancel machinery — tick the Work meter inside the loop, \
                             or allow with the reason the loop is bounded",
                            lp.keyword,
                            f.name,
                            budget.iter().copied().collect::<Vec<_>>().join("/"),
                        ),
                        notes: if searched.is_empty() {
                            vec!["loop body makes no resolvable calls".to_string()]
                        } else {
                            vec![format!(
                                "searched without finding a poll: {}",
                                searched.join(", ")
                            )]
                        },
                    },
                ));
            }
        }
    }
}

/// True when the loop body contains a budget call directly or through
/// `hops` levels of resolved calls. Credit is never taken *through*
/// another metered fn (each pull stage must poll for itself — that is
/// what makes deleting a driver's own poll a finding even though the
/// operators beneath it still tick).
fn loop_reaches_poll(
    ws: &Workspace,
    items: &ItemTree,
    body: std::ops::Range<usize>,
    budget: &BTreeSet<&str>,
    metered: &BTreeSet<&str>,
    hops: usize,
    searched: &mut Vec<String>,
) -> bool {
    let mut frontier: VecDeque<(FnId, usize)> = VecDeque::new();
    let mut seen: BTreeSet<FnId> = BTreeSet::new();
    for call in items.calls_in(body) {
        if budget.contains(call.name.as_str()) {
            return true;
        }
        if metered.contains(call.name.as_str()) {
            continue;
        }
        for &id in ws.resolve(&call.name) {
            if seen.insert(id) {
                frontier.push_back((id, 1));
            }
        }
    }
    while let Some((id, depth)) = frontier.pop_front() {
        if depth > hops {
            continue;
        }
        searched.push(ws.label(id));
        let file = &ws.files[id.file];
        let fn_body = file.items.fns[id.item].body.clone();
        for call in file.items.calls_in(fn_body) {
            if budget.contains(call.name.as_str()) {
                return true;
            }
            if metered.contains(call.name.as_str()) || depth == hops {
                continue;
            }
            for &next in ws.resolve(&call.name) {
                if seen.insert(next) {
                    frontier.push_back((next, depth + 1));
                }
            }
        }
    }
    false
}

// ------------------------------------------------- panic-on-worker-path

/// Panic patterns per category, matched against sanitized code.
fn panic_patterns(category: &str) -> &'static [&'static str] {
    match category {
        "unwrap" => &[".unwrap()"],
        "expect" => &[".expect("],
        "panic-macro" => &["panic!(", "unreachable!(", "todo!(", "unimplemented!("],
        _ => &[],
    }
}

fn panic_on_worker_path(ws: &Workspace, cfg: &Config, out: &mut Vec<FileViolation>) {
    let Some(scope) = cfg.rules.get(PANIC_ON_WORKER_PATH) else { return };
    let entries = scope.list("entries", DEFAULT_ENTRIES);
    let categories = scope.list("categories", DEFAULT_PANIC_CATEGORIES);
    let (reachable, parents) = ws.reachable_from(&entries);
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &id in &reachable {
        let file = &ws.files[id.file];
        if !scope.covers(&file.ctx.crate_name) || file.ctx.kind != FileKind::Lib {
            continue;
        }
        let f = &file.items.fns[id.item];
        let Some(end_tok) = f.body.end.checked_sub(1).and_then(|i| file.items.toks.get(i)) else {
            continue;
        };
        let chain = ws.chain(&parents, id);
        for line_no in f.line..=end_tok.line {
            let Some(line) = file.src.line(line_no) else { continue };
            if !line_active(cfg, &file.ctx, PANIC_ON_WORKER_PATH, &file.src, line_no) {
                continue;
            }
            let mut hit: Option<&str> = None;
            for cat in &categories {
                if let Some(p) = panic_patterns(cat).iter().find(|p| line.code.contains(*p)) {
                    hit = Some(p);
                    break;
                }
            }
            if hit.is_none()
                && categories.contains(&"slice-index")
                && has_bare_index(&file.items, line_no)
            {
                hit = Some("[..] indexing");
            }
            let Some(pattern) = hit else { continue };
            if !reported.insert((id.file, line_no)) {
                continue;
            }
            out.push((
                id.file,
                Violation {
                    rule: PANIC_ON_WORKER_PATH,
                    line: line_no,
                    message: format!(
                        "`{}` is reachable from worker entry `{}` ({} call-graph hops); a \
                         panic here rides the per-query isolation boundary on every serve — \
                         return an error instead, or allow with the reason it cannot fire",
                        pattern.trim_start_matches('.').trim_end_matches('('),
                        chain.first().cloned().unwrap_or_default(),
                        chain.len().saturating_sub(1),
                    ),
                    notes: vec![format!("call chain: {}", chain.join(" -> "))],
                },
            ));
        }
    }
}

/// True when line `n` contains bare-indexing syntax `ident[` outside
/// attributes (`#[..]`) and type positions (`: [T; N]`, `as [..]`).
fn has_bare_index(items: &ItemTree, n: usize) -> bool {
    let toks: Vec<&Tok> = items.toks.iter().filter(|t| t.line == n).collect();
    for i in 0..toks.len() {
        if !toks[i].is_punct('[') || i == 0 {
            continue;
        }
        let prev = toks[i - 1];
        if prev.word().is_some()
            && !prev.is("as")
            && (i < 2 || !toks[i - 2].is_punct('#') && !toks[i - 2].is_punct(':'))
        {
            return true;
        }
    }
    false
}

// ----------------------------------------------------- determinism-taint

/// Per-statement facts the taint walker extracts.
struct StmtFacts {
    /// `(map name, line)` when the statement iterates an unordered map.
    source: Option<(String, usize)>,
    /// `let [mut] name =` target, when the statement is a binding.
    binds: Option<String>,
    /// `recv.push/extend/insert/append(..)` receiver, when present.
    accumulates: Option<String>,
    /// Statement contains a sort / ordered-collect / reduction.
    cleansed: bool,
    /// `name.sort*()` receiver (cleanses the named local itself).
    sorts_receiver: Option<String>,
    /// Sink calls `(sink name, line)` in the statement.
    sinks: Vec<(String, usize)>,
    /// Statement is (or starts with) `return`.
    returns: bool,
    /// Calls made by the statement (for return-taint propagation).
    calls: Vec<String>,
    /// `for <pat> in <expr>` header: pattern vars and source words.
    for_header: Option<(Vec<String>, Vec<String>)>,
}

fn stmt_facts(toks: &[Tok], map_names: &BTreeSet<String>, sinks: &BTreeSet<&str>) -> StmtFacts {
    let mut f = StmtFacts {
        source: None,
        binds: None,
        accumulates: None,
        cleansed: false,
        sorts_receiver: None,
        sinks: Vec::new(),
        returns: toks.first().is_some_and(|t| t.is("return")),
        calls: Vec::new(),
        for_header: None,
    };
    for i in 0..toks.len() {
        let Some(w) = toks[i].word() else { continue };
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let method = called && i > 0 && toks[i - 1].is_punct('.');
        if called {
            f.calls.push(w.to_string());
            if sinks.contains(w) {
                f.sinks.push((w.to_string(), toks[i].line));
            }
        }
        if method && (w.starts_with("sort") || CLEANSERS.contains(&w)) {
            f.cleansed = true;
            if w.starts_with("sort") {
                if let Some(recv) = (i >= 2).then(|| toks[i - 2].word()).flatten() {
                    f.sorts_receiver = Some(recv.to_string());
                }
            }
        }
        if matches!(w, "BTreeMap" | "BTreeSet" | "BinaryHeap") {
            f.cleansed = true;
        }
        if method && ITER_METHODS.contains(&w) {
            if let Some(recv) = (i >= 2).then(|| toks[i - 2].word()).flatten() {
                if map_names.contains(recv) && f.source.is_none() {
                    f.source = Some((recv.to_string(), toks[i].line));
                }
            }
        }
        if method && ACCUMULATORS.contains(&w) {
            if let Some(recv) = (i >= 2).then(|| toks[i - 2].word()).flatten() {
                f.accumulates = Some(recv.to_string());
            }
        }
    }
    // `let [mut] NAME = ..` binding target.
    if toks.first().is_some_and(|t| t.is("let")) {
        let mut k = 1;
        if toks.get(k).is_some_and(|t| t.is("mut")) {
            k += 1;
        }
        if let Some(name) = toks.get(k).and_then(|t| t.word()) {
            if toks.get(k + 1).is_some_and(|t| t.is_punct('=') || t.is_punct(':')) {
                f.binds = Some(name.to_string());
            }
        }
    }
    // `for <pat> in <expr>` header (the statement ends at the `{`).
    if let Some(for_pos) = toks.iter().position(|t| t.is("for")) {
        if let Some(in_rel) = toks[for_pos..].iter().position(|t| t.is("in")) {
            let in_pos = for_pos + in_rel;
            let pat: Vec<String> = toks[for_pos + 1..in_pos]
                .iter()
                .filter_map(|t| t.word())
                .map(String::from)
                .collect();
            let src: Vec<String> =
                toks[in_pos + 1..].iter().filter_map(|t| t.word()).map(String::from).collect();
            // A whole-map `for (k, v) in map` iteration is a source too.
            if f.source.is_none() {
                if let Some(m) = src.iter().find(|w| map_names.contains(*w)) {
                    // Only when the map is the iterated expression, not
                    // e.g. an index into something else; the word test
                    // over-approximates, which is the safe direction.
                    f.source = Some((m.clone(), toks[for_pos].line));
                }
            }
            f.for_header = Some((pat, src));
        }
    }
    f
}

fn determinism_taint(ws: &Workspace, cfg: &Config, out: &mut Vec<FileViolation>) {
    let Some(scope) = cfg.rules.get(DETERMINISM_TAINT) else { return };
    let sinks: BTreeSet<&str> = scope.list("sinks", DEFAULT_SINKS).into_iter().collect();

    // Fixpoint over "fn returns hash-ordered data" (name-level, like
    // the call graph). Monotone and bounded by the fn-name count.
    let mut tainted_fns: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut grew = false;
        for file in &ws.files {
            if !scope.covers(&file.ctx.crate_name) {
                continue;
            }
            let map_names = collect_map_names(&file.src);
            for f in &file.items.fns {
                if f.is_test
                    || f.body.is_empty()
                    || RETURN_TAINT_STOP.contains(&f.name.as_str())
                    || tainted_fns.contains(&f.name)
                {
                    continue;
                }
                let (_, returns) = walk_fn(&file.items, f, &map_names, &sinks, &tainted_fns);
                if returns {
                    tainted_fns.insert(f.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    for (fi, file) in ws.files.iter().enumerate() {
        if !scope.covers(&file.ctx.crate_name) {
            continue;
        }
        let map_names = collect_map_names(&file.src);
        let mut reported: BTreeSet<usize> = BTreeSet::new();
        for f in &file.items.fns {
            if f.body.is_empty() {
                continue;
            }
            let (fires, _) = walk_fn(&file.items, f, &map_names, &sinks, &tainted_fns);
            for (line, sink, origin, origin_line) in fires {
                if !line_active(cfg, &file.ctx, DETERMINISM_TAINT, &file.src, line) {
                    continue;
                }
                if !reported.insert(line) {
                    continue;
                }
                out.push((
                    fi,
                    Violation {
                        rule: DETERMINISM_TAINT,
                        line,
                        message: format!(
                            "hash-ordered data from `{origin}` (iterated on line {origin_line}) \
                             reaches catalog/serialization sink `{sink}` without an intervening \
                             sort; hash order would leak into catalog bytes — sort (or collect \
                             into an ordered container) first, or allow with a written reason"
                        ),
                        notes: vec![format!(
                            "taint path: {origin} iterated at line {origin_line} -> {sink}() at line {line}"
                        )],
                    },
                ));
            }
        }
    }
}

/// Walk one fn body: returns `(sink fires, returns-tainted)`. Each fire
/// is `(sink line, sink name, origin map/local, origin line)`.
fn walk_fn(
    items: &ItemTree,
    f: &crate::parse::FnItem,
    map_names: &BTreeSet<String>,
    sinks: &BTreeSet<&str>,
    tainted_fns: &BTreeSet<String>,
) -> (Vec<(usize, String, String, usize)>, bool) {
    let mut tainted: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut fires = Vec::new();
    let mut returns_taint = false;
    let stmts = items.statements_in(f.body.clone());
    let n_stmts = stmts.len();
    for (si, r) in stmts.into_iter().enumerate() {
        let toks = &items.toks[r.clone()];
        let facts = stmt_facts(toks, map_names, sinks);
        // Taint flowing into this statement: a fresh map iteration, a
        // tainted local, or a call to a taint-returning fn.
        let used: Option<(String, usize)> = facts
            .source
            .clone()
            .or_else(|| {
                toks.iter()
                    .filter_map(|t| t.word())
                    .find_map(|w| tainted.get(w).map(|(origin, line)| (origin.clone(), *line)))
            })
            .or_else(|| {
                facts
                    .calls
                    .iter()
                    .find(|c| tainted_fns.contains(*c))
                    .map(|c| (format!("{c}()"), items.first_line(&r).unwrap_or(f.line)))
            });
        // An explicit `name.sort*()` cleanses that local for good.
        if let Some(recv) = &facts.sorts_receiver {
            tainted.remove(recv);
        }
        let Some((origin, origin_line)) = used else { continue };
        if facts.cleansed {
            continue; // sorted / ordered-collected / reduced: order-safe
        }
        for (sink, line) in &facts.sinks {
            fires.push((*line, sink.clone(), origin.clone(), origin_line));
        }
        if let Some((pat, _)) = &facts.for_header {
            for v in pat {
                if v != "_" {
                    tainted.insert(v.clone(), (origin.clone(), origin_line));
                }
            }
            continue;
        }
        if let Some(name) = &facts.binds {
            tainted.insert(name.clone(), (origin.clone(), origin_line));
        } else if let Some(recv) = &facts.accumulates {
            tainted.insert(recv.clone(), (origin.clone(), origin_line));
        }
        if facts.returns || si + 1 == n_stmts {
            returns_taint = true;
        }
    }
    (fires, returns_taint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WsFile;
    use crate::rules::FileCtx;
    use crate::source::SourceFile;

    fn ws_of(text: &str) -> Workspace {
        let src = SourceFile::parse(text);
        let items = ItemTree::parse(&src);
        Workspace::build(vec![WsFile {
            path: "demo.rs".to_string(),
            ctx: FileCtx { crate_name: "demo".to_string(), kind: FileKind::Lib },
            src,
            items,
        }])
    }

    fn cfg(toml: &str) -> Config {
        Config::parse(toml).expect("test config parses")
    }

    #[test]
    fn loop_with_direct_tick_is_metered() {
        let ws = ws_of("fn next(w: &Work) {\n    loop {\n        w.tick(1);\n    }\n}\n");
        let mut out = Vec::new();
        unmetered_loop(&ws, &cfg("[rules.unmetered-loop]\ncrates = [\"demo\"]\n"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unmetered_loop_fires_and_hop_credit_works() {
        let ws = ws_of(
            "fn next(w: &Work) {\n    loop {\n        spin();\n    }\n}\n\
             fn next_batch(w: &Work) {\n    loop {\n        helper(w);\n    }\n}\n\
             fn helper(w: &Work) { w.tick(1); }\nfn spin() {}\n",
        );
        let mut out = Vec::new();
        unmetered_loop(&ws, &cfg("[rules.unmetered-loop]\ncrates = [\"demo\"]\n"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].1.line, 2);
    }

    #[test]
    fn no_credit_through_other_metered_fns() {
        // The driver's loop pulls `next()`, which ticks — but each pull
        // stage polls for itself, so the driver loop still fires.
        let ws = ws_of(
            "fn collect_all(op: &mut Op) {\n    while let Some(r) = op.next() {\n        keep(r);\n    }\n}\n\
             fn next(w: &Work) -> Option<Row> { w.tick(1); None }\nfn keep(_r: Row) {}\n",
        );
        let mut out = Vec::new();
        unmetered_loop(&ws, &cfg("[rules.unmetered-loop]\ncrates = [\"demo\"]\n"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn panic_reachability_transitive_and_scoped() {
        let ws = ws_of(
            "fn worker_loop() { stage_one(); }\n\
             fn stage_one() { stage_two(); }\n\
             fn stage_two(x: Option<u32>) { x.unwrap(); }\n\
             fn unreached(y: Option<u32>) { y.unwrap(); }\n",
        );
        let mut out = Vec::new();
        panic_on_worker_path(
            &ws,
            &cfg("[rules.panic-on-worker-path]\ncrates = [\"demo\"]\n"),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].1.line, 3);
        assert!(out[0].1.notes[0].contains("worker_loop -> "));
    }

    #[test]
    fn taint_reaches_sink_unless_sorted() {
        let ws = ws_of(
            "fn bad(m: &FastMap<u32, u32>, cat: &mut Catalog) {\n\
                 let keys: Vec<u32> = m.keys().copied().collect();\n\
                 for k in keys {\n\
                     cat.add_pair(k);\n\
                 }\n\
             }\n\
             fn good(m: &FastMap<u32, u32>, cat: &mut Catalog) {\n\
                 let mut keys: Vec<u32> = m.keys().copied().collect();\n\
                 keys.sort();\n\
                 for k in keys {\n\
                     cat.add_pair(k);\n\
                 }\n\
             }\n",
        );
        let mut out = Vec::new();
        determinism_taint(&ws, &cfg("[rules.determinism-taint]\ncrates = [\"demo\"]\n"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].1.line, 4);
    }

    #[test]
    fn taint_propagates_through_returns() {
        let ws = ws_of(
            "fn leak(m: &FastMap<u32, u32>) -> Vec<u32> {\n\
                 m.keys().copied().collect()\n\
             }\n\
             fn consume(m: &FastMap<u32, u32>, cat: &mut Catalog) {\n\
                 let ks = leak(m);\n\
                 cat.insert_ints(ks);\n\
             }\n",
        );
        let mut out = Vec::new();
        determinism_taint(&ws, &cfg("[rules.determinism-taint]\ncrates = [\"demo\"]\n"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].1.line, 6);
    }
}
