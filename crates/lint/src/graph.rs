//! Workspace symbol table and conservative call graph.
//!
//! Name resolution is deliberately coarse: a call site `foo(..)` or
//! `x.foo(..)` resolves to *every* non-test library `fn foo` in the
//! workspace, regardless of receiver type or import paths. That
//! over-approximates the true call graph — exactly the right direction
//! for reachability-style safety rules (panic reachability can only be
//! over-reported, never silently missed through a resolved edge) and
//! the documented trade-off for the metering rule (a poll found in a
//! same-named uncalled function can exonerate a loop; see
//! `docs/LINTS.md` for the known false-negative shapes).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{FnItem, ItemTree};
use crate::rules::FileCtx;
use crate::source::SourceFile;

/// One parsed file of the workspace under analysis.
#[derive(Debug, Clone)]
pub struct WsFile {
    /// Repo-relative path (used in findings).
    pub path: String,
    /// Crate attribution and target-tree kind.
    pub ctx: FileCtx,
    /// Lexed line views.
    pub src: SourceFile,
    /// Parsed item tree.
    pub items: ItemTree,
}

/// Identifier of one function: (file index, fn index within the file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`ItemTree::fns`].
    pub item: usize,
}

/// The whole workspace: parsed files, the symbol table, and the
/// resolved call graph.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// All scanned files, in deterministic (sorted-path) order.
    pub files: Vec<WsFile>,
    /// fn name → every graph-eligible definition of that name.
    symbols: BTreeMap<String, Vec<FnId>>,
    /// Resolved callee edges per graph-eligible fn.
    edges: BTreeMap<FnId, Vec<FnId>>,
}

impl Workspace {
    /// Build the symbol table and call graph over `files`.
    ///
    /// Only *library* functions participate in the graph: files under
    /// `tests/`/`benches/`/`examples/` and fns inside `#[cfg(test)]`
    /// regions contribute neither symbols nor edges (their panics and
    /// loops are deliberate), and bodyless trait declarations carry no
    /// information to traverse into.
    pub fn build(files: Vec<WsFile>) -> Workspace {
        let mut ws = Workspace { files, symbols: BTreeMap::new(), edges: BTreeMap::new() };
        for (fi, file) in ws.files.iter().enumerate() {
            if file.ctx.kind != crate::rules::FileKind::Lib {
                continue;
            }
            for (ii, f) in file.items.fns.iter().enumerate() {
                if f.is_test || !f.has_body {
                    continue;
                }
                ws.symbols.entry(f.name.clone()).or_default().push(FnId { file: fi, item: ii });
            }
        }
        let ids: Vec<FnId> = ws.symbols.values().flatten().copied().collect();
        for id in ids {
            let file = &ws.files[id.file];
            let body = file.items.fns[id.item].body.clone();
            let mut callees: Vec<FnId> = Vec::new();
            let mut seen: BTreeSet<FnId> = BTreeSet::new();
            for call in file.items.calls_in(body) {
                if let Some(targets) = ws.symbols.get(&call.name) {
                    for &t in targets {
                        if t != id && seen.insert(t) {
                            callees.push(t);
                        }
                    }
                }
            }
            ws.edges.insert(id, callees);
        }
        ws
    }

    /// The function item behind an id.
    pub fn item(&self, id: FnId) -> &FnItem {
        &self.files[id.file].items.fns[id.item]
    }

    /// Every graph-eligible definition of `name`.
    pub fn resolve(&self, name: &str) -> &[FnId] {
        self.symbols.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolved callees of `id` (empty for fns outside the graph).
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `crate::fn` display label for one fn.
    pub fn label(&self, id: FnId) -> String {
        let file = &self.files[id.file];
        format!("{}::{}", file.ctx.crate_name, file.items.fns[id.item].name)
    }

    /// BFS from every definition of the `entries` names. Returns the
    /// reachable set and, for each reached fn, its BFS parent (entries
    /// map to themselves) — enough to reconstruct a shortest call
    /// chain for `--explain`.
    pub fn reachable_from(&self, entries: &[&str]) -> (BTreeSet<FnId>, BTreeMap<FnId, FnId>) {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for name in entries {
            for &id in self.resolve(name) {
                if seen.insert(id) {
                    parent.insert(id, id);
                    queue.push_back(id);
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            for &next in self.callees(id) {
                if seen.insert(next) {
                    parent.insert(next, id);
                    queue.push_back(next);
                }
            }
        }
        (seen, parent)
    }

    /// Shortest entry → `id` call chain as `crate::fn` labels.
    pub fn chain(&self, parent: &BTreeMap<FnId, FnId>, id: FnId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = id;
        // Bounded walk: `parent` is a BFS tree, so this terminates at
        // the self-parented entry; the bound guards corrupt input.
        for _ in 0..parent.len() + 1 {
            chain.push(self.label(cur));
            let Some(&p) = parent.get(&cur) else { break };
            if p == cur {
                break;
            }
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Deterministic dump of the resolved call graph for `--graph`:
    /// one line per graph fn, sorted by label then definition site.
    pub fn graph_dump(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (&id, callees) in &self.edges {
            let file = &self.files[id.file];
            let def = format!("{}:{}", file.path, file.items.fns[id.item].line);
            let mut callee_labels: Vec<String> = callees
                .iter()
                .map(|&c| self.label(c))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            callee_labels.sort();
            lines.push(format!("{} ({def}) -> {}", self.label(id), callee_labels.join(", ")));
        }
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{FileCtx, FileKind};

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(path, text)| {
                    let src = SourceFile::parse(text);
                    let items = ItemTree::parse(&src);
                    WsFile {
                        path: path.to_string(),
                        ctx: FileCtx { crate_name: "demo".to_string(), kind: FileKind::Lib },
                        src,
                        items,
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let w = ws(&[
            ("a.rs", "fn entry() { helper(); }\n"),
            ("b.rs", "fn helper() { leaf(); }\nfn leaf() {}\n"),
        ]);
        let (reach, parents) = w.reachable_from(&["entry"]);
        assert_eq!(reach.len(), 3);
        let leaf = w.resolve("leaf")[0];
        assert_eq!(w.chain(&parents, leaf), vec!["demo::entry", "demo::helper", "demo::leaf"]);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let w = ws(&[(
            "a.rs",
            "fn entry() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { bomb(); }\n    fn bomb() {}\n}\n",
        )]);
        assert_eq!(w.resolve("helper").len(), 1);
        assert!(w.resolve("bomb").is_empty());
    }

    #[test]
    fn ambiguous_names_fan_out() {
        let w = ws(&[
            ("a.rs", "fn entry(x: &X) { x.next(); }\n"),
            ("b.rs", "impl A { fn next(&self) {} }\nimpl B { fn next(&self) {} }\n"),
        ]);
        let entry = w.resolve("entry")[0];
        assert_eq!(w.callees(entry).len(), 2);
    }

    #[test]
    fn graph_dump_is_deterministic() {
        let files = [("a.rs", "fn f() { g(); }\n"), ("b.rs", "fn g() { f(); }\n")];
        assert_eq!(ws(&files).graph_dump(), ws(&files).graph_dump());
        assert!(ws(&files).graph_dump().contains("demo::f (a.rs:1) -> demo::g"));
    }
}
