//! # ts-lint
//!
//! Workspace determinism & safety lints for topology-search.
//!
//! The repo's core guarantee — byte-identical catalogs across
//! serial/parallel builds and across hash seeds — is enforced
//! dynamically by the differential test lattice. This crate enforces it
//! *statically*: a dependency-free, hand-rolled Rust lexer
//! ([`source`]) feeds a rule engine ([`rules`], [`engine`]) that flags
//! the source patterns those tests exist to catch — unordered-map
//! iteration feeding output, std's seeded SipHash in hot paths,
//! wall-clock/RNG in catalog construction, silent narrowing casts in
//! offset math, panics in library code, and undocumented `unsafe`.
//!
//! On top of the lexer sits a total (never-panicking) recursive-descent
//! item parser ([`parse`]) and a workspace symbol table with a
//! conservative name-resolution call graph ([`graph`]), powering three
//! cross-file rule families ([`flow`]): budget-poll discipline in
//! operator loops (`unmetered-loop`), panic reachability from the
//! server worker path (`panic-on-worker-path`), and hash-order dataflow
//! into catalog sinks (`determinism-taint`).
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p ts-lint --release -- .
//! ```
//!
//! Scope is configured per crate in `ts-lint.toml` ([`config`]), and a
//! finding is silenced inline with an allow directive that must carry a
//! reason (`lint: allow(<rule>): <reason>` in a `//` comment on, or
//! directly above, the offending line). Directives are themselves
//! linted: a missing reason or unknown rule is `bad-allow`, and a
//! directive that suppresses nothing is `unused-allow`, so the
//! suppression inventory can never rot silently.
//!
//! The linter holds itself to the discipline it enforces: every
//! container it iterates for output is ordered (`BTreeMap`, sorted
//! `Vec`), so its reports are byte-identical run to run.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod flow;
pub mod graph;
pub mod parse;
pub mod rules;
pub mod source;

pub use config::{Config, RuleScope};
pub use engine::{Finding, Linter, Report};
pub use graph::{FnId, Workspace, WsFile};
pub use parse::ItemTree;
pub use rules::{FileCtx, FileKind, RuleInfo, Violation, RULES};
pub use source::{Allow, SourceFile};
