//! `ts-lint` CLI: lint the workspace, exit nonzero on findings.
//!
//! ```text
//! ts-lint [--config <path>] [--list-rules] [--graph] [--explain] [ROOT]
//! ```
//!
//! `ROOT` defaults to `.` and the config to `ROOT/ts-lint.toml`.
//! `--graph` dumps the resolved call graph instead of linting;
//! `--explain` prints each finding's evidence notes (call chains,
//! taint paths) under the finding.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ts_lint::{Config, Linter, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut graph = false;
    let mut explain = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => list_rules = true,
            "--graph" => graph = true,
            "--explain" => explain = true,
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => root = PathBuf::from(arg),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<24} {}", rule.name, rule.summary);
        }
        let meta = [
            ("bad-allow", "allow directive without a reason, or naming an unknown rule"),
            ("unused-allow", "allow directive that suppresses nothing"),
        ];
        for (name, summary) in meta {
            println!("{name:<24} {summary}");
        }
        return ExitCode::SUCCESS;
    }

    let config_path = config_path.unwrap_or_else(|| root.join("ts-lint.toml"));
    let config = match load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ts-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let linter = Linter::new(config);
    if graph {
        return match linter.build_workspace(&root) {
            Ok(ws) => {
                println!("{}", ws.graph_dump());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ts-lint: scan failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    match linter.lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
                if explain {
                    for note in &finding.violation.notes {
                        println!("    = {note}");
                    }
                }
            }
            if report.is_clean() {
                println!("ts-lint: clean ({} files)", report.files);
                ExitCode::SUCCESS
            } else {
                println!(
                    "ts-lint: {} finding(s) in {} scanned file(s)",
                    report.findings.len(),
                    report.files
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ts-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Read and parse the config file.
fn load_config(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Config::parse(&text)
}

/// Print usage; nonzero exit unless invoked via `--help`.
fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ts-lint: {err}");
    }
    eprintln!("usage: ts-lint [--config <path>] [--list-rules] [--graph] [--explain] [ROOT]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
