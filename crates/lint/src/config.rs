//! Per-crate rule configuration, loaded from `ts-lint.toml`.
//!
//! The format is a strict, hand-parsed TOML subset (this crate is
//! dependency-free): `[skip]` with a `dirs` list of repo-relative
//! directories never scanned, and one `[rules.<name>]` section per rule
//! with a `crates` list (crate names the rule is enforced in, `"*"` for
//! all) and an optional `include-tests` boolean (default `false`; rules
//! with it set also run in `tests/`, `benches/`, `examples/`, and
//! inline `#[cfg(test)]` modules).
//!
//! The call-graph rules take extra per-rule parameters: any other key
//! in a `[rules.<name>]` section is kept generically — a `["..."]`
//! value as a string list ([`RuleScope::list`]), a bare integer as a
//! number ([`RuleScope::num`]). Rules read them with built-in defaults,
//! so an empty section enables a rule with its documented behavior.

use std::collections::BTreeMap;

/// Scope of one rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleScope {
    /// Crate names the rule is enforced in; `"*"` matches every crate.
    pub crates: Vec<String>,
    /// When true the rule also runs in test/bench/example code.
    pub include_tests: bool,
    /// Extra string-list parameters (`fns`, `entries`, `sinks`, ...).
    pub lists: BTreeMap<String, Vec<String>>,
    /// Extra integer parameters (`hops`, ...).
    pub nums: BTreeMap<String, usize>,
}

impl RuleScope {
    /// True when the rule covers `crate_name`.
    pub fn covers(&self, crate_name: &str) -> bool {
        self.crates.iter().any(|c| c == "*" || c == crate_name)
    }

    /// The configured list for `key`, or `default` when absent.
    pub fn list<'a>(&'a self, key: &str, default: &'a [&'a str]) -> Vec<&'a str> {
        match self.lists.get(key) {
            Some(v) => v.iter().map(|s| s.as_str()).collect(),
            None => default.to_vec(),
        }
    }

    /// The configured number for `key`, or `default` when absent.
    pub fn num(&self, key: &str, default: usize) -> usize {
        self.nums.get(key).copied().unwrap_or(default)
    }
}

/// Whole-workspace lint configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Repo-relative directories to skip entirely.
    pub skip_dirs: Vec<String>,
    /// Rule name → scope. Rules absent here never fire. A `BTreeMap`
    /// on purpose: the linter holds itself to the determinism
    /// discipline it enforces, so every iteration in this crate is
    /// over ordered containers.
    pub rules: BTreeMap<String, RuleScope>,
}

impl Config {
    /// Parse the `ts-lint.toml` subset. Errors carry the 1-based line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if let Some(rule) = section.strip_prefix("rules.") {
                    cfg.rules.entry(rule.to_string()).or_default();
                } else if section != "skip" {
                    return Err(format!("line {n}: unknown section [{section}]"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("line {n}: expected `key = value`"))?;
            match (section.as_str(), key) {
                ("skip", "dirs") => cfg.skip_dirs = parse_list(value, n)?,
                (s, "crates") if s.starts_with("rules.") => {
                    let rule = s.trim_start_matches("rules.").to_string();
                    cfg.rules.entry(rule).or_default().crates = parse_list(value, n)?;
                }
                (s, "include-tests") if s.starts_with("rules.") => {
                    let rule = s.trim_start_matches("rules.").to_string();
                    cfg.rules.entry(rule).or_default().include_tests = parse_bool(value, n)?;
                }
                (s, k) if s.starts_with("rules.") => {
                    let rule = s.trim_start_matches("rules.").to_string();
                    let scope = cfg.rules.entry(rule).or_default();
                    if value.starts_with('[') {
                        scope.lists.insert(k.to_string(), parse_list(value, n)?);
                    } else if let Ok(num) = value.parse::<usize>() {
                        scope.nums.insert(k.to_string(), num);
                    } else {
                        return Err(format!(
                            "line {n}: rule key `{k}` must be a [\"...\"] list or an integer"
                        ));
                    }
                }
                _ => return Err(format!("line {n}: unknown key `{key}` in section [{section}]")),
            }
        }
        Ok(cfg)
    }
}

/// Strip a trailing `#` comment (the subset allows none inside strings).
fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or(line)
}

/// Parse `["a", "b"]`.
fn parse_list(value: &str, n: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {n}: expected a [\"...\"] list"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {n}: list items must be double-quoted"))?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

/// Parse `true` / `false`.
fn parse_bool(value: &str, n: usize) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("line {n}: expected true or false, got `{value}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_lists_and_bools() {
        let cfg = Config::parse(
            "# comment\n[skip]\ndirs = [\"target\", \"vendor\"]\n\n\
             [rules.unwrap-in-lib]\ncrates = [\"ts-core\"]\n\
             [rules.undocumented-unsafe]\ncrates = [\"*\"]\ninclude-tests = true\n",
        )
        .unwrap();
        assert_eq!(cfg.skip_dirs, vec!["target", "vendor"]);
        assert!(cfg.rules["unwrap-in-lib"].covers("ts-core"));
        assert!(!cfg.rules["unwrap-in-lib"].covers("ts-graph"));
        assert!(cfg.rules["undocumented-unsafe"].covers("anything"));
        assert!(cfg.rules["undocumented-unsafe"].include_tests);
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse("[skip]\nfiles = []\n").is_err());
        assert!(Config::parse("[rules.x]\ncrates = nope\n").is_err());
        assert!(Config::parse("[rules.x]\ninclude-tests = maybe\n").is_err());
        assert!(Config::parse("[rules.x]\nhops = \"two\"\n").is_err());
    }

    #[test]
    fn rule_params_lists_and_nums() {
        let cfg = Config::parse(
            "[rules.unmetered-loop]\ncrates = [\"ts-exec\"]\n\
             fns = [\"next\", \"next_batch\"]\nhops = 3\n",
        )
        .unwrap();
        let scope = &cfg.rules["unmetered-loop"];
        assert_eq!(scope.list("fns", &["z"]), vec!["next", "next_batch"]);
        assert_eq!(scope.list("absent", &["z"]), vec!["z"]);
        assert_eq!(scope.num("hops", 2), 3);
        assert_eq!(scope.num("absent", 2), 2);
    }
}
