//! Workspace walking, suppression, and reporting.
//!
//! The engine owns everything around the rules: finding `.rs` files
//! (deterministically — directory entries are sorted, findings are
//! ordered by path and line), attributing each file to its crate via
//! the nearest `Cargo.toml`, applying allow directives, and enforcing
//! the two meta rules: `bad-allow` (a directive naming an unknown rule,
//! or carrying no reason) and `unused-allow` (a directive that
//! suppressed nothing — stale suppressions rot the audit trail).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::flow::run_flow_rules;
use crate::graph::{Workspace, WsFile};
use crate::parse::ItemTree;
use crate::rules::{
    is_known_rule, run_rules, FileCtx, FileKind, Violation, BAD_ALLOW, UNUSED_ALLOW,
};
use crate::source::SourceFile;

/// One reported finding, located in a file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as scanned (relative to the workspace root).
    pub path: String,
    /// Underlying violation.
    pub violation: Violation,
    /// Raw text of the offending line, trimmed, for the excerpt.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: {}: {}",
            self.path, self.violation.line, self.violation.rule, self.violation.message
        )?;
        write!(f, "    | {}", self.excerpt)
    }
}

/// Result of a workspace (or single-source) lint pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Findings that survived suppression, ordered by (path, line).
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when the tree is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The lint engine: a config plus the rule set.
#[derive(Debug, Clone)]
pub struct Linter {
    config: Config,
}

impl Linter {
    /// Engine over a parsed config.
    pub fn new(config: Config) -> Self {
        Linter { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Lint one in-memory source. `path_label` is used in findings;
    /// `ctx` supplies the crate attribution the workspace walk would
    /// have derived. This is the fixture corpus' entry point: the file
    /// is linted as a single-file workspace, so the call-graph rules
    /// resolve calls within it.
    pub fn lint_source(&self, path_label: &str, text: &str, ctx: &FileCtx) -> Vec<Finding> {
        let src = SourceFile::parse(text);
        let items = ItemTree::parse(&src);
        let ws = Workspace::build(vec![WsFile {
            path: path_label.to_string(),
            ctx: ctx.clone(),
            src,
            items,
        }]);
        self.lint_built(&ws).findings
    }

    /// Lint every `.rs` file under `root`, honoring the config's skip
    /// list. Findings come back ordered by (path, line).
    pub fn lint_workspace(&self, root: &Path) -> io::Result<Report> {
        let ws = self.build_workspace(root)?;
        Ok(self.lint_built(&ws))
    }

    /// Phase one: parse every `.rs` file under `root` into the
    /// workspace model (files sorted by path, symbol table and call
    /// graph resolved). Exposed for the CLI's `--graph` dump.
    pub fn build_workspace(&self, root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        collect_rs_files(root, root, &self.config.skip_dirs, &mut files)?;
        files.sort();
        let mut crate_names: BTreeMap<PathBuf, Option<String>> = BTreeMap::new();
        let mut ws_files = Vec::new();
        for path in files {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let text = fs::read_to_string(&path)?;
            let ctx = FileCtx {
                crate_name: crate_name_for(root, &path, &mut crate_names)
                    .unwrap_or_else(|| "unknown".to_string()),
                kind: file_kind(rel),
            };
            let src = SourceFile::parse(&text);
            let items = ItemTree::parse(&src);
            ws_files.push(WsFile { path: path_to_slash(rel), ctx, src, items });
        }
        Ok(Workspace::build(ws_files))
    }

    /// Phase two: run the per-file lexical rules and the cross-file
    /// call-graph rules over a built workspace, then apply allow
    /// directives and the meta rules per file.
    pub fn lint_built(&self, ws: &Workspace) -> Report {
        let mut per_file: Vec<Vec<Violation>> =
            ws.files.iter().map(|f| run_rules(&f.src, &f.ctx, &self.config)).collect();
        for (fi, v) in run_flow_rules(ws, &self.config) {
            per_file[fi].push(v);
        }
        let mut report = Report { files: ws.files.len(), findings: Vec::new() };
        for (file, violations) in ws.files.iter().zip(per_file) {
            let violations = apply_allows(&file.src, violations);
            report.findings.extend(violations.into_iter().map(|v| {
                let excerpt =
                    file.src.line(v.line).map(|l| l.raw.trim().to_string()).unwrap_or_default();
                Finding { path: file.path.clone(), violation: v, excerpt }
            }));
        }
        report
    }
}

/// Apply suppressions (an allow matches a violation of its rule on its
/// target line) and run the meta rules over the directives themselves.
fn apply_allows(src: &SourceFile, mut violations: Vec<Violation>) -> Vec<Violation> {
    let mut used = vec![false; src.allows.len()];
    violations.retain(|v| {
        let mut suppressed = false;
        for (ai, a) in src.allows.iter().enumerate() {
            if a.rule == v.rule && a.target == v.line {
                used[ai] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (ai, a) in src.allows.iter().enumerate() {
        if !is_known_rule(&a.rule) {
            violations.push(Violation::new(
                BAD_ALLOW,
                a.line,
                format!("allow directive names unknown rule `{}`", a.rule),
            ));
        } else if a.reason.is_empty() {
            violations.push(Violation::new(
                BAD_ALLOW,
                a.line,
                format!(
                    "allow({}) carries no reason; write `// lint: allow({}): <why>`",
                    a.rule, a.rule
                ),
            ));
        } else if !used[ai] {
            violations.push(Violation::new(
                UNUSED_ALLOW,
                a.line,
                format!(
                    "allow({}) suppresses nothing on line {}; remove the stale directive",
                    a.rule, a.target
                ),
            ));
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// Forward-slashed path string (stable across platforms for output).
fn path_to_slash(p: &Path) -> String {
    p.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Recursively collect `.rs` files, skipping configured directories.
/// Entries are visited in sorted order so the scan is deterministic.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    skip: &[String],
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = path_to_slash(rel);
        if skip.iter().any(|s| rel_str == *s || file_name_is(&path, s)) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, skip, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// True when the path's file name equals a bare (slash-free) skip entry.
fn file_name_is(path: &Path, skip_entry: &str) -> bool {
    !skip_entry.contains('/') && path.file_name().is_some_and(|n| n.to_string_lossy() == skip_entry)
}

/// Which target tree a repo-relative path belongs to.
fn file_kind(rel: &Path) -> FileKind {
    for c in rel.components() {
        let c = c.as_os_str();
        if c == "tests" {
            return FileKind::Test;
        }
        if c == "benches" {
            return FileKind::Bench;
        }
        if c == "examples" {
            return FileKind::Example;
        }
    }
    FileKind::Lib
}

/// Crate name from the nearest ancestor `Cargo.toml` (cached per dir).
fn crate_name_for(
    root: &Path,
    file: &Path,
    cache: &mut BTreeMap<PathBuf, Option<String>>,
) -> Option<String> {
    let mut dir = file.parent()?;
    loop {
        if let Some(cached) = cache.get(dir) {
            if cached.is_some() {
                return cached.clone();
            }
        } else {
            let manifest = dir.join("Cargo.toml");
            let name = if manifest.is_file() {
                fs::read_to_string(&manifest).ok().and_then(|t| package_name(&t))
            } else {
                None
            };
            cache.insert(dir.to_path_buf(), name.clone());
            if name.is_some() {
                return name;
            }
        }
        if dir == root {
            return None;
        }
        dir = dir.parent()?;
    }
}

/// `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == "name" {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> Config {
        Config::parse(
            "[rules.unwrap-in-lib]\ncrates = [\"demo\"]\n\
             [rules.narrowing-cast]\ncrates = [\"demo\"]\n",
        )
        .expect("static test config parses")
    }

    fn ctx() -> FileCtx {
        FileCtx { crate_name: "demo".to_string(), kind: FileKind::Lib }
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let linter = Linter::new(test_config());
        let f = linter.lint_source(
            "demo.rs",
            "fn f() { x.unwrap(); } // lint: allow(unwrap-in-lib): x is Some by construction\n",
            &ctx(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_bad_allow() {
        let linter = Linter::new(test_config());
        let f = linter.lint_source(
            "demo.rs",
            "fn f() { x.unwrap(); } // lint: allow(unwrap-in-lib)\n",
            &ctx(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].violation.rule, BAD_ALLOW);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let linter = Linter::new(test_config());
        let f = linter.lint_source(
            "demo.rs",
            "fn f() {} // lint: allow(narrowing-cast): nothing here actually\n",
            &ctx(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].violation.rule, UNUSED_ALLOW);
    }

    #[test]
    fn package_name_reads_package_section_only() {
        let name = package_name("[workspace]\n[package]\nname = \"ts-x\"\n[lib]\nname = \"x\"\n");
        assert_eq!(name.as_deref(), Some("ts-x"));
    }

    #[test]
    fn file_kind_by_tree() {
        assert_eq!(file_kind(Path::new("crates/exec/src/sort.rs")), FileKind::Lib);
        assert_eq!(file_kind(Path::new("crates/exec/tests/sort_allocs.rs")), FileKind::Test);
        assert_eq!(file_kind(Path::new("crates/bench/benches/x.rs")), FileKind::Bench);
        assert_eq!(file_kind(Path::new("examples/quickstart.rs")), FileKind::Example);
    }
}
