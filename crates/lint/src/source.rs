//! Lexical model of one Rust source file.
//!
//! The engine does not parse Rust — it *lexes* it, which is all the
//! rules need: every rule matches token patterns in code that is
//! guaranteed not to be a string literal, a character literal, or a
//! comment. [`SourceFile::parse`] runs three passes:
//!
//! 1. **sanitize** — a character-level state machine separates each
//!    line into `code` (literal contents and comments blanked with
//!    spaces, delimiters kept) and `comment` (the comment text, for
//!    `SAFETY:` markers and allow directives). Handles nested block
//!    comments, raw strings with arbitrary `#` counts, byte strings,
//!    char literals vs. lifetimes, and escapes.
//! 2. **test regions** — brace tracking over the sanitized code marks
//!    every line inside a `#[cfg(test)]` or `#[test]` item, so rules
//!    scoped to library code skip inline test modules.
//! 3. **allow directives** — `// lint: allow(<rule>): <reason>`
//!    comments are collected and bound to the line they suppress (their
//!    own line if it has code, otherwise the next code-bearing line).

/// One suppression directive, bound to the code line it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Reason text after the closing `):`. May be empty — the engine
    /// rejects that as `bad-allow`.
    pub reason: String,
    /// 1-based line of the directive comment itself.
    pub line: usize,
    /// 1-based code line the directive suppresses.
    pub target: usize,
}

/// One source line in the three synchronized views the rules consume.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Raw text (for diagnostics excerpts).
    pub raw: String,
    /// Sanitized code: comments and literal contents replaced by
    /// spaces, string/char delimiters kept. Same length as `raw`.
    pub code: String,
    /// Comment text on this line (comment markers kept, code blanked).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug, Clone, Default)]
pub struct SourceFile {
    /// Lines, in order (index 0 is line 1).
    pub lines: Vec<Line>,
    /// All allow directives, bound to their target lines.
    pub allows: Vec<Allow>,
}

/// Lexer state for the sanitize pass.
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str { raw_hashes: Option<usize> },
}

impl SourceFile {
    /// Lex `text` into the line views described in the module docs.
    pub fn parse(text: &str) -> SourceFile {
        let mut file = SourceFile::default();
        sanitize(text, &mut file);
        mark_test_regions(&mut file);
        collect_allows(&mut file);
        file
    }

    /// 1-based accessor used by the rules (`None` past the end).
    pub fn line(&self, n: usize) -> Option<&Line> {
        self.lines.get(n.checked_sub(1)?)
    }
}

/// Pass 1: split every line into sanitized code and comment text.
fn sanitize(text: &str, file: &mut SourceFile) {
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Code;
    let mut line = Line::default();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; strings and block
            // comments continue across it.
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            file.lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        line.raw.push(c);
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    line.code.push(' ');
                    line.comment.push(c);
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: 1 };
                    line.code.push(' ');
                    line.comment.push(c);
                } else if let Some(hashes) = raw_string_start(&chars, i) {
                    // Emit the full opener (`r`/`br`, hashes, quote) as
                    // code so the delimiter stays visible.
                    let opener_len = raw_opener_len(&chars, i);
                    for k in 0..opener_len {
                        if k > 0 {
                            line.raw.push(chars[i + k]);
                        }
                        line.code.push(chars[i + k]);
                        line.comment.push(' ');
                    }
                    i += opener_len;
                    state = State::Str { raw_hashes: Some(hashes) };
                    continue;
                } else if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
                    if c == 'b' {
                        line.code.push('b');
                        line.comment.push(' ');
                        line.raw.push('"');
                        i += 1;
                    }
                    line.code.push('"');
                    line.comment.push(' ');
                    state = State::Str { raw_hashes: None };
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        // Blank the contents, keep both delimiters.
                        line.code.push('\'');
                        line.comment.push(' ');
                        for &ch in &chars[i + 1..end] {
                            line.raw.push(ch);
                            line.code.push(' ');
                            line.comment.push(' ');
                        }
                        line.raw.push('\'');
                        line.code.push('\'');
                        line.comment.push(' ');
                        i = end + 1;
                        continue;
                    }
                    // A lifetime or label: plain code.
                    line.code.push(c);
                    line.comment.push(' ');
                } else {
                    line.code.push(c);
                    line.comment.push(' ');
                }
            }
            State::LineComment => {
                line.code.push(' ');
                line.comment.push(c);
            }
            State::BlockComment { depth } => {
                line.code.push(' ');
                line.comment.push(c);
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    line.raw.push('*');
                    line.code.push(' ');
                    line.comment.push('*');
                    i += 1;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    line.raw.push('/');
                    line.code.push(' ');
                    line.comment.push('/');
                    i += 1;
                    state = if depth > 1 {
                        State::BlockComment { depth: depth - 1 }
                    } else {
                        State::Code
                    };
                }
            }
            State::Str { raw_hashes } => {
                line.comment.push(' ');
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Skip the escaped character (it may be a
                            // quote); both chars blank to spaces.
                            line.code.push(' ');
                            if let Some(&n) = chars.get(i + 1) {
                                if n != '\n' {
                                    line.raw.push(n);
                                    line.code.push(' ');
                                    line.comment.push(' ');
                                    i += 1;
                                }
                            }
                        } else if c == '"' {
                            line.code.push('"');
                            state = State::Code;
                        } else {
                            line.code.push(' ');
                        }
                    }
                    Some(hashes) => {
                        if c == '"' && closes_raw(&chars, i, hashes) {
                            line.code.push('"');
                            for k in 1..=hashes {
                                line.raw.push(chars[i + k]);
                                line.code.push('#');
                                line.comment.push(' ');
                            }
                            i += hashes;
                            state = State::Code;
                        } else {
                            line.code.push(' ');
                        }
                    }
                }
            }
        }
        i += 1;
    }
    if !line.raw.is_empty() {
        file.lines.push(line);
    }
}

/// If a raw (byte) string starts at `i`, the number of `#`s it uses.
fn raw_string_start(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length of the raw-string opener at `i` (`r`/`br` + hashes + quote).
fn raw_opener_len(chars: &[char], i: usize) -> usize {
    let prefix = if chars.get(i) == Some(&'b') { 2 } else { 1 };
    let mut hashes = 0;
    while chars.get(i + prefix + hashes) == Some(&'#') {
        hashes += 1;
    }
    prefix + hashes + 1
}

/// True when the quote at `i` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// End index (of the closing quote) when a character literal starts at
/// `i`; `None` when the `'` introduces a lifetime or loop label.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped literal: scan (bounded) for the closing quote.
            let mut j = i + 2;
            while j < chars.len() && j - i < 16 {
                match chars[j] {
                    '\'' => return Some(j),
                    '\\' => j += 2,
                    _ => j += 1,
                }
            }
            None
        }
        '\'' => None, // `''` never appears in valid code
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// Pass 2: mark lines inside `#[cfg(test)]` / `#[test]` brace blocks.
fn mark_test_regions(file: &mut SourceFile) {
    let mut depth: usize = 0;
    // Depths at which a test item's block was opened.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_attr = false;
    for li in 0..file.lines.len() {
        if !test_stack.is_empty() {
            file.lines[li].in_test = true;
        }
        let code = file.lines[li].code.clone();
        let bytes: Vec<char> = code.chars().collect();
        let mut k = 0;
        while k < bytes.len() {
            match bytes[k] {
                '#' => {
                    let rest: String = bytes[k..].iter().collect();
                    if rest.starts_with("#[cfg(test)]") || rest.starts_with("#[test]") {
                        pending_attr = true;
                    }
                }
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_stack.push(depth);
                        pending_attr = false;
                        // The block's own remainder lines are test code;
                        // the opening line keeps its current flag.
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use ...;` — attribute spent without
                // a block.
                ';' if depth == 0 || test_stack.last() != Some(&depth) => {
                    pending_attr = false;
                }
                _ => {}
            }
            k += 1;
        }
    }
}

/// Pass 3: collect `// lint: allow(<rule>): <reason>` directives and
/// bind each to its target line.
fn collect_allows(file: &mut SourceFile) {
    let mut pending: Vec<Allow> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let n = idx + 1;
        let mut here: Vec<Allow> = parse_directives(&line.comment, n);
        let has_code = !line.code.trim().is_empty();
        if has_code {
            // Code on this line: directives here and any pending ones
            // all target it.
            for mut a in pending.drain(..).chain(here.drain(..)) {
                a.target = n;
                allows.push(a);
            }
        } else {
            pending.append(&mut here);
        }
    }
    // Directives at EOF with no code after them: target themselves so
    // they surface as unused rather than vanishing.
    for a in pending {
        allows.push(a);
    }
    file.allows = allows;
}

/// Parse every directive in one line's comment text.
fn parse_directives(comment: &str, line: usize) -> Vec<Allow> {
    let mut out = Vec::new();
    // The directive must be the comment's own text: strip the comment
    // markers (`//`, `///`, `//!`, `/*`) and require `lint:` to lead.
    // Prose that merely *mentions* the syntax (like this crate's docs)
    // does not start with `lint:` after one marker strip and is
    // ignored.
    let trimmed = comment.trim_start();
    let body = trimmed
        .strip_prefix("/*")
        .or_else(|| trimmed.strip_prefix("//"))
        .map(|rest| rest.trim_start_matches(['/', '!']))
        .unwrap_or(trimmed);
    let body = body.trim_start();
    let Some(rest) = body.strip_prefix("lint:") else {
        return out;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return out;
    };
    let Some(close) = rest.find(')') else {
        return out;
    };
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
        .unwrap_or_default();
    out.push(Allow { rule, reason, line, target: line });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f =
            SourceFile::parse("let x = \"for m.iter() as u32\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("iter"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert!(f.lines[0].code.contains("let x ="));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = SourceFile::parse("let s = r#\"as u32 \" still \"#; m.iter();\n");
        assert!(!f.lines[0].code.contains("as u32"));
        assert!(f.lines[0].code.contains("m.iter()"), "{:?}", f.lines[0].code);
    }

    #[test]
    fn multiline_strings_and_block_comments() {
        let f =
            SourceFile::parse("let s = \"line one\nas u32\"; /* as u16\nstill comment */ as i32\n");
        assert!(!f.lines[1].code.contains("as u32"));
        assert!(!f.lines[1].code.contains("as u16"));
        assert!(f.lines[2].code.contains("as i32"));
        assert!(f.lines[2].comment.contains("still comment"));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse("/* outer /* inner */ still */ code()\n");
        assert!(f.lines[0].code.contains("code()"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = SourceFile::parse("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a str"));
        // The quote characters inside the char literals must not open a
        // string state that eats the rest of the line.
        assert!(code.contains('}'));
    }

    #[test]
    fn cfg_test_regions() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_attr_without_block_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn allow_directive_trailing_and_standalone() {
        let src = "x.unwrap(); // lint: allow(unwrap-in-lib): infallible here\n\
                   // lint: allow(narrowing-cast): bounded by construction\n\
                   let y = n as u32;\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "unwrap-in-lib");
        assert_eq!(f.allows[0].target, 1);
        assert_eq!(f.allows[1].rule, "narrowing-cast");
        assert_eq!(f.allows[1].reason, "bounded by construction");
        assert_eq!(f.allows[1].target, 3);
    }

    #[test]
    fn doc_prose_mentioning_syntax_is_not_a_directive() {
        let src = "/// Suppress with `// lint: allow(rule): reason`.\nfn f() {}\n";
        let f = SourceFile::parse(src);
        assert!(f.allows.is_empty());
    }
}
