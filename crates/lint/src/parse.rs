//! Syntactic model of one Rust source file: a hand-rolled,
//! dependency-free recursive-descent pass over the sanitized token
//! stream from [`crate::source`].
//!
//! This is deliberately *not* a Rust parser. It recognizes exactly the
//! shapes the call-graph rules need — `fn` items with brace-matched
//! bodies, call sites, loop headers with their body extents, and
//! statement boundaries — and it is total: any byte soup produces
//! *some* (possibly empty) item tree, never a panic. Unbalanced
//! delimiters clamp to the end of the file; every recorded line is a
//! real line of the input. The parser-fuzz suite pins both properties.

use std::ops::Range;

use crate::source::SourceFile;

/// One token of sanitized code, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Word (identifier / keyword / number) or single punctuation char.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal.
    Word(String),
    /// Single non-whitespace punctuation character.
    Punct(char),
}

impl Tok {
    /// The word, if this is a word token.
    pub fn word(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Word(w) => Some(w),
            TokKind::Punct(_) => None,
        }
    }

    /// True when this token is the word `w`.
    pub fn is(&self, w: &str) -> bool {
        self.word() == Some(w)
    }

    /// True when this token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// True for `.name(..)` method-call syntax.
    pub method: bool,
}

/// One `loop` / `while` / `for` site inside a function body.
#[derive(Debug, Clone)]
pub struct LoopSite {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// Loop keyword (`loop`, `while`, or `for`), for diagnostics.
    pub keyword: &'static str,
    /// Token range of the loop body (inside the braces). Nested loops'
    /// tokens are included — a poll anywhere inside counts.
    pub body: Range<usize>,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (no path or impl-type qualification).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body (inside the braces). Empty for
    /// bodyless trait-method declarations and for empty `{}` bodies —
    /// [`FnItem::has_body`] distinguishes the two.
    pub body: Range<usize>,
    /// True when the item has a braced body (possibly empty), false
    /// for a bodyless trait-method declaration.
    pub has_body: bool,
    /// True when the definition line sits in a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// The parsed item view of one file: a shared token stream plus every
/// `fn` item found in it (including fns nested in other bodies).
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// All tokens of the file, in order.
    pub toks: Vec<Tok>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
}

/// Rust keywords that can precede a `(` without being a call.
const NON_CALL_WORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "move", "else", "break",
    "continue", "as",
];

impl ItemTree {
    /// Lex and item-scan a sanitized source file.
    pub fn parse(src: &SourceFile) -> ItemTree {
        let toks = lex(src);
        let fns = scan_fns(&toks, src);
        ItemTree { toks, fns }
    }

    /// All call sites within a token range (typically a fn body or a
    /// loop body). Macro invocations (`name!(..)`) are not calls.
    pub fn calls_in(&self, range: Range<usize>) -> Vec<Call> {
        let mut out = Vec::new();
        let t = &self.toks;
        for i in range.start..range.end.min(t.len()) {
            let Some(w) = t[i].word() else { continue };
            if NON_CALL_WORDS.contains(&w) {
                continue;
            }
            // `name (` — but not `name !(` (macro; the `(` then sits
            // after the `!`, so the next-token test below already
            // rejects it) and not `fn name (`.
            if !t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                continue;
            }
            if i > 0 && t[i - 1].is("fn") {
                continue;
            }
            let method = i > 0 && t[i - 1].is_punct('.');
            out.push(Call { name: w.to_string(), line: t[i].line, method });
        }
        out
    }

    /// All loop sites within a token range, recursively (a nested
    /// loop is its own site; its tokens also belong to the outer
    /// loop's body range).
    pub fn loops_in(&self, range: Range<usize>) -> Vec<LoopSite> {
        let mut out = Vec::new();
        let t = &self.toks;
        let end = range.end.min(t.len());
        let mut i = range.start;
        while i < end {
            let keyword = match t[i].word() {
                Some("loop") => Some("loop"),
                Some("while") => Some("while"),
                // `for<'a>` in a bound is not a loop.
                Some("for") if !t.get(i + 1).is_some_and(|x| x.is_punct('<')) => Some("for"),
                _ => None,
            };
            if let Some(kw) = keyword {
                // The body opens at the first `{` at paren depth 0
                // after the header (struct literals are not legal in
                // loop headers, so this brace is the body).
                if let Some(open) = find_body_open(t, i + 1, end) {
                    let close = match_brace(t, open);
                    out.push(LoopSite { line: t[i].line, keyword: kw, body: open + 1..close });
                }
            }
            i += 1;
        }
        out
    }

    /// Statement-ish token runs within a range: maximal runs between
    /// `;`, `{`, and `}` boundaries at any depth. A `for`/`while`
    /// header ends at its `{`, a simple statement at its `;` — enough
    /// granularity for the taint rule's per-statement reasoning.
    pub fn statements_in(&self, range: Range<usize>) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let end = range.end.min(self.toks.len());
        let mut start = range.start;
        for i in range.start..end {
            if self.toks[i].is_punct(';')
                || self.toks[i].is_punct('{')
                || self.toks[i].is_punct('}')
            {
                if i > start {
                    out.push(start..i);
                }
                start = i + 1;
            }
        }
        if end > start {
            out.push(start..end);
        }
        out
    }

    /// 1-based line of the first token in `range` (the statement's
    /// anchor line for diagnostics); `None` for an empty range.
    pub fn first_line(&self, range: &Range<usize>) -> Option<usize> {
        self.toks.get(range.start).map(|t| t.line)
    }
}

/// Tokenize the sanitized code lines of a file.
fn lex(src: &SourceFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        let n = idx + 1;
        let mut word = String::new();
        for c in line.code.chars() {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
            } else {
                if !word.is_empty() {
                    out.push(Tok { kind: TokKind::Word(std::mem::take(&mut word)), line: n });
                }
                if !c.is_whitespace() {
                    out.push(Tok { kind: TokKind::Punct(c), line: n });
                }
            }
        }
        if !word.is_empty() {
            out.push(Tok { kind: TokKind::Word(word), line: n });
        }
    }
    out
}

/// Find every `fn name` item and brace-match its body.
fn scan_fns(t: &[Tok], src: &SourceFile) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is("fn") {
            if let Some(name) = t.get(i + 1).and_then(|x| x.word()) {
                let line = t[i].line;
                let is_test = src.line(line).map(|l| l.in_test).unwrap_or(false);
                // Walk the signature: the body opens at the first `{`
                // at paren depth 0; a `;` there first means a bodyless
                // trait declaration.
                let mut body = 0..0;
                let mut has_body = false;
                let mut j = i + 2;
                let mut paren: usize = 0;
                while j < t.len() {
                    if t[j].is_punct('(') || t[j].is_punct('[') {
                        paren += 1;
                    } else if t[j].is_punct(')') || t[j].is_punct(']') {
                        paren = paren.saturating_sub(1);
                    } else if paren == 0 && t[j].is_punct(';') {
                        break;
                    } else if paren == 0 && t[j].is_punct('{') {
                        let close = match_brace(t, j);
                        body = j + 1..close;
                        has_body = true;
                        break;
                    }
                    j += 1;
                }
                out.push(FnItem { name: name.to_string(), line, body, has_body, is_test });
            }
        }
        i += 1;
    }
    out
}

/// First `{` at paren/bracket depth 0 in `t[from..end]`.
fn find_body_open(t: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut depth: usize = 0;
    for (j, tok) in t.iter().enumerate().take(end).skip(from) {
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if tok.is_punct('{') {
                return Some(j);
            }
            // A `;` or `}` before the `{` means the header was
            // malformed (byte soup); give up on this site.
            if tok.is_punct(';') || tok.is_punct('}') {
                return None;
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`; clamps to the end of
/// the stream when unbalanced (total on any input).
fn match_brace(t: &[Tok], open: usize) -> usize {
    let mut depth: usize = 0;
    for (j, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    t.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(src: &str) -> ItemTree {
        ItemTree::parse(&SourceFile::parse(src))
    }

    #[test]
    fn fn_items_with_bodies() {
        let t = tree("fn alpha(x: u32) -> u32 { x + 1 }\nimpl S { fn beta(&self) { body(); } }\n");
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(!t.fns[0].body.is_empty());
        assert_eq!(t.fns[0].line, 1);
        assert_eq!(t.fns[1].line, 2);
    }

    #[test]
    fn trait_decl_has_empty_body() {
        let t = tree("trait T { fn decl(&mut self) -> Option<Row>; }\nfn real() {}\n");
        assert_eq!(t.fns.len(), 2);
        assert!(!t.fns[0].has_body);
        assert!(t.fns[1].has_body);
        assert!(t.fns[1].body.is_empty());
    }

    #[test]
    fn calls_methods_and_macros() {
        let t = tree("fn f() { g(); x.h(); Work::tick(1); row![1]; maybe!(); }\n");
        let body = t.fns[0].body.clone();
        let calls: Vec<(String, bool)> =
            t.calls_in(body).into_iter().map(|c| (c.name, c.method)).collect();
        assert!(calls.contains(&("g".to_string(), false)));
        assert!(calls.contains(&("h".to_string(), true)));
        assert!(calls.contains(&("tick".to_string(), false)));
        assert!(!calls.iter().any(|(n, _)| n == "row" || n == "maybe"));
    }

    #[test]
    fn loops_and_nesting() {
        let t = tree(
            "fn f() {\n    loop {\n        for x in xs {\n            g(x);\n        }\n    }\n    while a < b { h(); }\n}\n",
        );
        let loops = t.loops_in(t.fns[0].body.clone());
        assert_eq!(loops.len(), 3);
        assert_eq!(loops[0].keyword, "loop");
        assert_eq!(loops[1].keyword, "for");
        assert_eq!(loops[2].keyword, "while");
        // The outer loop's body contains the inner for's call.
        let outer_calls = t.calls_in(loops[0].body.clone());
        assert!(outer_calls.iter().any(|c| c.name == "g"));
    }

    #[test]
    fn while_let_header_finds_its_body() {
        let t = tree("fn f(op: &mut dyn Op) { while let Some(r) = op.next() { push(r); } }\n");
        let loops = t.loops_in(t.fns[0].body.clone());
        assert_eq!(loops.len(), 1);
        assert!(t.calls_in(loops[0].body.clone()).iter().any(|c| c.name == "push"));
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let t = tree("fn f<F: for<'a> Fn(&'a u32)>(g: F) { g(&1); }\n");
        assert!(t.loops_in(t.fns[0].body.clone()).is_empty());
    }

    #[test]
    fn statements_split_on_semicolons_and_braces() {
        let t = tree("fn f() { let a = g(); if a { h(); } k(); }\n");
        let stmts = t.statements_in(t.fns[0].body.clone());
        // `let a = g()`, `if a`, `h()`, `k()`.
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn unbalanced_braces_clamp_to_eof() {
        let t = tree("fn f() { loop { g();\n");
        assert_eq!(t.fns.len(), 1);
        let loops = t.loops_in(t.fns[0].body.clone());
        assert_eq!(loops.len(), 1);
        assert!(t.calls_in(loops[0].body.clone()).iter().any(|c| c.name == "g"));
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let t = tree("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(!t.fns[0].is_test);
        assert!(t.fns[1].is_test);
    }
}
