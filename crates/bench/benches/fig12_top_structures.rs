//! Figure 12: the details of the top 10 most frequent 3-topologies
//! relating Proteins and DNAs — "all these topologies have a relatively
//! simple structure; most of them are no more complicated than a path".

use ts_bench::{build_env, header, motif, EnvOptions};
use ts_core::{EsPair, RankScheme};

fn main() {
    let env = build_env(EnvOptions::default());
    header("Figure 12 — top 10 most frequent 3-topologies relating Proteins and DNAs");

    let pd = EsPair::new(env.biozon.ids.protein, env.biozon.ids.dna);
    let ranked = env.catalog.ranked(RankScheme::Freq, pd);

    println!("{:<6} {:>8} {:>7} {:>7} {:>6}  structure", "rank", "freq", "nodes", "edges", "path?");
    let mut simple = 0;
    for (rank, (tid, _)) in ranked.iter().take(10).enumerate() {
        let meta = env.catalog.meta(*tid);
        let is_path = meta.path_sig.is_some();
        if is_path {
            simple += 1;
        }
        println!(
            "{:<6} {:>8} {:>7} {:>7} {:>6}  {}",
            rank + 1,
            meta.freq,
            meta.graph.node_count(),
            meta.graph.edge_count(),
            if is_path { "yes" } else { "no" },
            motif(&env, *tid)
        );
    }
    println!(
        "\n{simple}/10 of the most frequent topologies are plain paths \
         (paper: 'most of them are no more complicated than a path')"
    );
}
