//! Figure 16: "a topology of biological significance" — two proteins
//! encoded by the same DNA sequence that also interact with each other.
//!
//! The generator plants this motif; the harness verifies topology search
//! *finds* it: a Protein–DNA topology whose structure combines encodes
//! edges with an interaction bridge between two proteins, plus its
//! instance-level witnesses (§6.2.1).

use ts_bench::{build_env, header, motif, EnvOptions};
use ts_core::instances::retrieve_instances;
use ts_core::EsPair;
use ts_exec::Work;

fn main() {
    let env = build_env(EnvOptions::default());
    header("Figure 16 — the biologically significant motif and its instances");

    let ids = &env.biozon.ids;
    let pd = EsPair::new(ids.protein, ids.dna);

    // The Fig. 16 shape as a P-D topology: >=2 proteins, an interaction
    // entity bridging them, and >=2 encodes edges to the same DNA.
    let hits: Vec<_> = env
        .catalog
        .topologies_for(pd)
        .into_iter()
        .filter(|&tid| {
            let g = &env.catalog.meta(tid).graph;
            let proteins = g.labels.iter().filter(|&&l| l == ids.protein).count();
            let has_interaction = g.labels.contains(&ids.interaction);
            let encodes_edges = g.edges.iter().filter(|&&(_, _, r)| r == ids.encodes).count();
            proteins >= 2 && has_interaction && encodes_edges >= 2
        })
        .collect();

    println!("found {} Fig.16-shaped Protein-DNA topologies in the catalog", hits.len());
    let ctx = env.ctx();
    for &tid in hits.iter().take(5) {
        let meta = env.catalog.meta(tid);
        println!("\nT{tid} (freq {}): {}", meta.freq, motif(&env, tid));
        let work = Work::new();
        let instances = retrieve_instances(&ctx, tid, 3, &work);
        for inst in instances {
            println!(
                "  instance: DNA {} encodes interacting proteins (pair e1={})",
                inst.e2, inst.e1
            );
        }
    }
    println!(
        "\nmotif found: {}",
        if hits.is_empty() { "NO (investigate planting)" } else { "YES (matches paper §6.2.1)" }
    );
}
