//! §6.2.4: the cost of retrieving instances of a given topology —
//! "it ranges from 1-50 seconds depending on the frequency of the
//! topology". The reproduction target is cost growing with frequency.

use std::time::Instant;

use ts_bench::{build_env, header, motif, EnvOptions};
use ts_core::instances::retrieve_instances;
use ts_core::EsPair;
use ts_exec::Work;

fn main() {
    let env = build_env(EnvOptions::default());
    header("Instance retrieval — cost vs topology frequency");

    let pd = EsPair::new(env.biozon.ids.protein, env.biozon.ids.dna);
    let mut tids = env.catalog.topologies_for(pd);
    tids.sort_by_key(|&t| env.catalog.meta(t).freq);

    // Sample topologies across the frequency range: min, deciles, max.
    let picks: Vec<u32> = (0..=10).map(|d| tids[(d * (tids.len() - 1)) / 10]).collect();

    let ctx = env.ctx();
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>10}  structure",
        "tid", "freq", "instances", "wall ms", "work"
    );
    let mut prev = (0u64, 0.0f64);
    let mut monotone_violations = 0;
    for tid in picks {
        let meta = env.catalog.meta(tid);
        let work = Work::new();
        let t0 = Instant::now();
        let got = retrieve_instances(&ctx, tid, usize::MAX, &work);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<8} {:>8} {:>10} {:>12.2} {:>10}  {}",
            tid,
            meta.freq,
            got.len(),
            ms,
            work.get(),
            motif(&env, tid)
        );
        if meta.freq > prev.0.saturating_mul(4) && ms < prev.1 / 4.0 {
            monotone_violations += 1;
        }
        prev = (meta.freq, ms);
    }
    println!(
        "\ncost grows with frequency: {}",
        if monotone_violations <= 1 { "YES (matches paper)" } else { "NOISY (rerun)" }
    );
}
