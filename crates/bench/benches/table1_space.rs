//! Table 1: space requirements of Full-Top (AllTops) vs Fast-Top
//! (LeftTops + ExcpTops) per object pair, with the ratio column.
//!
//! The paper reports e.g. Protein-DNA 3.36GB -> 30MB + 70M (3%); the
//! reproduction target is large per-pair reductions driven by the
//! Zipfian head, not the absolute bytes.

use ts_bench::{build_env, espair_name, header, EnvOptions};

fn main() {
    let env = build_env(EnvOptions::default());
    header("Table 1 — space requirement: AllTops vs LeftTops + ExcpTops");

    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>8}",
        "object pair", "AllTops", "LeftTops", "ExcpTops", "ratio"
    );
    let mut total_all = 0usize;
    let mut total_left = 0usize;
    let mut total_excp = 0usize;
    for (espair, row) in env.catalog.space_report() {
        total_all += row.alltops_bytes;
        total_left += row.lefttops_bytes;
        total_excp += row.excptops_bytes;
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>7.1}%",
            espair_name(&env, espair),
            fmt_bytes(row.alltops_bytes),
            fmt_bytes(row.lefttops_bytes),
            fmt_bytes(row.excptops_bytes),
            row.ratio() * 100.0
        );
    }
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>7.1}%",
        "TOTAL",
        fmt_bytes(total_all),
        fmt_bytes(total_left),
        fmt_bytes(total_excp),
        if total_all > 0 {
            (total_left + total_excp) as f64 / total_all as f64 * 100.0
        } else {
            0.0
        }
    );
    let pruned = env.catalog.metas().iter().filter(|m| m.pruned).count();
    println!(
        "\npruned {pruned} of {} topologies (paper: 19 of 805 at l<=3)",
        env.catalog.topology_count()
    );
}

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}
