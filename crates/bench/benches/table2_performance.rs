//! Table 2: performance of all nine strategies on Protein × Interaction
//! queries across the {selective, medium, unselective}² grid and the
//! three ranking schemes, top-10.
//!
//! Reproduction targets (shape, not absolute numbers):
//! * SQL is orders of magnitude slower than everything else;
//! * Fast-Top beats Full-Top for medium/unselective predicates and is
//!   more stable across selectivities;
//! * the ET methods win for unselective predicates and lose for
//!   selective ones;
//! * the Opt methods track the per-cell winner.

use ts_bench::{build_env, header, skip_sql, EnvOptions};
use ts_biozon::{selectivity_predicate, Selectivity};
use ts_core::{Method, RankScheme, TopologyQuery};

fn main() {
    let env = build_env(EnvOptions::default());
    header("Table 2 — performance of the nine strategies (ms; Protein x Interaction, top-10)");
    if skip_sql() {
        println!("(SQL baseline skipped: TS_BENCH_SKIP_SQL=1)");
    }

    let ctx = env.ctx();
    println!(
        "\n{:<14} {:<16} {:>10} {:>10} {:>10}   (columns = interaction selectivity)",
        "protein", "method", "selective", "medium", "unselective"
    );

    for ps in Selectivity::all() {
        for scheme in RankScheme::all() {
            println!("--- protein {ps}, scheme {scheme} ---");
            for method in Method::all() {
                if method == Method::Sql && skip_sql() {
                    continue;
                }
                let mut cells = Vec::new();
                for is in Selectivity::all() {
                    let q = TopologyQuery::new(
                        env.biozon.ids.protein,
                        selectivity_predicate(ps),
                        env.biozon.ids.interaction,
                        selectivity_predicate(is),
                        3,
                    )
                    .with_k(10)
                    .with_scheme(scheme);
                    // Warm run then measured run (paper: warm cache, mean
                    // of multiple runs).
                    let _ = method.eval(&ctx, &q);
                    let a = method.eval(&ctx, &q);
                    let b = method.eval(&ctx, &q);
                    cells.push(((a.wall_ms + b.wall_ms) / 2.0, a.work));
                }
                println!(
                    "{:<14} {:<16} {:>10.2} {:>10.2} {:>10.2}   work {:>9} {:>9} {:>9}",
                    ps.to_string(),
                    method.name(),
                    cells[0].0,
                    cells[1].0,
                    cells[2].0,
                    cells[0].1,
                    cells[1].1,
                    cells[2].1
                );
            }
        }
    }

    // Shape summary for EXPERIMENTS.md.
    header("Table 2 shape summary");
    let q_uns = TopologyQuery::new(
        env.biozon.ids.protein,
        selectivity_predicate(Selectivity::Unselective),
        env.biozon.ids.interaction,
        selectivity_predicate(Selectivity::Unselective),
        3,
    )
    .with_k(10);
    let q_sel = TopologyQuery::new(
        env.biozon.ids.protein,
        selectivity_predicate(Selectivity::Selective),
        env.biozon.ids.interaction,
        selectivity_predicate(Selectivity::Selective),
        3,
    )
    .with_k(10);
    let et_uns = Method::FastTopKEt.eval(&ctx, &q_uns).work;
    let tk_uns = Method::FastTopK.eval(&ctx, &q_uns).work;
    let opt_sel = Method::FastTopKOpt.eval(&ctx, &q_sel);
    let opt_uns = Method::FastTopKOpt.eval(&ctx, &q_uns);
    println!("unselective: ET work {et_uns} vs Fast-Top-k work {tk_uns} (paper: ET wins)");
    println!("opt @ selective   -> {}", opt_sel.detail.split(';').next().unwrap_or(""));
    println!("opt @ unselective -> {}", opt_uns.detail.split(';').next().unwrap_or(""));
}
