//! Table 3: 4-topologies — space overhead and Fast-Top-k-Opt query
//! performance across the selectivity grid.
//!
//! §6.2.3: l = 4 is dominated by weak relationships; the paper reports
//! comparable query performance to l = 3 but notes the precompute blow-up
//! (>1 day with weak relationships). We run l = 4 at reduced scale with
//! the Appendix-B weak policy (the paper's own proposed solution) and
//! report both builds' statistics.

use ts_bench::{build_env, header, EnvOptions};
use ts_biozon::{selectivity_predicate, Selectivity};
use ts_core::{Method, RankScheme, TopologyQuery};

fn main() {
    header("Table 3 — 4-topology data: space overhead + Fast-Top-k-Opt performance");

    // Naive l=4 at small scale, to expose the weak-relationship cost.
    let naive = build_env(EnvOptions { l: 4, scale: 0.08, ..EnvOptions::default() });
    // Weak-pruned l=4 at the working scale.
    let env =
        build_env(EnvOptions { l: 4, scale: 0.12, weak_policy: true, ..EnvOptions::default() });

    println!(
        "\noffline build:  naive l=4 (scale 0.08): {} paths, {} topologies, {:.0} ms",
        naive.stats.paths, naive.stats.topologies, naive.stats.millis
    );
    println!(
        "                weak-pruned l=4 (scale 0.12): {} paths ({} dropped as weak), {} topologies, {:.0} ms",
        env.stats.paths, env.stats.weak_paths_dropped, env.stats.topologies, env.stats.millis
    );

    // Space overhead (right side of Table 3).
    let mut all = 0usize;
    let mut left = 0usize;
    let mut excp = 0usize;
    for (_, row) in env.catalog.space_report() {
        all += row.alltops_bytes;
        left += row.lefttops_bytes;
        excp += row.excptops_bytes;
    }
    println!("\nspace overhead: AllTops {all}B, LeftTops {left}B, ExcpTops {excp}B");

    // Fast-Top-k-Opt grid (left side of Table 3).
    let ctx = env.ctx();
    println!("\nFast-Top-k-Opt (ms): rows = protein selectivity, cols = interaction selectivity");
    println!(
        "{:<14} {:<8} {:>10} {:>10} {:>10}",
        "protein", "scheme", "selective", "medium", "unselective"
    );
    for ps in Selectivity::all() {
        for scheme in RankScheme::all() {
            let mut cells = Vec::new();
            for is in Selectivity::all() {
                let q = TopologyQuery::new(
                    env.biozon.ids.protein,
                    selectivity_predicate(ps),
                    env.biozon.ids.interaction,
                    selectivity_predicate(is),
                    4,
                )
                .with_k(10)
                .with_scheme(scheme);
                let _ = Method::FastTopKOpt.eval(&ctx, &q);
                let out = Method::FastTopKOpt.eval(&ctx, &q);
                cells.push(out.wall_ms);
            }
            println!(
                "{:<14} {:<8} {:>10.2} {:>10.2} {:>10.2}",
                ps.to_string(),
                scheme.to_string(),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }
}
