//! Criterion micro-benchmarks for the building blocks: canonical codes,
//! path enumeration, DGJ vs regular joins, exception-table probes, and
//! the Theorem-1 cost model — the ablations DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ts_biozon::BiozonConfig;
use ts_exec::{collect_all, collect_distinct_topk, BoxedOp, HashJoin, Idgj, ValuesScan, Work};
use ts_graph::{canonical_code, DataGraph, LGraph, SchemaGraph};
use ts_optimizer::{et_stack_cost, DgjOpParams, DgjStackParams};
use ts_storage::{row, ColumnDef, Predicate, Row, Table, TableSchema, ValueType};

fn bench_canonical_code(c: &mut Criterion) {
    // Path graph (the common case) and a symmetric multi-path union (the
    // adversarial case for the backtracking search).
    let mut path = LGraph::new();
    let nodes: Vec<u8> = (0..6).map(|i| path.add_node(i % 3)).collect();
    for w in nodes.windows(2) {
        path.add_edge(w[0], w[1], 1);
    }
    path.normalize();

    let mut sym = LGraph::new();
    let p = sym.add_node(0);
    let d = sym.add_node(1);
    for _ in 0..4 {
        let u = sym.add_node(2);
        sym.add_edge(p, u, 3);
        sym.add_edge(u, d, 4);
    }
    sym.normalize();

    c.bench_function("canon/path6", |b| b.iter(|| canonical_code(black_box(&path))));
    c.bench_function("canon/parallel4", |b| b.iter(|| canonical_code(black_box(&sym))));
}

fn bench_path_enumeration(c: &mut Criterion) {
    let biozon = ts_biozon::generate(&BiozonConfig::default().scaled(0.1));
    let g = DataGraph::from_db(&biozon.db).expect("consistent");
    let schema = SchemaGraph::from_db(&biozon.db);
    let (p, d) = (biozon.ids.protein, biozon.ids.dna);
    c.bench_function("paths/enumerate_pd_l3", |b| {
        b.iter(|| ts_graph::enumerate_pair_paths(black_box(&g), &schema, p, d, 3).path_count())
    });
}

fn grouped_rows(groups: usize, per_group: usize) -> Vec<Row> {
    let mut rows = Vec::with_capacity(groups * per_group);
    for g in 0..groups {
        for i in 0..per_group {
            rows.push(row![g as i64, (g * per_group + i) as i64 % 97]);
        }
    }
    rows
}

fn inner_table() -> Table {
    let mut t = Table::new(TableSchema::new(
        "Inner",
        vec![ColumnDef::new("k", ValueType::Int), ColumnDef::new("v", ValueType::Int)],
        None,
    ));
    for i in 0..97i64 {
        t.insert(row![i, i * 10]).unwrap();
    }
    t.create_index(0);
    t
}

fn bench_dgj_vs_hash(c: &mut Criterion) {
    let inner = inner_table();
    let rows = grouped_rows(200, 50);

    c.bench_function("join/idgj_topk10", |b| {
        b.iter_batched(
            || rows.clone(),
            |rows| {
                let scan: BoxedOp<'_> = Box::new(ValuesScan::grouped(rows, 0, Work::new()));
                let mut j = Idgj::new(scan, 1, &inner, 0, 0, Work::new());
                collect_distinct_topk(&mut j, 0, 10).len()
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("join/hash_full", |b| {
        b.iter_batched(
            || rows.clone(),
            |rows| {
                let scan: BoxedOp<'_> = Box::new(ValuesScan::new(rows, Work::new()));
                let build: BoxedOp<'_> =
                    Box::new(ts_exec::TableScan::new(&inner, Predicate::True, Work::new()));
                let mut j = HashJoin::new(scan, 1, build, 0, Work::new());
                collect_all(&mut j).len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let params = DgjStackParams {
        ops: vec![
            DgjOpParams { fanout: 1.0, rho: 0.5, probe_cost: 1.0 },
            DgjOpParams { fanout: 1.0, rho: 0.5, probe_cost: 1.0 },
        ],
        groups: (1..=500).map(|i| (i % 40 + 1) as f64).collect(),
    };
    c.bench_function("cost/theorem1_m500_k10", |b| {
        b.iter(|| et_stack_cost(black_box(&params), 10))
    });
}

criterion_group!(
    benches,
    bench_canonical_code,
    bench_path_enumeration,
    bench_dgj_vs_hash,
    bench_cost_model
);
criterion_main!(benches);
