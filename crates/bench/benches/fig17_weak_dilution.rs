//! Figure 17 / §6.2.3: weak relationships (P-D-P-U-D) dilute meaningful
//! topologies — one interesting topology splits into many variants — and
//! blow up the offline computation; Appendix B's domain-knowledge policy
//! is the fix.

use ts_bench::{build_env, header, EnvOptions};
use ts_core::EsPair;

fn main() {
    header("Figure 17 — weak-relationship dilution at l = 4");

    let naive = build_env(EnvOptions { l: 4, scale: 0.08, ..EnvOptions::default() });
    let pruned =
        build_env(EnvOptions { l: 4, scale: 0.08, weak_policy: true, ..EnvOptions::default() });

    let pd_naive = EsPair::new(naive.biozon.ids.protein, naive.biozon.ids.dna);
    let pd_pruned = EsPair::new(pruned.biozon.ids.protein, pruned.biozon.ids.dna);

    let n_naive = naive.catalog.topologies_for(pd_naive).len();
    let n_pruned = pruned.catalog.topologies_for(pd_pruned).len();

    // Diluted variants: >=5-node topologies that embed the weak walk's
    // unigene-containment tail (the (a)-(d) shapes of Fig. 17).
    let diluted = naive
        .catalog
        .topologies_for(pd_naive)
        .into_iter()
        .filter(|&tid| {
            let g = &naive.catalog.meta(tid).graph;
            g.node_count() >= 5
                && g.edges.iter().any(|&(_, _, r)| r == naive.biozon.ids.uni_contains)
                && g.edges.iter().filter(|&&(_, _, r)| r == naive.biozon.ids.encodes).count() >= 2
        })
        .count();

    println!("{:<40} {:>12} {:>12}", "", "naive l=4", "weak-pruned");
    println!(
        "{:<40} {:>12} {:>12}",
        "instance paths enumerated", naive.stats.paths, pruned.stats.paths
    );
    println!(
        "{:<40} {:>12} {:>12}",
        "paths dropped by policy", naive.stats.weak_paths_dropped, pruned.stats.weak_paths_dropped
    );
    println!("{:<40} {:>12} {:>12}", "distinct P-D topologies", n_naive, n_pruned);
    println!(
        "{:<40} {:>12} {:>12}",
        "pairs with truncated products", naive.stats.truncated_pairs, pruned.stats.truncated_pairs
    );
    println!(
        "{:<40} {:>12.0} {:>12.0}",
        "offline build (ms)", naive.stats.millis, pruned.stats.millis
    );
    println!(
        "\n{diluted} naive P-D topologies are Fig.17-style dilutions (>=5 nodes, \
         double-encodes + unigene containment)"
    );
    println!(
        "dilution removed by policy: {}",
        if n_pruned < n_naive { "YES (matches paper)" } else { "NO (investigate)" }
    );
}
