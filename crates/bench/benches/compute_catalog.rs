//! Offline catalog-build benchmark with a machine-readable trajectory.
//!
//! The paper's whole design rests on the offline build being affordable
//! (§4.1): topology queries are fast *because* `PS(a,b,l)` enumeration
//! and per-pair canonicalization happened ahead of time. This bench
//! times `compute_catalog` — serial and parallel — on generated Biozon
//! instances and writes `BENCH_compute_catalog.json` so every PR records
//! its perf trajectory (see `EXPERIMENTS.md`).
//!
//! Knobs:
//!
//! * `TS_BENCH_SIZES` — comma-separated subset of `tiny,small,medium`
//!   (default `medium`; CI runs `tiny`).
//! * `TS_BENCH_JSON` — output path (default: `BENCH_compute_catalog.json`
//!   at the workspace root, independent of cargo's bench cwd).
//! * `TS_BENCH_SCALE` — extra multiplier on every size (ts-bench wide).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use ts_bench::{header, paper_espairs, scale_from_env};
use ts_biozon::{generate, BiozonConfig};
use ts_core::{compute_catalog, Catalog, ComputeOptions, ComputeStats};
use ts_graph::{DataGraph, SchemaGraph};
use ts_storage::Table;

/// Counting allocator: the harness's proof that the columnar store
/// actually removed the per-row allocations, not just shuffled them.
/// Counting is gated so the timed build loop pays one relaxed load per
/// allocation instead of an atomic RMW — the timings stay comparable
/// to runs under the plain `System` allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: a pure pass-through to `System` — every method forwards its
// arguments unchanged and returns `System`'s result, so `System`'s own
// GlobalAlloc guarantees (layout fit, pointer validity) carry over; the
// added counter work is lock-free atomics and cannot allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed straight to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: ptr/layout/new_size forwarded untouched; the caller's
    // obligations become `System.realloc`'s preconditions verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: ptr was produced by `System.alloc`/`realloc` above with
    // this same layout, exactly what `System.dealloc` requires.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Replay AllTops materialization — the `finalize` loop that used to
/// build one `Row(Vec<Value>)` per row — against the finished catalog's
/// rows, counting heap allocations. With the columnar store the whole
/// loop must stay O(columns): a handful of buffer reservations, nothing
/// per row. Asserted here so a regression fails the bench run itself.
fn measure_alltops_allocs(cat: &Catalog) -> u64 {
    let rows: Vec<[i64; 3]> =
        cat.alltops.rows().map(|r| [r.as_int(0), r.as_int(1), r.as_int(2)]).collect();
    let schema = cat.alltops.schema().clone();
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let mut table = Table::new(schema);
    table.reserve(rows.len());
    for r in &rows {
        table.insert_ints(r).expect("alltops schema is all-Int");
    }
    COUNTING.store(false, Ordering::Relaxed);
    let delta = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(table.len(), rows.len());
    std::hint::black_box(&table);
    assert!(
        delta <= 16,
        "AllTops materialization must be O(columns) allocations, measured {delta} for {} rows",
        rows.len()
    );
    delta
}

struct SizeSpec {
    name: &'static str,
    scale: f64,
    iters: usize,
}

const SIZES: &[SizeSpec] = &[
    SizeSpec { name: "tiny", scale: 0.05, iters: 15 },
    SizeSpec { name: "small", scale: 0.1, iters: 9 },
    SizeSpec { name: "medium", scale: 0.25, iters: 5 },
];

struct Row {
    size: &'static str,
    method: &'static str,
    scale: f64,
    entities: usize,
    edges: usize,
    pairs: u64,
    paths: u64,
    topologies: usize,
    ns_per_iter: u128,
    iters: usize,
    /// Heap footprint of the finished catalog (CSR pair store + metas +
    /// interners + materialized tables), bytes.
    catalog_bytes: usize,
    /// CSR pair-store payload alone (keys + offset table + shared
    /// topo/sig buffers), bytes.
    pair_bytes: usize,
    /// The AllTops table alone (columnar buffers + hash indexes), bytes.
    alltops_bytes: usize,
    /// Heap allocations measured while re-materializing AllTops into a
    /// fresh columnar table (O(columns), asserted — the seed layout paid
    /// one per row).
    alltops_materialize_allocs: u64,
    stats: ComputeStats,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn run_method(
    spec: &SizeSpec,
    scale: f64,
    parallel: bool,
    biozon: &ts_biozon::Biozon,
    g: &DataGraph,
    schema: &SchemaGraph,
    rows: &mut Vec<Row>,
) {
    let mut opts = ComputeOptions::with_l(3);
    opts.es_pairs = Some(paper_espairs(&biozon.ids));
    opts.parallel = parallel;

    // Warm-up (also pre-faults the generated tables).
    let (_, mut stats) = compute_catalog(&biozon.db, g, schema, &opts);
    let mut samples = Vec::with_capacity(spec.iters);
    let mut last = None;
    for it in 0..spec.iters {
        let t0 = Instant::now();
        let (cat, s) = compute_catalog(&biozon.db, g, schema, &opts);
        samples.push(t0.elapsed().as_nanos());
        std::hint::black_box(cat.topology_count());
        stats = s;
        // Keep only the final catalog (retaining every iteration's
        // would double resident heap during the timed builds).
        if it + 1 == spec.iters {
            last = Some(cat);
        }
    }
    // Size and allocation audits run once, on the last catalog, outside
    // the timed loop.
    let cat = last.expect("iters >= 1");
    let catalog_bytes = cat.heap_size();
    let pair_bytes = cat.pair_bytes();
    let alltops_bytes = cat.alltops.heap_size();
    let alltops_materialize_allocs = measure_alltops_allocs(&cat);
    let ns = median(samples);
    let method = if parallel { "parallel" } else { "serial" };
    println!(
        "compute_catalog/{}/{:<8} {:>12.3} ms/iter  ({} pairs, {} paths, {} topologies, memo hit rate {:.3}, {} sig hashes, catalog {:.1} KiB, pair store {:.1} KiB, AllTops {:.1} KiB in {} allocs)",
        spec.name,
        method,
        ns as f64 / 1e6,
        stats.pairs,
        stats.paths,
        stats.topologies,
        stats.canon_hit_rate(),
        stats.sig_hashes,
        catalog_bytes as f64 / 1024.0,
        pair_bytes as f64 / 1024.0,
        alltops_bytes as f64 / 1024.0,
        alltops_materialize_allocs
    );
    rows.push(Row {
        size: spec.name,
        method,
        scale,
        entities: g.node_count(),
        edges: g.edge_count(),
        pairs: stats.pairs,
        paths: stats.paths,
        topologies: stats.topologies,
        ns_per_iter: ns,
        iters: spec.iters,
        catalog_bytes,
        pair_bytes,
        alltops_bytes,
        alltops_materialize_allocs,
        stats,
    });
}

fn emit_json(rows: &[Row]) {
    // Cargo runs bench executables with cwd = the package dir
    // (crates/bench), so the default aims at the workspace root, where
    // the recorded trajectory lives.
    let path = std::env::var("TS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compute_catalog.json").into()
    });
    let mut out = String::from(
        "{\n  \"bench\": \"compute_catalog\",\n  \"unit\": \"ns/iter\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"size\": \"{}\", \"method\": \"{}\", \"scale\": {}, \"entities\": {}, \"edges\": {}, \"pairs\": {}, \"paths\": {}, \"topologies\": {}, \"ns_per_iter\": {}, \"iters\": {}, \"canon_hits\": {}, \"canon_misses\": {}, \"canon_hit_rate\": {:.4}, \"sig_hash_once\": {}, \"catalog_bytes\": {}, \"pair_bytes\": {}, \"alltops_bytes\": {}, \"alltops_materialize_allocs\": {}}}{}\n",
            r.size,
            r.method,
            r.scale,
            r.entities,
            r.edges,
            r.pairs,
            r.paths,
            r.topologies,
            r.ns_per_iter,
            r.iters,
            r.stats.canon_hits,
            r.stats.canon_misses,
            r.stats.canon_hit_rate(),
            r.stats.sig_hashes,
            r.catalog_bytes,
            r.pair_bytes,
            r.alltops_bytes,
            r.alltops_materialize_allocs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    header("compute_catalog: offline build (serial vs parallel)");
    let sizes = std::env::var("TS_BENCH_SIZES").unwrap_or_else(|_| "medium".into());
    let global = scale_from_env();
    let mut rows = Vec::new();
    for spec in SIZES {
        if !sizes.split(',').any(|s| s.trim() == spec.name) {
            continue;
        }
        let scale = spec.scale * global;
        // One generated instance per size, shared by both methods.
        let biozon = generate(&BiozonConfig::default().scaled(scale));
        let g = DataGraph::from_db(&biozon.db).expect("generator is consistent");
        let schema = SchemaGraph::from_db(&biozon.db);
        run_method(spec, scale, false, &biozon, &g, &schema, &mut rows);
        run_method(spec, scale, true, &biozon, &g, &schema, &mut rows);
    }
    assert!(!rows.is_empty(), "TS_BENCH_SIZES selected no size (tiny,small,medium)");
    emit_json(&rows);
}
