//! Serving-layer benchmark with a machine-readable trajectory.
//!
//! Where `compute_catalog` times the offline build, this bench times
//! the *online* side the paper's evaluation presupposes: concurrent
//! topology queries answered from a shared catalog snapshot. It spins
//! up a [`ts_server::Server`], replays the deterministic
//! `ts_biozon::workload::query_mix` through the closed-loop
//! [`ts_server::run_stress`] driver, and writes `BENCH_serving.json`
//! (throughput, tail latency, shed and degraded rates) so every PR
//! records the serving trajectory alongside the build one.
//!
//! Knobs:
//!
//! * `TS_BENCH_SIZES` — comma-separated subset of `tiny,small,medium`
//!   (default `medium`; CI runs `tiny`).
//! * `TS_BENCH_JSON` — output path (default: `BENCH_serving.json` at
//!   the workspace root, independent of cargo's bench cwd).
//! * `TS_BENCH_SCALE` — extra multiplier on every size (ts-bench wide).

use ts_bench::{build_env, header, EnvOptions};
use ts_core::Snapshot;
use ts_server::{run_stress, BudgetSpec, Server, ServerConfig, StressOptions, StressReport};

struct SizeSpec {
    name: &'static str,
    scale: f64,
    clients: usize,
    queries: usize,
}

const SIZES: &[SizeSpec] = &[
    SizeSpec { name: "tiny", scale: 0.05, clients: 4, queries: 120 },
    SizeSpec { name: "small", scale: 0.1, clients: 4, queries: 240 },
    SizeSpec { name: "medium", scale: 0.25, clients: 6, queries: 360 },
];

struct Row {
    size: &'static str,
    scale: f64,
    workers: usize,
    clients: usize,
    report: StressReport,
}

fn run_size(spec: &SizeSpec) -> Row {
    let env = build_env(EnvOptions { scale: spec.scale, ..EnvOptions::default() });
    let ids = env.biozon.ids;
    let snapshot = Snapshot::new(env.biozon.db, env.graph, env.schema, env.catalog);

    // Budgets tight enough that the degrade ladder actually shows up in
    // the figures (a serving bench where nothing ever degrades proves
    // nothing about degradation), loose enough that most queries land Ok.
    let config = ServerConfig {
        workers: 4,
        queue_cap: 64,
        default_budget: BudgetSpec {
            deadline_ms: Some(2_000),
            step_quota: Some(3_000),
            row_quota: None,
        },
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let server = Server::new(snapshot, config);

    let opts = StressOptions { clients: spec.clients, queries: spec.queries, seed: 0xB10_0AD5 };
    let report = run_stress(&server, &ids, &opts);
    let shutdown = server.shutdown();
    assert!(
        shutdown.worker_panics.is_empty(),
        "serving bench saw worker panics: {:?}",
        shutdown.worker_panics
    );

    println!(
        "  {:<8} qps {:>8.1}  p50 {:>7}us  p99 {:>7}us  ok {:>4}  degraded {:>3}  shed {:>3}  ({:.0}ms wall)",
        spec.name,
        report.qps,
        report.p50_us,
        report.p99_us,
        report.ok,
        report.degraded,
        report.shed,
        report.wall_ms
    );
    Row { size: spec.name, scale: spec.scale, workers, clients: spec.clients, report }
}

fn emit_json(rows: &[Row]) {
    // Cargo runs bench executables with cwd = the package dir
    // (crates/bench), so the default aims at the workspace root, where
    // the recorded trajectory lives.
    let path = std::env::var("TS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").into()
    });
    let mut out = String::from("{\n  \"bench\": \"serving\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        out.push_str(&format!(
            "    {{\"size\": \"{}\", \"scale\": {}, \"workers\": {}, \"clients\": {}, \
             \"attempted\": {}, \"completed\": {}, \"ok\": {}, \"degraded\": {}, \
             \"rejected\": {}, \"failed\": {}, \"shed\": {}, \"qps\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"shed_rate\": {:.4}, \
             \"degraded_rate\": {:.4}, \"wall_ms\": {:.1}}}{}\n",
            row.size,
            row.scale,
            row.workers,
            row.clients,
            r.attempted,
            r.completed,
            r.ok,
            r.degraded,
            r.rejected,
            r.failed,
            r.shed,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.shed_rate,
            r.degraded_rate,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    header("serving: concurrent queries over a shared catalog snapshot");
    let sizes = std::env::var("TS_BENCH_SIZES").unwrap_or_else(|_| "medium".into());
    let mut rows = Vec::new();
    for spec in SIZES {
        if !sizes.split(',').any(|s| s.trim() == spec.name) {
            continue;
        }
        rows.push(run_size(spec));
    }
    assert!(!rows.is_empty(), "TS_BENCH_SIZES selected no size (tiny,small,medium)");
    emit_json(&rows);
}
