//! §6.2.4: varying k — "the results are similar, except for a slight
//! degradation in performance with increasing k".

use ts_bench::{build_env, header, EnvOptions};
use ts_biozon::{selectivity_predicate, Selectivity};
use ts_core::{Method, RankScheme, TopologyQuery};

fn main() {
    let env = build_env(EnvOptions::default());
    header("Vary-k — top-k methods as k grows (medium x medium, Domain scheme)");

    let ctx = env.ctx();
    let methods = [
        Method::FullTopK,
        Method::FastTopK,
        Method::FullTopKEt,
        Method::FastTopKEt,
        Method::FullTopKOpt,
        Method::FastTopKOpt,
    ];
    let ks = [1usize, 5, 10, 20, 50];

    print!("{:<16}", "method \\ k");
    for k in ks {
        print!(" {k:>9}");
    }
    println!("   (wall ms)");
    for method in methods {
        print!("{:<16}", method.name());
        for k in ks {
            let q = TopologyQuery::new(
                env.biozon.ids.protein,
                selectivity_predicate(Selectivity::Medium),
                env.biozon.ids.interaction,
                selectivity_predicate(Selectivity::Medium),
                3,
            )
            .with_k(k)
            .with_scheme(RankScheme::Domain);
            let _ = method.eval(&ctx, &q);
            let out = method.eval(&ctx, &q);
            print!(" {:>9.2}", out.wall_ms);
        }
        println!();
    }

    println!("\nwork units (machine-independent):");
    for method in methods {
        print!("{:<16}", method.name());
        for k in ks {
            let q = TopologyQuery::new(
                env.biozon.ids.protein,
                selectivity_predicate(Selectivity::Medium),
                env.biozon.ids.interaction,
                selectivity_predicate(Selectivity::Medium),
                3,
            )
            .with_k(k)
            .with_scheme(RankScheme::Domain);
            let out = method.eval(&ctx, &q);
            print!(" {:>9}", out.work);
        }
        println!();
    }
}
