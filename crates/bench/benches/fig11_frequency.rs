//! Figure 11: distribution of topology frequency for entity-set pairs
//! PD, DU, PI, PU — "approximately Zipfian for all entity set pairs".
//!
//! Prints rank vs frequency per pair plus a log-log slope estimate; a
//! clearly negative slope with a heavy head is the reproduction target.

use ts_bench::{build_env, espair_name, header, EnvOptions};
use ts_core::EsPair;

fn main() {
    let env = build_env(EnvOptions::default());
    header("Figure 11 — topology frequency distribution (rank vs freq)");

    let ids = &env.biozon.ids;
    let pairs = [
        ("PD", EsPair::new(ids.protein, ids.dna)),
        ("DU", EsPair::new(ids.dna, ids.unigene)),
        ("PI", EsPair::new(ids.protein, ids.interaction)),
        ("PU", EsPair::new(ids.protein, ids.unigene)),
    ];

    println!(
        "{:<6} {:<22} {:>8} {:>10} {:>10} {:>12}",
        "pair", "espair", "topos", "freq[0]", "freq[9]", "zipf slope"
    );
    for (label, espair) in pairs {
        let dist = env.catalog.freq_distribution(espair);
        if dist.is_empty() {
            println!("{label:<6} {:<22} {:>8}", espair_name(&env, espair), 0);
            continue;
        }
        let slope = loglog_slope(&dist);
        println!(
            "{label:<6} {:<22} {:>8} {:>10} {:>10} {:>12.2}",
            espair_name(&env, espair),
            dist.len(),
            dist[0],
            dist.get(9).copied().unwrap_or(0),
            slope
        );
    }

    println!("\nrank vs frequency series (first 20 ranks):");
    for (label, espair) in pairs {
        let dist = env.catalog.freq_distribution(espair);
        let head: Vec<String> = dist.iter().take(20).map(|f| f.to_string()).collect();
        println!("  {label}: {}", head.join(" "));
    }

    // Shape check, stated loudly so regressions are visible in CI logs.
    let pd = env.catalog.freq_distribution(EsPair::new(ids.protein, ids.dna));
    let heavy_head =
        pd.first().copied().unwrap_or(0) >= 10 * pd.get(pd.len() / 2).copied().unwrap_or(1).max(1);
    println!(
        "\nZipfian head present (freq[0] >= 10 x median): {}",
        if heavy_head { "YES (matches paper)" } else { "NO (investigate)" }
    );
}

/// Least-squares slope of log(freq) over log(rank).
fn loglog_slope(dist: &[u64]) -> f64 {
    let pts: Vec<(f64, f64)> = dist
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(r, &f)| (((r + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx).max(1e-12)
}
