//! §3.1: the candidate-topology blow-up — "the number of possible
//! 3-topologies is over 88453 (due to every combination — and possible
//! intermixing — of the ten schema paths of length three or less that
//! connect proteins and DNAs)", versus "close to 200" with priori
//! knowledge.

use ts_bench::{build_env, header, EnvOptions};
use ts_core::methods::sql_method::enumerate_schema_topologies;
use ts_core::EsPair;

fn main() {
    let env = build_env(EnvOptions { scale: 0.1, ..EnvOptions::default() });
    header("§3.1 — candidate schema-topology counts for Protein-DNA");

    let pd = EsPair::new(env.biozon.ids.protein, env.biozon.ids.dna);
    let walks = env.schema.walk_count(pd.from, pd.to, 3);
    println!("schema walks of length <= 3 connecting Protein and DNA: {walks}");
    println!("(paper: ten schema paths of length three or less)\n");

    println!("{:<14} {:>12} {:>8}", "max classes", "candidates", "capped");
    for max_classes in 1..=4 {
        let e = enumerate_schema_topologies(&env.schema, pd, 3, max_classes, 200_000);
        println!("{:<14} {:>12} {:>8}", max_classes, e.total, if e.capped { "yes" } else { "no" });
    }

    let observed = env.catalog.topologies_for(pd).len();
    println!(
        "\nobserved (instance-backed) P-D topologies: {observed} \
         (paper: 'close to 200 topologies' with priori knowledge)"
    );
    println!(
        "the gap between enumerable and observed candidates is why the SQL \
         method of §3.1 cannot compete: most candidates have no instances."
    );
}
