//! Query-throughput benchmark: vectorized batch engine vs the original
//! tuple-at-a-time Volcano engine, with a machine-readable trajectory.
//!
//! Two layers are timed at each size, and both land in
//! `BENCH_query_throughput.json`:
//!
//! * **Per-operator rows/s** — each relational operator (scan, filter,
//!   hash join, sort, distinct) drained over the same catalog/entity
//!   tables through its tuple implementation and its batch twin. The
//!   batch drain consumes column batches (no per-row `Vec<Value>`
//!   materialization); the ratio is the vectorization speedup.
//! * **End-to-end qps** — the deterministic `ts_biozon::query_mix`
//!   replayed through `Method::eval` (all nine methods, round-robin)
//!   once per engine via `ts_exec::set_engine`.
//!
//! Knobs:
//!
//! * `TS_BENCH_SIZES` — comma-separated subset of `tiny,small,medium`
//!   (default `medium`; CI runs `tiny`).
//! * `TS_BENCH_JSON` — output path (default:
//!   `BENCH_query_throughput.json` at the workspace root).
//! * `TS_BENCH_SCALE` — extra multiplier on every size (ts-bench wide).

use std::time::Instant;

use ts_bench::{build_env, header, BenchEnv, EnvOptions};
use ts_core::Method;
use ts_exec::{
    set_engine, BatchDistinct, BatchFilter, BatchHashJoin, BatchOperator, BatchSort,
    BatchTableScan, BoxedBatchOp, BoxedOp, Dir, Distinct, Engine, Filter, HashJoin, Operator, Sort,
    TableScan, Work,
};
use ts_storage::{Predicate, Table};

struct SizeSpec {
    name: &'static str,
    scale: f64,
    queries: usize,
}

const SIZES: &[SizeSpec] = &[
    SizeSpec { name: "tiny", scale: 0.05, queries: 60 },
    SizeSpec { name: "small", scale: 0.1, queries: 90 },
    SizeSpec { name: "medium", scale: 0.25, queries: 120 },
];

struct OpRow {
    op: &'static str,
    /// Rows the operator emits in one full drain (identical for both
    /// engines — the differential tests prove it).
    rows: u64,
    tuple_rows_per_s: f64,
    batch_rows_per_s: f64,
}

impl OpRow {
    fn speedup(&self) -> f64 {
        if self.tuple_rows_per_s > 0.0 {
            self.batch_rows_per_s / self.tuple_rows_per_s
        } else {
            0.0
        }
    }
}

struct SizeRow {
    size: &'static str,
    scale: f64,
    ops: Vec<OpRow>,
    e2e_queries: usize,
    e2e_qps_tuple: f64,
    e2e_qps_batch: f64,
}

/// Drain a tuple operator; the row count is the unit of throughput.
fn drain_tuple(op: &mut dyn Operator) -> u64 {
    let mut n = 0;
    while let Some(r) = op.next() {
        std::hint::black_box(&r);
        n += 1;
    }
    n
}

/// Drain a batch operator; selected rows are the unit of throughput.
fn drain_batch<'a>(op: &mut dyn BatchOperator<'a>) -> u64 {
    let mut n = 0;
    while let Some(b) = op.next_batch() {
        std::hint::black_box(&b);
        n += b.selected() as u64;
    }
    n
}

/// Repeat `pass` until the timer has something to chew on (>= 3 passes
/// and >= 80 ms), then return (rows per pass, rows per second).
fn rate(mut pass: impl FnMut() -> u64) -> (u64, f64) {
    let per_pass = pass(); // warmup, and the reported row count
    let start = Instant::now();
    let mut total = 0u64;
    let mut passes = 0u32;
    while passes < 3 || (start.elapsed().as_millis() < 80 && passes < 10_000) {
        total += pass();
        passes += 1;
    }
    (per_pass, total as f64 / start.elapsed().as_secs_f64())
}

fn measure_op(
    op: &'static str,
    tuple_pass: impl FnMut() -> u64,
    batch_pass: impl FnMut() -> u64,
) -> OpRow {
    let (rows, tuple_rows_per_s) = rate(tuple_pass);
    let (brows, batch_rows_per_s) = rate(batch_pass);
    assert_eq!(rows, brows, "{op}: engines drained different row counts");
    OpRow { op, rows, tuple_rows_per_s, batch_rows_per_s }
}

fn operator_rows(env: &BenchEnv) -> Vec<OpRow> {
    let tops: &Table = &env.catalog.alltops;
    let def = env.biozon.db.entity_set(env.biozon.ids.protein as usize);
    let prot = env.biozon.db.table(def.table);
    let prot_pk = prot.schema().primary_key.expect("entity sets have primary keys");
    let med = ts_biozon::selectivity_predicate(ts_biozon::Selectivity::Medium);
    let keys = vec![(2, Dir::Asc), (0, Dir::Asc)];

    vec![
        measure_op(
            "scan",
            || drain_tuple(&mut TableScan::new(tops, Predicate::True, Work::new())),
            || drain_batch(&mut BatchTableScan::new(tops, Predicate::True, Work::new())),
        ),
        measure_op(
            "filter",
            || {
                let scan: BoxedOp<'_> =
                    Box::new(TableScan::new(prot, Predicate::True, Work::new()));
                drain_tuple(&mut Filter::new(scan, med.clone(), Work::new()))
            },
            || {
                let scan: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(prot, Predicate::True, Work::new()));
                drain_batch(&mut BatchFilter::new(scan, med.clone(), Work::new()))
            },
        ),
        measure_op(
            "join",
            || {
                let probe: BoxedOp<'_> =
                    Box::new(TableScan::new(tops, Predicate::True, Work::new()));
                let build: BoxedOp<'_> =
                    Box::new(TableScan::new(prot, Predicate::True, Work::new()));
                drain_tuple(&mut HashJoin::new(probe, 0, build, prot_pk, Work::new()))
            },
            || {
                let probe: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(tops, Predicate::True, Work::new()));
                let build: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(prot, Predicate::True, Work::new()));
                drain_batch(&mut BatchHashJoin::new(probe, 0, build, prot_pk, Work::new()))
            },
        ),
        measure_op(
            "sort",
            || {
                let scan: BoxedOp<'_> =
                    Box::new(TableScan::new(tops, Predicate::True, Work::new()));
                drain_tuple(&mut Sort::new(scan, keys.clone(), Work::new()))
            },
            || {
                let scan: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(tops, Predicate::True, Work::new()));
                drain_batch(&mut BatchSort::new(scan, keys.clone(), Work::new()))
            },
        ),
        measure_op(
            "distinct",
            || {
                let scan: BoxedOp<'_> =
                    Box::new(TableScan::new(tops, Predicate::True, Work::new()));
                drain_tuple(&mut Distinct::new(scan, vec![2], Work::new()))
            },
            || {
                let scan: BoxedBatchOp<'_> =
                    Box::new(BatchTableScan::new(tops, Predicate::True, Work::new()));
                drain_batch(&mut BatchDistinct::new(scan, vec![2], Work::new()))
            },
        ),
    ]
}

/// Replay the deterministic workload through `Method::eval` on one
/// engine; queries per second over the whole mix.
fn e2e_qps(env: &BenchEnv, queries: usize, engine: Engine) -> f64 {
    set_engine(engine);
    let ctx = env.ctx();
    let qs = ts_biozon::query_mix(&env.biozon.ids, 3, queries, 0xB10_0CAF);
    let methods = Method::all();
    let start = Instant::now();
    let mut sink = 0usize;
    for (i, q) in qs.iter().enumerate() {
        sink += methods[i % methods.len()].eval(&ctx, q).topologies.len();
    }
    std::hint::black_box(sink);
    qs.len() as f64 / start.elapsed().as_secs_f64()
}

fn run_size(spec: &SizeSpec) -> SizeRow {
    let env = build_env(EnvOptions { scale: spec.scale, ..EnvOptions::default() });

    let ops = operator_rows(&env);
    for op in &ops {
        println!(
            "  {:<8} {:<9} {:>12.0} -> {:>12.0} rows/s  ({} rows, {:.2}x)",
            spec.name,
            op.op,
            op.tuple_rows_per_s,
            op.batch_rows_per_s,
            op.rows,
            op.speedup()
        );
    }

    let e2e_qps_tuple = e2e_qps(&env, spec.queries, Engine::Tuple);
    let e2e_qps_batch = e2e_qps(&env, spec.queries, Engine::Batch);
    set_engine(Engine::Batch); // restore the default engine
    println!(
        "  {:<8} {:<9} {:>12.1} -> {:>12.1} qps     ({} queries, {:.2}x)",
        spec.name,
        "e2e",
        e2e_qps_tuple,
        e2e_qps_batch,
        spec.queries,
        if e2e_qps_tuple > 0.0 { e2e_qps_batch / e2e_qps_tuple } else { 0.0 }
    );

    SizeRow {
        size: spec.name,
        scale: spec.scale,
        ops,
        e2e_queries: spec.queries,
        e2e_qps_tuple,
        e2e_qps_batch,
    }
}

fn emit_json(rows: &[SizeRow]) {
    // Cargo runs bench executables with cwd = the package dir
    // (crates/bench), so the default aims at the workspace root, where
    // the recorded trajectory lives.
    let path = std::env::var("TS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_throughput.json").into()
    });
    let mut out = String::from("{\n  \"bench\": \"query_throughput\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("    {{\"size\": \"{}\", \"scale\": {}", row.size, row.scale));
        for op in &row.ops {
            out.push_str(&format!(
                ", \"{op}_rows\": {}, \"{op}_tuple_rows_per_s\": {:.0}, \
                 \"{op}_batch_rows_per_s\": {:.0}, \"{op}_speedup\": {:.2}",
                op.rows,
                op.tuple_rows_per_s,
                op.batch_rows_per_s,
                op.speedup(),
                op = op.op,
            ));
        }
        let e2e_speedup =
            if row.e2e_qps_tuple > 0.0 { row.e2e_qps_batch / row.e2e_qps_tuple } else { 0.0 };
        out.push_str(&format!(
            ", \"e2e_queries\": {}, \"e2e_qps_tuple\": {:.1}, \"e2e_qps_batch\": {:.1}, \
             \"e2e_speedup\": {:.2}}}{}\n",
            row.e2e_queries,
            row.e2e_qps_tuple,
            row.e2e_qps_batch,
            e2e_speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("write bench json");
    println!("\nwrote {path}");
}

fn main() {
    header("query_throughput: batch engine vs tuple engine");
    let sizes = std::env::var("TS_BENCH_SIZES").unwrap_or_else(|_| "medium".into());
    let mut rows = Vec::new();
    for spec in SIZES {
        if !sizes.split(',').any(|s| s.trim() == spec.name) {
            continue;
        }
        rows.push(run_size(spec));
    }
    assert!(!rows.is_empty(), "TS_BENCH_SIZES selected no size (tiny,small,medium)");
    emit_json(&rows);
}
