//! Shared scaffolding for the benchmark harnesses that regenerate every
//! table and figure of the paper's evaluation (§6).
//!
//! Each bench target (`crates/bench/benches/*.rs`, `harness = false`)
//! prints the same rows/series the paper reports. Absolute numbers are
//! machine- and substrate-dependent; the *shape* — who wins, by roughly
//! what factor, where the crossovers fall — is the reproduction target
//! and is recorded against the paper in `EXPERIMENTS.md`.
//!
//! Environment knobs:
//!
//! * `TS_BENCH_SCALE` — multiply the default database scale (default 1.0,
//!   applied on top of each bench's own baseline scale).
//! * `TS_BENCH_SKIP_SQL=1` — skip the SQL baseline in Table 2 (it is two
//!   to three orders of magnitude slower than everything else; that is
//!   its role in the paper, but it dominates wall-clock).

#![forbid(unsafe_code)]

use ts_biozon::{generate, Biozon, BiozonConfig};
use ts_core::{
    compute_catalog, prune_catalog, score_catalog, Catalog, ComputeOptions, EsPair, PruneOptions,
    QueryContext, WeakPolicy,
};
use ts_graph::{DataGraph, SchemaGraph};

/// A fully built experiment environment.
pub struct BenchEnv {
    /// The generated database.
    pub biozon: Biozon,
    /// Its data graph.
    pub graph: DataGraph,
    /// Its schema graph.
    pub schema: SchemaGraph,
    /// The computed, pruned, scored catalog.
    pub catalog: Catalog,
    /// Offline build statistics.
    pub stats: ts_core::ComputeStats,
}

impl BenchEnv {
    /// The query context over this environment.
    pub fn ctx(&self) -> QueryContext<'_> {
        QueryContext {
            db: &self.biozon.db,
            graph: &self.graph,
            schema: &self.schema,
            catalog: &self.catalog,
        }
    }
}

/// The entity-set pairs of the paper's Table 1 / Fig. 11.
pub fn paper_espairs(ids: &ts_biozon::SchemaIds) -> Vec<EsPair> {
    vec![
        EsPair::new(ids.protein, ids.dna),
        EsPair::new(ids.protein, ids.interaction),
        EsPair::new(ids.protein, ids.unigene),
        EsPair::new(ids.dna, ids.interaction),
        EsPair::new(ids.dna, ids.unigene),
        EsPair::new(ids.unigene, ids.interaction),
    ]
}

/// `TS_BENCH_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("TS_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// `TS_BENCH_SKIP_SQL`.
pub fn skip_sql() -> bool {
    std::env::var("TS_BENCH_SKIP_SQL").map(|v| v == "1").unwrap_or(false)
}

/// Options for [`build_env`].
pub struct EnvOptions {
    /// Path-length limit.
    pub l: usize,
    /// Database scale relative to [`BiozonConfig::default`].
    pub scale: f64,
    /// Pruning threshold (`None` = PruneOptions default).
    pub prune_threshold: Option<u64>,
    /// Apply the Appendix-B weak-relationship policy.
    pub weak_policy: bool,
    /// Restrict the offline build to the paper's six espairs.
    pub paper_pairs_only: bool,
}

impl Default for EnvOptions {
    fn default() -> Self {
        EnvOptions {
            l: 3,
            scale: 0.25,
            prune_threshold: None,
            weak_policy: false,
            paper_pairs_only: true,
        }
    }
}

/// Generate + compute + prune + score, reporting timing to stderr.
pub fn build_env(opts: EnvOptions) -> BenchEnv {
    let scale = opts.scale * scale_from_env();
    let cfg = BiozonConfig::default().scaled(scale);
    let biozon = generate(&cfg);
    let graph = DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = SchemaGraph::from_db(&biozon.db);

    let mut copts = ComputeOptions::with_l(opts.l);
    if opts.paper_pairs_only {
        copts.es_pairs = Some(paper_espairs(&biozon.ids));
    }
    if opts.weak_policy {
        copts.weak_policy = Some(weak_policy(&biozon));
    }
    copts.parallel = true;
    let (mut catalog, stats) = compute_catalog(&biozon.db, &graph, &schema, &copts);
    let threshold = opts.prune_threshold.unwrap_or_else(|| default_threshold(&catalog));
    prune_catalog(&mut catalog, PruneOptions { threshold, max_pruned: 32 });
    score_catalog(&mut catalog, &ts_biozon::domain_scorer(&biozon.ids));

    eprintln!(
        "[env] scale {:.2}: {} entities, {} pairs, {} paths, {} topologies, offline {:.0} ms (threshold {})",
        scale,
        graph.node_count(),
        stats.pairs,
        stats.paths,
        stats.topologies,
        stats.millis,
        threshold
    );
    BenchEnv { biozon, graph, schema, catalog, stats }
}

/// The paper sets the pruning threshold "based on the expected
/// performance gains" (§4.2); we default to the 95th percentile of
/// topology frequencies, which prunes the few heavy hitters of the
/// Zipfian head exactly as Fig. 11 suggests.
pub fn default_threshold(catalog: &Catalog) -> u64 {
    let mut freqs: Vec<u64> = catalog.metas().iter().map(|m| m.freq).collect();
    if freqs.is_empty() {
        return u64::MAX;
    }
    freqs.sort_unstable();
    freqs[(freqs.len() * 95) / 100]
}

/// The Appendix-B weak policy for a generated Biozon.
pub fn weak_policy(biozon: &Biozon) -> WeakPolicy {
    ts_biozon::weak_policy_l4(&biozon.ids)
}

/// Print a separator header.
pub fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Render a topology structure compactly.
pub fn motif(env: &BenchEnv, tid: ts_core::TopologyId) -> String {
    let meta = env.catalog.meta(tid);
    let tn = |t: u16| env.biozon.db.entity_set(t as usize).name.clone();
    let rn = |r: u16| env.biozon.db.rel_set(r as usize).name.clone();
    ts_graph::render::motif_line(&meta.graph, &tn, &rn)
}

/// Name of an espair like "Protein-DNA".
pub fn espair_name(env: &BenchEnv, p: EsPair) -> String {
    format!(
        "{}-{}",
        env.biozon.db.entity_set(p.from as usize).name,
        env.biozon.db.entity_set(p.to as usize).name
    )
}
