//! The paper's worked examples, end-to-end through the public facade.
//!
//! Every assertion here is a sentence from the paper (§2.2 and Figs.
//! 3–5): the Fig. 3 database, PS(78,215,3) = {l2,l3,l6},
//! 3-PathEC(78,215) has two classes, 3-Top(78,215) = {T3,T4},
//! 3-Top(32,214) = {T1}, 3-Top(44,742) = {T2}, and the query result
//! 3-Topology(Q,G) = {T1,T2,T3,T4}.

use topology_search::prelude::*;
use ts_core::topology::{pair_topologies, CanonMemo, TopOptions};
use ts_graph::fixtures::{figure3, DNA, PROTEIN};
use ts_graph::paths::enumerate_pair_paths;

#[test]
fn section_2_worked_example() {
    let (db, g, schema) = figure3();

    // PS(78, 215, 3) = { l2, l3, l6 }.
    let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
    let p78 = g.node(PROTEIN, 78).unwrap();
    let d215 = g.node(DNA, 215).unwrap();
    let paths = pp.paths(p78, d215);
    assert_eq!(paths.len(), 3);

    // 3-PathEC(78,215) contains two equivalence classes.
    let t = pair_topologies(&g, &paths, TopOptions::default(), &mut CanonMemo::new());
    assert_eq!(t.class_count(), 2);
    // 3-Top(78,215) = { T3, T4 }.
    assert_eq!(t.unions.len(), 2);

    // Full pipeline: the query of Example 2.1.
    let (catalog, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
    let ctx = QueryContext { db: &db, graph: &g, schema: &schema, catalog: &catalog };
    let q = TopologyQuery::new(
        PROTEIN,
        Predicate::contains(1, "enzyme"),
        DNA,
        Predicate::eq(1, "mRNA"),
        3,
    );
    // 3-Topology(Q, G) = { T1, T2, T3, T4 }.
    let out = Method::FullTop.eval(&ctx, &q);
    assert_eq!(out.tid_set().len(), 4);

    // And every method agrees on this historic query.
    for m in Method::all() {
        let got = m.eval(&ctx, &q);
        if m.is_topk() {
            assert!(got.tid_set().len() <= 4);
            for tid in got.tid_set() {
                assert!(out.tid_set().contains(&tid), "{}", m.name());
            }
        } else {
            assert_eq!(got.tid_set(), out.tid_set(), "{}", m.name());
        }
    }
}

#[test]
fn t2_not_in_top_of_78_215() {
    // "T2 is not in 3-Top(78,215) because it does not depict the full
    // interaction of paths from different equivalence classes."
    let (_db, g, schema) = figure3();
    let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
    let p78 = g.node(PROTEIN, 78).unwrap();
    let d215 = g.node(DNA, 215).unwrap();
    let t78 =
        pair_topologies(&g, &pp.paths(p78, d215), TopOptions::default(), &mut CanonMemo::new());
    let p44 = g.node(PROTEIN, 44).unwrap();
    let d742 = g.node(DNA, 742).unwrap();
    let t44 =
        pair_topologies(&g, &pp.paths(p44, d742), TopOptions::default(), &mut CanonMemo::new());
    // T2 is the (single) topology of (44, 742); it must not appear among
    // (78, 215)'s topologies.
    let t2_code = &t44.unions[0].1;
    assert!(t78.unions.iter().all(|(_, c)| c != t2_code));
}

#[test]
fn isolated_results_versus_topologies() {
    // §1: keyword-search systems return 6 isolated paths (Fig. 4) for
    // the unconstrained query; topology search groups them into 4+1
    // schema-level results with instance witnesses.
    let (db, g, schema) = figure3();
    let pp = enumerate_pair_paths(&g, &schema, PROTEIN, DNA, 3);
    // Fig. 4's six rows are the paths whose protein matches the query's
    // 'enzyme' keyword ({32, 78, 44}); pair (34, 215) adds two more.
    let enzyme_proteins: Vec<u32> =
        [32i64, 78, 44].iter().map(|&id| g.node(PROTEIN, id).unwrap()).collect();
    let isolated: usize =
        pp.map.iter().filter(|((a, _), _)| enzyme_proteins.contains(a)).map(|(_, v)| v.len()).sum();
    assert_eq!(isolated, 6, "Fig. 4 shows exactly six isolated results");
    let all_paths: usize = pp.map.values().map(Vec::len).sum();
    assert_eq!(all_paths, 8);
    let (catalog, _) = compute_catalog(&db, &g, &schema, &ComputeOptions::with_l(3));
    let pd = EsPair::new(PROTEIN, DNA);
    assert!(catalog.topologies_for(pd).len() < isolated);
}
