//! The work-stealing parallel offline build must be indistinguishable
//! from the serial one: chunk boundaries, worker count, and per-worker
//! canonicalizer memos are scheduling details, and the deterministic
//! merge in `ts-core::compute` has to erase all of them. This test runs
//! both builds on a generated Biozon instance (large enough that the
//! parallel path engages for real) and compares the catalogs
//! structure-for-structure and the materialized tables row-for-row.

use topology_search::prelude::*;

fn assert_catalogs_identical(c1: &Catalog, c2: &Catalog) {
    assert_eq!(c1.l, c2.l);
    assert_eq!(c1.topology_count(), c2.topology_count());
    assert_eq!(c1.sig_count(), c2.sig_count());
    assert_eq!(c1.code_count(), c2.code_count());
    for (m1, m2) in c1.metas().iter().zip(c2.metas().iter()) {
        assert_eq!(m1.id, m2.id);
        assert_eq!(m1.espair, m2.espair);
        assert_eq!(m1.code, m2.code);
        assert_eq!(m1.code_id, m2.code_id);
        assert_eq!(m1.freq, m2.freq);
        assert_eq!(m1.path_sig, m2.path_sig);
        assert_eq!(m1.graph.labels, m2.graph.labels);
        assert_eq!(m1.graph.edges, m2.graph.edges);
    }
    assert_eq!(c1.pair_count(), c2.pair_count());
    for (p1, p2) in c1.pairs().zip(c2.pairs()) {
        assert_eq!((p1.espair, p1.e1, p1.e2), (p2.espair, p2.e1, p2.e2));
        assert_eq!(p1.topos, p2.topos);
        assert_eq!(p1.sigs, p2.sigs);
    }
    assert_eq!(c1.pair_offsets(), c2.pair_offsets());
    for (t1, t2) in [(&c1.alltops, &c2.alltops), (&c1.lefttops, &c2.lefttops)] {
        assert_eq!(t1.len(), t2.len());
        for (r1, r2) in t1.rows().zip(t2.rows()) {
            assert_eq!(r1, r2);
        }
        // The columnar layout itself must agree, not just the logical
        // cells: identical byte footprint on both schedules.
        assert_eq!(t1.heap_size(), t2.heap_size());
    }
}

#[test]
fn work_stealing_build_matches_serial_byte_for_byte() {
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.1));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);

    let serial_opts = ComputeOptions::with_l(3);
    let (c_serial, s_serial) = compute_catalog(&biozon.db, &graph, &schema, &serial_opts);

    // Default threshold: only entity sets with >= 64 sources go parallel.
    let par_opts = ComputeOptions { parallel: true, ..ComputeOptions::with_l(3) };
    let (c_par, s_par) = compute_catalog(&biozon.db, &graph, &schema, &par_opts);
    assert_catalogs_identical(&c_serial, &c_par);

    // Forced threshold 1: every espair takes the work-stealing path,
    // including tiny ones where chunking degenerates to one source each.
    let forced_opts =
        ComputeOptions { parallel: true, min_parallel_sources: 1, ..ComputeOptions::with_l(3) };
    let (c_forced, s_forced) = compute_catalog(&biozon.db, &graph, &schema, &forced_opts);
    assert_catalogs_identical(&c_serial, &c_forced);

    // The same logical work was done in all three schedules.
    assert_eq!(s_serial.pairs, s_par.pairs);
    assert_eq!(s_serial.paths, s_forced.paths);
    assert_eq!(s_serial.topologies, s_forced.topologies);
    // Memo effectiveness is a scheduling detail, but the total number of
    // canonicalizations asked for is not.
    assert_eq!(
        s_serial.canon_hits + s_serial.canon_misses,
        s_forced.canon_hits + s_forced.canon_misses
    );
}

#[test]
fn determinism_matrix_across_scales_and_thread_counts() {
    // One scale is not enough: chunking degenerates differently on a
    // tiny instance (one source per chunk) than on a medium one (full
    // 256-source chunks), and the thread count decides how interleaved
    // the per-worker canonicalizer memos get. Sweep both axes; the
    // catalogs must be identical to the serial build everywhere.
    for (size, scale) in [("tiny", 0.05), ("small", 0.1), ("medium", 0.25)] {
        let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(scale));
        let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
        let schema = graph::SchemaGraph::from_db(&biozon.db);
        let (c_serial, s_serial) =
            compute_catalog(&biozon.db, &graph, &schema, &ComputeOptions::with_l(3));
        for threads in [1usize, 2, 4] {
            let opts = ComputeOptions {
                parallel: true,
                min_parallel_sources: 1,
                max_threads: threads,
                ..ComputeOptions::with_l(3)
            };
            let (c, s) = compute_catalog(&biozon.db, &graph, &schema, &opts);
            assert_eq!(s_serial.pairs, s.pairs, "{size} × {threads} threads");
            assert_eq!(s_serial.paths, s.paths, "{size} × {threads} threads");
            assert_catalogs_identical(&c_serial, &c);
        }
    }
}

#[test]
fn weak_policy_parallel_matches_serial() {
    // The weak-policy filter runs inside the workers; dropping paths must
    // not disturb determinism either.
    let biozon = biozon::generate(&biozon::BiozonConfig::default().scaled(0.1));
    let graph = graph::DataGraph::from_db(&biozon.db).expect("generator is consistent");
    let schema = graph::SchemaGraph::from_db(&biozon.db);
    let policy = biozon::weak_policy_l4(&biozon.ids);

    let mk = |parallel| ComputeOptions {
        parallel,
        min_parallel_sources: 1,
        weak_policy: Some(policy.clone()),
        ..ComputeOptions::with_l(3)
    };
    let (c1, s1) = compute_catalog(&biozon.db, &graph, &schema, &mk(false));
    let (c2, s2) = compute_catalog(&biozon.db, &graph, &schema, &mk(true));
    assert_catalogs_identical(&c1, &c2);
    assert_eq!(s1.weak_paths_dropped, s2.weak_paths_dropped);
}
